"""Property-based contracts of the record/replay loop.

1. **Determinism** — for hypothesis-generated scenarios, recording and
   same-platform replay are byte-identical: the recording is a pure
   function of (scenario, seed, platform).
2. **Fixed point** — replaying a replay changes nothing: recordings are
   canonical on construction, so the loop converges in one step.
3. **No undeclared self-divergence** — arbitrary interleavings of
   calls, clock advances and callback drains never diff against
   themselves on the same platform; every divergence the replayer can
   report is a genuine cross-run behaviour gap.

The step pool deliberately spans the probe battery (including the
error-code probes and the Call capability probe) so the properties
exercise the same vocabulary as the bundled library, just in shapes
the unit tests never picked by hand.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.workforce.common import PATH_STATUS, SERVER_HOST
from repro.scenario import (
    AdvanceStep,
    CallStep,
    CallbacksStep,
    Scenario,
    ScenarioEnv,
    diff_recordings,
    record,
    replay,
)

pytestmark = pytest.mark.scenario

_STATUS_URL = f"http://{SERVER_HOST}{PATH_STATUS}"

#: (builder, needs_index) — every entry must be safe at any virtual time.
_STEP_POOL = (
    lambda i: AdvanceStep(f"s{i}", 7_500.0),
    lambda i: AdvanceStep(f"s{i}", 45_000.0),
    lambda i: CallStep(f"s{i}", "location", "getLocation"),
    lambda i: CallStep(f"s{i}", "http", "get", {"url": _STATUS_URL}),
    lambda i: CallStep(f"s{i}", "logic", "reportLocation"),
    lambda i: CallStep(
        f"s{i}", "location", "getProperty", {"key": "noSuchProperty"}
    ),
    lambda i: CallStep(
        f"s{i}", "probe", "createProxy", {"interface": "Call"},
        probe="call_proxy",
    ),
    lambda i: CallStep(
        f"s{i}", "location", "getLocation", capture_shape=True
    ),
    lambda i: CallbacksStep(f"s{i}"),
    lambda i: CallStep(f"s{i}", "server", "activityLog"),
)

SCENARIOS = st.builds(
    lambda picks, seed, resilience: Scenario(
        name="generated",
        seed=seed,
        env=ScenarioEnv(resilience=resilience),
        steps=tuple(
            _STEP_POOL[pick](index) for index, pick in enumerate(picks)
        ),
    ),
    picks=st.lists(
        st.integers(min_value=0, max_value=len(_STEP_POOL) - 1),
        min_size=1,
        max_size=6,
    ),
    seed=st.integers(min_value=0, max_value=2**16),
    resilience=st.sampled_from(("default", "chaos")),
)


@settings(max_examples=20, deadline=None)
@given(scenario=SCENARIOS)
def test_same_seed_record_replay_is_byte_identical(scenario):
    base = record(scenario)
    result = replay(base)
    assert result.replayed.to_jsonl() == base.to_jsonl()


@settings(max_examples=10, deadline=None)
@given(scenario=SCENARIOS)
def test_replay_of_replay_is_a_fixed_point(scenario):
    once = replay(record(scenario))
    twice = replay(once.replayed)
    assert twice.replayed.to_jsonl() == once.replayed.to_jsonl()


@settings(max_examples=20, deadline=None)
@given(scenario=SCENARIOS)
def test_no_undeclared_self_divergence(scenario):
    first = record(scenario)
    second = record(scenario)
    diff = diff_recordings(first, second)
    assert diff.passed
    assert diff.divergences == ()
