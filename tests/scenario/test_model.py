"""The declarative scenario model: validation and serialization."""

import pytest

from repro.errors import ConfigurationError
from repro.scenario import (
    AdvanceStep,
    AssertStep,
    BurstStep,
    CallStep,
    CallbacksStep,
    RuntimeSpec,
    SagaFlowStep,
    Scenario,
    ScenarioEnv,
    build,
    names,
)
from repro.scenario.model import step_from_dict

pytestmark = pytest.mark.scenario


def minimal(**overrides) -> Scenario:
    defaults = dict(
        name="minimal",
        steps=(AdvanceStep("s0", 1_000.0),),
    )
    defaults.update(overrides)
    return Scenario(**defaults)


class TestStepValidation:
    def test_unknown_call_target(self):
        with pytest.raises(ConfigurationError, match="unknown call target"):
            CallStep("s0", "bluetooth", "pair")

    def test_unknown_call_op(self):
        with pytest.raises(ConfigurationError, match="no operation"):
            CallStep("s0", "location", "teleport")

    def test_advance_must_be_positive(self):
        with pytest.raises(ConfigurationError, match="positive"):
            AdvanceStep("s0", 0.0)

    def test_burst_op_and_count(self):
        with pytest.raises(ConfigurationError, match="burst op"):
            BurstStep("s0", op="post")
        with pytest.raises(ConfigurationError, match="count"):
            BurstStep("s0", count=0)

    def test_assert_op(self):
        with pytest.raises(ConfigurationError, match="assert op"):
            AssertStep("s1", "s0", "result", op="matches")

    def test_unknown_step_kind(self):
        with pytest.raises(ConfigurationError, match="unknown step kind"):
            step_from_dict({"kind": "teleport", "step_id": "s0"})


class TestScenarioValidation:
    def test_duplicate_step_ids(self):
        with pytest.raises(ConfigurationError, match="duplicate step_id"):
            minimal(
                steps=(AdvanceStep("s0", 1.0), CallbacksStep("s0")),
            )

    def test_assert_must_reference_a_step(self):
        with pytest.raises(ConfigurationError, match="unknown step"):
            minimal(
                steps=(
                    AdvanceStep("s0", 1.0),
                    AssertStep("s1", "nope", "result", "equals", 1),
                ),
            )

    def test_burst_needs_a_runtime(self):
        with pytest.raises(ConfigurationError, match="no runtime spec"):
            minimal(steps=(BurstStep("s0"),))

    def test_saga_needs_the_distributed_tier(self):
        with pytest.raises(ConfigurationError, match="distributed tier"):
            minimal(
                steps=(SagaFlowStep("s0"),),
                env=ScenarioEnv(runtime=RuntimeSpec()),
            )

    def test_unknown_resilience_profile(self):
        with pytest.raises(ConfigurationError, match="resilience"):
            ScenarioEnv(resilience="heroic")

    def test_fault_rules_validated_at_declaration(self):
        with pytest.raises(Exception):
            ScenarioEnv(
                fault_rules=({"site": "network.request", "kind": "vanish"},)
            )

    def test_empty_scenarios_rejected(self):
        with pytest.raises(ConfigurationError, match="at least one step"):
            minimal(steps=())
        with pytest.raises(ConfigurationError, match="name"):
            minimal(name="")


class TestSerialization:
    @pytest.mark.parametrize("name", names())
    def test_bundled_scenarios_round_trip(self, name):
        scenario = build(name)
        assert Scenario.from_dict(scenario.to_dict()) == scenario

    def test_unsupported_schema_rejected(self):
        payload = build("commute").to_dict()
        payload["schema"] = "repro.scenario/v999"
        with pytest.raises(ConfigurationError, match="schema"):
            Scenario.from_dict(payload)

    def test_with_platform(self):
        scenario = build("commute")
        assert scenario.with_platform(scenario.platform) is scenario
        retargeted = scenario.with_platform("s60")
        assert retargeted.platform == "s60"
        assert retargeted.steps == scenario.steps
        assert retargeted.seed == scenario.seed

    def test_step_lookup(self):
        scenario = build("commute")
        assert scenario.step("s00").kind == "advance"
        with pytest.raises(KeyError):
            scenario.step("s99")
