"""The Replayer: cross-platform diffs, gates, hot-registered platforms."""

import json

import pytest

from repro.core.descriptor.model import _PLATFORM_LANGUAGES, register_platform
from repro.errors import ConfigurationError
from repro.scenario import (
    AdvanceStep,
    CallbacksStep,
    Scenario,
    ScenarioRecording,
    build,
    diff_recordings,
    record,
    register_scenario_driver,
    replay,
    unregister_scenario_driver,
)
from repro.scenario.driver import SCENARIO_DRIVERS

pytestmark = pytest.mark.scenario


@pytest.fixture(scope="module")
def commute_base():
    return record(build("commute"))


class TestSamePlatformReplay:
    def test_replay_is_byte_identical(self, commute_base):
        result = replay(commute_base)
        assert result.passed
        assert result.diff.divergences == ()
        assert result.replayed.to_jsonl() == commute_base.to_jsonl()

    def test_replay_of_replay_is_a_fixed_point(self, commute_base):
        once = replay(commute_base)
        twice = replay(once.replayed)
        assert twice.replayed.to_jsonl() == once.replayed.to_jsonl()
        assert twice.passed


class TestCrossPlatformReplay:
    def test_s60_shows_only_the_declared_call_gap(self, commute_base):
        result = replay(commute_base, platform="s60")
        assert result.passed
        assert [d.probe for d in result.diff.declared] == ["call_proxy"]
        (gap,) = result.diff.declared
        assert (gap.base, gap.other) == ("available", 1002)
        assert gap.reason

    def test_webview_is_divergence_free(self, commute_base):
        result = replay(commute_base, platform="webview")
        assert result.diff.divergences == ()

    def test_unknown_platform_is_refused(self, commute_base):
        with pytest.raises(ConfigurationError, match="no scenario driver"):
            replay(commute_base, platform="palmos")


class TestInjectedDivergence:
    def tamper(self, base, step_id, field, value):
        outcomes = []
        for outcome in base.outcomes:
            outcome = dict(outcome)
            if outcome["step"] == step_id:
                outcome[field] = value
            outcomes.append(outcome)
        return ScenarioRecording(
            scenario=base.scenario,
            platform=base.platform,
            outcomes=tuple(outcomes),
        )

    def test_tampered_result_is_an_undeclared_divergence(self, commute_base):
        tampered = self.tamper(commute_base, "s02", "result", {"latitude": 0.0})
        diff = diff_recordings(commute_base, tampered)
        assert not diff.passed
        (divergence,) = diff.undeclared
        assert divergence.step_id == "s02"
        assert divergence.field == "result"

    def test_wrong_value_on_declared_probe_still_fails(self, commute_base):
        # The Call probe may diverge *to the declared code* only.
        tampered = self.tamper(commute_base, "s06", "result", 1008)
        diff = diff_recordings(commute_base, tampered)
        assert not diff.passed
        assert [d.probe for d in diff.undeclared] == ["call_proxy"]

    def test_diff_json_reports_the_divergence(self, commute_base):
        tampered = self.tamper(commute_base, "s05", "error_code", 1000)
        payload = json.loads(
            diff_recordings(commute_base, tampered).to_json()
        )
        assert payload["passed"] is False
        assert payload["undeclared"][0]["probe"] == "unknown_property"


class TestDiffAlignment:
    def test_different_scenarios_refuse_to_diff(self, commute_base):
        other = record(build("throttle_wave"))
        with pytest.raises(ConfigurationError, match="different scenarios"):
            diff_recordings(commute_base, other)

    def test_presence_divergences(self):
        def variant(step_id):
            return Scenario(
                name="presence",
                steps=(AdvanceStep("s0", 1_000.0), CallbacksStep(step_id)),
            )

        base = record(variant("s1"))
        other = record(variant("s2"))
        diff = diff_recordings(base, other)
        assert not diff.passed
        fields = {(d.step_id, d.base, d.other) for d in diff.undeclared}
        assert ("s1", "present", "missing") in fields
        assert ("s2", "missing", "present") in fields


class TestHotRegisteredPlatform:
    def test_replay_against_a_platform_registered_mid_run(self, commute_base):
        # The paper's extension story: a brand-new platform joins by
        # publishing its descriptor vocabulary and a world builder — and
        # an existing recording replays against it unchanged.  The new
        # platform reuses the android bindings, so it must conform with
        # zero divergences (its Call proxy is available).
        register_platform("newos", "java")
        register_scenario_driver("newos", SCENARIO_DRIVERS["android"])
        try:
            result = replay(commute_base, platform="newos")
            assert result.replayed.platform == "newos"
            assert result.diff.divergences == ()
        finally:
            unregister_scenario_driver("newos")
            _PLATFORM_LANGUAGES.pop("newos", None)
        with pytest.raises(ConfigurationError):
            replay(commute_base, platform="newos")
