"""The bundled scenario library and its committed recordings.

This is the acceptance gate the CI recorded-scenario step re-runs:
every committed recording under ``tests/scenarios/`` must replay on
android, s60 and webview with **zero undeclared divergences**, and
re-recording any scenario from source must reproduce the committed
bytes exactly (the regeneration guard — a behaviour change that shifts
a recording must be committed deliberately).
"""

from pathlib import Path

import pytest

from repro.scenario import ScenarioRecording, build, names, record, replay
from repro.scenario.divergence import PLATFORMS

pytestmark = pytest.mark.scenario

SCENARIOS_DIR = Path(__file__).resolve().parent.parent / "scenarios"


def load_recording(name: str) -> ScenarioRecording:
    return ScenarioRecording.parse(
        (SCENARIOS_DIR / f"{name}.jsonl").read_text(encoding="utf-8")
    )


class TestBundle:
    def test_every_library_scenario_has_a_committed_recording(self):
        committed = {path.stem for path in SCENARIOS_DIR.glob("*.jsonl")}
        assert committed == set(names())

    def test_unknown_name_is_refused(self):
        with pytest.raises(KeyError, match="bundled"):
            build("no_such_flow")

    @pytest.mark.parametrize("name", names())
    def test_regeneration_guard(self, name):
        # Re-recording from source must reproduce the committed bytes.
        committed = (SCENARIOS_DIR / f"{name}.jsonl").read_text(
            encoding="utf-8"
        )
        assert record(build(name)).to_jsonl() == committed

    @pytest.mark.parametrize("name", names())
    @pytest.mark.parametrize("platform", PLATFORMS)
    def test_replays_everywhere_without_undeclared_divergence(
        self, name, platform
    ):
        result = replay(load_recording(name), platform=platform)
        assert result.passed, result.diff.render_text()

    def test_call_gap_appears_only_as_the_declared_divergence(self):
        declared = [
            (name, d.probe)
            for name in names()
            for platform in PLATFORMS
            for d in replay(
                load_recording(name), platform=platform
            ).diff.declared
        ]
        # Exactly one scenario carries the Call probe; only its s60
        # replay may show the declared gap, nothing else anywhere.
        assert declared == [("commute", "call_proxy")]
