"""The Recorder: canonical results and byte-stable captures."""

import json

import pytest

from repro.apps.workforce.common import PATH_STATUS, SERVER_HOST
from repro.core.proxy.datatypes import HttpResult, Location
from repro.errors import ConfigurationError
from repro.scenario import (
    AdvanceStep,
    AssertStep,
    CallStep,
    Scenario,
    ScenarioRecording,
    build,
    canonical_result,
    record,
)

pytestmark = pytest.mark.scenario


class TestCanonicalResult:
    def test_location_drops_polling_artifacts(self):
        fix = Location(
            latitude=28.61234567, longitude=77.2098765, altitude=210.0,
            timestamp_ms=123456.0,
        )
        assert canonical_result(fix) == {
            "latitude": 28.6123,
            "longitude": 77.2099,
        }

    def test_http_result(self):
        result = HttpResult(status=200, body='{"ok": true}')
        assert canonical_result(result) == {
            "status": 200,
            "body": '{"ok": true}',
            "ok": True,
        }

    def test_degraded_body_truncates_platform_diagnostics(self):
        degraded = HttpResult(
            status=503,
            body=(
                "resilience: degraded response (get failed on android: "
                "IOException: injected fault)"
            ),
        )
        assert canonical_result(degraded)["body"] == (
            "resilience: degraded response"
        )

    def test_scalars_and_containers(self):
        assert canonical_result(None) is None
        assert canonical_result(True) is True
        assert canonical_result(0.123456789) == 0.123457
        assert canonical_result([1, (2.0000004, "x")]) == [1, [2.0, "x"]]
        assert canonical_result({"k": 1.25, 7: "v"}) == {"k": 1.25, "7": "v"}

    def test_unknown_types_reduce_to_their_name(self):
        class Opaque:
            pass

        assert canonical_result(Opaque()) == {"type": "Opaque"}


class TestRecord:
    def test_same_seed_recordings_are_byte_identical(self):
        first = record(build("commute"))
        second = record(build("commute"))
        assert first.to_jsonl() == second.to_jsonl()

    def test_recording_round_trips_through_jsonl(self):
        recording = record(build("throttle_wave"))
        parsed = ScenarioRecording.parse(recording.to_jsonl())
        assert parsed.to_jsonl() == recording.to_jsonl()
        assert parsed.scenario == recording.scenario
        assert parsed.outcomes == recording.outcomes

    def test_commute_outcomes(self):
        recording = record(build("commute"))
        assert recording.outcome("s04")["error_code"] == 1003
        assert recording.outcome("s05")["error_code"] == 1004
        assert recording.outcome("s06")["result"] == "available"
        assert recording.outcome("s08")["events"] == [
            "arrived", "departed", "arrived",
        ]
        assert recording.outcome("s07")["shape"] == [
            ["dispatch", [["resilience", [["binding", [["native", []]]]]]]],
        ]
        assert all(
            outcome["ok"]
            for outcome in recording.outcomes
            if outcome["kind"] == "assert"
        )

    def test_throttle_ladder_is_recorded(self):
        recording = record(build("throttle_wave"))
        first = recording.outcome("s01")
        # 4-token bucket, 10 requests: exactly the first 4 admitted.
        assert first["results"] == ["ok"] * 4 + [1013] * 6
        assert first["counts"] == {"ok": 4, "1013": 6}

    def test_saga_statuses(self):
        recording = record(build("saga_flow"))
        assert recording.outcome("s01")["status"] == "completed"
        faulted = recording.outcome("s03")
        assert faulted["status"] == "compensated"
        # The reservation row was rolled back by the compensation.
        assert faulted["reservation"] is None
        assert recording.outcome("s05")["status"] == "completed"

    def test_outcome_count_must_match_steps(self):
        recording = record(build("commute"))
        with pytest.raises(ConfigurationError, match="outcomes"):
            ScenarioRecording(
                scenario=recording.scenario,
                platform=recording.platform,
                outcomes=recording.outcomes[:-1],
            )

    def test_full_call_vocabulary(self):
        # The dispatch paths the bundled library happens not to use:
        # http.post, sms.sendTextMessage, location.setProperty, plus
        # assert paths that index into lists and search strings.
        scenario = Scenario(
            name="vocabulary",
            steps=(
                AdvanceStep("s0", 1_000.0),
                CallStep(
                    "s1",
                    "http",
                    "post",
                    {
                        "url": f"http://{SERVER_HOST}{PATH_STATUS}",
                        "body": "{}",
                    },
                ),
                CallStep(
                    "s2",
                    "sms",
                    "sendTextMessage",
                    {"number": "+15550100", "text": "scenario ping"},
                ),
                CallStep(
                    "s3",
                    "location",
                    "setProperty",
                    {"key": "provider", "value": "gps"},
                ),
                CallStep(
                    "s4",
                    "location",
                    "getProperty",
                    {"key": "provider"},
                ),
                CallStep("s5", "server", "activityLog"),
                AssertStep("s6", "s2", "result", "equals", "sent"),
                AssertStep("s7", "s4", "result", "contains", "gps"),
                AssertStep("s8", "s5", "result.0", "equals", None),
                AssertStep("s9", "s1", "result.nope.deep", "equals", None),
            ),
        )
        recording = record(scenario)
        assert recording.outcome("s2")["result"] == "sent"
        assert recording.outcome("s3")["result"] == "set"
        assert recording.outcome("s4")["result"] == "gps"
        for step_id in ("s6", "s7", "s8", "s9"):
            assert recording.outcome(step_id)["ok"], step_id

    def test_jsonl_is_pure_canonical_json(self):
        text = record(build("commute")).to_jsonl()
        for line in text.splitlines():
            payload = json.loads(line)
            assert json.dumps(
                payload, sort_keys=True, separators=(",", ":")
            ) == line
