"""``python -m repro.obs scenario {list,record,replay,diff}``."""

import json

import pytest

from repro.obs.analyze.cli import main
from repro.scenario import ScenarioRecording, build, names, record

pytestmark = pytest.mark.scenario


@pytest.fixture()
def commute_path(tmp_path):
    path = tmp_path / "commute.jsonl"
    path.write_text(record(build("commute")).to_jsonl(), encoding="utf-8")
    return path


def tampered_copy(path, tmp_path):
    base = ScenarioRecording.parse(path.read_text(encoding="utf-8"))
    outcomes = tuple(
        {**outcome, "result": "tampered"}
        if outcome["step"] == "s02"
        else outcome
        for outcome in base.outcomes
    )
    tampered = ScenarioRecording(
        scenario=base.scenario, platform=base.platform, outcomes=outcomes
    )
    out = tmp_path / "tampered.jsonl"
    out.write_text(tampered.to_jsonl(), encoding="utf-8")
    return out


class TestList:
    def test_text(self, capsys):
        assert main(["scenario", "list"]) == 0
        out = capsys.readouterr().out
        for name in names():
            assert name in out

    def test_json(self, capsys):
        assert main(["scenario", "list", "--json"]) == 0
        entries = json.loads(capsys.readouterr().out)
        assert [entry["name"] for entry in entries] == sorted(names())
        assert all(entry["description"] for entry in entries)


class TestRecord:
    def test_record_bundled_to_file(self, tmp_path, capsys):
        out = tmp_path / "rec.jsonl"
        assert main(["scenario", "record", "throttle_wave", "--out", str(out)]) == 0
        recording = ScenarioRecording.parse(out.read_text(encoding="utf-8"))
        assert recording.scenario.name == "throttle_wave"
        assert "throttle_wave" in capsys.readouterr().out

    def test_record_stdout_is_the_jsonl(self, capsys):
        assert main(["scenario", "record", "throttle_wave"]) == 0
        out = capsys.readouterr().out
        assert out == record(build("throttle_wave")).to_jsonl()

    def test_record_scenario_json_file(self, tmp_path, capsys):
        spec = tmp_path / "scenario.json"
        spec.write_text(json.dumps(build("commute").to_dict()), encoding="utf-8")
        assert main(["scenario", "record", str(spec)]) == 0
        parsed = ScenarioRecording.parse(capsys.readouterr().out)
        assert parsed.scenario.name == "commute"

    def test_record_on_another_platform(self, tmp_path):
        out = tmp_path / "rec.jsonl"
        main(["scenario", "record", "commute", "--platform", "s60",
              "--out", str(out)])
        recording = ScenarioRecording.parse(out.read_text(encoding="utf-8"))
        assert recording.platform == "s60"
        assert recording.outcome("s06")["result"] == 1002

    def test_unknown_scenario(self):
        with pytest.raises(SystemExit):
            main(["scenario", "record", "no_such_flow"])


class TestReplay:
    def test_cross_platform_gate_passes(self, commute_path, capsys):
        code = main([
            "scenario", "replay", str(commute_path),
            "--platform", "s60", "--gate", "--json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["passed"] is True
        assert [d["probe"] for d in payload["declared"]] == ["call_proxy"]

    def test_gate_fails_on_tampered_base(self, commute_path, tmp_path, capsys):
        tampered = tampered_copy(commute_path, tmp_path)
        code = main([
            "scenario", "replay", str(tampered), "--gate",
        ])
        assert code == 1
        assert "UNDECLARED" in capsys.readouterr().out

    def test_diff_document_saved(self, commute_path, tmp_path):
        out = tmp_path / "diff.json"
        main(["scenario", "replay", str(commute_path), "--platform",
              "webview", "--out", str(out)])
        payload = json.loads(out.read_text(encoding="utf-8"))
        assert payload["schema"] == "repro.scenario-diff/v1"
        assert payload["other_platform"] == "webview"


class TestDiff:
    def test_identical_recordings_pass(self, commute_path, capsys):
        code = main([
            "scenario", "diff", str(commute_path), str(commute_path),
            "--gate",
        ])
        assert code == 0
        assert "PASS" in capsys.readouterr().out

    def test_gate_exits_nonzero_on_undeclared_divergence(
        self, commute_path, tmp_path, capsys
    ):
        tampered = tampered_copy(commute_path, tmp_path)
        code = main([
            "scenario", "diff", str(commute_path), str(tampered),
            "--gate", "--json",
        ])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["passed"] is False
        assert payload["undeclared"][0]["step_id"] == "s02"

    def test_without_gate_reports_only(self, commute_path, tmp_path):
        tampered = tampered_copy(commute_path, tmp_path)
        assert main(
            ["scenario", "diff", str(commute_path), str(tampered)]
        ) == 0
