"""The generalized declared-divergence table."""

import pytest

from repro.scenario import (
    DECLARED_DIVERGENCES,
    DeclaredDivergence,
    expected_divergences,
    find_declaration,
    is_declared,
)
from repro.scenario.divergence import PLATFORMS

pytestmark = pytest.mark.scenario

GAP = DeclaredDivergence(
    probe="sensor",
    field="result",
    canonical=42,
    per_platform={"s60": 1002},
    reason="test gap",
)


class TestDeclaration:
    def test_expected_value_falls_back_to_canonical(self):
        assert GAP.expected_value("android") == 42
        assert GAP.expected_value("s60") == 1002

    def test_matches(self):
        assert GAP.matches("android", 42)
        assert GAP.matches("s60", 1002)
        assert not GAP.matches("s60", 42)
        assert not GAP.matches("android", 1002)


class TestLookup:
    def test_find_declaration(self):
        assert find_declaration("call_proxy", "result") is not None
        assert find_declaration("call_proxy", "shape") is None
        assert find_declaration("no_such_probe", "result") is None

    def test_declared_in_both_directions(self):
        registry = (GAP,)
        assert is_declared(
            "sensor", "result", "android", 42, "s60", 1002, registry
        )
        assert is_declared(
            "sensor", "result", "s60", 1002, "webview", 42, registry
        )

    def test_wrong_value_on_a_declared_probe_still_fails(self):
        registry = (GAP,)
        # s60 diverging with a value *other* than its declared one is an
        # undeclared divergence, not a sanctioned gap.
        assert (
            is_declared("sensor", "result", "android", 42, "s60", 9999, registry)
            is None
        )
        assert (
            is_declared("sensor", "result", "android", 41, "s60", 1002, registry)
            is None
        )

    def test_undeclared_probe(self):
        assert is_declared("other", "result", "android", 1, "s60", 2, (GAP,)) is None


class TestRegistry:
    def test_s60_call_gap_is_the_sole_entry(self):
        assert len(DECLARED_DIVERGENCES) == 1
        gap = DECLARED_DIVERGENCES[0]
        assert gap.probe == "call_proxy"
        assert gap.canonical == "available"
        assert gap.per_platform == {"s60": 1002}
        assert gap.reason

    def test_legacy_conformance_view(self):
        # The shape the conformance suite consumed before the table was
        # generalized: probe -> platform -> expected value, every
        # platform covered.
        legacy = expected_divergences()
        assert legacy == {
            "call_proxy": {
                "android": "available",
                "webview": "available",
                "s60": 1002,
            }
        }
        for per_platform in legacy.values():
            assert set(per_platform) == set(PLATFORMS)
