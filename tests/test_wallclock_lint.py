"""Static wall-clock lint over the whole middleware tree.

The simulation is virtual-time only: every latency, timeout, breaker
window and trace stamp is driven by ``SimulatedClock``.  Real-time reads
are allowed in exactly two places — the Figure-10 harness's real-time
measurement and the tracer's span profiling stamp — and each such line
must carry the ``# wall-clock: measurement`` pragma.  Everything else
under ``src/repro`` must not touch the wall clock, ever.

This is a tier-1 test (no marker): a wall-clock read anywhere else is a
determinism bug regardless of which suite notices first.
"""

import pathlib
import re

SRC = pathlib.Path(__file__).resolve().parents[1] / "src" / "repro"

PRAGMA = "# wall-clock: measurement"

#: The only files where pragma-tagged wall-clock reads are legitimate.
ALLOWLIST = frozenset(
    {
        "bench/harness.py",  # Figure 10: real-time cost of an invocation
        "obs/tracer.py",  # span profiling stamp (never drives simulation)
    }
)

#: New concurrency-observability modules must stay in lint scope and off
#: the allowlist: they are pure virtual-time analysis/capture code, so a
#: wall-clock read in any of them is always a bug.
CONCURRENCY_OBS_MODULES = (
    "obs/timeline.py",
    "obs/timeseries.py",
    "obs/flight.py",
    "obs/analyze/critical_path.py",
    "obs/analyze/causal.py",
)

#: The distributed tier is pure virtual-time simulation — replication
#: delay, gossip intervals and cache staleness all ride the scheduler —
#: so a wall-clock read in any of its modules is always a bug.
DISTRIB_MODULES = (
    "distrib/replication.py",
    "distrib/cache.py",
    "distrib/idempotency.py",
    "distrib/saga.py",
    "distrib/notifications.py",
    "distrib/runtime.py",
    "distrib/causal.py",
)

#: The telemetry pipeline is deterministic by construction — seeded-hash
#: head sampling, virtual-duration tail rules, virtual-timestamp rollups
#: — and its exports must be byte-identical across identically-seeded
#: runs, so a wall-clock read in any of its modules is always a bug.
PIPELINE_MODULES = (
    "obs/pipeline/__init__.py",
    "obs/pipeline/config.py",
    "obs/pipeline/records.py",
    "obs/pipeline/sampler.py",
    "obs/pipeline/rollup.py",
    "obs/pipeline/retention.py",
    "obs/pipeline/pipeline.py",
    "obs/pipeline/health.py",
)

#: The scenario record/replay layer exists to make runs byte-identical
#: across platforms and time: a wall-clock read in any of its modules
#: would leak into committed recordings, so none is ever legitimate.
SCENARIO_MODULES = (
    "scenario/model.py",
    "scenario/divergence.py",
    "scenario/driver.py",
    "scenario/recorder.py",
    "scenario/recording.py",
    "scenario/replay.py",
    "scenario/diff.py",
    "scenario/library.py",
)

FORBIDDEN = (
    (re.compile(r"\btime\.(time|monotonic|perf_counter|process_time)\("), "wall-clock read"),
    (re.compile(r"\btime\.sleep\("), "wall-clock sleep"),
    (re.compile(r"\btime\.(localtime|gmtime|ctime)\("), "wall-clock read"),
    (re.compile(r"\bdatetime\.(now|utcnow|today)\("), "wall-clock read"),
    (re.compile(r"\bdate\.today\("), "wall-clock read"),
)


def _sources():
    assert SRC.is_dir(), f"lint target vanished: {SRC}"
    return sorted(SRC.rglob("*.py"))


def _scan(path: pathlib.Path):
    """Yield ``(lineno, label, line)`` for each violation in one file."""
    relative = str(path.relative_to(SRC))
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        tagged = PRAGMA in line
        if tagged and relative in ALLOWLIST:
            continue  # the sanctioned measurement lines
        code = line.split("#", 1)[0]
        for pattern, label in FORBIDDEN:
            if pattern.search(code):
                yield lineno, label, line.strip()
                break
        else:
            if tagged:
                # A pragma outside the allowlist is someone trying to
                # smuggle a wall-clock site past this lint.
                yield lineno, "misplaced wall-clock pragma", line.strip()


class TestWallClockLint:
    def test_targets_exist(self):
        assert len(_sources()) > 100  # the whole middleware tree

    def test_allowlist_files_exist(self):
        for relative in ALLOWLIST:
            assert (SRC / relative).is_file(), f"allowlisted file vanished: {relative}"

    def test_allowlisted_files_actually_use_the_pragma(self):
        """The allowlist entries must stay honest: each must still
        contain at least one pragma-tagged measurement line."""
        for relative in ALLOWLIST:
            assert PRAGMA in (SRC / relative).read_text(), relative

    def test_concurrency_obs_modules_are_in_scope(self):
        """The timeline/timeseries/flight/critical-path modules must be
        scanned (present under ``src/repro``) and must never join the
        allowlist — they have no legitimate wall-clock site."""
        scanned = {str(path.relative_to(SRC)) for path in _sources()}
        for relative in CONCURRENCY_OBS_MODULES:
            assert relative in scanned, f"obs module left lint scope: {relative}"
            assert relative not in ALLOWLIST, (
                f"obs module must not be allowlisted: {relative}"
            )
            assert PRAGMA not in (SRC / relative).read_text(), relative

    def test_distrib_modules_are_in_scope(self):
        """The distributed tier's modules must be scanned and must never
        join the allowlist — they have no legitimate wall-clock site."""
        scanned = {str(path.relative_to(SRC)) for path in _sources()}
        for relative in DISTRIB_MODULES:
            assert relative in scanned, f"distrib module left lint scope: {relative}"
            assert relative not in ALLOWLIST, (
                f"distrib module must not be allowlisted: {relative}"
            )
            assert PRAGMA not in (SRC / relative).read_text(), relative

    def test_pipeline_modules_are_in_scope(self):
        """The sampling/rollup/health pipeline must be scanned and must
        never join the allowlist — a wall-clock read there would break
        the same-seed byte-identical export guarantee."""
        scanned = {str(path.relative_to(SRC)) for path in _sources()}
        for relative in PIPELINE_MODULES:
            assert relative in scanned, f"pipeline module left lint scope: {relative}"
            assert relative not in ALLOWLIST, (
                f"pipeline module must not be allowlisted: {relative}"
            )
            assert PRAGMA not in (SRC / relative).read_text(), relative

    def test_scenario_modules_are_in_scope(self):
        """The record/replay layer must be scanned and must never join
        the allowlist — a wall-clock read there would leak into the
        committed byte-stable recordings."""
        scanned = {str(path.relative_to(SRC)) for path in _sources()}
        for relative in SCENARIO_MODULES:
            assert relative in scanned, f"scenario module left lint scope: {relative}"
            assert relative not in ALLOWLIST, (
                f"scenario module must not be allowlisted: {relative}"
            )
            assert PRAGMA not in (SRC / relative).read_text(), relative

    def test_no_wall_clock_anywhere(self):
        violations = []
        for path in _sources():
            for lineno, label, line in _scan(path):
                violations.append(
                    f"{path.relative_to(SRC)}:{lineno}: {label}: {line}"
                )
        assert not violations, "\n".join(violations)
