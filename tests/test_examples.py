"""Smoke tests: every shipped example runs to completion."""

import pathlib
import runpy
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_exist():
    assert len(EXAMPLES) >= 3, "the deliverable requires at least three examples"


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script, capsys):
    runpy.run_path(str(script), run_name="__main__")
    output = capsys.readouterr().out
    assert output.strip(), f"{script.name} produced no output"
    assert "Traceback" not in output
