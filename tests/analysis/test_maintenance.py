"""Tests for the platform-evolution change-impact analysis."""

import pytest

from repro.analysis.maintenance import change_impact, sdk_migration_report


class TestChangeImpact:
    def test_identical_sources_no_change(self):
        source = "a\nb\nc\n"
        impact = change_impact(source, source)
        assert impact.changed == 0
        assert impact.fraction == 0.0

    def test_one_line_edit(self):
        impact = change_impact("a\nb\nc\n", "a\nB\nc\n")
        assert impact.added == 1
        assert impact.removed == 1

    def test_addition_only(self):
        impact = change_impact("a\n", "a\nb\n")
        assert impact.added == 1
        assert impact.removed == 0

    def test_blank_lines_ignored(self):
        impact = change_impact("a\n\n\nb\n", "a\nb\n")
        assert impact.changed == 0

    def test_fraction(self):
        impact = change_impact("a\nb\n", "a\nc\n")
        assert impact.fraction == pytest.approx(1.0)  # 2 changed / 2 old


class TestSdkMigration:
    def test_native_requires_changes_proxied_does_not(self):
        """The paper's maintenance table, measured from the real sources."""
        report = sdk_migration_report()
        assert report.native_impact.changed > 0
        assert report.proxied_impact.changed == 0

    def test_native_change_is_localized(self):
        """The m5→1.0 edit is small but unavoidable without proxies."""
        report = sdk_migration_report()
        assert 0 < report.native_impact.fraction < 0.5
