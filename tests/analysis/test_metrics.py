"""Tests for the static code metrics."""

import pytest

from repro.analysis.metrics import (
    count_loc,
    cyclomatic_complexity,
    measure,
    platform_api_surface,
    source_of,
)


SAMPLE = '''
def f(x):
    """Docstring, not code."""
    # a comment
    if x > 0:
        return x
    return -x
'''


class TestLoc:
    def test_excludes_blank_comment_docstring(self):
        assert count_loc(SAMPLE) == 4  # def, if, return, return

    def test_empty_source(self):
        assert count_loc("") == 0

    def test_multiline_statement_counts_lines(self):
        source = "x = (1 +\n     2)\n"
        assert count_loc(source) == 2

    def test_module_docstring_excluded(self):
        source = '"""Module doc\nspanning lines."""\nx = 1\n'
        assert count_loc(source) == 1


class TestCyclomatic:
    def test_straight_line_is_one(self):
        assert cyclomatic_complexity("x = 1\ny = 2\n") == 1

    def test_each_branch_adds_one(self):
        source = "if a:\n    pass\nelif b:\n    pass\n"
        assert cyclomatic_complexity(source) == 3  # 1 + two ifs

    def test_boolean_operators_count(self):
        assert cyclomatic_complexity("x = a and b and c\n") == 3

    def test_loops_and_handlers(self):
        source = (
            "for i in r:\n    pass\n"
            "while x:\n    pass\n"
            "try:\n    pass\nexcept E:\n    pass\n"
        )
        assert cyclomatic_complexity(source) == 4


class TestPlatformSurface:
    def test_android_markers_found(self):
        source = "i = Intent('a')\nctx.register_receiver(r, IntentFilter('a'))\n"
        surface = platform_api_surface(source, "android")
        assert surface["Intent"] == 1
        assert surface["IntentFilter"] == 1
        assert surface["register_receiver"] == 1

    def test_uniform_names_not_counted(self):
        """add_proximity_alert is the uniform API name too — excluded."""
        source = "proxy.add_proximity_alert(1, 2, 0, 3, -1, cb)\n"
        assert platform_api_surface(source, "android") == {}

    def test_s60_markers(self):
        source = "lp = LocationProvider.get_instance(Criteria())\n"
        surface = platform_api_surface(source, "s60")
        assert set(surface) == {"LocationProvider", "get_instance", "Criteria"}


class TestMeasureOnRealApps:
    def test_native_android_heavily_coupled(self):
        from repro.apps.workforce.native_android import WorkforceNativeAndroid

        metrics = measure(WorkforceNativeAndroid, "android")
        assert metrics.platform_marker_kinds >= 8
        assert metrics.callback_entry_points >= 1

    def test_proxied_logic_nearly_uncoupled(self):
        from repro.apps.workforce.proxied import WorkforceLogic

        for platform in ("android", "s60", "webview"):
            metrics = measure(WorkforceLogic, platform)
            assert metrics.platform_marker_kinds <= 1

    def test_complexity_ordering(self):
        """Paper's complexity claim: proxied < each native variant."""
        from repro.apps.workforce.native_android import WorkforceNativeAndroid
        from repro.apps.workforce.native_s60 import WorkforceNativeS60
        from repro.apps.workforce.proxied import WorkforceLogic

        proxied = measure(WorkforceLogic, "android")
        native_android = measure(WorkforceNativeAndroid, "android")
        native_s60 = measure(WorkforceNativeS60, "s60")
        assert proxied.loc < native_android.loc
        assert proxied.loc < native_s60.loc
        assert proxied.cyclomatic < native_android.cyclomatic
        assert proxied.cyclomatic < native_s60.cyclomatic
        assert proxied.platform_marker_uses < native_android.platform_marker_uses

    def test_source_of_dedents(self):
        from repro.apps.workforce.proxied import WorkforceLogic

        source = source_of(WorkforceLogic.proximity_event)
        assert source.startswith("def proximity_event")
