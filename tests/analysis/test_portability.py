"""Tests for cross-platform similarity scoring."""

import pytest
from hypothesis import given, strategies as st

from repro.analysis.metrics import source_of
from repro.analysis.portability import (
    normalize_tokens,
    pairwise_similarity,
    portability_score,
    similarity,
)


class TestNormalization:
    def test_comments_dropped(self):
        assert normalize_tokens("x = 1  # comment") == normalize_tokens("x = 1")

    def test_strings_collapsed(self):
        assert normalize_tokens('f("aaa")') == normalize_tokens('f("bbb")')

    def test_numbers_collapsed(self):
        assert normalize_tokens("f(1)") == normalize_tokens("f(99)")

    def test_docstrings_dropped(self):
        a = 'def f():\n    """doc"""\n    return 1\n'
        b = "def f():\n    return 1\n"
        assert normalize_tokens(a) == normalize_tokens(b)

    def test_identifiers_preserved(self):
        assert normalize_tokens("alpha()") != normalize_tokens("beta()")


class TestSimilarity:
    def test_identical_sources_score_one(self):
        source = "def f(a):\n    return a + 1\n"
        assert similarity(source, source) == 1.0

    def test_renamed_constants_still_identical(self):
        assert similarity("x = f(1, 'a')\n", "x = f(2, 'b')\n") == 1.0

    def test_different_structure_scores_low(self):
        a = "def f():\n    return 1\n"
        b = "class Unrelated:\n    value = [i for i in range(10) if i % 2]\n"
        assert similarity(a, b) < 0.5

    @given(st.text(alphabet="abcxyz=+ ()\n", min_size=0, max_size=60))
    def test_self_similarity_always_one(self, text):
        try:
            tokens = normalize_tokens(text)
        except Exception:
            return  # not tokenizable: out of scope
        assert similarity(text, text) == 1.0


class TestPortabilityScores:
    def test_pairwise_keys(self):
        sources = {"a": "x=1", "b": "x=1", "c": "y=2"}
        pairs = pairwise_similarity(sources)
        assert set(pairs) == {("a", "b"), ("a", "c"), ("b", "c")}

    def test_single_source_scores_one(self):
        assert portability_score({"only": "x=1"}) == 1.0

    def test_proxied_app_beats_native_app(self):
        """The paper's portability table, as an inequality over real code."""
        from repro.apps.workforce.native_android import WorkforceNativeAndroid
        from repro.apps.workforce.native_s60 import WorkforceNativeS60
        from repro.apps.workforce import native_webview
        from repro.apps.workforce.proxied import WorkforceLogic

        native = portability_score(
            {
                "android": source_of(WorkforceNativeAndroid),
                "s60": source_of(WorkforceNativeS60),
                "webview": source_of(native_webview.make_native_page),
            }
        )
        proxied_source = source_of(WorkforceLogic)
        proxied = portability_score(
            {p: proxied_source for p in ("android", "s60", "webview")}
        )
        assert proxied == 1.0
        assert native < 0.5
