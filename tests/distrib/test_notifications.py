"""Replicated notification table: Figure-6 parity plus cross-region lag."""

import json

import pytest

from repro.distrib import DistribConfig, DistribRuntime
from repro.util.clock import Scheduler, SimulatedClock

pytestmark = pytest.mark.distrib

REGIONS = ("ap-south", "eu-west")


@pytest.fixture
def tier():
    scheduler = Scheduler(SimulatedClock())
    return DistribRuntime(scheduler, DistribConfig(regions=REGIONS, seed=4))


@pytest.fixture
def table(tier):
    return tier.notifications()


class TestTableParity:
    """Same contract as the single-node webview NotificationTable."""

    def test_new_id_opens_an_empty_queue(self, table):
        notification_id = table.new_id()
        assert table.pending(notification_id) == 0
        assert table.drain(notification_id) == []

    def test_post_then_drain_fifo(self, table):
        notification_id = table.new_id()
        table.post(notification_id, "location", {"lat": 1.0}, 10.0)
        table.post(notification_id, "location", {"lat": 2.0}, 20.0)
        assert table.pending(notification_id) == 2
        drained = table.drain(notification_id)
        assert [n.payload["lat"] for n in drained] == [1.0, 2.0]
        assert [n.posted_at_ms for n in drained] == [10.0, 20.0]
        assert table.pending(notification_id) == 0
        assert table.drain(notification_id) == []  # cursor advanced

    def test_post_to_unknown_id_raises(self, table):
        with pytest.raises(KeyError):
            table.post("notif-999", "location", {}, 0.0)

    def test_post_rejects_non_primitive_payload(self, table):
        notification_id = table.new_id()
        with pytest.raises(TypeError):
            table.post(notification_id, "location", {"cb": lambda: None}, 0.0)

    def test_drain_json_is_bridge_legal(self, table):
        notification_id = table.new_id()
        table.post(notification_id, "sms", {"status": "sent"}, 5.0)
        payload = json.loads(table.drain_json(notification_id))
        assert payload == [
            {"kind": "sms", "payload": {"status": "sent"}, "posted_at_ms": 5.0}
        ]

    def test_close_forgets_the_id(self, table):
        notification_id = table.new_id()
        table.post(notification_id, "sms", {}, 0.0)
        table.close(notification_id)
        assert table.pending(notification_id) == 0
        assert table.drain(notification_id) == []
        table.close(notification_id)  # idempotent

    def test_total_posted_counts_every_post(self, table):
        first, second = table.new_id(), table.new_id()
        table.post(first, "a", {}, 0.0)
        table.post(second, "b", {}, 0.0)
        table.drain(first)
        assert table.total_posted == 2  # draining does not un-count


class TestCrossRegion:
    def test_peer_view_lags_by_replication_delay(self, tier, table):
        notification_id = table.new_id()
        tier.scheduler.run_for(tier.config.replication_delay_ms)
        table.post(notification_id, "location", {"lat": 1.0}, 0.0)
        assert table.pending(notification_id) == 1
        assert table.pending_in("eu-west", notification_id) == 0
        tier.scheduler.run_for(tier.config.replication_delay_ms)
        assert table.pending_in("eu-west", notification_id) == 1

    def test_unreplicated_id_reads_as_empty_remotely(self, table):
        notification_id = table.new_id()
        assert table.pending_in("eu-west", notification_id) == 0

    def test_drained_cursor_replicates_no_resurrection(self, tier, table):
        notification_id = table.new_id()
        table.post(notification_id, "location", {"lat": 1.0}, 0.0)
        tier.scheduler.run_for(tier.config.replication_delay_ms)
        assert table.pending_in("eu-west", notification_id) == 1
        table.drain(notification_id)
        tier.scheduler.run_for(tier.config.replication_delay_ms)
        # The peer sees the drain, not a resurrected queue.
        assert table.pending_in("eu-west", notification_id) == 0

    def test_close_tombstone_replicates(self, tier, table):
        notification_id = table.new_id()
        table.post(notification_id, "location", {}, 0.0)
        tier.scheduler.run_for(tier.config.replication_delay_ms)
        table.close(notification_id)
        tier.scheduler.run_for(tier.config.replication_delay_ms)
        assert table.pending_in("eu-west", notification_id) == 0
        assert table.backing.get(notification_id, region="eu-west") is None

    def test_partition_defers_peer_view_until_sweep(self, tier, table):
        notification_id = table.new_id()
        tier.scheduler.run_for(tier.config.replication_delay_ms)
        tier.partition("ap-south", "eu-west")
        table.post(notification_id, "location", {}, 0.0)
        tier.scheduler.run_for(tier.config.replication_delay_ms)
        assert table.pending_in("eu-west", notification_id) == 0
        tier.heal_all()
        tier.run_until_converged()
        assert table.pending_in("eu-west", notification_id) == 1
