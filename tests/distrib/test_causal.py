"""Causal context: vector clocks, visibility tracking, the audit.

The monitor's detectors are *negative* checks — healthy seeded runs
never fire them (monotone table counters, invalidation pops the slot it
targets) — so the regression half of this suite forges the states the
detectors exist for and proves each fires exactly once, counts, lands
in the trace and triggers a flight dump.
"""

import pytest

from repro.distrib import (
    CausalMonitor,
    CausalTracker,
    DistribConfig,
    DistribRuntime,
    decode_vc,
    encode_vc,
    vc_dominates,
)
from repro.distrib.cache import _L1Slot
from repro.obs import Observability
from repro.util.clock import Scheduler, SimulatedClock

pytestmark = pytest.mark.distrib

REGIONS = ("ap-south", "eu-west")


def build_tier(*, observability=None, regions=REGIONS, **overrides):
    scheduler = Scheduler(SimulatedClock())
    config = DistribConfig(regions=regions, seed=1, **overrides)
    return DistribRuntime(scheduler, config, observability=observability)


class TestVectorClockCodec:
    def test_roundtrip(self):
        vc = {"ap-south": 3, "eu-west": 1}
        assert decode_vc(encode_vc(vc)) == vc

    def test_zero_components_elided(self):
        assert encode_vc({"a": 0, "b": 2}) == "b:2"
        assert encode_vc({}) == ""
        assert decode_vc("") == {}

    def test_region_names_with_colons_survive(self):
        vc = {"dc:rack:1": 7}
        assert decode_vc(encode_vc(vc)) == vc

    def test_domination_is_strict(self):
        assert vc_dominates({"a": 2, "b": 1}, {"a": 1})
        assert not vc_dominates({"a": 1}, {"a": 1})  # equal
        assert not vc_dominates({"a": 2}, {"b": 1})  # concurrent
        assert not vc_dominates({"a": 1}, {"a": 2})
        # Zero components don't break equality or comparison.
        assert not vc_dominates({"a": 1, "b": 0}, {"a": 1})


class TestCausalTracker:
    def test_tick_and_observe(self):
        tracker = CausalTracker(REGIONS)
        assert tracker.tick("ap-south") == {"ap-south": 1}
        assert tracker.tick("ap-south") == {"ap-south": 2}
        # Delivery max-merges then ticks the receiving region.
        merged = tracker.observe("eu-west", {"ap-south": 2})
        assert merged == {"ap-south": 2, "eu-west": 1}

    def test_note_visible_records_first_sighting_and_gauge(self):
        hub = Observability(capture_real_time=False)
        tracker = CausalTracker(REGIONS, metrics=hub.metrics)
        stamp = tracker.note_write("t", "k", (1, "ap-south"), "ap-south", 100.0)
        assert stamp.visible == {"ap-south": 100.0}
        assert stamp.version_label == "1@ap-south"
        lag = tracker.note_visible("t", "k", (1, "ap-south"), "eu-west", 350.0)
        assert lag == 250.0
        # Re-sighting (a gossip merge after the replication apply) is not
        # a new visibility event.
        assert tracker.note_visible(
            "t", "k", (1, "ap-south"), "eu-west", 900.0
        ) is None
        assert stamp.visible["eu-west"] == 350.0
        gauge = hub.metrics.gauge("distrib.lag_ms", table="t", region="eu-west")
        assert gauge.value == 250.0

    def test_unknown_write_is_ignored(self):
        tracker = CausalTracker(REGIONS)
        assert tracker.note_visible("t", "k", (9, "x"), "eu-west", 1.0) is None


class TestLwwInversionAudit:
    def _forged_stamps(self, tracker):
        prior = tracker.note_write(
            "t", "k", (1, "ap-south"), "ap-south", 0.0, vc={"ap-south": 5}
        )
        incoming = tracker.note_write(
            "t", "k", (2, "eu-west"), "eu-west", 1.0, vc={"ap-south": 1}
        )
        return prior, incoming

    def test_flags_exactly_once(self):
        tracker = CausalTracker(REGIONS)
        monitor = CausalMonitor()
        prior, incoming = self._forged_stamps(tracker)
        record = monitor.check_lww("t", "k", "ap-south", incoming, prior, 2.0)
        assert record["kind"] == "lww_causality_inversion"
        assert record["winner"] == "2@eu-west"
        assert record["overwritten"] == "1@ap-south"
        # The same inversion re-observed (gossip echo) does not re-flag.
        assert monitor.check_lww("t", "k", "ap-south", incoming, prior, 3.0) is None
        assert len(monitor.violations) == 1
        assert not monitor.clean

    def test_healthy_order_is_silent(self):
        tracker = CausalTracker(REGIONS)
        monitor = CausalMonitor()
        first = tracker.note_write("t", "k", (1, "ap-south"), "ap-south", 0.0)
        tracker.note_visible("t", "k", (1, "ap-south"), "eu-west", 250.0)
        second = tracker.note_write("t", "k", (2, "eu-west"), "eu-west", 300.0)
        assert monitor.check_lww("t", "k", "eu-west", second, first, 300.0) is None
        assert monitor.clean

    def test_injected_inversion_through_replication(self):
        """End-to-end: forge the stamps' clocks after two real writes and
        let the replication apply itself detect the inversion."""
        hub = Observability(capture_real_time=False)
        tier = build_tier(observability=hub)
        table = tier.table("t")
        table.put("k", "old", region="ap-south")
        table.put("k", "new", region="eu-west")
        # Invert happens-before: the value LWW will overwrite claims a
        # causally-later clock than the winner.
        tier.causal.lookup("t", "k", (1, "ap-south")).vc = {"ap-south": 9}
        tier.causal.lookup("t", "k", (2, "eu-west")).vc = {"ap-south": 1}
        tier.scheduler.run_for(10_000.0)
        tier.run_until_converged()
        kinds = [v["kind"] for v in tier.monitor.violations]
        assert kinds == ["lww_causality_inversion"]
        assert hub.metrics.total("distrib.causal_violations") == 1
        # The violation reached the trace as a causal.violation event.
        assert '"causal.violation"' in hub.export_jsonl()


class TestStaleReadAudit:
    def test_resurrected_slot_flags_exactly_once(self):
        hub = Observability(capture_real_time=False)
        tier = build_tier(observability=hub)
        cache = tier.cache("c")
        cache.put("k", "v1", region="ap-south")
        tier.scheduler.run_for(5_000.0)  # flush + invalidation delivery
        delivered_ms, _ = tier.monitor._delivered[("c", "k", "eu-west")]
        # Resurrect the popped slot with a cached_at that predates the
        # delivered invalidation — the state delivery had removed.
        now = tier.scheduler.clock.now_ms
        cache._l1["eu-west"]["k"] = _L1Slot("stale", delivered_ms - 1.0, None)
        assert cache.get("k", region="eu-west") == "stale"
        assert cache.get("k", region="eu-west") == "stale"
        kinds = [v["kind"] for v in tier.monitor.violations]
        assert kinds == ["stale_read_after_invalidation"]
        record = tier.monitor.violations[0]
        assert record["region"] == "eu-west"
        assert record["invalidated_at_ms"] == delivered_ms
        assert now >= delivered_ms

    def test_fresh_slot_after_invalidation_is_silent(self):
        tier = build_tier()
        cache = tier.cache("c")
        cache.put("k", "v1", region="ap-south")
        tier.scheduler.run_for(5_000.0)
        # Normal repopulation: cached after the delivered invalidation.
        assert cache.get("k", region="eu-west") == "v1"
        assert tier.monitor.clean


class TestFlightDumpOnViolation:
    def test_violation_triggers_incident_dump(self):
        hub = Observability(capture_real_time=False)
        flight = hub.install_flight_recorder()
        monitor = CausalMonitor(observability=hub)
        tracker = CausalTracker(REGIONS)
        prior = tracker.note_write(
            "t", "k", (1, "ap-south"), "ap-south", 0.0, vc={"ap-south": 5}
        )
        incoming = tracker.note_write(
            "t", "k", (2, "eu-west"), "eu-west", 1.0, vc={"ap-south": 1}
        )
        monitor.check_lww("t", "k", "ap-south", incoming, prior, 2.0)
        assert [d["reason"] for d in flight.dumps] == ["causal.violation"]


class TestHealthyRunsAreClean:
    def test_mixed_workload_audit_clean(self):
        hub = Observability(capture_real_time=False)
        tier = build_tier(observability=hub)
        table = tier.table("reports")
        cache = tier.cache("c")
        for step in range(4):
            region = REGIONS[step % 2]
            table.put(f"k{step % 2}", step, region=region)
            cache.put("shared", step, region=region)
            tier.scheduler.run_for(600.0)
            cache.get("shared", region=REGIONS[(step + 1) % 2])
        tier.scheduler.run_for(5_000.0)
        tier.run_until_converged()
        assert tier.monitor.clean
        assert hub.metrics.total("distrib.causal_violations") == 0

    def test_export_state_carries_clocks_and_violations(self):
        tier = build_tier()
        tier.table("t").put("k", "v", region="ap-south")
        state = tier.export_state()
        assert set(state["causal"]["clocks"]) == set(REGIONS)
        assert state["causal"]["clocks"]["ap-south"] == {"ap-south": 1}
        assert state["causal"]["violations"] == []
