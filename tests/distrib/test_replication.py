"""Replicated tables: versions, LWW merge, gossip, partitions, quorum."""

import pytest

from repro.distrib import (
    DistribConfig,
    DistribRuntime,
    PartitionMap,
    ReplicaState,
    VersionedEntry,
)
from repro.errors import ConfigurationError, ProxyReplicaUnavailableError
from repro.obs import Observability
from repro.util.clock import Scheduler, SimulatedClock

pytestmark = pytest.mark.distrib

REGIONS = ("ap-south", "eu-west", "us-east")


@pytest.fixture
def tier():
    scheduler = Scheduler(SimulatedClock())
    config = DistribConfig(regions=REGIONS, seed=1)
    return DistribRuntime(scheduler, config)


class TestConfig:
    def test_rejects_duplicate_regions(self):
        with pytest.raises(ConfigurationError):
            DistribConfig(regions=("a", "a"))

    def test_rejects_quorum_beyond_regions(self):
        with pytest.raises(ConfigurationError):
            DistribConfig(regions=("a", "b"), write_quorum=3)

    def test_home_region_is_first(self):
        assert DistribConfig(regions=REGIONS).home_region == "ap-south"


class TestReplicaState:
    def test_merge_applies_newer_versions_only(self):
        replica = ReplicaState("a")
        assert replica.merge(VersionedEntry("k", 1, (1, "a"), 0.0))
        assert not replica.merge(VersionedEntry("k", 0, (1, "a"), 0.0))
        assert replica.merge(VersionedEntry("k", 2, (2, "b"), 0.0))
        assert replica.get("k").value == 2

    def test_content_hash_tracks_state(self):
        a, b = ReplicaState("a"), ReplicaState("b")
        assert a.content_hash() == b.content_hash()
        entry = VersionedEntry("k", "v", (1, "a"), 0.0)
        a.merge(entry)
        assert a.content_hash() != b.content_hash()
        b.merge(entry)
        assert a.content_hash() == b.content_hash()


class TestPartitionMap:
    def test_edges_are_symmetric(self):
        partitions = PartitionMap()
        partitions.partition("a", "b")
        assert not partitions.connected("a", "b")
        assert not partitions.connected("b", "a")
        partitions.heal("b", "a")
        assert partitions.connected("a", "b")

    def test_self_edge_is_never_cut(self):
        partitions = PartitionMap()
        partitions.partition("a", "a")
        assert partitions.connected("a", "a")
        assert not partitions.active


class TestReplication:
    def test_write_visible_at_origin_immediately(self, tier):
        table = tier.table("t")
        table.put("k", "v", region="eu-west")
        assert table.get("k", region="eu-west") == "v"
        assert table.get("k", region="ap-south") is None

    def test_peers_converge_after_replication_delay(self, tier):
        table = tier.table("t")
        table.put("k", "v")
        tier.scheduler.run_for(tier.config.replication_delay_ms)
        for region in REGIONS:
            assert table.get("k", region=region) == "v"
        assert table.converged

    def test_delete_tombstone_replicates(self, tier):
        table = tier.table("t")
        table.put("k", "v")
        tier.scheduler.run_for(tier.config.replication_delay_ms)
        table.delete("k")
        tier.scheduler.run_for(tier.config.replication_delay_ms)
        for region in REGIONS:
            assert table.get("k", region=region) is None
        assert table.converged

    def test_partition_blocks_peer_until_gossip_heals(self, tier):
        table = tier.table("t")
        tier.partition("ap-south", "eu-west")
        table.put("k", "v")
        tier.scheduler.run_for(tier.config.replication_delay_ms)
        assert table.get("k", region="us-east") == "v"
        assert table.get("k", region="eu-west") is None
        tier.heal_all()
        rounds = tier.run_until_converged()
        assert rounds >= 1
        assert table.get("k", region="eu-west") == "v"

    def test_in_flight_message_cut_by_late_partition(self, tier):
        table = tier.table("t")
        table.put("k", "v")
        tier.partition("ap-south", "eu-west")  # after send, before apply
        tier.scheduler.run_for(tier.config.replication_delay_ms)
        assert table.get("k", region="eu-west") is None

    def test_lww_across_regions(self, tier):
        table = tier.table("t")
        table.put("k", "first", region="ap-south")
        table.put("k", "second", region="eu-west")
        tier.heal_all()
        tier.run_until_converged()
        for region in REGIONS:
            assert table.get("k", region=region) == "second"

    def test_unknown_region_raises(self, tier):
        with pytest.raises(KeyError):
            tier.table("t").put("k", "v", region="mars")


class TestQuorum:
    def test_quorum_failure_raises_1014_with_context(self):
        scheduler = Scheduler(SimulatedClock())
        config = DistribConfig(regions=("a", "b", "c"), write_quorum=3, seed=0)
        tier = DistribRuntime(scheduler, config)
        table = tier.table("t")
        tier.partition("a", "b")
        with pytest.raises(ProxyReplicaUnavailableError) as excinfo:
            table.put("k", "v", region="a")
        error = excinfo.value
        assert error.error_code == 1014
        assert error.transient
        assert error.context == {
            "table": "t",
            "region": "a",
            "key": "k",
            "quorum": 3,
            "reachable": 2,
        }
        # The refused write left no trace anywhere.
        for region in ("a", "b", "c"):
            assert table.get("k", region=region) is None

    def test_write_succeeds_once_quorum_restored(self):
        scheduler = Scheduler(SimulatedClock())
        config = DistribConfig(regions=("a", "b"), write_quorum=2, seed=0)
        tier = DistribRuntime(scheduler, config)
        tier.partition("a", "b")
        with pytest.raises(ProxyReplicaUnavailableError):
            tier.table("t").put("k", "v")
        tier.heal("a", "b")
        tier.table("t").put("k", "v")
        assert tier.table("t").get("k") == "v"


class TestObservability:
    def test_replication_spans_and_counters(self):
        scheduler = Scheduler(SimulatedClock())
        hub = Observability(capture_real_time=False)
        tier = DistribRuntime(
            scheduler,
            DistribConfig(regions=("a", "b"), seed=0),
            observability=hub,
        )
        tier.table("t").put("k", "v")
        scheduler.run_for(tier.config.replication_delay_ms)
        tier.sweep_now()
        names = [span.name for span in hub.tracer.finished_spans()]
        assert "replicate:t" in names
        assert "gossip:t" in names
        assert hub.metrics.total("distrib.writes") == 1
        assert hub.metrics.total("distrib.replication_applied") == 1
        assert hub.metrics.total("distrib.gossip_sweeps") == 1

    def test_partition_spans_record_cut_and_heal(self):
        scheduler = Scheduler(SimulatedClock())
        hub = Observability(capture_real_time=False)
        tier = DistribRuntime(
            scheduler,
            DistribConfig(regions=("a", "b"), seed=0),
            observability=hub,
        )
        tier.partition("b", "a")
        tier.heal_all()
        spans = [
            span for span in hub.tracer.finished_spans()
            if span.name == "partition:a|b"
        ]
        assert [span.attributes["event"] for span in spans] == ["cut", "heal"]
        assert hub.metrics.total("distrib.partitions") == 1
        assert hub.metrics.total("distrib.heals") == 1


class TestRuntimeDriving:
    def test_partition_window_rides_the_virtual_clock(self, tier):
        table = tier.table("t")
        tier.partition_window("ap-south", "eu-west", 100.0, 400.0)
        tier.scheduler.run_until(150.0)
        table.put("k", "v")
        tier.scheduler.run_until(380.0)
        assert table.get("k", region="eu-west") is None  # cut in flight
        tier.scheduler.run_until(500.0)
        tier.run_until_converged()
        assert table.get("k", region="eu-west") == "v"

    def test_partition_window_rejects_inverted_range(self, tier):
        with pytest.raises(ValueError):
            tier.partition_window("ap-south", "eu-west", 200.0, 100.0)

    def test_run_until_converged_raises_while_partitioned(self, tier):
        # Isolate eu-west completely — with only one edge cut, gossip
        # routes the update around the partition via the third region.
        tier.partition("ap-south", "eu-west")
        tier.partition("us-east", "eu-west")
        tier.table("t").put("k", "v")
        tier.scheduler.run_for(tier.config.replication_delay_ms)
        with pytest.raises(RuntimeError):
            tier.run_until_converged(max_rounds=3)

    def test_tick_sweeps_on_gossip_interval(self, tier):
        table = tier.table("t")
        tier.partition("ap-south", "eu-west")
        table.put("k", "v")
        tier.scheduler.run_for(tier.config.replication_delay_ms)
        tier.heal_all()
        tier.scheduler.clock.advance(tier.config.gossip_interval_ms)
        tier.tick()
        assert table.get("k", region="eu-west") == "v"

    def test_export_json_is_deterministic(self):
        def run():
            scheduler = Scheduler(SimulatedClock())
            tier = DistribRuntime(
                scheduler, DistribConfig(regions=REGIONS, seed=9)
            )
            table = tier.table("t")
            tier.partition("ap-south", "us-east")
            for index in range(10):
                table.put(f"k{index}", index, region=REGIONS[index % 3])
            tier.heal_all()
            tier.run_until_converged()
            return tier.export_json()

        assert run() == run()
