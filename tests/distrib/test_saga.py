"""Sagas: compensation order, recovery, span trees, failure modes."""

import pytest

from repro.distrib import SagaOrchestrator, SagaStep
from repro.errors import ProxyNetworkError
from repro.obs import Observability
from repro.util.clock import Scheduler, SimulatedClock

pytestmark = pytest.mark.distrib


@pytest.fixture
def hub():
    return Observability(capture_real_time=False)


@pytest.fixture
def orch(hub):
    return SagaOrchestrator(Scheduler(SimulatedClock()), observability=hub)


def failing_step(name="post"):
    def action():
        raise ProxyNetworkError("injected: peer gone")

    return SagaStep(name, action)


class TestHappyPath:
    def test_run_executes_steps_in_order_and_completes(self, orch):
        order = []
        execution = orch.run(
            "report",
            [
                SagaStep("locate", lambda: order.append("locate") or "fix"),
                SagaStep("post", lambda: order.append("post") or "id-1"),
            ],
        )
        assert order == ["locate", "post"]
        assert execution.status == "completed"
        assert execution.results == {"locate": "fix", "post": "id-1"}

    def test_step_results_feed_later_steps(self, orch):
        execution = orch.begin("report")
        fix = execution.step("locate", lambda: {"lat": 1.0})
        posted = execution.step("post", lambda: f"posted:{fix['lat']}")
        execution.complete()
        assert posted == "posted:1.0"

    def test_complete_is_idempotent(self, orch, hub):
        execution = orch.run("report", [SagaStep("noop", lambda: None)])
        execution.complete()
        assert hub.metrics.total("distrib.sagas_completed") == 1


class TestCompensation:
    def test_failure_compensates_completed_prefix_in_reverse(self, orch):
        undone = []
        steps = [
            SagaStep("a", lambda: "ra", lambda r: undone.append(("a", r))),
            SagaStep("b", lambda: "rb", lambda r: undone.append(("b", r))),
            failing_step("c"),
        ]
        with pytest.raises(ProxyNetworkError):
            orch.run("report", steps)
        assert undone == [("b", "rb"), ("a", "ra")]
        assert orch.by_status("compensated")[0].name == "report"

    def test_steps_without_compensation_are_skipped(self, orch):
        undone = []
        steps = [
            SagaStep("read", lambda: "r"),  # declared side-effect-free
            SagaStep("write", lambda: "w", lambda r: undone.append(r)),
            failing_step(),
        ]
        with pytest.raises(ProxyNetworkError):
            orch.run("report", steps)
        assert undone == ["w"]

    def test_non_proxy_error_propagates_without_compensation(self, orch):
        undone = []
        execution = orch.begin("report")
        execution.step("write", lambda: "w", lambda r: undone.append(r))
        with pytest.raises(ZeroDivisionError):
            execution.step("bug", lambda: 1 / 0)
        assert undone == []  # bugs are loud, not compensated
        assert execution.status == "pending"  # still in doubt

    def test_run_step_on_terminal_saga_raises(self, orch):
        execution = orch.run("report", [SagaStep("noop", lambda: None)])
        with pytest.raises(ValueError):
            execution.step("late", lambda: None)


class TestRecovery:
    def test_recover_compensates_pending_only(self, orch, hub):
        undone = []
        done = orch.run("done", [SagaStep("noop", lambda: None)])
        in_doubt = orch.begin("in-doubt")
        in_doubt.step("write", lambda: "w", lambda r: undone.append(r))
        # Simulated crash: the orchestrator restarts mid-saga.
        recovered = orch.recover()
        assert recovered == [in_doubt]
        assert in_doubt.status == "compensated"
        assert done.status == "completed"
        assert undone == ["w"]
        assert hub.metrics.total("distrib.sagas_recovered") == 1

    def test_recover_on_clean_orchestrator_is_noop(self, orch):
        assert orch.recover() == []


class TestTracing:
    def _spans(self, hub):
        return hub.tracer.finished_spans()

    def _events(self, hub):
        return [
            event for span in self._spans(hub) for event in span.events
        ]

    def test_saga_span_wraps_step_spans(self, orch, hub):
        orch.run(
            "report",
            [SagaStep("locate", lambda: "f"), SagaStep("post", lambda: "p")],
        )
        spans = {span.name: span for span in self._spans(hub)}
        root = spans["saga:report"]
        assert spans["saga.step:locate"].parent_id == root.span_id
        assert spans["saga.step:post"].parent_id == root.span_id
        completed = [e for e in self._events(hub) if e.name == "saga.completed"]
        assert completed[0].attributes == {"saga": "report", "steps": 2}

    def test_failed_saga_emits_compensate_spans_and_events(self, orch, hub):
        steps = [
            SagaStep("reserve", lambda: "r", lambda r: None),
            failing_step("commit"),
        ]
        with pytest.raises(ProxyNetworkError):
            orch.run("report", steps)
        names = [span.name for span in self._spans(hub)]
        assert "saga.compensate:reserve" in names
        events = {event.name: event for event in self._events(hub)}
        assert events["saga.step.failed"].attributes["step"] == "commit"
        assert events["saga.step.failed"].attributes["error"] == (
            "ProxyNetworkError"
        )
        assert events["saga.compensated"].attributes["undone"] == 1

    def test_metrics_roll_up(self, orch, hub):
        orch.run("ok", [SagaStep("s", lambda: None)])
        with pytest.raises(ProxyNetworkError):
            orch.run("bad", [failing_step()])
        assert hub.metrics.total("distrib.sagas_started") == 2
        assert hub.metrics.total("distrib.sagas_completed") == 1
        assert hub.metrics.total("distrib.sagas_compensated") == 1
        assert hub.metrics.total("distrib.saga_steps") == 2
