"""Tiered caches: read-through, write-behind, invalidation, staleness."""

import pytest

from repro.distrib import DistribConfig, DistribRuntime
from repro.obs import Observability
from repro.util.clock import Scheduler, SimulatedClock

pytestmark = pytest.mark.distrib

REGIONS = ("ap-south", "eu-west")


class FakeProxy:
    """The minimal property surface ``PropertyReadCache`` attaches to."""

    def __init__(self):
        self._props = {}
        self._subscribers = []

    def subscribe_property_changes(self, callback):
        self._subscribers.append(callback)

    def get_property(self, key):
        return self._props.get(key)

    def set_property(self, key, value):
        self._props[key] = value
        for callback in list(self._subscribers):
            callback(key, value)


@pytest.fixture
def hub():
    return Observability(capture_real_time=False)


@pytest.fixture
def tier(hub):
    scheduler = Scheduler(SimulatedClock())
    return DistribRuntime(
        scheduler,
        DistribConfig(regions=REGIONS, seed=2),
        observability=hub,
    )


class TestReadThrough:
    def test_miss_reads_through_loader_and_caches(self, tier, hub):
        loads = []

        def loader(key):
            loads.append(key)
            return f"loaded:{key}"

        cache = tier.cache("fixes", loader=loader)
        assert cache.get("k") == "loaded:k"
        assert cache.get("k") == "loaded:k"
        assert loads == ["k"]  # second read served from L1
        assert hub.metrics.total("distrib.cache_misses") == 1
        assert hub.metrics.total("distrib.cache_hits") == 1

    def test_miss_without_loader_returns_none(self, tier):
        assert tier.cache("fixes").get("absent") is None

    def test_miss_falls_back_to_backing_table(self, tier):
        cache = tier.cache("fixes")
        cache.backing.put("k", "v")
        assert cache.get("k") == "v"
        assert cache.l1_slot("k") == "v"  # populated on the way through


class TestWriteBehind:
    def test_write_reaches_backing_only_after_delay(self, tier):
        cache = tier.cache("fixes")
        cache.put("k", "v")
        assert cache.l1_slot("k") == "v"
        assert cache.backing.get("k") is None
        tier.scheduler.run_for(tier.config.write_behind_delay_ms)
        assert cache.backing.get("k") == "v"

    def test_rapid_rewrites_coalesce_into_one_flush(self, tier, hub):
        cache = tier.cache("fixes")
        cache.put("k", "v1")
        cache.put("k", "v2")
        cache.put("k", "v3")
        tier.scheduler.run_for(tier.config.write_behind_delay_ms)
        assert cache.backing.get("k") == "v3"
        assert hub.metrics.total("distrib.cache_flushes") == 1

    def test_flush_pending_drains_the_buffer_now(self, tier):
        cache = tier.cache("fixes")
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.flush_pending() == 2
        assert cache.backing.get("a") == 1
        assert cache.backing.get("b") == 2
        assert cache.flush_pending() == 0


class TestInvalidation:
    def test_write_invalidates_peer_l1_after_delay(self, tier, hub):
        cache = tier.cache("fixes")
        cache.put("k", "old", region="eu-west")
        cache.put("k", "new", region="ap-south")
        assert cache.l1_slot("k", region="eu-west") == "old"
        tier.scheduler.run_for(tier.config.replication_delay_ms)
        assert cache.l1_slot("k", region="eu-west") is None
        assert hub.metrics.total("distrib.cache_invalidations_applied") >= 1

    def test_invalidation_dropped_under_partition(self, tier, hub):
        cache = tier.cache("fixes")
        cache.put("k", "old", region="eu-west")
        tier.scheduler.run_for(tier.config.replication_delay_ms)
        tier.partition("ap-south", "eu-west")
        cache.put("k", "new", region="ap-south")
        tier.scheduler.run_for(tier.config.replication_delay_ms)
        assert cache.l1_slot("k", region="eu-west") == "old"  # never told
        assert hub.metrics.total("distrib.cache_invalidations_dropped") >= 1

    def test_explicit_invalidate_drops_slot_and_pending_write(self, tier):
        cache = tier.cache("fixes")
        cache.put("k", "v")
        cache.invalidate("k")
        assert cache.l1_slot("k") is None
        tier.scheduler.run_for(tier.config.write_behind_delay_ms)
        assert cache.backing.get("k") is None  # buffered write cancelled


class TestStaleness:
    def test_stale_hit_counted_when_backing_moves_ahead(self, tier, hub):
        cache = tier.cache("fixes")
        cache.put("k", "v1")
        cache.flush_pending()
        tier.scheduler.run_for(tier.config.replication_delay_ms)
        # A newer write lands in the backing table directly (as a peer
        # region's replicated write would), leaving the L1 slot behind.
        cache.backing.put("k", "v2")
        assert cache.get("k") == "v1"  # stale but served
        assert hub.metrics.total("distrib.cache_stale_reads") == 1

    def test_expired_slot_rereads_backing(self, tier):
        cache = tier.cache("fixes")
        cache.put("k", "v1")
        cache.flush_pending()
        cache.backing.put("k", "v2")
        tier.scheduler.clock.advance(tier.config.cache_staleness_ms + 1.0)
        assert cache.get("k") == "v2"


class TestLocationFixAdapter:
    def test_get_put_invalidate_and_counters(self, tier):
        adapter = tier.location_cache("loc")
        assert adapter.get() is None
        assert adapter.misses == 1
        adapter.put({"lat": 1.0})
        assert adapter.get() == {"lat": 1.0}
        assert adapter.hits == 1
        adapter.invalidate()
        assert adapter.get() is None
        assert adapter.misses == 2

    def test_fix_converges_to_other_regions_via_backing(self, tier):
        adapter = tier.location_cache("loc")
        adapter.put({"lat": 2.0})
        tier.cache("location").flush_pending()
        tier.scheduler.run_for(tier.config.replication_delay_ms)
        backing = tier.cache("location").backing
        assert backing.get("fix:loc", region="eu-west") == {"lat": 2.0}


class TestPropertyAdapter:
    def test_memoises_and_shadows_reads(self, tier):
        cache = tier.property_cache()
        proxy = FakeProxy()
        proxy._props["interval"] = 500
        assert cache.get(proxy, "interval") == 500
        assert cache.get(proxy, "interval") == 500
        assert cache.hits == 1 and cache.misses == 1
        assert tier.cache("properties").l1_slot("prop:0:interval") == 500

    def test_set_property_invalidates_memo_and_shadow(self, tier):
        cache = tier.property_cache()
        proxy = FakeProxy()
        proxy._props["interval"] = 500
        cache.get(proxy, "interval")
        proxy.set_property("interval", 900)
        assert cache.cached_value(proxy, "interval") is None
        assert tier.cache("properties").l1_slot("prop:0:interval") is None
        assert cache.get(proxy, "interval") == 900
