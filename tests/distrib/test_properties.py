"""Property-based tests for the distributed tier's four contracts.

1. **Convergence** — for any seeded interleaving of writes, deletes and
   partitions, once every partition heals and anti-entropy quiesces,
   all replicas hold identical state.
2. **Idempotence** — re-applying any already-applied versioned entry is
   a no-op: replica state (content hash) is unchanged.
3. **Determinism** — the same seed and the same scenario produce
   byte-identical ``export_json`` output from fresh runtimes.
4. **Saga invariants** — whatever prefix of a saga fails, compensation
   restores the resource invariant (no orphaned reservations).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.distrib import (
    DistribConfig,
    DistribRuntime,
    ReplicaState,
    SagaOrchestrator,
    SagaStep,
    VersionedEntry,
)
from repro.errors import ProxyNetworkError
from repro.util.clock import Scheduler, SimulatedClock

pytestmark = pytest.mark.distrib

REGIONS = ("ap-south", "eu-west", "us-east")

# One scripted operation against the tier:
#   ("put", key ordinal, value, region ordinal)
#   ("delete", key ordinal, region ordinal)
#   ("partition", region ordinal, region ordinal)
#   ("heal", region ordinal, region ordinal)
#   ("advance", milliseconds)
OP = st.one_of(
    st.tuples(
        st.just("put"),
        st.integers(min_value=0, max_value=4),
        st.integers(min_value=0, max_value=99),
        st.integers(min_value=0, max_value=2),
    ),
    st.tuples(
        st.just("delete"),
        st.integers(min_value=0, max_value=4),
        st.integers(min_value=0, max_value=2),
    ),
    st.tuples(
        st.just("partition"),
        st.integers(min_value=0, max_value=2),
        st.integers(min_value=0, max_value=2),
    ),
    st.tuples(
        st.just("heal"),
        st.integers(min_value=0, max_value=2),
        st.integers(min_value=0, max_value=2),
    ),
    st.tuples(st.just("advance"), st.floats(min_value=0.0, max_value=500.0)),
)
OPS = st.lists(OP, min_size=1, max_size=40)


def run_script(ops, *, seed):
    """Apply a scripted interleaving to a fresh tier; return the tier."""
    tier = DistribRuntime(
        Scheduler(SimulatedClock()),
        DistribConfig(regions=REGIONS, seed=seed),
    )
    table = tier.table("t")
    for op in ops:
        if op[0] == "put":
            table.put(f"k{op[1]}", op[2], region=REGIONS[op[3]])
        elif op[0] == "delete":
            table.delete(f"k{op[1]}", region=REGIONS[op[2]])
        elif op[0] == "partition":
            if op[1] != op[2]:
                tier.partition(REGIONS[op[1]], REGIONS[op[2]])
        elif op[0] == "heal":
            tier.heal(REGIONS[op[1]], REGIONS[op[2]])
        else:
            tier.scheduler.run_for(op[1])
    return tier


class TestConvergence:
    @settings(max_examples=40, deadline=None)
    @given(ops=OPS, seed=st.integers(min_value=0, max_value=9))
    def test_replicas_identical_after_heal_and_quiesce(self, ops, seed):
        tier = run_script(ops, seed=seed)
        tier.heal_all()
        tier.run_until_converged()
        table = tier.table("t")
        assert len(set(table.content_hashes().values())) == 1
        assert table.converged


class TestIdempotence:
    @settings(max_examples=40, deadline=None)
    @given(ops=OPS, seed=st.integers(min_value=0, max_value=9))
    def test_extra_sweeps_after_quiesce_merge_nothing(self, ops, seed):
        tier = run_script(ops, seed=seed)
        tier.heal_all()
        tier.run_until_converged()
        table = tier.table("t")
        before = table.content_hashes()
        for _ in range(3):
            assert table.anti_entropy_sweep() == 0
        assert table.content_hashes() == before

    @settings(max_examples=50, deadline=None)
    @given(
        entries=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=3),  # key ordinal
                st.integers(min_value=0, max_value=99),  # value
                st.integers(min_value=1, max_value=20),  # version counter
                st.integers(min_value=0, max_value=2),  # origin ordinal
            ),
            min_size=1,
            max_size=30,
        )
    )
    def test_reapplying_applied_entries_is_a_noop(self, entries):
        replica = ReplicaState("a")
        applied = []
        for key_ordinal, value, counter, origin in entries:
            entry = VersionedEntry(
                f"k{key_ordinal}", value, (counter, REGIONS[origin]), 0.0
            )
            if replica.merge(entry):
                applied.append(entry)
        before = replica.content_hash()
        for entry in applied:
            assert not replica.merge(entry)
        assert replica.content_hash() == before


class TestDeterminism:
    @settings(max_examples=25, deadline=None)
    @given(ops=OPS, seed=st.integers(min_value=0, max_value=9))
    def test_same_seed_same_script_byte_identical_export(self, ops, seed):
        def export():
            tier = run_script(ops, seed=seed)
            tier.heal_all()
            tier.run_until_converged()
            return tier.export_json()

        assert export() == export()


class TestSagaInvariants:
    @settings(max_examples=40, deadline=None)
    @given(
        step_count=st.integers(min_value=1, max_value=6),
        fail_at=st.integers(min_value=0, max_value=6),
    )
    def test_compensation_restores_reservations(self, step_count, fail_at):
        """However far the saga got, after compensation the reservation
        ledger holds exactly the committed (completed-saga) entries —
        never a reservation whose saga died."""
        orch = SagaOrchestrator(Scheduler(SimulatedClock()))
        ledger = {}
        steps = []
        for index in range(step_count):
            def reserve(index=index):
                ledger[f"r{index}"] = True
                if index == fail_at:
                    ledger.pop(f"r{index}")  # the failed step self-cleans
                    raise ProxyNetworkError("injected")
                return f"r{index}"

            steps.append(
                SagaStep(f"s{index}", reserve, lambda r: ledger.pop(r, None))
            )
        if fail_at < step_count:
            with pytest.raises(ProxyNetworkError):
                orch.run("reserve-all", steps)
            assert ledger == {}  # every reservation rolled back
        else:
            execution = orch.run("reserve-all", steps)
            assert execution.status == "completed"
            assert set(ledger) == {f"r{i}" for i in range(step_count)}
