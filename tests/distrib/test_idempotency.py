"""Idempotency keys: store semantics, chain nesting, SMS exactly-once.

The last class is the regression test for the duplicate-side-effect bug
this tier exists to close: an ``ack_lost`` fault on ``sms.submit`` used
to deliver the same message twice (the substrate applied the send, the
acknowledgement vanished, the resilience layer retried, the substrate
applied it again).  With attempt-chain keys the retry replays the
recorded result instead.
"""

import pytest

from repro.apps.workforce import scenario
from repro.core.proxies import create_proxy
from repro.core.resilience import chaos_policy
from repro.distrib import IdempotencyStore, chain_context, current_chain
from repro.faults import FaultPlan, FaultRule
from repro.obs import MetricsRegistry, Observability

pytestmark = pytest.mark.distrib


class TestStore:
    def test_execute_runs_thunk_once_per_key(self):
        store = IdempotencyStore()
        calls = []
        assert store.execute("k", lambda: calls.append(1) or "r") == "r"
        assert store.execute("k", lambda: calls.append(2) or "other") == "r"
        assert calls == [1]
        assert store.seen("k")
        assert store.result_of("k") == "r"

    def test_metrics_count_hits_and_misses(self):
        metrics = MetricsRegistry()
        store = IdempotencyStore(metrics, label="smsc")
        store.execute("a", lambda: None)
        store.execute("a", lambda: None)
        store.execute("b", lambda: None)
        assert metrics.total("distrib.dedup_misses") == 2
        assert metrics.total("distrib.dedup_hits") == 1

    def test_failed_thunk_is_not_recorded(self):
        store = IdempotencyStore()
        with pytest.raises(ValueError):
            store.execute("k", lambda: (_ for _ in ()).throw(ValueError()))
        assert not store.seen("k")  # a real retry may still apply it

    def test_capacity_evicts_fifo(self):
        metrics = MetricsRegistry()
        store = IdempotencyStore(metrics, capacity=2)
        for key in ("a", "b", "c"):
            store.record(key, key.upper())
        assert not store.seen("a")
        assert store.seen("b") and store.seen("c")
        assert len(store) == 2
        assert metrics.total("distrib.dedup_evicted") == 1

    def test_snapshot_preserves_insertion_order(self):
        store = IdempotencyStore()
        store.record("b", 1)
        store.record("a", 2)
        assert list(store.snapshot()) == ["b", "a"]


class TestChainContext:
    def test_no_chain_outside_any_context(self):
        assert current_chain() is None

    def test_chain_visible_inside_and_popped_after(self):
        with chain_context("chain-1") as chain:
            assert current_chain() is chain
            assert chain.key == "chain-1"
        assert current_chain() is None

    def test_inner_scope_rides_the_outer_chain(self):
        # The WebView-over-Android nesting rule: the inner runtime must
        # NOT mint a fresh key per attempt or dedup would never fire.
        with chain_context("outer") as outer:
            with chain_context("inner") as inner:
                assert inner is outer
                assert current_chain().key == "outer"
            assert current_chain() is outer

    def test_chain_popped_even_on_error(self):
        with pytest.raises(RuntimeError):
            with chain_context("chain"):
                raise RuntimeError("boom")
        assert current_chain() is None


class TestSmsExactlyOnce:
    """Regression: ack_lost on sms.submit must not duplicate delivery."""

    RECIPIENT = "+2"

    def _run(self, *, with_fault: bool):
        rules = (
            (FaultRule("sms.submit", "ack_lost", 1.0, max_faults=1),)
            if with_fault
            else ()
        )
        hub = Observability(capture_real_time=False)
        sc = scenario.build_android(
            fault_plan=FaultPlan(seed=11, rules=rules), observability=hub
        )
        store = IdempotencyStore(hub.metrics, label="smsc")
        sc.device.sms_center.attach_idempotency(store)
        proxy = create_proxy(
            "Sms", sc.platform, resilience=chaos_policy("Sms", seed=11)
        )
        proxy.set_property("context", sc.new_context())
        events = []
        proxy.send_text_message(
            self.RECIPIENT, "report ready", lambda e, mid, r: events.append(e)
        )
        sc.platform.run_for(60_000.0)
        return sc, hub, store, events

    def test_without_fault_one_delivery_no_dedup(self):
        sc, hub, store, _ = self._run(with_fault=False)
        assert len(sc.device.sms_center.inbox_of(self.RECIPIENT)) == 1
        assert hub.metrics.total("distrib.dedup_hits") == 0
        assert len(store) == 1  # the one applied submission

    def test_ack_lost_retry_delivers_exactly_once(self):
        sc, hub, store, events = self._run(with_fault=True)
        inbox = sc.device.sms_center.inbox_of(self.RECIPIENT)
        assert len(inbox) == 1, "retry after ack_lost duplicated the send"
        assert inbox[0].text == "report ready"
        # The retry really happened and was really suppressed.
        assert hub.metrics.total("resilience.retries") >= 1
        assert hub.metrics.total("distrib.dedup_hits") >= 1
        assert len(store) == 1  # one logical submission, one key
        # The app still saw a single terminal outcome.
        assert events.count("sent") + events.count("delivered") >= 1

    def test_dedup_event_lands_on_the_resilience_span(self):
        _, hub, _, _ = self._run(with_fault=True)
        events = [
            (event.name, event.attributes)
            for span in hub.tracer.finished_spans()
            for event in span.events
        ]
        dedup = [attrs for name, attrs in events if name == "distrib.dedup"]
        assert dedup, "no distrib.dedup event in the trace"
        assert dedup[0]["store"] == "smsc"
        assert dedup[0]["site"] == "sms.submit"
