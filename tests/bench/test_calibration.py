"""Tests for the Figure-10 latency calibration."""

import pytest

from repro.bench.calibration import (
    PAPER_FIGURE_10,
    PAPER_OVERHEADS_MS,
    figure10_android_latency,
    figure10_s60_latency,
    figure10_webview_bridge_latency,
)


class TestPaperData:
    def test_all_nine_bars_present(self):
        assert len(PAPER_FIGURE_10) == 9

    def test_with_always_geq_without(self):
        for (api, platform), (without, with_) in PAPER_FIGURE_10.items():
            assert with_ >= without, (api, platform)

    def test_overheads_match(self):
        assert PAPER_OVERHEADS_MS[("getLocation", "s60")] == pytest.approx(7.7)
        assert PAPER_OVERHEADS_MS[("sendSMS", "webview")] == pytest.approx(0.2)


class TestCalibratedModels:
    def test_android_means_match_paper(self):
        model = figure10_android_latency()
        assert model.mean_for("android.addProximityAlert") == 53.6
        assert model.mean_for("android.getLocation") == 15.5
        assert model.mean_for("android.sendSMS") == 52.7

    def test_s60_means_match_paper(self):
        model = figure10_s60_latency()
        assert model.mean_for("s60.addProximityListener") == 141.0
        assert model.mean_for("s60.getLocation") == 140.8
        assert model.mean_for("s60.sendSMS") == 15.6

    def test_webview_bridge_is_the_difference(self):
        """WebView bar = Android native + bridge crossing."""
        bridge = figure10_webview_bridge_latency()
        android = figure10_android_latency()
        for api, android_op, bridge_op in [
            ("addProximityAlert", "android.addProximityAlert", "webview.bridge.add_proximity_alert"),
            ("getLocation", "android.getLocation", "webview.bridge.get_location"),
            ("sendSMS", "android.sendSMS", "webview.bridge.send_text_message"),
        ]:
            total = android.mean_for(android_op) + bridge.mean_for(bridge_op)
            assert total == pytest.approx(PAPER_FIGURE_10[(api, "webview")][0])

    def test_models_deterministic_by_default(self):
        model = figure10_android_latency()
        assert model.draw("android.getLocation") == model.draw("android.getLocation")

    def test_jitter_option(self):
        model = figure10_android_latency(jitter_fraction=0.05)
        draws = {model.draw("android.getLocation") for _ in range(50)}
        assert len(draws) > 10
