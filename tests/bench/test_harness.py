"""Tests for the Figure-10 measurement harness.

These validate the harness logic with small repetition counts; the real
reproduction runs in ``benchmarks/``.
"""

import pytest

from repro.bench.calibration import PAPER_FIGURE_10
from repro.bench.harness import APIS, Fig10Runner, format_table


@pytest.fixture(scope="module")
def runner():
    return Fig10Runner()


class TestMeasurement:
    @pytest.mark.parametrize("platform", ["android", "s60", "webview"])
    @pytest.mark.parametrize("api", APIS)
    def test_without_proxy_matches_calibration(self, runner, platform, api):
        samples = runner.measure(platform, api, with_proxy=False, repetitions=3)
        paper_without = PAPER_FIGURE_10[(api, platform)][0]
        for sample in samples:
            assert sample.virtual_ms == pytest.approx(paper_without, rel=0.01)

    @pytest.mark.parametrize("platform", ["android", "s60", "webview"])
    @pytest.mark.parametrize("api", APIS)
    def test_proxy_virtual_cost_identical(self, runner, platform, api):
        """The proxy adds NO virtual (native) cost — only real Python time."""
        without = runner.measure(platform, api, with_proxy=False, repetitions=3)
        with_proxy = runner.measure(platform, api, with_proxy=True, repetitions=3)
        assert with_proxy[0].virtual_ms == pytest.approx(
            without[0].virtual_ms, rel=0.01
        )

    def test_real_overhead_is_small_fraction(self, runner):
        """Shape criterion: proxy overhead ≪ native latency."""
        samples = runner.measure("s60", "getLocation", with_proxy=True, repetitions=5)
        for sample in samples:
            assert sample.real_ms < 0.05 * sample.virtual_ms

    def test_sample_fields(self, runner):
        samples = runner.measure("android", "sendSMS", with_proxy=True, repetitions=2)
        assert len(samples) == 2
        for sample in samples:
            assert sample.api == "sendSMS"
            assert sample.platform == "android"
            assert sample.mode == "with"
            assert sample.total_ms == sample.virtual_ms + sample.real_ms

    def test_unknown_platform_rejected(self, runner):
        with pytest.raises(ValueError):
            runner.measure("palm", "sendSMS", with_proxy=False)


class TestFormatTable:
    def test_alignment(self):
        table = format_table(["a", "bb"], [["1", "2"], ["333", "4"]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")
        assert all(len(line) >= 6 for line in lines)
