"""Shared drivers for the chaos suite: one seeded workforce run per call.

Each driver builds a scenario with the given :class:`FaultPlan`, launches
the proxied workforce app under :func:`chaos_policy`, runs the full
commute on the virtual clock, and returns everything a test needs to
assert on — the logic, the device's injector, the proxies, and any
uniform errors that escaped to the app surface.
"""

from dataclasses import dataclass, field
from typing import List

from repro.analysis.metrics import chaos_summary
from repro.apps.workforce import scenario
from repro.apps.workforce.proxied import (
    WorkforceLogic,
    launch_on_android,
    launch_on_s60,
    launch_on_webview,
)
from repro.core.plugin.packaging import WebViewPlatformExtension
from repro.core.resilience import chaos_policy
from repro.errors import ProxyError
from repro.faults import FaultPlan

#: Long enough for the full away -> site -> away -> site commute.
RUN_MS = 200_000.0

#: Virtual-time grace before fault rules activate: app setup (proxy and
#: WebView wrapper construction) runs outside the resilience guards and
#: charges ~100ms of bridge/IPC latency, so plans start after it.
WARMUP_MS = 1_000.0

PLATFORMS = ("android", "s60", "webview")


def transient_plan(rate: float, *, seed: int = 0) -> FaultPlan:
    """The standard chaos-suite plan: uniform transient faults that
    start once app setup is done."""
    return FaultPlan.transient(rate, seed=seed, start_ms=WARMUP_MS)


@dataclass
class ChaosRun:
    """One finished chaos run, ready for assertions."""

    platform: str
    logic: WorkforceLogic
    injector: object
    proxies: List[object]
    #: Uniform ProxyErrors that reached the app surface (always allowed;
    #: anything *else* escaping is a middleware bug and fails the run).
    surfaced: List[ProxyError] = field(default_factory=list)

    def summary(self) -> dict:
        return chaos_summary(self.injector, self.proxies)


def _finish(platform_name, sc, logic, platform) -> ChaosRun:
    run = ChaosRun(
        platform=platform_name,
        logic=logic,
        injector=sc.device.faults,
        proxies=[logic.location, logic.sms, logic.http],
    )
    platform.run_for(RUN_MS)
    try:
        logic.report_location()
    except ProxyError as exc:
        run.surfaced.append(exc)
    return run


def run_android(plan, *, seed: int = 0, observability=None) -> ChaosRun:
    sc = scenario.build_android(fault_plan=plan, observability=observability)
    logic = launch_on_android(
        sc.platform,
        sc.new_context(),
        sc.config,
        resilience=lambda interface: chaos_policy(interface, seed=seed),
    )
    return _finish("android", sc, logic, sc.platform)


def run_s60(plan, *, seed: int = 0, observability=None) -> ChaosRun:
    sc = scenario.build_s60(fault_plan=plan, observability=observability)
    logic = launch_on_s60(
        sc.platform,
        sc.config,
        resilience=lambda interface: chaos_policy(interface, seed=seed),
    )
    return _finish("s60", sc, logic, sc.platform)


def run_webview(plan, *, seed: int = 0, observability=None) -> ChaosRun:
    sc = scenario.build_webview(fault_plan=plan, observability=observability)
    webview = sc.platform.new_webview()
    WebViewPlatformExtension().install_wrappers(
        webview, sc.platform, sc.new_context(), ["Location", "Sms", "Http"]
    )
    holder = {}
    webview.load_page(
        lambda window: holder.update(
            logic=launch_on_webview(
                sc.platform,
                sc.config,
                resilience=lambda interface: chaos_policy(interface, seed=seed),
            )
        )
    )
    return _finish("webview", sc, holder["logic"], sc.platform)


DRIVERS = {"android": run_android, "s60": run_s60, "webview": run_webview}
