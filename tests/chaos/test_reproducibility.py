"""Chaos runs are a pure function of the seed.

Two runs from the same plan + policy seed must agree bit-for-bit on the
injected fault schedule, the resilience counters, the breaker history,
and the app-visible event stream; a different seed must shake the world
differently.
"""

import pytest

from tests.chaos.drivers import DRIVERS, PLATFORMS, transient_plan

pytestmark = pytest.mark.chaos


def _fingerprint(run):
    return (run.summary(), run.logic.activity_events)


@pytest.mark.parametrize("platform", PLATFORMS)
class TestSameSeed:
    def test_identical_runs(self, platform):
        runs = [
            DRIVERS[platform](transient_plan(0.3, seed=9), seed=9)
            for _ in range(2)
        ]
        assert _fingerprint(runs[0]) == _fingerprint(runs[1])

    def test_schedule_is_bit_for_bit(self, platform):
        runs = [
            DRIVERS[platform](transient_plan(0.3, seed=9), seed=9)
            for _ in range(2)
        ]
        assert runs[0].injector.schedule() == runs[1].injector.schedule()


class TestDifferentSeed:
    def test_plan_seed_changes_the_schedule(self):
        a = DRIVERS["android"](transient_plan(0.3, seed=9), seed=9)
        b = DRIVERS["android"](transient_plan(0.3, seed=10), seed=9)
        assert a.injector.schedule() != b.injector.schedule()
