"""Sustained total network outage: the breaker must open and degrade.

Under a 100% drop plan every HTTP attempt fails.  The acceptance bar is
that the middleware stops retry-storming: the circuit opens after the
configured failure threshold, subsequent calls are rejected without
touching the substrate, and the degraded-response fallback keeps the app
alive (it logs ``log-failed`` instead of crashing).
"""

import pytest

from repro.core.resilience import BreakerState
from repro.faults import FaultPlan

from tests.chaos.drivers import run_android

pytestmark = pytest.mark.chaos


@pytest.fixture(scope="module")
def blackout_run():
    run = run_android(FaultPlan.network_blackout(0.0, seed=4), seed=4)
    # Two more back-to-back reports inside the breaker's reset window:
    # the circuit is open, so these must be rejected without ever
    # touching the substrate (degraded responses keep the app alive).
    run.logic.report_location()
    run.logic.report_location()
    return run


class TestBreakerOpens:
    def test_circuit_opened(self, blackout_run):
        transitions = blackout_run.summary()["breakers"]
        flat = [t for per_label in transitions.values() for t in per_label]
        assert any(to == BreakerState.OPEN.value for _, _, _, to in flat)

    def test_rejections_replace_substrate_calls(self, blackout_run):
        totals = blackout_run.summary()["resilience"]["total"]
        assert totals["circuit_rejections"] > 0

    def test_fallback_serves_degraded_responses(self, blackout_run):
        totals = blackout_run.summary()["resilience"]["total"]
        assert totals["fallbacks_served"] > 0
        # the app observed the degradation but kept running
        assert "log-failed" in blackout_run.logic.activity_events

    def test_app_survives_to_completion(self, blackout_run):
        assert "arrived" in blackout_run.logic.activity_events
        assert blackout_run.surfaced == []

    def test_attempts_are_bounded_not_storming(self, blackout_run):
        """With the breaker open, most calls never reach the substrate:
        total substrate attempts stay far below what unbounded retrying
        of every failed call would produce."""
        totals = blackout_run.summary()["resilience"]["total"]
        invocations = totals["failures"] + totals["circuit_rejections"]
        assert invocations > 0
        # chaos_policy retries up to 4 attempts per invocation; the open
        # breaker must cut that multiplier down, not amplify it
        assert totals["attempts"] < 4 * invocations
