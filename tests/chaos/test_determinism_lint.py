"""Static determinism lint for the fault plane and resilience layer.

Reproducibility is a structural property of these packages, so it is
enforced structurally: no unseeded RNG construction, no module-level
``random.*`` draws (they share interpreter-global state), and no wall
clock — ever.
"""

import pathlib
import re

import pytest

pytestmark = pytest.mark.chaos

SRC = pathlib.Path(__file__).resolve().parents[2] / "src" / "repro"

#: Packages whose behaviour must be a pure function of (plan, seed, clock).
DETERMINISTIC_PACKAGES = (SRC / "faults", SRC / "core" / "resilience", SRC / "obs")

#: The tracer's real-time profiling stamp is the one sanctioned read; it
#: never drives simulation and is excluded from deterministic exports.
#: tests/test_wallclock_lint.py polices where the pragma may appear.
WALL_CLOCK_PRAGMA = "# wall-clock: measurement"

FORBIDDEN = (
    # random.Random() with no seed argument
    (re.compile(r"random\.Random\(\s*\)"), "unseeded random.Random()"),
    # module-level draws from the global RNG
    (
        re.compile(r"random\.(random|randint|uniform|choice|shuffle|gauss)\("),
        "global-state random.* draw",
    ),
    # wall-clock anything
    (re.compile(r"\btime\.sleep\("), "wall-clock sleep"),
    (re.compile(r"\btime\.(time|monotonic|perf_counter)\("), "wall-clock read"),
    (re.compile(r"datetime\.now\("), "wall-clock read"),
)


def _sources():
    for package in DETERMINISTIC_PACKAGES:
        assert package.is_dir(), f"lint target vanished: {package}"
        yield from sorted(package.rglob("*.py"))


class TestDeterminismLint:
    def test_targets_exist(self):
        assert len(list(_sources())) >= 6

    @pytest.mark.parametrize(
        "path", list(_sources()), ids=lambda p: str(p.relative_to(SRC))
    )
    def test_no_nondeterminism(self, path):
        text = path.read_text()
        violations = []
        for lineno, line in enumerate(text.splitlines(), start=1):
            if WALL_CLOCK_PRAGMA in line:
                continue
            stripped = line.split("#", 1)[0]
            for pattern, label in FORBIDDEN:
                if pattern.search(stripped):
                    violations.append(f"{path.name}:{lineno}: {label}: {line.strip()}")
        assert not violations, "\n".join(violations)
