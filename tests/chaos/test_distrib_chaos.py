"""Chaos across regions: partitions + retry storms against the tier.

The tentpole's acceptance scenario: the proxied workforce fleet runs
its reporting workload while ``ack_lost`` faults force the resilience
layer to replay POSTs the server already applied AND a region pair is
partitioned mid-run.  Afterwards:

* every replica of the ``reports`` table converges once the partition
  heals and anti-entropy quiesces;
* every report was applied **exactly once** — the dedup counter is
  strictly positive (replays really happened) and the server-side
  report count equals the logical report count (they were absorbed);
* a crashed orchestrator's in-doubt sagas compensate on recovery;
* the whole composition is byte-identical under fixed seeds.
"""

import pytest

from repro.apps.workforce.fleet import build_fleet, launch_fleet_on_runtime
from repro.core.resilience import chaos_policy
from repro.distrib import DistribConfig, DistribRuntime, SagaStep
from repro.errors import ProxyReplicaUnavailableError
from repro.faults import FaultPlan
from repro.faults.plan import FaultRule
from repro.obs import Observability
from repro.util.clock import Scheduler, SimulatedClock

pytestmark = [pytest.mark.chaos, pytest.mark.distrib]

AGENTS = 3
REPORTS = 3
REGIONS = ("ap-south", "eu-west")


def run_storm(
    *,
    seed=3,
    fault_seed=7,
    rate=0.4,
    partition_window=None,
):
    """The fleet under an ``ack_lost`` storm; returns the evidence."""
    plan = FaultPlan(
        seed=fault_seed,
        rules=(FaultRule("network.request", "ack_lost", rate),),
    )
    fleet = build_fleet(
        AGENTS,
        runtime=True,
        observability=True,
        distrib=DistribConfig(regions=REGIONS, seed=seed),
        fault_plan=plan,
    )
    tier = fleet.runtime.distrib
    if partition_window is not None:
        start_ms, end_ms = partition_window
        tier.partition_window("ap-south", "eu-west", start_ms, end_ms)
    launch_fleet_on_runtime(
        fleet, reports=REPORTS, resilience=chaos_policy("Http")
    )
    fleet.runtime.drain()
    tier.heal_all()
    rounds = tier.run_until_converged()
    return fleet, tier, rounds


class TestExactlyOnceUnderStorm:
    def _evidence(self, fleet):
        metrics = fleet.runtime.observability.metrics
        report_counts = {
            agent.profile.agent_id: fleet.server.track_of(
                agent.profile.agent_id
            ).report_count
            for agent in fleet.agents
        }
        return metrics, report_counts

    def test_replays_happen_and_are_all_absorbed(self):
        fleet, tier, rounds = run_storm()
        metrics, report_counts = self._evidence(fleet)
        # The storm really forced replays...
        assert metrics.total("distrib.dedup_hits") > 0
        # ...and the substrate side-effect count equals the logical
        # write count: no POST applied twice, none lost.
        assert report_counts == {
            agent.profile.agent_id: REPORTS for agent in fleet.agents
        }
        assert rounds >= 0
        assert tier.table("reports").converged

    def test_partition_during_storm_still_converges(self):
        fleet, tier, rounds = run_storm(partition_window=(10_000.0, 60_000.0))
        metrics, report_counts = self._evidence(fleet)
        assert metrics.total("distrib.dedup_hits") > 0
        assert report_counts == {
            agent.profile.agent_id: REPORTS for agent in fleet.agents
        }
        # The cut really happened, and gossip repaired it after the heal.
        assert metrics.total("distrib.partitions") == 1
        assert tier.table("reports").converged
        hashes = set(tier.table("reports").content_hashes().values())
        assert len(hashes) == 1

    def test_every_agent_report_reaches_every_region(self):
        fleet, tier, _ = run_storm(partition_window=(10_000.0, 60_000.0))
        reports = tier.table("reports")
        for agent in fleet.agents:
            for region in REGIONS:
                fix = reports.get(agent.profile.agent_id, region=region)
                assert fix is not None
                assert {"latitude", "longitude", "timestamp_ms"} <= set(fix)

    def test_storm_is_deterministic(self):
        def export():
            fleet, tier, _ = run_storm(
                partition_window=(10_000.0, 60_000.0)
            )
            return tier.export_json(), fleet.runtime.observability.export_jsonl()

        assert export() == export()

    def test_storm_is_causally_clean(self):
        """The happens-before audit over the full chaos scenario —
        ack_lost replays plus a mid-run partition — finds nothing:
        replays dedup, LWW follows causality, invalidations pop the
        slots they target."""
        from repro.obs import CausalReport, parse_jsonl

        fleet, tier, _ = run_storm(partition_window=(10_000.0, 60_000.0))
        assert tier.monitor.clean
        report = CausalReport.from_records(
            parse_jsonl(fleet.runtime.observability.export_jsonl())
        )
        assert report.violations == []
        assert report.acyclic
        # Surviving writes became visible in both regions (a write
        # superseded before its replication lands legitimately never
        # shows up remotely — LWW drops it).
        data = report.to_dict()
        assert 0 < data["convergence"]["converged"] <= data["writes"]


class TestSagaCrashRecovery:
    def test_killed_orchestrator_recovers_invariants(self):
        """Kill the orchestrator mid-saga (simulated crash) and assert
        recovery compensates the in-doubt executions — no reservation
        survives without its committed report."""
        scheduler = Scheduler(SimulatedClock())
        hub = Observability(capture_real_time=False)
        tier = DistribRuntime(
            scheduler,
            DistribConfig(regions=REGIONS, write_quorum=2, seed=5),
            observability=hub,
        )
        reports = tier.table("reports")
        ledger = {}

        completed = tier.sagas.begin("report-ok")
        completed.step(
            "reserve",
            lambda: ledger.setdefault("ok", True),
            lambda _r: ledger.pop("ok", None),
        )
        completed.step("post", lambda: reports.put("ok", {"n": 1}))
        completed.complete()

        # Crash: this saga reserved, then the process died before commit.
        in_doubt = tier.sagas.begin("report-crashed")
        in_doubt.step(
            "reserve",
            lambda: ledger.setdefault("crashed", True),
            lambda _r: ledger.pop("crashed", None),
        )
        assert set(ledger) == {"ok", "crashed"}

        recovered = tier.sagas.recover()
        assert recovered == [in_doubt]
        assert in_doubt.status == "compensated"
        assert set(ledger) == {"ok"}  # only the committed reservation
        assert hub.metrics.total("distrib.sagas_recovered") == 1

    def test_quorum_loss_mid_saga_compensates(self):
        scheduler = Scheduler(SimulatedClock())
        tier = DistribRuntime(
            scheduler,
            DistribConfig(regions=REGIONS, write_quorum=2, seed=5),
        )
        reports = tier.table("reports")
        ledger = {}
        tier.partition("ap-south", "eu-west")
        with pytest.raises(ProxyReplicaUnavailableError):
            tier.sagas.run(
                "report",
                (
                    SagaStep(
                        "reserve",
                        lambda: ledger.setdefault("r", True),
                        lambda _r: ledger.pop("r", None),
                    ),
                    SagaStep("post", lambda: reports.put("r", {"n": 1})),
                ),
            )
        assert ledger == {}
        assert reports.get("r") is None
