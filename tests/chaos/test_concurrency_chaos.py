"""Chaos under concurrency: fault plans composed with the runtime.

The resilience plane was proven against *sequential* fault injection;
this suite drives faulted proxies through the sharded dispatcher and
checks the two planes compose:

* transient faults surface only as uniform :class:`ProxyError`s on
  futures (or as degraded responses) — never as raw platform exceptions,
  and never as a wedged lane;
* a sustained blackout makes the breaker open *behind* the bounded
  queue: excess load is shed at admission and rejected by the open
  circuit, instead of stampeding the dead substrate with retries;
* the whole composition stays deterministic under fixed seeds.
"""

import pytest

from repro.analysis.metrics import chaos_summary
from repro.apps.workforce import scenario
from repro.apps.workforce.common import PATH_REPORT_LOCATION, SERVER_HOST, encode
from repro.apps.workforce.proxied import launch_on_android
from repro.core.resilience import BreakerState, chaos_policy
from repro.errors import ProxyError, ProxyOverloadError
from repro.faults import FaultPlan
from repro.obs import Observability
from repro.runtime import ConcurrencyRuntime

from tests.chaos.drivers import WARMUP_MS, transient_plan

pytestmark = [pytest.mark.chaos, pytest.mark.concurrency]

REPORT_URL = f"http://{SERVER_HOST}{PATH_REPORT_LOCATION}"


def build_faulted_runtime(plan, *, shards=2, queue_depth=8, seed=3):
    hub = Observability(capture_real_time=False)
    sc = scenario.build_android(fault_plan=plan, observability=hub)
    logic = launch_on_android(
        sc.platform,
        sc.new_context(),
        sc.config,
        resilience=lambda interface: chaos_policy(interface, seed=seed),
    )
    sc.platform.run_for(WARMUP_MS)
    runtime = ConcurrencyRuntime(
        sc.device.scheduler,
        shards=shards,
        queue_depth=queue_depth,
        seed=seed,
        observability=hub,
    )
    return sc, logic, runtime


def submit_report_burst(sc, logic, runtime, count):
    body = encode({"agent": "agent-42", "latitude": 28.6, "longitude": 77.2})
    dispatcher = runtime.dispatcher("android")
    futures = [
        dispatcher.submit(
            "post", lambda: logic.http.post(REPORT_URL, body), tracer=None
        )
        for _ in range(count)
    ]
    runtime.drain()
    return dispatcher, futures


class TestTransientFaultsCompose:
    @pytest.fixture(scope="class")
    def shaken(self):
        sc, logic, runtime = build_faulted_runtime(
            transient_plan(0.2, seed=5), queue_depth=32, seed=5
        )
        dispatcher, futures = submit_report_burst(sc, logic, runtime, 12)
        return sc, logic, runtime, dispatcher, futures

    def test_every_future_settles(self, shaken):
        *_, futures = shaken
        assert all(future.done() for future in futures)

    def test_only_uniform_errors_escape(self, shaken):
        *_, futures = shaken
        for future in futures:
            if future.error is not None:
                assert isinstance(future.error, ProxyError)

    def test_lanes_drain_despite_faults(self, shaken):
        sc, logic, runtime, dispatcher, futures = shaken
        assert dispatcher.idle
        assert sum(dispatcher.executed_per_shard()) == len(futures)

    def test_retries_happened_under_the_dispatcher(self, shaken):
        sc, logic, *_ = shaken
        totals = chaos_summary(sc.device.faults, [logic.http])["resilience"]["total"]
        assert totals["retries"] > 0


class TestBlackoutShedsNotStampedes:
    BURST = 20
    DEPTH = 6

    @pytest.fixture(scope="class")
    def blackout(self):
        sc, logic, runtime = build_faulted_runtime(
            FaultPlan.network_blackout(0.0, seed=4),
            shards=1,
            queue_depth=self.DEPTH,
            seed=4,
        )
        dispatcher, futures = submit_report_burst(sc, logic, runtime, self.BURST)
        return sc, logic, runtime, dispatcher, futures

    def test_admission_control_sheds_the_excess(self, blackout):
        *_, dispatcher, futures = blackout
        shed = [f for f in futures if isinstance(f.error, ProxyOverloadError)]
        assert len(shed) == self.BURST - self.DEPTH
        assert dispatcher.shed_count == self.BURST - self.DEPTH

    def test_breaker_opens_behind_the_queue(self, blackout):
        sc, logic, *_ = blackout
        summary = chaos_summary(sc.device.faults, [logic.http])
        flat = [
            t for per_label in summary["breakers"].values() for t in per_label
        ]
        assert any(to == BreakerState.OPEN.value for _, _, _, to in flat)
        assert summary["resilience"]["total"]["circuit_rejections"] > 0

    def test_no_retry_stampede(self, blackout):
        """The two backpressure layers multiply: shedding caps how many
        invocations reach the resilience plane, and the open breaker
        caps how many attempts reach the substrate.  Without them a
        20-request burst could fire 80 substrate attempts."""
        sc, logic, *_ = blackout
        totals = chaos_summary(sc.device.faults, [logic.http])["resilience"]["total"]
        assert totals["attempts"] < self.BURST
        assert totals["attempts"] < 4 * self.DEPTH

    def test_admitted_requests_still_answered(self, blackout):
        *_, futures = blackout
        admitted = [f for f in futures if not isinstance(f.error, ProxyOverloadError)]
        # fallbacks convert breaker rejections into degraded 503s, so
        # the admitted requests resolve instead of crashing the agent
        assert admitted and all(f.done() for f in admitted)
        for future in admitted:
            if future.error is None:
                assert future.value.status in (200, 503)


class TestChaosDeterminism:
    def _outcome(self):
        sc, logic, runtime = build_faulted_runtime(
            transient_plan(0.3, seed=9), queue_depth=8, seed=9
        )
        dispatcher, futures = submit_report_burst(sc, logic, runtime, 12)
        totals = chaos_summary(sc.device.faults, [logic.http])["resilience"]["total"]
        return {
            "clock": sc.platform.clock.now_ms,
            "per_shard": dispatcher.executed_per_shard(),
            "shed": dispatcher.shed_count,
            "errors": [
                type(f.error).__name__ if f.error else None for f in futures
            ],
            "totals": dict(totals),
        }

    def test_identical_seeds_identical_outcomes(self):
        assert self._outcome() == self._outcome()
