"""Sampling under chaos: 1% head rate, injected faults, zero tail misses.

The production-scale posture — streaming pipeline, 1% head sampling —
must stay safe when the workload goes bad: every trace carrying an
error, shed, throttle, breaker-open or slow-outlier signal is retained
by the tail rules no matter what the head hash said, and the health
gate tells captured anomalies (pass) apart from telemetry integrity
failures like cardinality overflow (fail).
"""

import json

import pytest

from repro.apps.workforce.fleet import build_fleet, launch_fleet
from repro.obs import Observability
from repro.obs.pipeline import HealthReport, PipelineConfig
from tests.chaos.drivers import DRIVERS, PLATFORMS, transient_plan

pytestmark = [pytest.mark.chaos, pytest.mark.obs, pytest.mark.pipeline]

ONE_PERCENT = PipelineConfig(default_rate=0.01, seed=13, streaming=True)


@pytest.mark.parametrize("platform", PLATFORMS)
class TestOnePercentSamplingUnderChaos:
    def test_zero_tail_misses(self, platform):
        hub = Observability(capture_real_time=False)
        hub.install_pipeline(ONE_PERCENT)
        DRIVERS[platform](transient_plan(0.35, seed=7), seed=7, observability=hub)
        accounting = hub.pipeline.accounting()
        assert accounting["anomalous_traces"] > 0  # the plan actually bit
        assert accounting["tail_misses"] == 0
        assert accounting["anomalous_kept"] == accounting["anomalous_traces"]
        # Streaming: the tracer retains nothing; the ring is the storage.
        assert hub.tracer.spans == []
        # Every anomalous trace is genuinely in the export, not just
        # counted: each exported root either tripped a rule or was a
        # head keep, and all error roots are present.
        kept = [
            json.loads(line)
            for line in hub.pipeline.export_jsonl().splitlines()
        ]
        assert any(record["status"] == "error" for record in kept)

    def test_captured_anomalies_pass_the_gate(self, platform):
        hub = Observability(capture_real_time=False)
        hub.install_pipeline(ONE_PERCENT)
        DRIVERS[platform](transient_plan(0.35, seed=7), seed=7, observability=hub)
        report = HealthReport.build(hub.pipeline)
        assert report.healthy, report.failures
        assert report.telemetry["accounting"]["anomalous_traces"] > 0


class TestFleetHealthGate:
    def _run_fleet(self, config):
        fleet = build_fleet(2, observability=True, pipeline=config)
        launch_fleet(fleet)
        fleet.run_for(120_000.0)
        for agent in fleet.agents:
            agent.logic.report_location()
        return fleet

    def test_healthy_fleet_passes(self):
        fleet = self._run_fleet(ONE_PERCENT)
        report = fleet.health_report()
        assert report.healthy, report.failures
        accounting = fleet.pipeline.accounting()
        assert accounting["traces_total"] > 0
        assert accounting["tail_misses"] == 0

    def test_injected_cardinality_overflow_fails(self):
        starved = PipelineConfig(
            default_rate=0.01, seed=13, streaming=True, max_series=1
        )
        fleet = self._run_fleet(starved)
        assert fleet.pipeline.cardinality_overflow > 0
        report = fleet.health_report()
        assert not report.healthy
        assert any("cardinality" in failure for failure in report.failures)
