"""Workforce under seeded transient fault plans, on every platform.

The acceptance bar: with :func:`chaos_policy` attached, the app's
business logic completes the commute (the agent *arrives*), and nothing
but uniform :class:`ProxyError` subclasses ever reaches the app surface
— the fault plane shakes the substrate, the resilience layer absorbs it.
"""

import pytest

from repro.errors import ProxyError

from tests.chaos.drivers import DRIVERS, PLATFORMS, transient_plan

pytestmark = pytest.mark.chaos

RATES = (0.10, 0.30)


@pytest.mark.parametrize("platform", PLATFORMS)
@pytest.mark.parametrize("rate", RATES)
class TestTransientPlans:
    def test_commute_completes(self, platform, rate):
        run = DRIVERS[platform](transient_plan(rate, seed=1), seed=1)
        assert "arrived" in run.logic.activity_events
        # only uniform errors may surface, and under a transient plan with
        # retries + fallbacks none should need to
        assert run.surfaced == []

    def test_faults_were_actually_injected(self, platform, rate):
        run = DRIVERS[platform](transient_plan(rate, seed=1), seed=1)
        assert run.injector.total_injected() > 0

    def test_resilience_absorbed_the_faults(self, platform, rate):
        run = DRIVERS[platform](transient_plan(rate, seed=1), seed=1)
        totals = run.summary()["resilience"]["total"]
        assert totals["successes"] > 0
        # at least some failures were seen and retried by the runtimes
        # (GPS faults are absorbed below the proxy layer, but network or
        # sms or bridge faults hit the proxies on every platform)
        assert totals["attempts"] >= totals["successes"]

    def test_retries_are_bounded(self, platform, rate):
        run = DRIVERS[platform](transient_plan(rate, seed=1), seed=1)
        totals = run.summary()["resilience"]["total"]
        # chaos_policy allows max_attempts=4: never more than 3 retries
        # per invocation, so retries stay well under total attempts
        assert totals["retries"] <= 3 * (totals["successes"] + totals["failures"])


@pytest.mark.parametrize("platform", PLATFORMS)
class TestFaultFree:
    def test_zero_rate_plan_is_a_clean_run(self, platform):
        run = DRIVERS[platform](transient_plan(0.0, seed=1), seed=1)
        assert run.injector.total_injected() == 0
        assert run.logic.activity_events == ["arrived", "departed", "arrived"]
        totals = run.summary()["resilience"]["total"]
        assert totals["failures"] == 0
        assert totals["retries"] == 0


class TestCallProxyUnderFaults:
    """Call has no workforce role; exercise it directly where it exists."""

    @pytest.mark.parametrize("platform", ["android", "webview"])
    def test_call_completes_or_surfaces_uniform_error(self, platform):
        from repro.apps.workforce import scenario
        from repro.core.proxies import create_proxy
        from repro.core.resilience import chaos_policy

        if platform == "android":
            sc = scenario.build_android(
                fault_plan=transient_plan(0.3, seed=2)
            )
            call = create_proxy("Call", sc.platform, resilience=chaos_policy("Call"))
            call.set_property("context", sc.new_context())
        else:
            sc = scenario.build_webview(
                fault_plan=transient_plan(0.3, seed=2)
            )
            from repro.core.plugin.packaging import WebViewPlatformExtension

            webview = sc.platform.new_webview()
            WebViewPlatformExtension().install_wrappers(
                webview, sc.platform, sc.new_context(), ["Call"]
            )
            holder = {}
            webview.load_page(
                lambda window: holder.update(
                    call=create_proxy(
                        "Call", sc.platform, resilience=chaos_policy("Call")
                    )
                )
            )
            call = holder["call"]
        for _ in range(5):
            handle = None
            try:
                handle = call.make_a_call("+915550001")
            except ProxyError:
                pass  # uniform surface — acceptable under 30% faults
            sc.platform.run_for(5_000.0)
            if handle is not None:
                try:
                    call.end_call(handle)
                except ProxyError:
                    pass
        stats = call.resilience.stats
        assert stats.attempts >= 5
        assert stats.successes + stats.failures == stats.attempts
