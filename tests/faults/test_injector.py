"""FaultInjector determinism and decision semantics."""

import pytest

from repro.faults import FaultInjector, FaultPlan, FaultRule
from repro.util.clock import SimulatedClock


def _drain(injector, site, consults):
    return [injector.decide(site) is not None for _ in range(consults)]


class TestDecide:
    def test_no_plan_is_inert(self):
        injector = FaultInjector()
        assert not injector.active
        assert injector.decide("network.request") is None
        assert injector.total_injected() == 0

    def test_unknown_site_raises(self):
        injector = FaultInjector()
        with pytest.raises(KeyError, match="unknown fault site"):
            injector.decide("battery.explode")

    def test_rate_one_always_fires(self):
        plan = FaultPlan(rules=(FaultRule("network.request", "drop", 1.0),))
        injector = FaultInjector(plan, clock=SimulatedClock())
        assert all(_drain(injector, "network.request", 50))
        assert injector.total_injected() == 50

    def test_rate_zero_never_fires(self):
        plan = FaultPlan(rules=(FaultRule("network.request", "drop", 0.0),))
        injector = FaultInjector(plan, clock=SimulatedClock())
        assert not any(_drain(injector, "network.request", 50))

    def test_window_gates_on_virtual_clock(self):
        clock = SimulatedClock()
        plan = FaultPlan(
            rules=(
                FaultRule(
                    "network.request", "drop", 1.0, start_ms=100.0, end_ms=200.0
                ),
            )
        )
        injector = FaultInjector(plan, clock=clock)
        assert injector.decide("network.request") is None  # t=0, before window
        clock.advance(150.0)
        fault = injector.decide("network.request")
        assert fault is not None and fault.at_ms == 150.0
        clock.advance(100.0)
        assert injector.decide("network.request") is None  # past window

    def test_max_faults_cap(self):
        plan = FaultPlan(
            rules=(FaultRule("network.request", "drop", 1.0, max_faults=3),)
        )
        injector = FaultInjector(plan, clock=SimulatedClock())
        fired = _drain(injector, "network.request", 10)
        assert sum(fired) == 3
        assert fired[:3] == [True, True, True]

    def test_first_active_rule_wins(self):
        plan = FaultPlan(
            rules=(
                FaultRule("network.request", "timeout", 1.0, max_faults=1),
                FaultRule("network.request", "drop", 1.0),
            )
        )
        injector = FaultInjector(plan, clock=SimulatedClock())
        assert injector.decide("network.request").kind == "timeout"
        # capped-out first rule no longer matches; second takes over
        assert injector.decide("network.request").kind == "drop"


class TestDeterminism:
    def test_same_seed_same_schedule(self):
        for rate in (0.1, 0.3, 0.7):
            plan = FaultPlan.transient(rate, seed=42)
            runs = []
            for _ in range(2):
                injector = FaultInjector(plan, clock=SimulatedClock())
                for site in sorted(plan.sites):
                    _drain(injector, site, 40)
                runs.append(injector.schedule())
            assert runs[0] == runs[1]

    def test_different_seed_different_schedule(self):
        schedules = []
        for seed in (0, 1):
            injector = FaultInjector(
                FaultPlan.transient(0.5, seed=seed), clock=SimulatedClock()
            )
            _drain(injector, "network.request", 60)
            schedules.append(injector.schedule())
        assert schedules[0] != schedules[1]

    def test_streams_are_per_site(self):
        """Consult order across sites must not perturb a site's stream."""
        plan = FaultPlan.transient(0.5, seed=7)
        a = FaultInjector(plan, clock=SimulatedClock())
        for _ in range(30):
            a.decide("network.request")
        b = FaultInjector(plan, clock=SimulatedClock())
        for _ in range(30):  # interleave another site's consults
            b.decide("gps.fix")
            b.decide("network.request")
        site = lambda inj: [
            f for f in inj.schedule() if f[0] == "network.request"
        ]
        assert site(a) == site(b)

    def test_counts_match_log(self):
        plan = FaultPlan.transient(0.4, seed=3)
        injector = FaultInjector(plan, clock=SimulatedClock())
        for site in sorted(plan.sites):
            _drain(injector, site, 25)
        counts = injector.counts()
        assert sum(n for kinds in counts.values() for n in kinds.values()) == (
            injector.total_injected()
        )
