"""FaultPlan / FaultRule validation and canned plans."""

import pytest

from repro.errors import ConfigurationError
from repro.faults import FAULT_KINDS, FAULT_SITES, FaultPlan, FaultRule


class TestFaultRule:
    def test_valid_rule(self):
        rule = FaultRule("network.request", "drop", 0.1)
        assert rule.active_at(0.0)
        assert rule.active_at(1e9)

    def test_unknown_site_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown fault site"):
            FaultRule("battery.explode", "drop", 0.1)

    def test_kind_must_match_site(self):
        with pytest.raises(ConfigurationError, match="no fault kind"):
            FaultRule("gps.fix", "timeout", 0.1)

    def test_rate_bounds(self):
        with pytest.raises(ConfigurationError):
            FaultRule("network.request", "drop", 1.5)
        with pytest.raises(ConfigurationError):
            FaultRule("network.request", "drop", -0.1)

    def test_window(self):
        rule = FaultRule("network.request", "drop", 1.0, start_ms=100.0, end_ms=200.0)
        assert not rule.active_at(99.9)
        assert rule.active_at(100.0)
        assert rule.active_at(199.9)
        assert not rule.active_at(200.0)

    def test_window_must_be_ordered(self):
        with pytest.raises(ConfigurationError):
            FaultRule("network.request", "drop", 1.0, start_ms=200.0, end_ms=100.0)

    def test_every_declared_kind_is_constructible(self):
        for site, kinds in FAULT_SITES.items():
            for kind in kinds:
                FaultRule(site, kind, 0.5)

    def test_fault_kinds_is_union(self):
        assert set(FAULT_KINDS) == {
            kind for kinds in FAULT_SITES.values() for kind in kinds
        }


class TestFaultPlan:
    def test_empty_plan(self):
        plan = FaultPlan()
        assert plan.sites == frozenset()
        assert plan.rules_for("network.request") == ()

    def test_rules_for_filters_by_site(self):
        plan = FaultPlan(
            rules=(
                FaultRule("network.request", "drop", 0.1),
                FaultRule("gps.fix", "lost", 0.2),
                FaultRule("network.request", "timeout", 0.3),
            )
        )
        assert len(plan.rules_for("network.request")) == 2
        assert len(plan.rules_for("gps.fix")) == 1

    def test_transient_covers_every_site(self):
        plan = FaultPlan.transient(0.1)
        assert plan.sites == frozenset(FAULT_SITES)

    def test_network_blackout_is_total(self):
        plan = FaultPlan.network_blackout(1_000.0)
        (rule,) = plan.rules
        assert rule.rate == 1.0
        assert not rule.active_at(999.0)
        assert rule.active_at(1_000.0)
