"""Tests for the simulated network and virtual HTTP servers."""

import pytest

from repro.device.network import (
    HttpRequest,
    HttpResponse,
    NetworkError,
    SimulatedNetwork,
)
from repro.util.latency import LatencyModel


@pytest.fixture
def network(scheduler):
    return SimulatedNetwork(
        scheduler, latency=LatencyModel(mean_ms={"http.roundtrip": 100.0})
    )


def _ping(request):
    return HttpResponse(200, "pong")


class TestRouting:
    def test_exact_route_match(self, network):
        server = network.add_server("api.test")
        server.route("GET", "/ping", _ping)
        response = network.request(HttpRequest("GET", "api.test", "/ping"))
        assert response.status == 200
        assert response.body == "pong"

    def test_unrouted_path_404(self, network):
        network.add_server("api.test")
        response = network.request(HttpRequest("GET", "api.test", "/missing"))
        assert response.status == 404

    def test_method_mismatch_404(self, network):
        server = network.add_server("api.test")
        server.route("POST", "/thing", _ping)
        response = network.request(HttpRequest("GET", "api.test", "/thing"))
        assert response.status == 404

    def test_unknown_host_raises(self, network):
        with pytest.raises(NetworkError):
            network.request(HttpRequest("GET", "nowhere", "/"))

    def test_add_server_idempotent(self, network):
        first = network.add_server("api.test")
        second = network.add_server("api.test")
        assert first is second

    def test_request_log(self, network):
        server = network.add_server("api.test")
        server.route("GET", "/ping", _ping)
        network.request(HttpRequest("GET", "api.test", "/ping"))
        assert len(server.request_log) == 1


class TestLatencyAndLoss:
    def test_sync_request_advances_clock(self, network, scheduler):
        server = network.add_server("api.test")
        server.route("GET", "/ping", _ping)
        before = scheduler.clock.now_ms
        network.request(HttpRequest("GET", "api.test", "/ping"))
        assert scheduler.clock.now_ms - before == 100.0

    def test_injected_loss(self, network):
        server = network.add_server("api.test")
        server.route("GET", "/ping", _ping)
        network.fail_next("cable cut")
        with pytest.raises(NetworkError, match="cable cut"):
            network.request(HttpRequest("GET", "api.test", "/ping"))
        # next request succeeds
        assert network.request(HttpRequest("GET", "api.test", "/ping")).ok

    def test_loss_queue_fifo(self, network):
        server = network.add_server("api.test")
        server.route("GET", "/ping", _ping)
        network.fail_next("first")
        network.fail_next("second")
        with pytest.raises(NetworkError, match="first"):
            network.request(HttpRequest("GET", "api.test", "/ping"))
        with pytest.raises(NetworkError, match="second"):
            network.request(HttpRequest("GET", "api.test", "/ping"))


class TestAsync:
    def test_async_response_delivered_later(self, network, scheduler):
        server = network.add_server("api.test")
        server.route("GET", "/ping", _ping)
        responses = []
        network.request_async(
            HttpRequest("GET", "api.test", "/ping"), responses.append
        )
        assert responses == []
        scheduler.run_for(100.0)
        assert responses[0].body == "pong"

    def test_async_error_callback(self, network, scheduler):
        errors = []
        network.request_async(
            HttpRequest("GET", "nowhere", "/"),
            lambda r: pytest.fail("should not succeed"),
            on_error=errors.append,
        )
        scheduler.run_for(1_000.0)
        assert len(errors) == 1


class TestMessages:
    def test_header_lookup_case_insensitive(self):
        request = HttpRequest(
            "GET", "h", "/", headers=(("Content-Type", "text/plain"),)
        )
        assert request.header("content-type") == "text/plain"
        assert request.header("missing", "d") == "d"

    def test_response_ok_range(self):
        assert HttpResponse(204).ok
        assert not HttpResponse(301).ok
        assert not HttpResponse(500).ok
