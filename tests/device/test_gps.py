"""Tests for the GPS receiver and trajectory playback."""

import pytest

from repro.device.gps import GpsReceiver, Trajectory, Waypoint, TOPIC_FIX, TOPIC_STATE
from repro.errors import ConfigurationError, SimulationError
from repro.util.geo import GeoPoint, destination_point


def _line_trajectory():
    start = GeoPoint(0.0, 0.0)
    end = destination_point(0.0, 0.0, 90.0, 1_000.0)
    return Trajectory([Waypoint(0.0, start), Waypoint(10_000.0, end)])


class TestTrajectory:
    def test_requires_waypoints(self):
        with pytest.raises(ConfigurationError):
            Trajectory([])

    def test_duplicate_times_rejected(self):
        point = GeoPoint(0.0, 0.0)
        with pytest.raises(ConfigurationError):
            Trajectory([Waypoint(5.0, point), Waypoint(5.0, point)])

    def test_waypoints_sorted(self):
        a, b = GeoPoint(0.0, 0.0), GeoPoint(1.0, 1.0)
        trajectory = Trajectory([Waypoint(10.0, b), Waypoint(0.0, a)])
        assert trajectory.waypoints[0].point == a

    def test_holds_before_start(self):
        trajectory = _line_trajectory()
        assert trajectory.position_at(-100.0) == trajectory.waypoints[0].point

    def test_holds_after_end(self):
        trajectory = _line_trajectory()
        assert trajectory.position_at(1e9) == trajectory.waypoints[-1].point

    def test_interpolates_midway(self):
        trajectory = _line_trajectory()
        start = trajectory.waypoints[0].point
        midpoint = trajectory.position_at(5_000.0)
        distance = start.distance_to_m(midpoint)
        assert distance == pytest.approx(500.0, rel=0.01)

    def test_speed_on_leg(self):
        trajectory = _line_trajectory()  # 1000 m in 10 s
        assert trajectory.speed_at(5_000.0) == pytest.approx(100.0, rel=0.01)

    def test_speed_zero_when_parked(self):
        trajectory = _line_trajectory()
        assert trajectory.speed_at(20_000.0) == 0.0

    def test_single_waypoint_is_parked(self):
        trajectory = Trajectory([Waypoint(0.0, GeoPoint(5.0, 5.0))])
        assert trajectory.position_at(1_000.0) == GeoPoint(5.0, 5.0)
        assert trajectory.speed_at(500.0) == 0.0


class TestGpsReceiver:
    def _receiver(self, scheduler, bus, **kwargs):
        receiver = GpsReceiver(scheduler, bus, _line_trajectory(), **kwargs)
        return receiver

    def test_no_fix_before_power_on(self, scheduler, bus):
        receiver = self._receiver(scheduler, bus)
        scheduler.run_for(10_000.0)
        assert receiver.last_fix is None

    def test_power_on_without_trajectory_fails(self, scheduler, bus):
        receiver = GpsReceiver(scheduler, bus)
        with pytest.raises(SimulationError):
            receiver.power_on()

    def test_time_to_first_fix(self, scheduler, bus):
        receiver = self._receiver(scheduler, bus, time_to_first_fix_ms=2_000.0)
        receiver.power_on()
        scheduler.run_for(1_999.0)
        assert receiver.last_fix is None
        scheduler.run_for(1.0)
        assert receiver.last_fix is not None

    def test_periodic_fixes_published(self, scheduler, bus):
        fixes = []
        bus.subscribe(TOPIC_FIX, lambda t, fix: fixes.append(fix))
        receiver = self._receiver(
            scheduler, bus, fix_interval_ms=1_000.0, time_to_first_fix_ms=0.0
        )
        receiver.power_on()
        scheduler.run_for(5_500.0)
        assert len(fixes) == 6  # t=0 (ttff 0) then every second

    def test_fix_noise_bounded(self, scheduler, bus):
        receiver = self._receiver(scheduler, bus, accuracy_m=5.0, seed=3)
        receiver.power_on()
        scheduler.run_for(30_000.0)
        fix = receiver.last_fix
        truth = receiver.ground_truth()
        assert fix.point.distance_to_m(truth) < 50.0  # well within 10 sigma

    def test_power_off_stops_fixes(self, scheduler, bus):
        receiver = self._receiver(scheduler, bus, time_to_first_fix_ms=0.0)
        receiver.power_on()
        scheduler.run_for(3_000.0)
        count_before = len(bus.published_topics)
        receiver.power_off()
        scheduler.run_for(5_000.0)
        topics_after = bus.published_topics[count_before:]
        assert all(t != TOPIC_FIX for t in topics_after)

    def test_power_cycle_is_idempotent(self, scheduler, bus):
        receiver = self._receiver(scheduler, bus)
        receiver.power_on()
        receiver.power_on()  # no double-arm
        scheduler.run_for(5_000.0)
        receiver.power_off()
        receiver.power_off()
        assert not receiver.powered

    def test_state_topic_published(self, scheduler, bus):
        states = []
        bus.subscribe(TOPIC_STATE, lambda t, s: states.append(s))
        receiver = self._receiver(scheduler, bus)
        receiver.power_on()
        receiver.power_off()
        assert states == ["on", "off"]

    def test_fix_carries_speed(self, scheduler, bus):
        receiver = self._receiver(scheduler, bus, time_to_first_fix_ms=0.0)
        receiver.power_on()
        scheduler.run_for(5_000.0)
        assert receiver.last_fix.speed_mps == pytest.approx(100.0, rel=0.05)

    def test_invalid_intervals_rejected(self, scheduler, bus):
        with pytest.raises(ConfigurationError):
            GpsReceiver(scheduler, bus, _line_trajectory(), fix_interval_ms=0.0)
        with pytest.raises(ConfigurationError):
            GpsReceiver(scheduler, bus, _line_trajectory(), time_to_first_fix_ms=-1.0)

    def test_set_trajectory_swaps_path(self, scheduler, bus):
        receiver = self._receiver(scheduler, bus, time_to_first_fix_ms=0.0)
        receiver.power_on()
        scheduler.run_for(2_000.0)
        parked = Trajectory([Waypoint(0.0, GeoPoint(50.0, 50.0))])
        receiver.set_trajectory(parked)
        scheduler.run_for(2_000.0)
        assert receiver.last_fix.point.distance_to_m(GeoPoint(50.0, 50.0)) < 100.0
