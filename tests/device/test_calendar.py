"""Tests for the device calendar store."""

import pytest
from hypothesis import given, strategies as st

from repro.device.calendar import CalendarStore, EventRecord
from repro.errors import SimulationError


@pytest.fixture
def store():
    return CalendarStore()


class TestCalendarStore:
    def test_add_and_get(self, store):
        record = store.add("Shift", 100.0, 200.0, location="plant")
        fetched = store.get(record.event_id)
        assert fetched.summary == "Shift"
        assert fetched.duration_ms == 100.0

    def test_empty_summary_rejected(self, store):
        with pytest.raises(ValueError):
            store.add("", 0.0, 1.0)

    def test_inverted_window_rejected(self, store):
        with pytest.raises(ValueError):
            store.add("X", 10.0, 5.0)

    def test_ordering_by_start_time(self, store):
        store.add("Late", 100.0, 200.0)
        store.add("Early", 0.0, 50.0)
        assert [r.summary for r in store.all()] == ["Early", "Late"]

    def test_between_half_open(self, store):
        store.add("A", 0.0, 100.0)
        store.add("B", 100.0, 200.0)
        # [100, 150) should touch B only: A ends exactly at 100.
        assert [r.summary for r in store.between(100.0, 150.0)] == ["B"]

    def test_between_overlap_rules(self, store):
        store.add("Spanning", 0.0, 1000.0)
        assert store.between(400.0, 500.0)  # window inside event
        assert store.between(900.0, 1100.0)  # partial overlap
        assert not store.between(1000.0, 1100.0)  # starts exactly at end

    def test_update_and_remove(self, store):
        from dataclasses import replace

        record = store.add("X", 0.0, 1.0)
        store.update(replace(record, summary="Y"))
        assert store.get(record.event_id).summary == "Y"
        store.remove(record.event_id)
        with pytest.raises(SimulationError):
            store.get(record.event_id)

    def test_unknown_ids_raise(self, store):
        with pytest.raises(SimulationError):
            store.remove("event-99")
        with pytest.raises(SimulationError):
            store.update(EventRecord("event-99", "X", 0.0, 1.0))

    def test_revision_tracking(self, store):
        record = store.add("X", 0.0, 1.0)
        store.remove(record.event_id)
        assert store.revision == 2

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=1e6),
                st.floats(min_value=0, max_value=1e6),
            ).map(lambda p: (min(p), max(p))),
            max_size=20,
        )
    )
    def test_between_agrees_with_overlap_predicate(self, windows):
        store = CalendarStore()
        for index, (start, end) in enumerate(windows):
            store.add(f"e{index}", start, end)
        probe_start, probe_end = 250_000.0, 750_000.0
        expected = [
            r for r in store.all() if r.overlaps(probe_start, probe_end)
        ]
        assert store.between(probe_start, probe_end) == expected
