"""Tests for the voice-call state machine."""

import pytest

from repro.device.telephony import CallState, TelephonyUnit, TOPIC_CALL_STATE
from repro.errors import SimulationError


@pytest.fixture
def unit(scheduler, bus):
    return TelephonyUnit(scheduler, bus)


class TestDialing:
    def test_answered_call_lifecycle(self, unit, scheduler):
        states = []
        session = unit.dial("+1", on_state=lambda s: states.append(s.state))
        assert session.state is CallState.DIALING
        scheduler.run_for(10_000.0)
        assert states == [CallState.RINGING, CallState.ACTIVE]
        assert session.answered_at_ms is not None

    def test_busy_callee(self, unit, scheduler):
        unit.set_callee_behavior("+1", TelephonyUnit.BUSY)
        session = unit.dial("+1")
        scheduler.run_for(10_000.0)
        assert session.state is CallState.BUSY
        assert session.is_terminal

    def test_unreachable_callee(self, unit, scheduler):
        unit.set_callee_behavior("+1", TelephonyUnit.UNREACHABLE)
        session = unit.dial("+1")
        scheduler.run_for(10_000.0)
        assert session.state is CallState.UNREACHABLE

    def test_no_answer_times_out(self, unit, scheduler):
        unit.set_callee_behavior("+1", TelephonyUnit.NO_ANSWER)
        session = unit.dial("+1")
        scheduler.run_for(60_000.0)
        assert session.state is CallState.ENDED
        assert session.answered_at_ms is None

    def test_unknown_behavior_rejected(self, unit):
        with pytest.raises(ValueError):
            unit.set_callee_behavior("+1", "explode")

    def test_empty_number_rejected(self, unit):
        with pytest.raises(ValueError):
            unit.dial("")


class TestVoiceChannel:
    def test_single_channel(self, unit, scheduler):
        unit.dial("+1")
        with pytest.raises(SimulationError):
            unit.dial("+2")

    def test_channel_frees_after_terminal(self, unit, scheduler):
        unit.set_callee_behavior("+1", TelephonyUnit.BUSY)
        unit.dial("+1")
        scheduler.run_for(10_000.0)
        assert unit.active_call is None
        unit.dial("+2")  # no error

    def test_hang_up_active_call(self, unit, scheduler):
        session = unit.dial("+1")
        scheduler.run_for(10_000.0)
        assert session.state is CallState.ACTIVE
        unit.hang_up(session)
        assert session.state is CallState.ENDED
        assert session.duration_ms is not None

    def test_hang_up_while_dialing(self, unit, scheduler):
        session = unit.dial("+1")
        unit.hang_up(session)
        scheduler.run_for(10_000.0)
        assert session.state is CallState.ENDED
        assert session.answered_at_ms is None

    def test_hang_up_terminal_is_noop(self, unit, scheduler):
        session = unit.dial("+1")
        unit.hang_up(session)
        unit.hang_up(session)
        assert session.state is CallState.ENDED


class TestSessions:
    def test_duration_only_for_answered(self, unit, scheduler):
        unit.set_callee_behavior("+1", TelephonyUnit.BUSY)
        session = unit.dial("+1")
        scheduler.run_for(10_000.0)
        assert session.duration_ms is None

    def test_duration_measures_talk_time(self, unit, scheduler):
        session = unit.dial("+1")
        scheduler.run_for(10_000.0)  # answered at dial+ring
        scheduler.run_for(30_000.0)
        unit.hang_up(session)
        expected = scheduler.clock.now_ms - session.answered_at_ms
        assert session.duration_ms == pytest.approx(expected, abs=1.0)
        assert session.duration_ms >= 30_000.0

    def test_state_history_recorded(self, unit, scheduler):
        session = unit.dial("+1")
        scheduler.run_for(10_000.0)
        unit.hang_up(session)
        assert session.state_history == [
            CallState.DIALING,
            CallState.RINGING,
            CallState.ACTIVE,
            CallState.ENDED,
        ]

    def test_session_lookup(self, unit, scheduler):
        session = unit.dial("+1")
        assert unit.session(session.call_id) is session
        with pytest.raises(SimulationError):
            unit.session("nope")

    def test_bus_publishes_state_changes(self, unit, scheduler, bus):
        events = []
        bus.subscribe(TOPIC_CALL_STATE, lambda t, s: events.append(s.state))
        unit.dial("+1")
        scheduler.run_for(10_000.0)
        assert CallState.RINGING in events and CallState.ACTIVE in events
