"""Energy-accounting integration: substrates drain the battery."""

import pytest

from repro.apps.workforce import scenario
from repro.apps.workforce.proxied import launch_on_android


class TestEnergyAccounting:
    def test_native_operations_drain_battery(self, android_scenario):
        sc = android_scenario
        start = sc.device.battery.level_mwh
        context = sc.new_context()
        manager = sc.platform.sms_manager(context)
        manager.send_text_message("+2", None, "hi")
        assert sc.device.battery.level_mwh < start
        report = sc.device.battery.drain_report()
        assert "android.sendSMS" in report

    def test_gps_fixes_drain_battery(self, android_scenario):
        sc = android_scenario
        sc.device.gps.power_on()
        sc.platform.run_for(60_000.0)
        report = sc.device.battery.drain_report()
        assert report.get("gps.fix", 0.0) > 0.0

    def test_full_app_run_attributes_energy(self):
        sc = scenario.build_android()
        launch_on_android(sc.platform, sc.new_context(), sc.config)
        sc.platform.run_for(200_000.0)
        report = sc.device.battery.drain_report()
        # GPS dominates a 200-second tracking run.
        assert report["gps.fix"] > report.get("android.sendSMS", 0.0)
        assert sc.device.battery.fraction < 1.0

    def test_drain_proportional_to_latency(self, android_scenario):
        """Slower native ops cost more energy than faster ones."""
        sc = android_scenario
        context = sc.new_context()
        manager = context.get_system_service(
            __import__("repro.platforms.android.context", fromlist=["Context"]).Context.LOCATION_SERVICE
        )
        manager.get_current_location("gps")  # 15.5 ms op
        report = sc.device.battery.drain_report()
        expected = 15.5 * sc.platform.DRAIN_MWH_PER_MS
        assert report["android.getLocation"] == pytest.approx(expected, rel=0.01)

    def test_heavy_use_triggers_low_battery_signal(self):
        from repro.device.battery import Battery

        sc = scenario.build_android()
        sc.device.battery.capacity_mwh = 10.0
        sc.device.battery.level_mwh = 10.0
        fired = []
        sc.device.battery.on_low.connect(fired.append)
        sc.device.gps.power_on()
        sc.platform.run_for(60_000.0)  # 60 fixes * 0.25 mWh = 15 mWh > 10
        assert fired
        assert sc.device.battery.is_empty
