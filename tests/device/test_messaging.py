"""Tests (incl. property-based segmentation) for the SMS center."""

import pytest
from hypothesis import given, strategies as st

from repro.device.messaging import (
    CONCAT_SEGMENT_CHARS,
    DeliveryStatus,
    SINGLE_SEGMENT_CHARS,
    SmsCenter,
    TOPIC_SMS_DELIVERED,
    TOPIC_SMS_REPORT,
    segment_count,
    split_segments,
)
from repro.errors import SimulationError


@pytest.fixture
def center(scheduler, bus):
    return SmsCenter(scheduler, bus, per_segment_latency_ms=800.0)


class TestSegmentation:
    def test_short_message_single_segment(self):
        assert segment_count("hello") == 1

    def test_boundary_160_is_one_segment(self):
        assert segment_count("x" * SINGLE_SEGMENT_CHARS) == 1

    def test_161_needs_two_segments(self):
        assert segment_count("x" * (SINGLE_SEGMENT_CHARS + 1)) == 2

    def test_long_message_segments(self):
        assert segment_count("x" * (CONCAT_SEGMENT_CHARS * 3)) == 3

    @given(st.text(min_size=0, max_size=2_000))
    def test_segments_reassemble(self, text):
        assert "".join(split_segments(text)) == text

    @given(st.text(min_size=161, max_size=2_000))
    def test_concat_segments_bounded(self, text):
        segments = split_segments(text)
        assert all(len(s) <= CONCAT_SEGMENT_CHARS for s in segments)
        assert len(segments) == segment_count(text)

    @given(st.text(min_size=0, max_size=160))
    def test_short_never_splits(self, text):
        assert split_segments(text) == [text]


class TestDelivery:
    def test_delivery_to_attached_inbox(self, center, scheduler):
        received = []
        center.attach("+2", received.append)
        message = center.submit("+1", "+2", "hi")
        assert message.status is DeliveryStatus.PENDING
        scheduler.run_for(1_000.0)
        assert message.status is DeliveryStatus.DELIVERED
        assert [m.text for m in received] == ["hi"]

    def test_latency_scales_with_segments(self, center, scheduler):
        long_text = "x" * 400  # 3 segments
        message = center.submit("+1", "+2", long_text)
        scheduler.run_for(2_399.0)
        assert message.status is DeliveryStatus.PENDING
        scheduler.run_for(1.0)
        assert message.status is DeliveryStatus.DELIVERED

    def test_multiple_inboxes_per_number(self, center, scheduler):
        first, second = [], []
        center.attach("+2", first.append)
        center.attach("+2", second.append)
        center.submit("+1", "+2", "hi")
        scheduler.run_for(1_000.0)
        assert len(first) == 1 and len(second) == 1

    def test_unreachable_recipient_fails(self, center, scheduler):
        center.set_unreachable("+2")
        reports = []
        message = center.submit("+1", "+2", "hi", on_report=reports.append)
        scheduler.run_for(1_000.0)
        assert message.status is DeliveryStatus.FAILED
        assert reports[0].status is DeliveryStatus.FAILED
        assert reports[0].failure_reason

    def test_reachability_can_be_restored(self, center, scheduler):
        center.set_unreachable("+2")
        center.set_unreachable("+2", False)
        message = center.submit("+1", "+2", "hi")
        scheduler.run_for(1_000.0)
        assert message.status is DeliveryStatus.DELIVERED

    def test_delivery_report_callback(self, center, scheduler):
        reports = []
        center.submit("+1", "+2", "hi", on_report=reports.append)
        scheduler.run_for(1_000.0)
        assert len(reports) == 1
        assert reports[0].status is DeliveryStatus.DELIVERED

    def test_bus_topics(self, center, scheduler, bus):
        seen = []
        bus.subscribe("sms.*", lambda t, p: seen.append(t))
        center.attach("+2", lambda m: None)
        center.submit("+1", "+2", "hi")
        scheduler.run_for(1_000.0)
        assert TOPIC_SMS_DELIVERED in seen
        assert TOPIC_SMS_REPORT in seen

    def test_inbox_log(self, center, scheduler):
        center.submit("+1", "+2", "first")
        center.submit("+1", "+2", "second")
        scheduler.run_for(2_000.0)
        assert [m.text for m in center.inbox_of("+2")] == ["first", "second"]

    def test_message_lookup(self, center, scheduler):
        message = center.submit("+1", "+2", "hi")
        assert center.message(message.message_id) is message
        with pytest.raises(SimulationError):
            center.message("nope")

    def test_empty_recipient_rejected(self, center):
        with pytest.raises(ValueError):
            center.submit("+1", "", "hi")

    def test_none_text_rejected(self, center):
        with pytest.raises(ValueError):
            center.submit("+1", "+2", None)

    def test_detach_stops_callbacks(self, center, scheduler):
        received = []
        center.attach("+2", received.append)
        center.detach("+2")
        center.submit("+1", "+2", "hi")
        scheduler.run_for(1_000.0)
        assert received == []
