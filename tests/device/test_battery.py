"""Tests for the battery accounting model."""

import pytest

from repro.device.battery import Battery


class TestBattery:
    def test_full_at_start(self):
        battery = Battery(capacity_mwh=1_000.0, level_mwh=1_000.0)
        assert battery.fraction == 1.0
        assert not battery.is_low

    def test_drain_reduces_level(self):
        battery = Battery(capacity_mwh=1_000.0, level_mwh=1_000.0)
        battery.drain("gps", 100.0)
        assert battery.level_mwh == 900.0

    def test_drain_floors_at_zero(self):
        battery = Battery(capacity_mwh=100.0, level_mwh=100.0)
        battery.drain("radio", 500.0)
        assert battery.level_mwh == 0.0
        assert battery.is_empty

    def test_negative_drain_rejected(self):
        with pytest.raises(ValueError):
            Battery().drain("x", -1.0)

    def test_drain_report_by_operation(self):
        battery = Battery()
        battery.drain("gps", 10.0)
        battery.drain("gps", 5.0)
        battery.drain("radio", 2.0)
        assert battery.drain_report() == {"gps": 15.0, "radio": 2.0}

    def test_low_signal_fires_once(self):
        battery = Battery(capacity_mwh=100.0, level_mwh=100.0, low_threshold_fraction=0.5)
        fired = []
        battery.on_low.connect(fired.append)
        battery.drain("x", 60.0)
        battery.drain("x", 10.0)
        assert len(fired) == 1

    def test_recharge_rearms_signal(self):
        battery = Battery(capacity_mwh=100.0, level_mwh=100.0, low_threshold_fraction=0.5)
        fired = []
        battery.on_low.connect(fired.append)
        battery.drain("x", 60.0)
        battery.recharge()
        assert battery.fraction == 1.0
        battery.drain("x", 60.0)
        assert len(fired) == 2

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ValueError):
            Battery(capacity_mwh=0.0)
        with pytest.raises(ValueError):
            Battery(low_threshold_fraction=1.5)

    def test_level_clamped_to_capacity(self):
        battery = Battery(capacity_mwh=100.0, level_mwh=500.0)
        assert battery.level_mwh == 100.0
