"""Tests for the device contact store."""

import pytest

from repro.device.pim import ContactStore
from repro.errors import SimulationError


@pytest.fixture
def store():
    return ContactStore()


class TestContactStore:
    def test_add_and_get(self, store):
        record = store.add("Alice", ("+1",), email="a@x")
        assert store.get(record.contact_id).display_name == "Alice"
        assert len(store) == 1

    def test_empty_name_rejected(self, store):
        with pytest.raises(ValueError):
            store.add("")

    def test_ids_unique_and_sequential(self, store):
        first = store.add("A")
        second = store.add("B")
        assert first.contact_id != second.contact_id

    def test_deterministic_ordering(self, store):
        store.add("Zed")
        store.add("Alice")
        store.add("Mallory")
        assert [r.display_name for r in store.all()] == ["Alice", "Mallory", "Zed"]

    def test_find_by_name_case_insensitive(self, store):
        store.add("Region Supervisor")
        assert len(store.find_by_name("super")) == 1
        assert store.find_by_name("SUPER")[0].display_name == "Region Supervisor"
        assert store.find_by_name("ghost") == []

    def test_find_by_number(self, store):
        store.add("Alice", ("+1", "+2"))
        assert store.find_by_number("+2").display_name == "Alice"
        assert store.find_by_number("+99") is None

    def test_update_replaces(self, store):
        record = store.add("Alice")
        store.update(record.with_number("+5"))
        assert store.get(record.contact_id).phone_numbers == ("+5",)

    def test_update_unknown_rejected(self, store):
        from repro.device.pim import ContactRecord

        with pytest.raises(SimulationError):
            store.update(ContactRecord("ghost", "X"))

    def test_remove(self, store):
        record = store.add("Alice")
        store.remove(record.contact_id)
        assert len(store) == 0
        with pytest.raises(SimulationError):
            store.remove(record.contact_id)

    def test_revision_bumps_on_mutation(self, store):
        assert store.revision == 0
        record = store.add("A")
        store.update(record.with_number("+1"))
        store.remove(record.contact_id)
        assert store.revision == 3

    def test_with_number_idempotent(self, store):
        record = store.add("A", ("+1",))
        assert record.with_number("+1") is record
