"""Tests for the composed device and profiles."""

import pytest

from repro.device.device import MobileDevice
from repro.device.messaging import SmsCenter
from repro.device.network import SimulatedNetwork
from repro.device.profiles import (
    ANDROID_DEV_PHONE,
    DeviceProfile,
    InputMode,
    NOKIA_S60_HANDSET,
)
from repro.util.clock import Scheduler


class TestDeviceProfile:
    def test_defaults(self):
        profile = DeviceProfile(name="test")
        assert profile.has_gps
        assert profile.input_mode is InputMode.TOUCH

    def test_aspect_ratio(self):
        profile = DeviceProfile(name="t", screen_width_px=320, screen_height_px=480)
        assert profile.aspect_ratio == pytest.approx(320 / 480)

    def test_supports_bearer(self):
        assert ANDROID_DEV_PHONE.supports("wifi")
        assert not DeviceProfile(name="t").supports("wifi")

    def test_invalid_screen_rejected(self):
        with pytest.raises(ValueError):
            DeviceProfile(name="t", screen_width_px=0)

    def test_s60_has_smaller_binary_limit(self):
        assert NOKIA_S60_HANDSET.max_app_binary_kb < ANDROID_DEV_PHONE.max_app_binary_kb


class TestMobileDevice:
    def test_requires_phone_number(self):
        with pytest.raises(ValueError):
            MobileDevice("")

    def test_shared_clock(self, device):
        assert device.clock is device.scheduler.clock

    def test_inbox_receives_delivered_sms(self, device):
        device.sms_center.submit("+1", device.phone_number, "hi")
        device.run_for(2_000.0)
        assert [m.text for m in device.inbox] == ["hi"]

    def test_two_devices_share_sms_center(self):
        scheduler = Scheduler()
        from repro.util.events import EventBus

        center = SmsCenter(scheduler, EventBus())
        network = SimulatedNetwork(scheduler)
        alice = MobileDevice("+1", sms_center=center, network=network, scheduler=scheduler)
        bob = MobileDevice("+2", sms_center=center, network=network, scheduler=scheduler)
        alice.sms_center.submit(alice.phone_number, "+2", "hello bob")
        scheduler.run_for(2_000.0)
        assert [m.text for m in bob.inbox] == ["hello bob"]
        assert alice.inbox == []

    def test_run_for_advances_clock(self, device):
        device.run_for(1_234.0)
        assert device.clock.now_ms == 1_234.0

    def test_gps_uses_device_trajectory(self, device):
        device.gps.power_on()
        device.run_for(5_000.0)
        assert device.gps.last_fix is not None
