"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.apps.workforce import scenario
from repro.device.device import MobileDevice
from repro.device.gps import Trajectory, Waypoint
from repro.util.clock import Scheduler, SimulatedClock
from repro.util.events import EventBus
from repro.util.geo import GeoPoint, destination_point

#: The canonical site/away points used across tests.
SITE_POINT = GeoPoint(28.6, 77.2)
AWAY_POINT = destination_point(28.6, 77.2, 90.0, 2_000.0)


@pytest.fixture
def clock():
    return SimulatedClock()


@pytest.fixture
def scheduler(clock):
    return Scheduler(clock)


@pytest.fixture
def bus():
    return EventBus()


@pytest.fixture
def commute_trajectory():
    """away → site → away → site over three minutes."""
    return Trajectory(
        [
            Waypoint(0.0, AWAY_POINT),
            Waypoint(60_000.0, SITE_POINT),
            Waypoint(120_000.0, AWAY_POINT),
            Waypoint(180_000.0, SITE_POINT),
        ]
    )


@pytest.fixture
def device(commute_trajectory):
    return MobileDevice("+915550042", trajectory=commute_trajectory)


@pytest.fixture
def android_scenario():
    return scenario.build_android()


@pytest.fixture
def s60_scenario():
    return scenario.build_s60()


@pytest.fixture
def webview_scenario():
    return scenario.build_webview()
