"""Tests for deterministic identifier generation."""

import pytest

from repro.util.identifiers import IdGenerator


class TestIdGenerator:
    def test_sequential_ids(self):
        gen = IdGenerator()
        assert gen.next("sms") == "sms-1"
        assert gen.next("sms") == "sms-2"

    def test_independent_prefixes(self):
        gen = IdGenerator()
        gen.next("a")
        gen.next("a")
        assert gen.next("b") == "b-1"

    def test_empty_prefix_rejected(self):
        with pytest.raises(ValueError):
            IdGenerator().next("")

    def test_peek_count(self):
        gen = IdGenerator()
        assert gen.peek_count("x") == 0
        gen.next("x")
        gen.next("x")
        assert gen.peek_count("x") == 2

    def test_two_generators_are_independent(self):
        first, second = IdGenerator(), IdGenerator()
        first.next("t")
        assert second.next("t") == "t-1"
