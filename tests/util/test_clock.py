"""Tests for the virtual clock and scheduler."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ClockError
from repro.util.clock import Scheduler, SimulatedClock


class TestSimulatedClock:
    def test_starts_at_zero(self):
        assert SimulatedClock().now_ms == 0.0

    def test_starts_at_given_time(self):
        assert SimulatedClock(500.0).now_ms == 500.0

    def test_negative_start_rejected(self):
        with pytest.raises(ClockError):
            SimulatedClock(-1.0)

    def test_advance(self):
        clock = SimulatedClock()
        assert clock.advance(250.0) == 250.0
        assert clock.now_ms == 250.0

    def test_advance_negative_rejected(self):
        with pytest.raises(ClockError):
            SimulatedClock().advance(-1.0)

    def test_advance_to(self):
        clock = SimulatedClock()
        clock.advance_to(100.0)
        assert clock.now_ms == 100.0

    def test_advance_to_past_rejected(self):
        clock = SimulatedClock(100.0)
        with pytest.raises(ClockError):
            clock.advance_to(50.0)

    def test_now_s(self):
        clock = SimulatedClock(1_500.0)
        assert clock.now_s() == 1.5

    @given(st.lists(st.floats(min_value=0.0, max_value=1e6), max_size=20))
    def test_advance_is_cumulative(self, deltas):
        clock = SimulatedClock()
        for delta in deltas:
            clock.advance(delta)
        assert clock.now_ms == pytest.approx(sum(deltas))


class TestScheduler:
    def test_call_later_runs_at_deadline(self, scheduler):
        fired = []
        scheduler.call_later(100.0, lambda: fired.append(scheduler.clock.now_ms))
        scheduler.run_for(99.0)
        assert fired == []
        scheduler.run_for(1.0)
        assert fired == [100.0]

    def test_call_at_absolute(self, scheduler):
        fired = []
        scheduler.call_at(50.0, lambda: fired.append(True))
        scheduler.run_until(50.0)
        assert fired == [True]

    def test_call_at_past_rejected(self, scheduler):
        scheduler.clock.advance(10.0)
        with pytest.raises(ClockError):
            scheduler.call_at(5.0, lambda: None)

    def test_negative_delay_rejected(self, scheduler):
        with pytest.raises(ClockError):
            scheduler.call_later(-1.0, lambda: None)

    def test_fifo_order_for_same_instant(self, scheduler):
        order = []
        scheduler.call_at(10.0, lambda: order.append("a"))
        scheduler.call_at(10.0, lambda: order.append("b"))
        scheduler.call_at(10.0, lambda: order.append("c"))
        scheduler.run_until(10.0)
        assert order == ["a", "b", "c"]

    def test_time_order(self, scheduler):
        order = []
        scheduler.call_at(30.0, lambda: order.append("late"))
        scheduler.call_at(10.0, lambda: order.append("early"))
        scheduler.run_until(100.0)
        assert order == ["early", "late"]

    def test_cancel_prevents_firing(self, scheduler):
        fired = []
        task = scheduler.call_later(10.0, lambda: fired.append(True))
        task.cancel()
        scheduler.run_for(20.0)
        assert fired == []

    def test_periodic_fires_repeatedly(self, scheduler):
        fired = []
        scheduler.call_every(10.0, lambda: fired.append(scheduler.clock.now_ms))
        scheduler.run_for(35.0)
        assert fired == [10.0, 20.0, 30.0]

    def test_periodic_initial_delay(self, scheduler):
        fired = []
        scheduler.call_every(10.0, lambda: fired.append(scheduler.clock.now_ms), initial_delay_ms=3.0)
        scheduler.run_for(25.0)
        assert fired == [3.0, 13.0, 23.0]

    def test_periodic_cancel_stops_series(self, scheduler):
        fired = []
        task = scheduler.call_every(10.0, lambda: fired.append(True))
        scheduler.run_for(25.0)
        task.cancel()
        scheduler.run_for(50.0)
        assert len(fired) == 2

    def test_periodic_zero_period_rejected(self, scheduler):
        with pytest.raises(ClockError):
            scheduler.call_every(0.0, lambda: None)

    def test_callback_scheduling_more_work(self, scheduler):
        fired = []

        def first():
            fired.append("first")
            scheduler.call_later(5.0, lambda: fired.append("second"))

        scheduler.call_later(10.0, first)
        scheduler.run_for(20.0)
        assert fired == ["first", "second"]

    def test_callback_advancing_clock_does_not_break_run(self, scheduler):
        # Callbacks may charge virtual latency synchronously.
        scheduler.call_later(10.0, lambda: scheduler.clock.advance(500.0))
        scheduler.run_for(20.0)
        assert scheduler.clock.now_ms == 510.0

    def test_run_until_past_rejected(self, scheduler):
        scheduler.clock.advance(100.0)
        with pytest.raises(ClockError):
            scheduler.run_until(50.0)

    def test_run_returns_executed_count(self, scheduler):
        scheduler.call_later(1.0, lambda: None)
        scheduler.call_later(2.0, lambda: None)
        assert scheduler.run_for(10.0) == 2

    def test_pending_count(self, scheduler):
        task = scheduler.call_later(10.0, lambda: None)
        scheduler.call_later(20.0, lambda: None)
        assert scheduler.pending_count() == 2
        task.cancel()
        assert scheduler.pending_count() == 1

    def test_next_deadline(self, scheduler):
        assert scheduler.next_deadline_ms() is None
        scheduler.call_later(42.0, lambda: None)
        assert scheduler.next_deadline_ms() == 42.0

    def test_drain_runs_everything(self, scheduler):
        fired = []
        scheduler.call_later(5.0, lambda: fired.append(1))
        scheduler.call_later(500.0, lambda: fired.append(2))
        scheduler.drain()
        assert fired == [1, 2]

    def test_drain_guards_against_periodic_runaway(self, scheduler):
        scheduler.call_every(1.0, lambda: None)
        with pytest.raises(ClockError):
            scheduler.drain(max_tasks=100)

    @given(st.lists(st.floats(min_value=0.1, max_value=1e5), min_size=1, max_size=30))
    def test_tasks_fire_in_nondecreasing_time_order(self, delays):
        scheduler = Scheduler()
        fire_times = []
        for delay in delays:
            scheduler.call_later(delay, lambda: fire_times.append(scheduler.clock.now_ms))
        scheduler.run_until(max(delays) + 1.0)
        assert fire_times == sorted(fire_times)
        assert len(fire_times) == len(delays)
