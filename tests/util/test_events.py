"""Tests for the event bus and typed signals."""

from repro.util.events import EventBus, TypedSignal


class TestEventBus:
    def test_exact_topic_delivery(self, bus):
        received = []
        bus.subscribe("gps.fix", lambda topic, payload: received.append(payload))
        assert bus.publish("gps.fix", 42) == 1
        assert received == [42]

    def test_non_matching_topic_not_delivered(self, bus):
        received = []
        bus.subscribe("gps.fix", lambda t, p: received.append(p))
        assert bus.publish("radio.sms", 1) == 0
        assert received == []

    def test_glob_pattern(self, bus):
        received = []
        bus.subscribe("radio.*", lambda t, p: received.append(t))
        bus.publish("radio.sms", None)
        bus.publish("radio.call", None)
        bus.publish("gps.fix", None)
        assert received == ["radio.sms", "radio.call"]

    def test_delivery_in_subscription_order(self, bus):
        order = []
        bus.subscribe("t", lambda t, p: order.append("first"))
        bus.subscribe("t", lambda t, p: order.append("second"))
        bus.publish("t")
        assert order == ["first", "second"]

    def test_unsubscribe(self, bus):
        received = []
        sub = bus.subscribe("t", lambda t, p: received.append(p))
        bus.publish("t", 1)
        sub.unsubscribe()
        bus.publish("t", 2)
        assert received == [1]

    def test_unsubscribe_idempotent(self, bus):
        sub = bus.subscribe("t", lambda t, p: None)
        sub.unsubscribe()
        sub.unsubscribe()  # no error
        assert bus.subscriber_count("t") == 0

    def test_subscriber_count(self, bus):
        bus.subscribe("a.*", lambda t, p: None)
        bus.subscribe("a.b", lambda t, p: None)
        assert bus.subscriber_count("a.b") == 2
        assert bus.subscriber_count("c") == 0

    def test_subscribe_during_delivery_not_called_this_publish(self, bus):
        received = []

        def handler(topic, payload):
            received.append("outer")
            bus.subscribe("t", lambda t, p: received.append("inner"))

        bus.subscribe("t", handler)
        bus.publish("t")
        assert received == ["outer"]
        bus.publish("t")
        assert received.count("inner") == 1

    def test_published_topics_log(self, bus):
        bus.publish("a")
        bus.publish("b")
        assert bus.published_topics == ["a", "b"]
        bus.clear_log()
        assert bus.published_topics == []


class TestTypedSignal:
    def test_emit_calls_handlers(self):
        signal = TypedSignal("test")
        values = []
        signal.connect(values.append)
        assert signal.emit(7) == 1
        assert values == [7]

    def test_disconnect(self):
        signal = TypedSignal()
        values = []
        disconnect = signal.connect(values.append)
        disconnect()
        signal.emit(1)
        assert values == []

    def test_len_counts_handlers(self):
        signal = TypedSignal()
        signal.connect(lambda: None)
        signal.connect(lambda: None)
        assert len(signal) == 2

    def test_kwargs_pass_through(self):
        signal = TypedSignal()
        seen = {}
        signal.connect(lambda **kw: seen.update(kw))
        signal.emit(level=0.5)
        assert seen == {"level": 0.5}
