"""Tests for the latency model."""

import pytest

from repro.util.latency import LatencyModel


class TestLatencyModel:
    def test_deterministic_without_jitter(self):
        model = LatencyModel(mean_ms={"op": 50.0})
        assert model.draw("op") == 50.0
        assert model.draw("op") == 50.0

    def test_default_for_unknown_operation(self):
        model = LatencyModel(default_ms=3.0)
        assert model.draw("anything") == 3.0

    def test_history_records_samples(self):
        model = LatencyModel(mean_ms={"a": 1.0, "b": 2.0})
        model.draw("a")
        model.draw("b")
        assert [s.operation for s in model.history] == ["a", "b"]
        assert [s.latency_ms for s in model.history] == [1.0, 2.0]

    def test_jitter_varies_but_stays_positive(self):
        model = LatencyModel(mean_ms={"op": 100.0}, jitter_fraction=0.5, seed=1)
        draws = [model.draw("op") for _ in range(200)]
        assert all(d >= 0.0 for d in draws)
        assert len(set(draws)) > 100  # actually varying

    def test_jitter_seeded_reproducibly(self):
        a = LatencyModel(mean_ms={"op": 100.0}, jitter_fraction=0.1, seed=42)
        b = LatencyModel(mean_ms={"op": 100.0}, jitter_fraction=0.1, seed=42)
        assert [a.draw("op") for _ in range(20)] == [b.draw("op") for _ in range(20)]

    def test_negative_jitter_rejected(self):
        with pytest.raises(ValueError):
            LatencyModel(jitter_fraction=-0.1)

    def test_negative_mean_rejected(self):
        with pytest.raises(ValueError):
            LatencyModel(mean_ms={"op": -1.0})

    def test_negative_default_rejected(self):
        with pytest.raises(ValueError):
            LatencyModel(default_ms=-1.0)

    def test_mean_for(self):
        model = LatencyModel(mean_ms={"op": 9.0}, default_ms=1.0)
        assert model.mean_for("op") == 9.0
        assert model.mean_for("other") == 1.0

    def test_merged_with_overrides(self):
        base = LatencyModel(mean_ms={"a": 1.0, "b": 2.0})
        merged = base.merged_with({"b": 20.0, "c": 3.0})
        assert merged.mean_for("a") == 1.0
        assert merged.mean_for("b") == 20.0
        assert merged.mean_for("c") == 3.0
        assert base.mean_for("b") == 2.0  # original untouched

    def test_zero_mean_never_jitters(self):
        model = LatencyModel(mean_ms={"op": 0.0}, jitter_fraction=0.5, seed=0)
        assert model.draw("op") == 0.0
