"""Tests (incl. property-based) for the geodesic helpers."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.util.geo import (
    GeoPoint,
    bearing_deg,
    destination_point,
    haversine_m,
    interpolate,
)

#: Strategies for valid coordinates (away from the poles, where bearing
#: math degenerates).
lat = st.floats(min_value=-80.0, max_value=80.0)
lon = st.floats(min_value=-179.0, max_value=179.0)


class TestGeoPoint:
    def test_valid_construction(self):
        point = GeoPoint(28.6, 77.2, 100.0)
        assert point.latitude == 28.6
        assert point.altitude == 100.0

    @pytest.mark.parametrize("bad_lat", [-90.1, 91.0, 180.0])
    def test_bad_latitude_rejected(self, bad_lat):
        with pytest.raises(ValueError):
            GeoPoint(bad_lat, 0.0)

    @pytest.mark.parametrize("bad_lon", [-180.1, 181.0])
    def test_bad_longitude_rejected(self, bad_lon):
        with pytest.raises(ValueError):
            GeoPoint(0.0, bad_lon)

    def test_distance_to_self_is_zero(self):
        point = GeoPoint(10.0, 20.0)
        assert point.distance_to_m(point) == 0.0

    def test_known_distance(self):
        # One degree of latitude is ~111.2 km.
        assert haversine_m(0.0, 0.0, 1.0, 0.0) == pytest.approx(111_195, rel=0.01)


class TestHaversine:
    @given(lat, lon, lat, lon)
    def test_symmetry(self, lat1, lon1, lat2, lon2):
        d_ab = haversine_m(lat1, lon1, lat2, lon2)
        d_ba = haversine_m(lat2, lon2, lat1, lon1)
        assert d_ab == pytest.approx(d_ba, abs=1e-6)

    @given(lat, lon)
    def test_identity(self, latitude, longitude):
        assert haversine_m(latitude, longitude, latitude, longitude) == 0.0

    @given(lat, lon, lat, lon)
    def test_non_negative(self, lat1, lon1, lat2, lon2):
        assert haversine_m(lat1, lon1, lat2, lon2) >= 0.0


class TestDestinationPoint:
    @given(lat, lon, st.floats(min_value=0.0, max_value=359.9),
           st.floats(min_value=1.0, max_value=100_000.0))
    def test_round_trip_distance(self, latitude, longitude, bearing, distance):
        """Travelling D metres lands D metres away (spherical model)."""
        target = destination_point(latitude, longitude, bearing, distance)
        measured = haversine_m(latitude, longitude, target.latitude, target.longitude)
        assert measured == pytest.approx(distance, rel=1e-3)

    def test_eastward_increases_longitude(self):
        target = destination_point(0.0, 0.0, 90.0, 10_000.0)
        assert target.longitude > 0.0
        assert abs(target.latitude) < 0.01

    def test_northward_increases_latitude(self):
        target = destination_point(0.0, 0.0, 0.0, 10_000.0)
        assert target.latitude > 0.0


class TestBearing:
    def test_due_north(self):
        assert bearing_deg(0.0, 0.0, 1.0, 0.0) == pytest.approx(0.0, abs=0.1)

    def test_due_east(self):
        assert bearing_deg(0.0, 0.0, 0.0, 1.0) == pytest.approx(90.0, abs=0.1)

    @given(lat, lon, lat, lon)
    def test_in_range(self, lat1, lon1, lat2, lon2):
        bearing = bearing_deg(lat1, lon1, lat2, lon2)
        assert 0.0 <= bearing < 360.0


class TestInterpolate:
    def test_endpoints(self):
        a = GeoPoint(0.0, 0.0, 0.0)
        b = GeoPoint(10.0, 20.0, 100.0)
        assert interpolate(a, b, 0.0) == a
        assert interpolate(a, b, 1.0) == b

    def test_midpoint(self):
        a = GeoPoint(0.0, 0.0, 0.0)
        b = GeoPoint(10.0, 20.0, 100.0)
        mid = interpolate(a, b, 0.5)
        assert mid.latitude == pytest.approx(5.0)
        assert mid.longitude == pytest.approx(10.0)
        assert mid.altitude == pytest.approx(50.0)

    def test_out_of_range_rejected(self):
        a = GeoPoint(0.0, 0.0)
        with pytest.raises(ValueError):
            interpolate(a, a, 1.5)

    @given(lat, lon, lat, lon, st.floats(min_value=0.0, max_value=1.0))
    def test_interpolated_point_between_bounds(self, lat1, lon1, lat2, lon2, f):
        a, b = GeoPoint(lat1, lon1), GeoPoint(lat2, lon2)
        mid = interpolate(a, b, f)
        assert min(lat1, lat2) - 1e-9 <= mid.latitude <= max(lat1, lat2) + 1e-9
        assert min(lon1, lon2) - 1e-9 <= mid.longitude <= max(lon1, lon2) + 1e-9
