"""Tests for Intent / IntentReceiver broadcast machinery."""

import pytest

from repro.platforms.android.exceptions import IllegalArgumentException
from repro.platforms.android.intents import (
    BroadcastRegistry,
    FunctionIntentReceiver,
    Intent,
    IntentFilter,
    IntentReceiver,
    PendingIntent,
)


class TestIntent:
    def test_action_round_trip(self):
        intent = Intent("my.ACTION")
        assert intent.get_action() == "my.ACTION"
        intent.set_action("other")
        assert intent.get_action() == "other"

    def test_extras_typed_accessors(self):
        intent = Intent("a").put_extra("flag", True).put_extra("value", 2.5)
        assert intent.get_boolean_extra("flag", False) is True
        assert intent.get_double_extra("value", 0.0) == 2.5
        assert intent.get_boolean_extra("missing", True) is True

    def test_string_extra(self):
        intent = Intent("a").put_extra("name", "x")
        assert intent.get_string_extra("name") == "x"
        assert intent.get_string_extra("missing") is None

    def test_empty_extra_key_rejected(self):
        with pytest.raises(IllegalArgumentException):
            Intent("a").put_extra("", 1)

    def test_copy_is_independent(self):
        intent = Intent("a").put_extra("k", 1)
        duplicate = intent.copy()
        duplicate.put_extra("k", 2)
        assert intent.get_extra("k") == 1

    def test_extras_returns_copy(self):
        intent = Intent("a").put_extra("k", 1)
        intent.extras()["k"] = 99
        assert intent.get_extra("k") == 1


class TestPendingIntent:
    def test_wraps_intent(self):
        inner = Intent("a")
        pending = PendingIntent.get_broadcast(None, 0, inner)
        assert pending.intent is inner

    def test_requires_intent(self):
        with pytest.raises(IllegalArgumentException):
            PendingIntent("broadcast", "not an intent")

    def test_cancel(self):
        pending = PendingIntent.get_broadcast(None, 0, Intent("a"))
        assert not pending.cancelled
        pending.cancel()
        assert pending.cancelled


class TestIntentFilter:
    def test_matches_action(self):
        intent_filter = IntentFilter("a")
        assert intent_filter.matches(Intent("a"))
        assert not intent_filter.matches(Intent("b"))

    def test_multiple_actions(self):
        intent_filter = IntentFilter("a")
        intent_filter.add_action("b")
        assert intent_filter.matches(Intent("b"))

    def test_empty_action_rejected(self):
        with pytest.raises(IllegalArgumentException):
            IntentFilter("")


class TestBroadcastRegistry:
    def _recorder(self, log):
        return FunctionIntentReceiver(lambda ctx, i: log.append(i))

    def test_broadcast_to_matching_receivers(self):
        registry = BroadcastRegistry()
        log = []
        registry.register(self._recorder(log), IntentFilter("a"))
        registry.register(self._recorder(log), IntentFilter("b"))
        delivered = registry.broadcast(None, Intent("a"))
        assert delivered == 1
        assert len(log) == 1

    def test_receiver_gets_a_copy(self):
        registry = BroadcastRegistry()
        log = []
        registry.register(self._recorder(log), IntentFilter("a"))
        original = Intent("a").put_extra("k", 1)
        registry.broadcast(None, original)
        log[0].put_extra("k", 2)
        assert original.get_extra("k") == 1

    def test_unregister(self):
        registry = BroadcastRegistry()
        log = []
        receiver = self._recorder(log)
        registry.register(receiver, IntentFilter("a"))
        registry.unregister(receiver)
        registry.broadcast(None, Intent("a"))
        assert log == []
        assert registry.registered_count() == 0

    def test_non_receiver_rejected(self):
        registry = BroadcastRegistry()
        with pytest.raises(IllegalArgumentException):
            registry.register(lambda ctx, i: None, IntentFilter("a"))

    def test_send_pending_merges_extras(self):
        registry = BroadcastRegistry()
        log = []
        registry.register(self._recorder(log), IntentFilter("a"))
        pending = PendingIntent.get_broadcast(None, 0, Intent("a"))
        registry.send_pending(None, pending, {"entering": True})
        assert log[0].get_boolean_extra("entering", False) is True

    def test_cancelled_pending_not_delivered(self):
        registry = BroadcastRegistry()
        log = []
        registry.register(self._recorder(log), IntentFilter("a"))
        pending = PendingIntent.get_broadcast(None, 0, Intent("a"))
        pending.cancel()
        assert registry.send_pending(None, pending) == 0
        assert log == []

    def test_broadcast_log(self):
        registry = BroadcastRegistry()
        registry.broadcast(None, Intent("a"))
        registry.broadcast(None, Intent("b"))
        assert [i.get_action() for i in registry.broadcast_log] == ["a", "b"]

    def test_abstract_receiver_must_override(self):
        receiver = IntentReceiver()
        with pytest.raises(NotImplementedError):
            receiver.on_receive_intent(None, Intent("a"))
