"""Tests for Context, system services and permissions."""

import pytest

from repro.device.device import MobileDevice
from repro.platforms.android.context import Context
from repro.platforms.android.exceptions import (
    IllegalArgumentException,
    SecurityException,
)
from repro.platforms.android.location import LocationManager
from repro.platforms.android.platform import AndroidPlatform
from repro.platforms.android.telephony import IPhone


@pytest.fixture
def platform(device):
    platform = AndroidPlatform(device)
    platform.install("com.test.app", {"android.permission.ACCESS_FINE_LOCATION"})
    return platform


class TestSystemServices:
    def test_location_service(self, platform):
        context = platform.new_context("com.test.app")
        service = context.get_system_service(Context.LOCATION_SERVICE)
        assert isinstance(service, LocationManager)

    def test_telephony_service(self, platform):
        context = platform.new_context("com.test.app")
        service = context.get_system_service(Context.TELEPHONY_SERVICE)
        assert isinstance(service, IPhone)

    def test_unknown_service_raises(self, platform):
        context = platform.new_context("com.test.app")
        with pytest.raises(IllegalArgumentException):
            context.get_system_service("teleporter")


class TestPermissions:
    def test_manifest_permissions_flow_to_context(self, platform):
        context = platform.new_context("com.test.app")
        assert context.check_permission("android.permission.ACCESS_FINE_LOCATION")
        assert not context.check_permission("android.permission.SEND_SMS")

    def test_enforce_raises_security_exception(self, platform):
        context = platform.new_context("com.test.app")
        with pytest.raises(SecurityException, match="SEND_SMS"):
            context.enforce_permission("android.permission.SEND_SMS", "sendTextMessage")

    def test_grant_permission(self, platform):
        context = platform.new_context("com.test.app")
        context.grant_permission("android.permission.SEND_SMS")
        context.enforce_permission("android.permission.SEND_SMS", "x")  # no raise

    def test_unknown_package_has_no_permissions(self, platform):
        context = platform.new_context("com.other")
        assert not context.check_permission("android.permission.ACCESS_FINE_LOCATION")


class TestBroadcastsThroughContext:
    def test_send_and_receive(self, platform):
        from repro.platforms.android.intents import (
            FunctionIntentReceiver,
            Intent,
            IntentFilter,
        )

        context = platform.new_context("com.test.app")
        log = []
        context.register_receiver(
            FunctionIntentReceiver(lambda c, i: log.append(i.get_action())),
            IntentFilter("ping"),
        )
        assert context.send_broadcast(Intent("ping")) == 1
        assert log == ["ping"]

    def test_registry_shared_across_contexts(self, platform):
        from repro.platforms.android.intents import (
            FunctionIntentReceiver,
            Intent,
            IntentFilter,
        )

        first = platform.new_context("com.test.app")
        second = platform.new_context("com.other")
        log = []
        first.register_receiver(
            FunctionIntentReceiver(lambda c, i: log.append(1)), IntentFilter("x")
        )
        second.send_broadcast(Intent("x"))
        assert log == [1]
