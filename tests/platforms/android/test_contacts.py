"""Tests for the Android ContentResolver-style contacts API."""

import pytest

from repro.platforms.android.contacts import (
    COLUMN_DISPLAY_NAME,
    COLUMN_ID,
    COLUMN_NUMBER,
    CONTACTS_URI,
    ContentValues,
    Cursor,
    READ_CONTACTS,
    WRITE_CONTACTS,
)
from repro.platforms.android.exceptions import (
    IllegalArgumentException,
    SecurityException,
)
from repro.platforms.android.platform import AndroidPlatform


@pytest.fixture
def platform(device):
    platform = AndroidPlatform(device)
    platform.install("app", {READ_CONTACTS, WRITE_CONTACTS})
    device.contacts.add("Alice", ("+1",))
    device.contacts.add("Bob", ("+2",), email="bob@x")
    return platform


@pytest.fixture
def resolver(platform):
    return platform.new_context("app").get_content_resolver()


class TestQuery:
    def test_query_all(self, resolver):
        cursor = resolver.query(CONTACTS_URI)
        names = []
        while cursor.move_to_next():
            names.append(cursor.get_string(COLUMN_DISPLAY_NAME))
        assert names == ["Alice", "Bob"]

    def test_query_with_selection(self, resolver):
        cursor = resolver.query(CONTACTS_URI, selection="ali")
        assert cursor.get_count() == 1

    def test_unknown_uri_rejected(self, resolver):
        with pytest.raises(IllegalArgumentException):
            resolver.query("content://nope")

    def test_requires_read_permission(self, platform):
        platform.install("noperm", set())
        resolver = platform.new_context("noperm").get_content_resolver()
        with pytest.raises(SecurityException):
            resolver.query(CONTACTS_URI)


class TestCursorSemantics:
    def test_forward_only(self):
        cursor = Cursor([{"a": "1"}, {"a": "2"}])
        assert cursor.move_to_next()
        assert cursor.get_string("a") == "1"
        assert cursor.move_to_next()
        assert not cursor.move_to_next()

    def test_read_before_move_rejected(self):
        cursor = Cursor([{"a": "1"}])
        with pytest.raises(IllegalArgumentException):
            cursor.get_string("a")

    def test_closed_cursor_rejected(self):
        cursor = Cursor([{"a": "1"}])
        cursor.close()
        with pytest.raises(IllegalArgumentException):
            cursor.move_to_next()

    def test_missing_column_is_none(self):
        cursor = Cursor([{"a": "1"}])
        cursor.move_to_next()
        assert cursor.get_string("other") is None


class TestInsertDelete:
    def test_insert_returns_row_uri(self, resolver, device):
        values = ContentValues()
        values.put(COLUMN_DISPLAY_NAME, "Carol")
        values.put(COLUMN_NUMBER, "+3")
        row_uri = resolver.insert(CONTACTS_URI, values)
        assert row_uri.startswith(f"{CONTACTS_URI}/")
        assert device.contacts.find_by_name("Carol")

    def test_insert_requires_name(self, resolver):
        with pytest.raises(IllegalArgumentException):
            resolver.insert(CONTACTS_URI, ContentValues())

    def test_insert_requires_write_permission(self, platform):
        platform.install("reader", {READ_CONTACTS})
        resolver = platform.new_context("reader").get_content_resolver()
        values = ContentValues()
        values.put(COLUMN_DISPLAY_NAME, "X")
        with pytest.raises(SecurityException):
            resolver.insert(CONTACTS_URI, values)

    def test_delete_by_row_uri(self, resolver, device):
        alice = device.contacts.find_by_name("Alice")[0]
        assert resolver.delete(f"{CONTACTS_URI}/{alice.contact_id}") == 1
        assert not device.contacts.find_by_name("Alice")

    def test_delete_unknown_returns_zero(self, resolver):
        assert resolver.delete(f"{CONTACTS_URI}/contact-999") == 0

    def test_delete_bad_uri_rejected(self, resolver):
        with pytest.raises(IllegalArgumentException):
            resolver.delete("content://other/5")
