"""Tests for Android SmsManager and IPhone."""

import pytest

from repro.device.telephony import CallState
from repro.platforms.android.context import Context
from repro.platforms.android.exceptions import (
    IllegalArgumentException,
    SecurityException,
)
from repro.platforms.android.intents import (
    FunctionIntentReceiver,
    Intent,
    IntentFilter,
    PendingIntent,
)
from repro.platforms.android.platform import AndroidPlatform
from repro.platforms.android.telephony import (
    CALL_PHONE,
    EXTRA_RESULT_CODE,
    RESULT_ERROR_GENERIC_FAILURE,
    RESULT_OK,
    SEND_SMS,
)


@pytest.fixture
def platform(device):
    platform = AndroidPlatform(device)
    platform.install("app", {SEND_SMS, CALL_PHONE})
    return platform


@pytest.fixture
def context(platform):
    return platform.new_context("app")


class TestSmsManager:
    def test_send_returns_message_id(self, platform, context):
        manager = platform.sms_manager(context)
        message_id = manager.send_text_message("+2", None, "hi")
        assert message_id.startswith("sms-")

    def test_sent_intent_fires_with_result_ok(self, platform, context):
        manager = platform.sms_manager(context)
        codes = []
        context.register_receiver(
            FunctionIntentReceiver(
                lambda c, i: codes.append(i.get_extra(EXTRA_RESULT_CODE))
            ),
            IntentFilter("SENT"),
        )
        sent = PendingIntent.get_broadcast(context, 0, Intent("SENT"))
        manager.send_text_message("+2", None, "hi", sent_intent=sent)
        platform.run_for(2_000.0)
        assert codes == [RESULT_OK]

    def test_delivery_intent_fires(self, platform, context):
        manager = platform.sms_manager(context)
        delivered = []
        context.register_receiver(
            FunctionIntentReceiver(lambda c, i: delivered.append(True)),
            IntentFilter("DELIVERED"),
        )
        delivery = PendingIntent.get_broadcast(context, 0, Intent("DELIVERED"))
        manager.send_text_message("+2", None, "hi", delivery_intent=delivery)
        platform.run_for(2_000.0)
        assert delivered == [True]

    def test_failure_reports_error_code(self, platform, context):
        platform.device.sms_center.set_unreachable("+2")
        manager = platform.sms_manager(context)
        codes = []
        context.register_receiver(
            FunctionIntentReceiver(
                lambda c, i: codes.append(i.get_extra(EXTRA_RESULT_CODE))
            ),
            IntentFilter("SENT"),
        )
        sent = PendingIntent.get_broadcast(context, 0, Intent("SENT"))
        manager.send_text_message("+2", None, "hi", sent_intent=sent)
        platform.run_for(2_000.0)
        assert codes == [RESULT_ERROR_GENERIC_FAILURE]

    def test_requires_permission(self, platform):
        platform.install("noperm", set())
        context = platform.new_context("noperm")
        manager = platform.sms_manager(context)
        with pytest.raises(SecurityException):
            manager.send_text_message("+2", None, "hi")

    def test_empty_destination_rejected(self, platform, context):
        manager = platform.sms_manager(context)
        with pytest.raises(IllegalArgumentException):
            manager.send_text_message("", None, "hi")

    def test_none_text_rejected(self, platform, context):
        manager = platform.sms_manager(context)
        with pytest.raises(IllegalArgumentException):
            manager.send_text_message("+2", None, None)

    def test_charges_native_latency(self, platform, context):
        manager = platform.sms_manager(context)
        before = platform.clock.now_ms
        manager.send_text_message("+2", None, "hi")
        assert platform.clock.now_ms - before == pytest.approx(
            platform.native_latency.mean_for("android.sendSMS")
        )


class TestIPhone:
    def test_call_progresses_to_active(self, platform, context):
        phone = context.get_system_service(Context.TELEPHONY_SERVICE)
        session = phone.call("+2")
        platform.run_for(10_000.0)
        assert session.state is CallState.ACTIVE

    def test_call_with_state_callback(self, platform, context):
        phone = context.get_system_service(Context.TELEPHONY_SERVICE)
        states = []
        phone.call("+2", on_state=lambda s: states.append(s.state))
        platform.run_for(10_000.0)
        assert states == [CallState.RINGING, CallState.ACTIVE]

    def test_end_call(self, platform, context):
        phone = context.get_system_service(Context.TELEPHONY_SERVICE)
        session = phone.call("+2")
        platform.run_for(10_000.0)
        phone.end_call(session)
        assert session.state is CallState.ENDED

    def test_requires_permission(self, platform):
        platform.install("noperm", set())
        context = platform.new_context("noperm")
        phone = context.get_system_service(Context.TELEPHONY_SERVICE)
        with pytest.raises(SecurityException):
            phone.call("+2")

    def test_empty_number_rejected(self, platform, context):
        phone = context.get_system_service(Context.TELEPHONY_SERVICE)
        with pytest.raises(IllegalArgumentException):
            phone.call("")
