"""Tests for the Android calendar content provider."""

import pytest

from repro.platforms.android.calendar_provider import (
    CALENDAR_URI,
    COLUMN_DTEND,
    COLUMN_DTSTART,
    COLUMN_TITLE,
    READ_CALENDAR,
    WRITE_CALENDAR,
)
from repro.platforms.android.contacts import ContentValues
from repro.platforms.android.exceptions import (
    IllegalArgumentException,
    SecurityException,
)
from repro.platforms.android.platform import AndroidPlatform


@pytest.fixture
def platform(device):
    platform = AndroidPlatform(device)
    platform.install("app", {READ_CALENDAR, WRITE_CALENDAR})
    device.calendar.add("Standup", 100.0, 200.0, location="hq")
    return platform


@pytest.fixture
def resolver(platform):
    return platform.new_context("app").get_content_resolver()


class TestQuery:
    def test_query_all(self, resolver):
        cursor = resolver.query(CALENDAR_URI)
        assert cursor.get_count() == 1
        cursor.move_to_next()
        assert cursor.get_string(COLUMN_TITLE) == "Standup"
        assert cursor.get_string(COLUMN_DTSTART) == "100.0"

    def test_title_selection(self, resolver, device):
        device.calendar.add("Review", 300.0, 400.0)
        cursor = resolver.query(CALENDAR_URI, selection="rev")
        assert cursor.get_count() == 1

    def test_requires_read_permission(self, platform):
        platform.install("noperm", set())
        resolver = platform.new_context("noperm").get_content_resolver()
        with pytest.raises(SecurityException):
            resolver.query(CALENDAR_URI)


class TestInsertDelete:
    def test_insert_returns_row_uri(self, resolver, device):
        values = ContentValues()
        values.put(COLUMN_TITLE, "Inspection")
        values.put(COLUMN_DTSTART, 500.0)
        values.put(COLUMN_DTEND, 600.0)
        row_uri = resolver.insert(CALENDAR_URI, values)
        assert row_uri.startswith(f"{CALENDAR_URI}/")
        assert len(device.calendar) == 2

    def test_insert_requires_fields(self, resolver):
        values = ContentValues()
        values.put(COLUMN_TITLE, "No times")
        with pytest.raises(IllegalArgumentException):
            resolver.insert(CALENDAR_URI, values)

    def test_insert_requires_write_permission(self, platform):
        platform.install("reader", {READ_CALENDAR})
        resolver = platform.new_context("reader").get_content_resolver()
        values = ContentValues()
        values.put(COLUMN_TITLE, "X")
        values.put(COLUMN_DTSTART, 0.0)
        values.put(COLUMN_DTEND, 1.0)
        with pytest.raises(SecurityException):
            resolver.insert(CALENDAR_URI, values)

    def test_delete_by_row_uri(self, resolver, device):
        event = device.calendar.all()[0]
        assert resolver.delete(f"{CALENDAR_URI}/{event.event_id}") == 1
        assert len(device.calendar) == 0

    def test_delete_unknown_returns_zero(self, resolver):
        assert resolver.delete(f"{CALENDAR_URI}/event-999") == 0

    def test_contacts_and_calendar_share_the_resolver(self, platform, device):
        """One ContentResolver front door, URI-dispatched providers."""
        from repro.platforms.android.contacts import CONTACTS_URI, READ_CONTACTS

        platform.install("both", {READ_CALENDAR, READ_CONTACTS})
        resolver = platform.new_context("both").get_content_resolver()
        device.contacts.add("Alice")
        assert resolver.query(CONTACTS_URI).get_count() == 1
        assert resolver.query(CALENDAR_URI).get_count() == 1
