"""Tests for the Activity lifecycle."""

import pytest

from repro.device.device import MobileDevice
from repro.platforms.android.activity import Activity, ActivityState
from repro.platforms.android.exceptions import IllegalStateException
from repro.platforms.android.platform import AndroidPlatform


class HookRecorder(Activity):
    def __init__(self, platform, package):
        super().__init__(platform, package)
        self.hooks = []

    def on_create(self):
        self.hooks.append("create")

    def on_start(self):
        self.hooks.append("start")

    def on_resume(self):
        self.hooks.append("resume")

    def on_pause(self):
        self.hooks.append("pause")

    def on_stop(self):
        self.hooks.append("stop")

    def on_destroy(self):
        self.hooks.append("destroy")


@pytest.fixture
def platform(device):
    platform = AndroidPlatform(device)
    platform.install("app", set())
    return platform


class TestLifecycle:
    def test_launch_sequence(self, platform):
        activity = platform.launch(HookRecorder, "app")
        assert activity.hooks == ["create", "start", "resume"]
        assert activity.state is ActivityState.RESUMED

    def test_pause_resume(self, platform):
        activity = platform.launch(HookRecorder, "app")
        activity.perform_pause()
        assert activity.state is ActivityState.PAUSED
        activity.perform_resume()
        assert activity.state is ActivityState.RESUMED
        assert activity.hooks[-2:] == ["pause", "resume"]

    def test_destroy_from_resumed_runs_full_teardown(self, platform):
        activity = platform.launch(HookRecorder, "app")
        activity.perform_destroy()
        assert activity.hooks == ["create", "start", "resume", "pause", "stop", "destroy"]
        assert activity.state is ActivityState.DESTROYED

    def test_double_launch_rejected(self, platform):
        activity = platform.launch(HookRecorder, "app")
        with pytest.raises(IllegalStateException):
            activity.perform_launch()

    def test_pause_before_launch_rejected(self, platform):
        activity = HookRecorder(platform, "app")
        with pytest.raises(IllegalStateException):
            activity.perform_pause()

    def test_destroy_before_launch_rejected(self, platform):
        activity = HookRecorder(platform, "app")
        with pytest.raises(IllegalStateException):
            activity.perform_destroy()

    def test_lifecycle_log(self, platform):
        activity = platform.launch(HookRecorder, "app")
        assert activity.lifecycle_log == [
            ActivityState.CREATED,
            ActivityState.STARTED,
            ActivityState.RESUMED,
        ]

    def test_activity_is_a_context(self, platform):
        platform.install("app2", {"android.permission.SEND_SMS"})
        activity = platform.launch(HookRecorder, "app2")
        assert activity.check_permission("android.permission.SEND_SMS")
