"""Tests for the Apache-style Android HTTP stack."""

import pytest

from repro.device.network import HttpResponse
from repro.platforms.android.exceptions import (
    IllegalArgumentException,
    SecurityException,
)
from repro.platforms.android.http import INTERNET, HttpGet, HttpPost, IOException
from repro.platforms.android.platform import AndroidPlatform


@pytest.fixture
def platform(device):
    platform = AndroidPlatform(device)
    platform.install("app", {INTERNET})
    server = device.network.add_server("api.test")
    server.route("GET", "/ping", lambda r: HttpResponse(200, "pong"))
    server.route("POST", "/echo", lambda r: HttpResponse(200, r.body))
    return platform


@pytest.fixture
def client(platform):
    return platform.http_client(platform.new_context("app"))


class TestRequests:
    def test_get(self, client):
        response = client.execute(HttpGet("http://api.test/ping"))
        assert response.get_status_line().get_status_code() == 200
        assert response.get_entity().get_content() == "pong"

    def test_post_echoes_entity(self, client):
        request = HttpPost("http://api.test/echo")
        request.set_entity("payload")
        response = client.execute(request)
        assert response.get_entity().get_content() == "payload"

    def test_headers_reach_server(self, platform, client, device):
        seen = {}

        def handler(request):
            seen["agent"] = request.header("User-Agent")
            return HttpResponse(200)

        device.network.server("api.test").route("GET", "/headers", handler)
        request = HttpGet("http://api.test/headers")
        request.add_header("User-Agent", "test-agent")
        client.execute(request)
        assert seen["agent"] == "test-agent"

    def test_query_string_preserved(self, client, device):
        device.network.server("api.test").route(
            "GET", "/q?a=1", lambda r: HttpResponse(200, "query")
        )
        response = client.execute(HttpGet("http://api.test/q?a=1"))
        assert response.get_entity().get_content() == "query"

    def test_malformed_url_rejected(self):
        with pytest.raises(IllegalArgumentException):
            HttpGet("not a url")
        with pytest.raises(IllegalArgumentException):
            HttpGet("ftp://api.test/x")

    def test_network_failure_raises_io_exception(self, client, device):
        device.network.fail_next("radio off")
        with pytest.raises(IOException, match="radio off"):
            client.execute(HttpGet("http://api.test/ping"))

    def test_requires_internet_permission(self, platform):
        platform.install("noperm", set())
        client = platform.http_client(platform.new_context("noperm"))
        with pytest.raises(SecurityException):
            client.execute(HttpGet("http://api.test/ping"))

    def test_charges_native_latency(self, platform, client):
        before = platform.clock.now_ms
        client.execute(HttpGet("http://api.test/ping"))
        charged = platform.clock.now_ms - before
        # android.http charge + network round trip
        assert charged >= platform.native_latency.mean_for("android.http")
