"""Tests for the Android location stack (proximity alerts, SDK switch)."""

import pytest

from repro.device.device import MobileDevice
from repro.platforms.android.context import Context
from repro.platforms.android.exceptions import (
    IllegalArgumentException,
    SecurityException,
)
from repro.platforms.android.intents import (
    FunctionIntentReceiver,
    Intent,
    IntentFilter,
    PendingIntent,
)
from repro.platforms.android.location import (
    ACCESS_FINE_LOCATION,
    EXTRA_ENTERING,
    Location,
    NO_EXPIRATION,
)
from repro.platforms.android.platform import AndroidPlatform
from repro.platforms.android.versions import SdkVersion

SITE = (28.6, 77.2)


@pytest.fixture
def platform(device):
    platform = AndroidPlatform(device)
    platform.install("app", {ACCESS_FINE_LOCATION})
    return platform


@pytest.fixture
def context(platform):
    return platform.new_context("app")


@pytest.fixture
def manager(context):
    return context.get_system_service(Context.LOCATION_SERVICE)


def _register(context, events):
    context.register_receiver(
        FunctionIntentReceiver(
            lambda c, i: events.append(i.get_boolean_extra(EXTRA_ENTERING, False))
        ),
        IntentFilter("PROX"),
    )


class TestGetLocation:
    def test_returns_position(self, platform, manager):
        location = manager.get_current_location("gps")
        assert isinstance(location, Location)
        assert location.get_latitude() != 0.0

    def test_charges_native_latency(self, platform, manager):
        before = platform.clock.now_ms
        manager.get_current_location("gps")
        charged = platform.clock.now_ms - before
        assert charged == pytest.approx(
            platform.native_latency.mean_for("android.getLocation")
        )

    def test_unknown_provider_rejected(self, manager):
        with pytest.raises(IllegalArgumentException):
            manager.get_current_location("carrier-pigeon")

    def test_requires_permission(self, platform):
        platform.install("noperm", set())
        context = platform.new_context("noperm")
        manager = context.get_system_service(Context.LOCATION_SERVICE)
        with pytest.raises(SecurityException):
            manager.get_current_location("gps")

    def test_last_known_none_before_first_fix(self, manager):
        assert manager.get_last_known_location("gps") is None

    def test_last_known_after_fix(self, platform, manager):
        manager.get_current_location("gps")  # powers GPS
        platform.run_for(10_000.0)
        assert manager.get_last_known_location("gps") is not None


class TestProximityAlerts:
    def test_enter_and_exit_events(self, platform, context, manager):
        events = []
        _register(context, events)
        manager.add_proximity_alert(*SITE, 500.0, NO_EXPIRATION, Intent("PROX"))
        platform.run_for(200_000.0)
        assert events == [True, False, True]

    def test_expiration_stops_events(self, platform, context, manager):
        events = []
        _register(context, events)
        # Expire after 30 s: the device reaches the site at ~55 s.
        manager.add_proximity_alert(*SITE, 500.0, 30_000.0, Intent("PROX"))
        platform.run_for(200_000.0)
        assert events == []

    def test_remove_alert(self, platform, context, manager):
        events = []
        _register(context, events)
        intent = Intent("PROX")
        manager.add_proximity_alert(*SITE, 500.0, NO_EXPIRATION, intent)
        manager.remove_proximity_alert(intent)
        platform.run_for(200_000.0)
        assert events == []

    def test_invalid_radius_rejected(self, manager):
        with pytest.raises(IllegalArgumentException):
            manager.add_proximity_alert(*SITE, 0.0, NO_EXPIRATION, Intent("PROX"))

    def test_requires_permission(self, platform):
        platform.install("noperm", set())
        context = platform.new_context("noperm")
        manager = context.get_system_service(Context.LOCATION_SERVICE)
        with pytest.raises(SecurityException):
            manager.add_proximity_alert(*SITE, 500.0, NO_EXPIRATION, Intent("PROX"))

    def test_registration_starts_inside_fires_enter(self, commute_trajectory, platform, context, manager):
        # Device parked inside the region from t=0.
        from repro.device.gps import Trajectory, Waypoint
        from repro.util.geo import GeoPoint

        platform.device.set_trajectory(
            Trajectory([Waypoint(0.0, GeoPoint(*SITE))])
        )
        events = []
        _register(context, events)
        manager.add_proximity_alert(*SITE, 500.0, NO_EXPIRATION, Intent("PROX"))
        platform.run_for(10_000.0)
        assert events == [True]


class TestSdkVersionSwitch:
    def test_m5_takes_intent(self, platform, manager):
        manager.add_proximity_alert(*SITE, 500.0, NO_EXPIRATION, Intent("PROX"))

    def test_m5_rejects_pending_intent(self, platform, context, manager):
        pending = PendingIntent.get_broadcast(context, 0, Intent("PROX"))
        with pytest.raises(IllegalArgumentException):
            manager.add_proximity_alert(*SITE, 500.0, NO_EXPIRATION, pending)

    def test_v10_requires_pending_intent(self, device):
        platform = AndroidPlatform(device, sdk_version=SdkVersion.V1_0)
        platform.install("app", {ACCESS_FINE_LOCATION})
        context = platform.new_context("app")
        manager = context.get_system_service(Context.LOCATION_SERVICE)
        with pytest.raises(IllegalArgumentException):
            manager.add_proximity_alert(*SITE, 500.0, NO_EXPIRATION, Intent("PROX"))
        pending = PendingIntent.get_broadcast(context, 0, Intent("PROX"))
        manager.add_proximity_alert(*SITE, 500.0, NO_EXPIRATION, pending)

    def test_v10_alerts_fire_through_pending_intent(self, device):
        platform = AndroidPlatform(device, sdk_version=SdkVersion.V1_0)
        platform.install("app", {ACCESS_FINE_LOCATION})
        context = platform.new_context("app")
        manager = context.get_system_service(Context.LOCATION_SERVICE)
        events = []
        _register(context, events)
        pending = PendingIntent.get_broadcast(context, 0, Intent("PROX"))
        manager.add_proximity_alert(*SITE, 500.0, NO_EXPIRATION, pending)
        platform.run_for(200_000.0)
        assert events == [True, False, True]


class TestLocationValue:
    def test_distance_to(self):
        a = Location(0.0, 0.0)
        b = Location(1.0, 0.0)
        assert a.distance_to(b) == pytest.approx(111_195, rel=0.01)

    def test_accessors(self):
        location = Location(1.0, 2.0, 3.0, accuracy_m=4.0, time_ms=5.0, speed_mps=6.0)
        assert location.get_latitude() == 1.0
        assert location.get_longitude() == 2.0
        assert location.get_altitude() == 3.0
        assert location.get_accuracy() == 4.0
        assert location.get_time() == 5.0
        assert location.get_speed() == 6.0
        assert location.get_provider() == "gps"
