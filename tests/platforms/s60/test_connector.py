"""Tests for the GCF HttpConnection."""

import pytest

from repro.device.network import HttpResponse
from repro.platforms.s60.connector import HttpConnection, PERMISSION_HTTP
from repro.platforms.s60.exceptions import (
    IOException,
    IllegalArgumentException,
    SecurityException,
)
from repro.platforms.s60.packaging import Jar, JarEntry, JadDescriptor, MidletSuite
from repro.platforms.s60.platform import S60Platform


@pytest.fixture
def platform(device):
    platform = S60Platform(device)
    suite = MidletSuite(
        JadDescriptor("app", permissions=[PERMISSION_HTTP]),
        Jar("app.jar", [JarEntry("A.class", 1)]),
    )
    platform.install_suite(suite)
    platform.connector.bind_suite("app")
    server = device.network.add_server("api.test")
    server.route("GET", "/ping", lambda r: HttpResponse(200, "pong"))
    server.route("POST", "/echo", lambda r: HttpResponse(200, r.body))
    return platform


class TestHttpConnection:
    def test_get(self, platform):
        connection = platform.connector.open("http://api.test/ping")
        assert connection.get_response_code() == 200
        assert connection.open_input_stream().read_fully() == "pong"

    def test_post_with_body(self, platform):
        connection = platform.connector.open("http://api.test/echo")
        connection.set_request_method(HttpConnection.POST)
        connection.write_body("data")
        assert connection.open_input_stream().read_fully() == "data"

    def test_lazy_execution_once(self, platform, device):
        connection = platform.connector.open("http://api.test/ping")
        connection.get_response_code()
        connection.get_response_code()
        connection.open_input_stream()
        assert len(device.network.server("api.test").request_log) == 1

    def test_cannot_mutate_after_send(self, platform):
        connection = platform.connector.open("http://api.test/ping")
        connection.get_response_code()
        with pytest.raises(IOException):
            connection.set_request_method(HttpConnection.POST)
        with pytest.raises(IOException):
            connection.set_request_property("X", "y")
        with pytest.raises(IOException):
            connection.write_body("late")

    def test_unsupported_method_rejected(self, platform):
        connection = platform.connector.open("http://api.test/ping")
        with pytest.raises(IllegalArgumentException):
            connection.set_request_method("DELETE")

    def test_malformed_url_rejected(self, platform):
        with pytest.raises(IllegalArgumentException):
            platform.connector.open("http://")

    def test_network_failure_is_checked_io_exception(self, platform, device):
        device.network.fail_next("no bearer")
        connection = platform.connector.open("http://api.test/ping")
        with pytest.raises(IOException, match="no bearer"):
            connection.get_response_code()

    def test_closed_connection_rejected(self, platform):
        connection = platform.connector.open("http://api.test/ping")
        connection.close()
        with pytest.raises(IOException):
            connection.get_response_code()

    def test_requires_permission(self, device):
        platform = S60Platform(device)
        suite = MidletSuite(
            JadDescriptor("noperm"), Jar("n.jar", [JarEntry("A.class", 1)])
        )
        platform.install_suite(suite)
        platform.connector.bind_suite("noperm")
        device.network.add_server("api.test").route(
            "GET", "/ping", lambda r: HttpResponse(200)
        )
        connection = platform.connector.open("http://api.test/ping")
        with pytest.raises(SecurityException):
            connection.get_response_code()

    def test_stream_partial_reads(self, platform):
        connection = platform.connector.open("http://api.test/ping")
        stream = connection.open_input_stream()
        assert stream.read(2) == b"po"
        assert stream.read(-1) == b"ng"
        assert stream.read(10) == b""
