"""Tests for the JSR-75-style S60 PIM API."""

import pytest

from repro.platforms.s60.exceptions import SecurityException
from repro.platforms.s60.packaging import Jar, JarEntry, JadDescriptor, MidletSuite
from repro.platforms.s60.pim import (
    Contact,
    PERMISSION_PIM_READ,
    PERMISSION_PIM_WRITE,
    PIMException,
    PimStatics,
)
from repro.platforms.s60.platform import S60Platform


@pytest.fixture
def platform(device):
    platform = S60Platform(device)
    suite = MidletSuite(
        JadDescriptor("app", permissions=[PERMISSION_PIM_READ, PERMISSION_PIM_WRITE]),
        Jar("a.jar", [JarEntry("A.class", 1)]),
    )
    platform.install_suite(suite)
    platform.pim.bind_suite("app")
    device.contacts.add("Alice", ("+1", "+11"), email="a@x")
    device.contacts.add("Bob", ("+2",))
    return platform


class TestOpenList:
    def test_open_contact_list(self, platform):
        contact_list = platform.pim.open_pim_list(
            PimStatics.CONTACT_LIST, PimStatics.READ_WRITE
        )
        assert contact_list is not None

    def test_unsupported_type_rejected(self, platform):
        with pytest.raises(PIMException):
            platform.pim.open_pim_list(99, PimStatics.READ_ONLY)

    def test_bad_mode_rejected(self, platform):
        with pytest.raises(PIMException):
            platform.pim.open_pim_list(PimStatics.CONTACT_LIST, 7)


class TestItems:
    def test_iterate_items(self, platform):
        contact_list = platform.pim.open_pim_list(
            PimStatics.CONTACT_LIST, PimStatics.READ_ONLY
        )
        names = [
            item.get_string(Contact.FORMATTED_NAME, 0)
            for item in contact_list.items()
        ]
        assert names == ["Alice", "Bob"]

    def test_multi_valued_tel_field(self, platform):
        contact_list = platform.pim.open_pim_list(
            PimStatics.CONTACT_LIST, PimStatics.READ_ONLY
        )
        alice = next(iter(contact_list.items()))
        assert alice.count_values(Contact.TEL) == 2
        assert alice.get_string(Contact.TEL, 1) == "+11"

    def test_index_out_of_range(self, platform):
        contact_list = platform.pim.open_pim_list(
            PimStatics.CONTACT_LIST, PimStatics.READ_ONLY
        )
        alice = next(iter(contact_list.items()))
        with pytest.raises(PIMException):
            alice.get_string(Contact.TEL, 5)

    def test_items_matching(self, platform):
        contact_list = platform.pim.open_pim_list(
            PimStatics.CONTACT_LIST, PimStatics.READ_ONLY
        )
        matched = list(contact_list.items_matching("bo"))
        assert len(matched) == 1

    def test_closed_list_rejected(self, platform):
        contact_list = platform.pim.open_pim_list(
            PimStatics.CONTACT_LIST, PimStatics.READ_ONLY
        )
        contact_list.close()
        with pytest.raises(PIMException):
            list(contact_list.items())

    def test_read_permission_required(self, device):
        platform = S60Platform(device)
        platform.install_suite(
            MidletSuite(JadDescriptor("noperm"), Jar("n.jar", [JarEntry("A.class", 1)]))
        )
        platform.pim.bind_suite("noperm")
        contact_list = platform.pim.open_pim_list(
            PimStatics.CONTACT_LIST, PimStatics.READ_ONLY
        )
        with pytest.raises(SecurityException):
            list(contact_list.items())


class TestMutation:
    def test_create_and_commit(self, platform, device):
        contact_list = platform.pim.open_pim_list(
            PimStatics.CONTACT_LIST, PimStatics.READ_WRITE
        )
        item = contact_list.create_contact()
        item.add_string(Contact.FORMATTED_NAME, 0, "Carol")
        item.add_string(Contact.TEL, 0, "+3")
        item.commit()
        assert item.record_id is not None
        assert device.contacts.find_by_name("Carol")

    def test_commit_without_name_rejected(self, platform):
        contact_list = platform.pim.open_pim_list(
            PimStatics.CONTACT_LIST, PimStatics.READ_WRITE
        )
        item = contact_list.create_contact()
        with pytest.raises(PIMException):
            item.commit()

    def test_remove_contact(self, platform, device):
        contact_list = platform.pim.open_pim_list(
            PimStatics.CONTACT_LIST, PimStatics.READ_WRITE
        )
        alice = next(iter(contact_list.items()))
        contact_list.remove_contact(alice)
        assert not device.contacts.find_by_name("Alice")

    def test_read_only_list_rejects_mutation(self, platform):
        contact_list = platform.pim.open_pim_list(
            PimStatics.CONTACT_LIST, PimStatics.READ_ONLY
        )
        with pytest.raises(PIMException):
            contact_list.create_contact()

    def test_update_existing_via_commit(self, platform, device):
        contact_list = platform.pim.open_pim_list(
            PimStatics.CONTACT_LIST, PimStatics.READ_WRITE
        )
        alice = next(iter(contact_list.items()))
        alice.add_string(Contact.TEL, 0, "+111")
        alice.commit()
        record = device.contacts.find_by_name("Alice")[0]
        assert "+111" in record.phone_numbers
