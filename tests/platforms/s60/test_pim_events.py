"""Tests for the JSR-75-style S60 EventList."""

import pytest

from repro.platforms.s60.exceptions import SecurityException
from repro.platforms.s60.packaging import Jar, JarEntry, JadDescriptor, MidletSuite
from repro.platforms.s60.pim import (
    Event,
    PERMISSION_EVENT_READ,
    PERMISSION_EVENT_WRITE,
    PIMException,
    PimStatics,
)
from repro.platforms.s60.platform import S60Platform


@pytest.fixture
def platform(device):
    platform = S60Platform(device)
    suite = MidletSuite(
        JadDescriptor(
            "app", permissions=[PERMISSION_EVENT_READ, PERMISSION_EVENT_WRITE]
        ),
        Jar("a.jar", [JarEntry("A.class", 1)]),
    )
    platform.install_suite(suite)
    platform.pim.bind_suite("app")
    device.calendar.add("Standup", 100.0, 200.0, location="hq")
    return platform


def _open(platform, mode=PimStatics.READ_WRITE):
    return platform.pim.open_pim_list(PimStatics.EVENT_LIST, mode)


class TestEventItems:
    def test_iterate_fields(self, platform):
        event_list = _open(platform, PimStatics.READ_ONLY)
        item = next(iter(event_list.items()))
        assert item.get_string(Event.SUMMARY) == "Standup"
        assert item.get_date(Event.START) == 100.0
        assert item.get_date(Event.END) == 200.0
        assert item.get_string(Event.LOCATION) == "hq"

    def test_unsupported_fields_rejected(self, platform):
        event_list = _open(platform, PimStatics.READ_ONLY)
        item = next(iter(event_list.items()))
        with pytest.raises(PIMException):
            item.get_string(999)
        with pytest.raises(PIMException):
            item.get_date(999)

    def test_create_and_commit(self, platform, device):
        event_list = _open(platform)
        item = event_list.create_event()
        item.add_string(Event.SUMMARY, 0, "Visit")
        item.add_date(Event.START, 0, 300.0)
        item.add_date(Event.END, 0, 400.0)
        item.commit()
        assert item.record_id is not None
        assert len(device.calendar) == 2

    def test_commit_requires_dates(self, platform):
        event_list = _open(platform)
        item = event_list.create_event()
        item.add_string(Event.SUMMARY, 0, "No times")
        with pytest.raises(PIMException):
            item.commit()

    def test_update_via_commit(self, platform, device):
        event_list = _open(platform)
        item = next(iter(event_list.items()))
        item.add_string(Event.SUMMARY, 0, "Renamed")
        item.commit()
        assert device.calendar.all()[0].summary == "Renamed"

    def test_remove_event(self, platform, device):
        event_list = _open(platform)
        item = next(iter(event_list.items()))
        event_list.remove_event(item)
        assert len(device.calendar) == 0

    def test_read_only_rejects_mutation(self, platform):
        event_list = _open(platform, PimStatics.READ_ONLY)
        with pytest.raises(PIMException):
            event_list.create_event()

    def test_read_permission_required(self, device):
        platform = S60Platform(device)
        platform.install_suite(
            MidletSuite(JadDescriptor("noperm"), Jar("n.jar", [JarEntry("A.class", 1)]))
        )
        platform.pim.bind_suite("noperm")
        event_list = platform.pim.open_pim_list(
            PimStatics.EVENT_LIST, PimStatics.READ_ONLY
        )
        with pytest.raises(SecurityException):
            list(event_list.items())

    def test_closed_list_rejected(self, platform):
        event_list = _open(platform)
        event_list.close()
        with pytest.raises(PIMException):
            list(event_list.items())
