"""Tests for the MIDP application model."""

import pytest

from repro.platforms.s60.midlet import MIDlet, MidletState, MIDletStateChangeException
from repro.platforms.s60.packaging import Jar, JarEntry, JadDescriptor, MidletSuite
from repro.platforms.s60.platform import S60Platform


class HookMidlet(MIDlet):
    def __init__(self, platform, suite_name):
        super().__init__(platform, suite_name)
        self.hooks = []

    def start_app(self):
        self.hooks.append("start")

    def pause_app(self):
        self.hooks.append("pause")

    def destroy_app(self, unconditional):
        self.hooks.append(f"destroy:{unconditional}")


class StubbornMidlet(MIDlet):
    def destroy_app(self, unconditional):
        if not unconditional:
            raise MIDletStateChangeException("not now")


@pytest.fixture
def platform(device):
    platform = S60Platform(device)
    suite = MidletSuite(
        JadDescriptor("app", properties={"Server-URL": "http://x"}),
        Jar("app.jar", [JarEntry("A.class", 1)]),
    )
    platform.install_suite(suite)
    return platform


class TestLifecycle:
    def test_launch_starts(self, platform):
        midlet = platform.launch(HookMidlet, "app")
        assert midlet.state is MidletState.ACTIVE
        assert midlet.hooks == ["start"]

    def test_pause_and_resume(self, platform):
        midlet = platform.launch(HookMidlet, "app")
        midlet.perform_pause()
        assert midlet.state is MidletState.PAUSED
        midlet.perform_start()
        assert midlet.state is MidletState.ACTIVE
        assert midlet.hooks == ["start", "pause", "start"]

    def test_destroy(self, platform):
        midlet = platform.launch(HookMidlet, "app")
        midlet.perform_destroy()
        assert midlet.state is MidletState.DESTROYED
        assert midlet.hooks[-1] == "destroy:True"

    def test_destroy_idempotent(self, platform):
        midlet = platform.launch(HookMidlet, "app")
        midlet.perform_destroy()
        midlet.perform_destroy()
        assert midlet.state is MidletState.DESTROYED

    def test_conditional_destroy_can_be_refused(self, platform):
        midlet = platform.launch(StubbornMidlet, "app")
        midlet.perform_destroy(unconditional=False)
        assert midlet.state is MidletState.ACTIVE
        midlet.perform_destroy(unconditional=True)
        assert midlet.state is MidletState.DESTROYED

    def test_start_from_active_rejected(self, platform):
        midlet = platform.launch(HookMidlet, "app")
        with pytest.raises(MIDletStateChangeException):
            midlet.perform_start()

    def test_pause_from_loaded_rejected(self, platform):
        midlet = HookMidlet(platform, "app")
        with pytest.raises(MIDletStateChangeException):
            midlet.perform_pause()

    def test_state_log(self, platform):
        midlet = platform.launch(HookMidlet, "app")
        assert midlet.state_log == [MidletState.LOADED, MidletState.ACTIVE]

    def test_launch_unknown_suite_rejected(self, platform):
        with pytest.raises(KeyError):
            platform.launch(HookMidlet, "ghost")


class TestSuiteServices:
    def test_app_property_from_jad(self, platform):
        midlet = platform.launch(HookMidlet, "app")
        assert midlet.get_app_property("Server-URL") == "http://x"
        assert midlet.get_app_property("Missing") == ""

    def test_check_permission(self, device):
        platform = S60Platform(device)
        suite = MidletSuite(
            JadDescriptor("app", permissions=["p.q.r"]),
            Jar("app.jar", [JarEntry("A.class", 1)]),
        )
        platform.install_suite(suite)
        midlet = platform.launch(HookMidlet, "app")
        assert midlet.check_permission("p.q.r")
        assert not midlet.check_permission("x.y.z")
