"""Tests for WMA-style S60 messaging."""

import pytest

from repro.platforms.s60.exceptions import (
    ConnectionNotFoundException,
    IOException,
    IllegalArgumentException,
    SecurityException,
)
from repro.platforms.s60.messaging import (
    MessageConnection,
    MessageListener,
    PERMISSION_SMS_RECEIVE,
    PERMISSION_SMS_SEND,
)
from repro.platforms.s60.packaging import Jar, JarEntry, JadDescriptor, MidletSuite
from repro.platforms.s60.platform import S60Platform


@pytest.fixture
def platform(device):
    platform = S60Platform(device)
    suite = MidletSuite(
        JadDescriptor(
            "app", permissions=[PERMISSION_SMS_SEND, PERMISSION_SMS_RECEIVE]
        ),
        Jar("app.jar", [JarEntry("A.class", 1)]),
    )
    platform.install_suite(suite)
    platform.connector.bind_suite("app")
    return platform


class TestSending:
    def test_send_text_message(self, platform, device):
        connection = platform.connector.open("sms://+2")
        message = connection.new_message(MessageConnection.TEXT_MESSAGE)
        message.set_payload_text("hello")
        connection.send(message)
        platform.run_for(2_000.0)
        assert [m.text for m in device.sms_center.inbox_of("+2")] == ["hello"]

    def test_send_without_payload_rejected(self, platform):
        connection = platform.connector.open("sms://+2")
        message = connection.new_message(MessageConnection.TEXT_MESSAGE)
        with pytest.raises(IllegalArgumentException):
            connection.send(message)

    def test_unknown_message_type_rejected(self, platform):
        connection = platform.connector.open("sms://+2")
        with pytest.raises(IllegalArgumentException):
            connection.new_message("mms")

    def test_closed_connection_rejects_send(self, platform):
        connection = platform.connector.open("sms://+2")
        message = connection.new_message(MessageConnection.TEXT_MESSAGE)
        message.set_payload_text("x")
        connection.close()
        with pytest.raises(IOException):
            connection.send(message)

    def test_requires_send_permission(self, device):
        platform = S60Platform(device)
        suite = MidletSuite(
            JadDescriptor("noperm"), Jar("n.jar", [JarEntry("A.class", 1)])
        )
        platform.install_suite(suite)
        platform.connector.bind_suite("noperm")
        connection = platform.connector.open("sms://+2")
        message = connection.new_message(MessageConnection.TEXT_MESSAGE)
        message.set_payload_text("x")
        with pytest.raises(SecurityException):
            connection.send(message)

    def test_charges_native_latency(self, platform):
        connection = platform.connector.open("sms://+2")
        message = connection.new_message(MessageConnection.TEXT_MESSAGE)
        message.set_payload_text("x")
        before = platform.clock.now_ms
        connection.send(message)
        assert platform.clock.now_ms - before == pytest.approx(
            platform.native_latency.mean_for("s60.sendSMS")
        )


class TestReceiving:
    def test_server_mode_receives(self, platform, device):
        connection = platform.connector.open("sms://")
        device.sms_center.submit("+9", device.phone_number, "incoming")
        platform.run_for(2_000.0)
        assert connection.pending_count() == 1
        message = connection.receive()
        assert message.get_payload_text() == "incoming"
        assert message.get_address() == "sms://+9"

    def test_receive_empty_raises(self, platform):
        connection = platform.connector.open("sms://")
        with pytest.raises(IOException):
            connection.receive()

    def test_message_listener_notified(self, platform, device):
        connection = platform.connector.open("sms://")
        notified = []

        class Listener(MessageListener):
            def notify_incoming_message(self, conn):
                notified.append(conn)

        connection.set_message_listener(Listener())
        device.sms_center.submit("+9", device.phone_number, "ping")
        platform.run_for(2_000.0)
        assert notified == [connection]

    def test_closed_connection_drops_incoming(self, platform, device):
        connection = platform.connector.open("sms://")
        connection.close()
        device.sms_center.submit("+9", device.phone_number, "late")
        platform.run_for(2_000.0)
        assert connection.pending_count() == 0

    def test_device_inbox_still_updates(self, platform, device):
        """The platform's sink must not steal the device's own inbox."""
        platform.connector.open("sms://")
        device.sms_center.submit("+9", device.phone_number, "both")
        platform.run_for(2_000.0)
        assert len(device.inbox) == 1


class TestConnectorDispatch:
    def test_unknown_scheme_raises(self, platform):
        with pytest.raises(ConnectionNotFoundException):
            platform.connector.open("gopher://x")
