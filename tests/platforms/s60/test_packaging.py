"""Tests for the MIDlet-suite packaging model (jar merge, JAD, limits)."""

import pytest

from repro.errors import ConfigurationError
from repro.platforms.s60.packaging import (
    Jar,
    JarEntry,
    JadDescriptor,
    MidletSuite,
)
from repro.platforms.s60.platform import S60Platform
from repro.device.device import MobileDevice
from repro.device.profiles import DeviceProfile


class TestJarEntry:
    def test_valid(self):
        entry = JarEntry("com/x/A.class", 100)
        assert entry.size_bytes == 100

    def test_bad_paths_rejected(self):
        with pytest.raises(ConfigurationError):
            JarEntry("")
        with pytest.raises(ConfigurationError):
            JarEntry("/absolute.class")

    def test_negative_size_rejected(self):
        with pytest.raises(ConfigurationError):
            JarEntry("a.class", -1)


class TestJar:
    def test_name_must_be_jar(self):
        with pytest.raises(ConfigurationError):
            Jar("app.zip")

    def test_duplicate_entries_rejected(self):
        jar = Jar("a.jar", [JarEntry("x.class", 1)])
        with pytest.raises(ConfigurationError):
            jar.add(JarEntry("x.class", 2))

    def test_size_sums_entries(self):
        jar = Jar("a.jar", [JarEntry("x.class", 10), JarEntry("y.class", 20)])
        assert jar.size_bytes == 30

    def test_contains(self):
        jar = Jar("a.jar", [JarEntry("x.class", 1)])
        assert "x.class" in jar
        assert "y.class" not in jar

    def test_merge_combines_entries(self):
        app = Jar("app.jar", [JarEntry("App.class", 10)])
        lib = Jar("lib.jar", [JarEntry("Lib.class", 20)])
        merged = app.merged_with(lib)
        assert "App.class" in merged and "Lib.class" in merged
        assert merged.size_bytes == 30
        # originals untouched
        assert "Lib.class" not in app

    def test_merge_collision_rejected(self):
        app = Jar("app.jar", [JarEntry("Same.class", 10)])
        lib = Jar("lib.jar", [JarEntry("Same.class", 20)])
        with pytest.raises(ConfigurationError):
            app.merged_with(lib)


class TestJadDescriptor:
    def test_require_permission_idempotent(self):
        jad = JadDescriptor("app")
        jad.require_permission("a.b")
        jad.require_permission("a.b")
        assert jad.permissions == ["a.b"]

    def test_to_text_format(self):
        jad = JadDescriptor("app", vendor="ibm", permissions=["a.b"], properties={"K": "v"})
        text = jad.to_text()
        assert "MIDlet-Name: app" in text
        assert "MIDlet-Vendor: ibm" in text
        assert "MIDlet-Permissions: a.b" in text
        assert "K: v" in text


class TestSuiteDeployment:
    def test_size_gate(self):
        suite = MidletSuite(
            JadDescriptor("big"), Jar("b.jar", [JarEntry("A.class", 5_000)])
        )
        with pytest.raises(ConfigurationError):
            suite.validate_for_deployment(max_jar_bytes=4_096)
        suite.validate_for_deployment(max_jar_bytes=10_000)  # fits

    def test_empty_jar_rejected(self):
        suite = MidletSuite(JadDescriptor("empty"), Jar("e.jar"))
        with pytest.raises(ConfigurationError):
            suite.validate_for_deployment()

    def test_platform_enforces_device_limit(self):
        tiny = DeviceProfile(name="tiny", max_app_binary_kb=1)
        device = MobileDevice("+1", profile=tiny)
        platform = S60Platform(device)
        suite = MidletSuite(
            JadDescriptor("app"), Jar("a.jar", [JarEntry("A.class", 2_048)])
        )
        with pytest.raises(ConfigurationError):
            platform.install_suite(suite)
