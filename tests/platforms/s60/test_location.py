"""Tests for the JSR-179-style S60 location stack."""

import pytest

from repro.device.device import MobileDevice
from repro.platforms.s60.exceptions import (
    IllegalArgumentException,
    LocationException,
    NullPointerException,
    SecurityException,
)
from repro.platforms.s60.location import (
    Coordinates,
    Criteria,
    LocationListener,
    LocationProvider,
    ProximityListener,
    PERMISSION_LOCATION,
)
from repro.platforms.s60.packaging import Jar, JarEntry, JadDescriptor, MidletSuite
from repro.platforms.s60.platform import S60Platform

SITE = Coordinates(28.6, 77.2)


@pytest.fixture
def platform(device):
    platform = S60Platform(device)
    suite = MidletSuite(
        JadDescriptor("app", permissions=[PERMISSION_LOCATION]),
        Jar("app.jar", [JarEntry("A.class", 1)]),
    )
    platform.install_suite(suite)
    platform.location_provider.bind_suite("app")
    return platform


class RecordingListener(ProximityListener):
    def __init__(self):
        self.events = []
        self.monitoring = []

    def proximity_event(self, coordinates, location):
        self.events.append(location)

    def monitoring_state_changed(self, active):
        self.monitoring.append(active)


class TestCoordinates:
    def test_accessors(self):
        coordinates = Coordinates(1.0, 2.0, 3.0)
        assert coordinates.get_latitude() == 1.0
        assert coordinates.get_longitude() == 2.0
        assert coordinates.get_altitude() == 3.0

    def test_distance(self):
        assert Coordinates(0.0, 0.0).distance(Coordinates(1.0, 0.0)) == pytest.approx(
            111_195, rel=0.01
        )

    def test_invalid_rejected(self):
        with pytest.raises(IllegalArgumentException):
            Coordinates(91.0, 0.0)
        with pytest.raises(IllegalArgumentException):
            Coordinates(0.0, 181.0)


class TestCriteria:
    def test_defaults_are_no_requirement(self):
        criteria = Criteria()
        assert criteria.get_horizontal_accuracy() == Criteria.NO_REQUIREMENT
        assert criteria.get_preferred_response_time() == Criteria.NO_REQUIREMENT

    def test_setters_validate(self):
        criteria = Criteria()
        with pytest.raises(IllegalArgumentException):
            criteria.set_horizontal_accuracy(-1)
        with pytest.raises(IllegalArgumentException):
            criteria.set_preferred_response_time(-1)
        with pytest.raises(IllegalArgumentException):
            criteria.set_preferred_power_consumption(42)

    def test_power_levels(self):
        criteria = Criteria()
        criteria.set_preferred_power_consumption(Criteria.POWER_USAGE_LOW)
        assert criteria.get_preferred_power_consumption() == Criteria.POWER_USAGE_LOW


class TestProviderSelection:
    def test_default_criteria_gives_provider(self, platform):
        provider = platform.location_provider.get_instance(None)
        assert provider is not None
        assert provider.get_state() == LocationProvider.AVAILABLE

    def test_unsatisfiable_accuracy_returns_none(self, platform):
        criteria = Criteria()
        criteria.set_horizontal_accuracy(1)
        assert platform.location_provider.get_instance(criteria) is None

    def test_out_of_service_raises(self, platform):
        platform.location_provider.out_of_service = True
        with pytest.raises(LocationException):
            platform.location_provider.get_instance(None)


class TestGetLocation:
    def test_blocking_read(self, platform):
        provider = platform.location_provider.get_instance(None)
        location = provider.get_location(-1)
        assert location.is_valid()
        assert location.get_qualified_coordinates().get_latitude() != 0.0

    def test_invalid_timeout_rejected(self, platform):
        provider = platform.location_provider.get_instance(None)
        with pytest.raises(IllegalArgumentException):
            provider.get_location(0)

    def test_timeout_exceeded_raises(self, device):
        from repro.util.latency import LatencyModel

        platform = S60Platform(
            device, latency=LatencyModel(mean_ms={"s60.getLocation": 5_000.0})
        )
        provider = platform.location_provider.get_instance(None)
        with pytest.raises(LocationException, match="timed out"):
            provider.get_location(1)

    def test_out_of_service_raises(self, platform):
        provider = platform.location_provider.get_instance(None)
        platform.location_provider.out_of_service = True
        with pytest.raises(LocationException):
            provider.get_location(-1)

    def test_requires_permission(self, device):
        platform = S60Platform(device)
        suite = MidletSuite(
            JadDescriptor("noperm"), Jar("n.jar", [JarEntry("A.class", 1)])
        )
        platform.install_suite(suite)
        platform.location_provider.bind_suite("noperm")
        provider = platform.location_provider.get_instance(None)
        with pytest.raises(SecurityException):
            provider.get_location(-1)


class TestProximityListeners:
    def test_one_shot_semantics(self, platform):
        """The listener fires ONCE on entry and is auto-removed."""
        listener = RecordingListener()
        platform.location_provider.add_proximity_listener(listener, SITE, 500.0)
        assert platform.location_provider.proximity_registration_count == 1
        platform.run_for(200_000.0)
        # commute trajectory enters the site twice; native fires only once
        assert len(listener.events) == 1
        assert platform.location_provider.proximity_registration_count == 0

    def test_no_exit_events(self, platform):
        """The native API has no exit notion at all."""
        listener = RecordingListener()
        platform.location_provider.add_proximity_listener(listener, SITE, 500.0)
        platform.run_for(200_000.0)
        assert len(listener.events) == 1  # only the single entry

    def test_monitoring_state_callbacks(self, platform):
        listener = RecordingListener()
        platform.location_provider.add_proximity_listener(listener, SITE, 500.0)
        assert listener.monitoring == [True]
        platform.location_provider.remove_proximity_listener(listener)
        assert listener.monitoring == [True, False]

    def test_null_listener_rejected(self, platform):
        with pytest.raises(NullPointerException):
            platform.location_provider.add_proximity_listener(None, SITE, 500.0)

    def test_negative_radius_rejected(self, platform):
        with pytest.raises(IllegalArgumentException):
            platform.location_provider.add_proximity_listener(
                RecordingListener(), SITE, -5.0
            )

    def test_remove_unfired_listener(self, platform):
        listener = RecordingListener()
        platform.location_provider.add_proximity_listener(listener, SITE, 500.0)
        platform.location_provider.remove_proximity_listener(listener)
        platform.run_for(200_000.0)
        assert listener.events == []

    def test_requires_permission(self, device):
        platform = S60Platform(device)
        suite = MidletSuite(
            JadDescriptor("noperm"), Jar("n.jar", [JarEntry("A.class", 1)])
        )
        platform.install_suite(suite)
        platform.location_provider.bind_suite("noperm")
        with pytest.raises(SecurityException):
            platform.location_provider.add_proximity_listener(
                RecordingListener(), SITE, 500.0
            )


class TestLocationListener:
    def test_periodic_updates(self, platform):
        updates = []

        class Listener(LocationListener):
            def location_updated(self, provider, location):
                updates.append(location)

        provider = platform.location_provider.get_instance(None)
        provider.set_location_listener(Listener(), 5, -1, -1)
        platform.run_for(30_000.0)
        assert len(updates) >= 4

    def test_clearing_listener_stops_updates(self, platform):
        updates = []

        class Listener(LocationListener):
            def location_updated(self, provider, location):
                updates.append(location)

        provider = platform.location_provider.get_instance(None)
        provider.set_location_listener(Listener(), 5, -1, -1)
        platform.run_for(20_000.0)
        count = len(updates)
        provider.set_location_listener(None, -1, -1, -1)
        platform.run_for(20_000.0)
        assert len(updates) == count
