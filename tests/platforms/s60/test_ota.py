"""Tests for S60 Over-The-Air deployment."""

import pytest

from repro.core.plugin.packaging import S60PlatformExtension
from repro.core.plugin.toolkit import Project
from repro.device.device import MobileDevice
from repro.device.profiles import DeviceProfile
from repro.errors import ConfigurationError
from repro.platforms.s60.exceptions import IOException
from repro.platforms.s60.ota import JAR_SIZE_PROPERTY, OtaInstaller, OtaServer
from repro.platforms.s60.packaging import Jar, JarEntry, JadDescriptor, MidletSuite
from repro.platforms.s60.platform import S60Platform


def _suite(size_bytes=2_048, name="workforce"):
    return MidletSuite(
        JadDescriptor(
            name,
            permissions=["javax.microedition.location.Location"],
            properties={"Server-URL": "http://workforce.example.com"},
        ),
        Jar(f"{name}.jar", [JarEntry("Main.class", size_bytes)]),
    )


@pytest.fixture
def platform(device):
    return S60Platform(device)


class TestJadRoundTrip:
    def test_from_text_inverts_to_text(self):
        jad = JadDescriptor(
            "app", vendor="ibm", version="2.1",
            permissions=["a.b", "c.d"], properties={"K": "v"},
        )
        parsed = JadDescriptor.from_text(jad.to_text())
        assert parsed == jad

    def test_missing_name_rejected(self):
        with pytest.raises(ConfigurationError):
            JadDescriptor.from_text("MIDlet-Vendor: x\n")

    def test_malformed_line_rejected(self):
        with pytest.raises(ConfigurationError):
            JadDescriptor.from_text("MIDlet-Name: a\nnot a jad line\n")


class TestOtaFlow:
    def test_publish_and_install(self, device, platform):
        server = OtaServer(device.network, "ota.example.com", _suite())
        installed = OtaInstaller(platform).install_from(server.jad_url)
        assert installed.name == "workforce"
        # permissions and app properties survived the round trip
        assert platform.suite_has_permission(
            "workforce", "javax.microedition.location.Location"
        )
        assert platform.suite_property("workforce", "Server-URL") == (
            "http://workforce.example.com"
        )
        # OTA transport bookkeeping stripped from the installed descriptor
        assert JAR_SIZE_PROPERTY not in installed.jad.properties

    def test_installed_suite_launches(self, device, platform):
        from repro.platforms.s60.midlet import MIDlet, MidletState

        server = OtaServer(device.network, "ota.example.com", _suite())
        OtaInstaller(platform).install_from(server.jad_url)
        midlet = platform.launch(MIDlet, "workforce")
        assert midlet.state is MidletState.ACTIVE

    def test_size_gate_refuses_before_jar_download(self):
        tiny = DeviceProfile(name="tiny", max_app_binary_kb=1)
        device = MobileDevice("+1", profile=tiny)
        platform = S60Platform(device)
        server = OtaServer(device.network, "ota.example.com", _suite(size_bytes=4_096))
        with pytest.raises(ConfigurationError, match="download refused"):
            OtaInstaller(platform).install_from(server.jad_url)
        # the jar itself was never fetched: only the JAD request hit the server
        log = device.network.server("ota.example.com").request_log
        assert [request.path for request in log] == [server.jad_path]

    def test_transport_failure_is_checked_io_exception(self, device, platform):
        server = OtaServer(device.network, "ota.example.com", _suite())
        device.network.fail_next("no coverage")
        with pytest.raises(IOException, match="no coverage"):
            OtaInstaller(platform).install_from(server.jad_url)

    def test_missing_jad_404(self, device, platform):
        device.network.add_server("ota.example.com")
        with pytest.raises(IOException, match="404"):
            OtaInstaller(platform).install_from("http://ota.example.com/ghost.jad")

    def test_merged_proxy_suite_deploys_ota(self, device, platform):
        """The plugin's merged suite (app + proxy jars) ships over OTA."""
        project = Project("wfm", "s60")
        extension = S60PlatformExtension()
        extension.embed_proxy(project, "Location")
        extension.embed_proxy(project, "Sms")
        merged = extension.build_suite(
            project, Jar("wfm.jar", [JarEntry("WFM.class", 2_048)])
        )
        server = OtaServer(device.network, "ota.example.com", merged)
        installed = OtaInstaller(platform).install_from(server.jad_url)
        assert "com/ibm/S60/location/LocationProxy.class" in installed.jar
        assert platform.suite_has_permission(
            "wfm", "javax.wireless.messaging.sms.send"
        )
