"""Tests for the JS/Java bridge and its marshalling rules."""

import pytest

from repro.device.device import MobileDevice
from repro.platforms.webview.bridge import JsBridgeObject
from repro.platforms.webview.exceptions import BridgeMarshalError, JsBridgeError
from repro.platforms.webview.platform import WebViewPlatform


class JavaSide:
    """A Java object with a few bridge-shaped methods."""

    def __init__(self):
        self.calls = []

    def add(self, a, b):
        self.calls.append(("add", a, b))
        return a + b

    def greet(self, name):
        return f"hello {name}"

    def explode(self):
        raise RuntimeError("java blew up")

    def return_object(self):
        return {"not": "primitive"}

    not_a_method = 42


@pytest.fixture
def platform(device):
    return WebViewPlatform(device)


@pytest.fixture
def webview(platform):
    return platform.new_webview()


class TestInjection:
    def test_lookup_injected_object(self, webview):
        webview.add_javascript_interface(JavaSide(), "Java")
        window = webview.load_page(lambda w: None)
        assert isinstance(window.bridge_object("Java"), JsBridgeObject)

    def test_unknown_global_raises_reference_error(self, webview):
        window = webview.load_page(lambda w: None)
        with pytest.raises(JsBridgeError, match="not defined"):
            window.bridge_object("Ghost")

    def test_bad_js_name_rejected(self, webview):
        with pytest.raises(ValueError):
            webview.add_javascript_interface(JavaSide(), "not a name")

    def test_names_listed(self, webview):
        webview.add_javascript_interface(JavaSide(), "B")
        webview.add_javascript_interface(JavaSide(), "A")
        assert webview.bridge.names() == ["A", "B"]


class TestMarshalling:
    def test_primitives_cross(self, webview):
        java = JavaSide()
        webview.add_javascript_interface(java, "Java")
        window = webview.load_page(lambda w: None)
        stub = window.bridge_object("Java")
        assert stub.add(1, 2) == 3
        assert stub.greet("js") == "hello js"

    def test_callable_argument_blocked(self, webview):
        webview.add_javascript_interface(JavaSide(), "Java")
        window = webview.load_page(lambda w: None)
        with pytest.raises(BridgeMarshalError, match="cannot cross"):
            window.bridge_object("Java").greet(lambda: None)

    def test_object_argument_blocked(self, webview):
        webview.add_javascript_interface(JavaSide(), "Java")
        window = webview.load_page(lambda w: None)
        with pytest.raises(BridgeMarshalError):
            window.bridge_object("Java").greet({"dict": 1})

    def test_object_return_blocked(self, webview):
        webview.add_javascript_interface(JavaSide(), "Java")
        window = webview.load_page(lambda w: None)
        with pytest.raises(BridgeMarshalError):
            window.bridge_object("Java").return_object()

    def test_java_exception_becomes_untyped_error(self, webview):
        webview.add_javascript_interface(JavaSide(), "Java")
        window = webview.load_page(lambda w: None)
        with pytest.raises(JsBridgeError) as excinfo:
            window.bridge_object("Java").explode()
        assert excinfo.value.java_class == "RuntimeError"
        assert "java blew up" in excinfo.value.java_message

    def test_non_method_attribute_blocked(self, webview):
        webview.add_javascript_interface(JavaSide(), "Java")
        window = webview.load_page(lambda w: None)
        with pytest.raises(BridgeMarshalError, match="not a bridged method"):
            window.bridge_object("Java").not_a_method

    def test_each_crossing_charges_latency(self, platform, webview):
        java = JavaSide()
        webview.add_javascript_interface(java, "Java")
        window = webview.load_page(lambda w: None)
        stub = window.bridge_object("Java")
        before = platform.clock.now_ms
        stub.add(1, 2)
        stub.add(3, 4)
        charged = platform.clock.now_ms - before
        assert charged == pytest.approx(
            2 * platform.native_latency.mean_for("webview.bridge.add")
        )
        assert platform.native_call_counts()["webview.bridge.add"] == 2
