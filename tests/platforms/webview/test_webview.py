"""Tests for the WebView host, window, timers and notification table."""

import json

import pytest

from repro.platforms.webview.exceptions import JsError
from repro.platforms.webview.notifications import NotificationTable
from repro.platforms.webview.platform import WebViewPlatform


@pytest.fixture
def platform(device):
    return WebViewPlatform(device)


@pytest.fixture
def window(platform):
    return platform.new_webview().load_page(lambda w: None)


class TestTimers:
    def test_set_timeout_fires_once(self, platform, window):
        fired = []
        window.set_timeout(lambda: fired.append(platform.clock.now_ms), 100.0)
        platform.run_for(500.0)
        assert fired == [100.0]

    def test_set_interval_repeats(self, platform, window):
        fired = []
        window.set_interval(lambda: fired.append(True), 100.0)
        platform.run_for(550.0)
        assert len(fired) == 5

    def test_clear_interval(self, platform, window):
        fired = []
        timer_id = window.set_interval(lambda: fired.append(True), 100.0)
        platform.run_for(250.0)
        window.clear_interval(timer_id)
        platform.run_for(500.0)
        assert len(fired) == 2

    def test_clear_unknown_id_is_noop(self, window):
        window.clear_interval(999)

    def test_active_timer_count(self, window):
        window.set_interval(lambda: None, 10.0)
        timer_id = window.set_interval(lambda: None, 10.0)
        assert window.active_timer_count() == 2
        window.clear_interval(timer_id)
        assert window.active_timer_count() == 1


class TestWindowGlobals:
    def test_set_get_global(self, window):
        window.set_global("x", 42)
        assert window.get_global("x") == 42

    def test_missing_global_raises(self, window):
        with pytest.raises(JsError, match="not defined"):
            window.get_global("missing")

    def test_console_log(self, window):
        window.log("hello")
        window.log(123)
        assert window.console == ["hello", "123"]


class TestPageLifecycle:
    def test_load_page_sets_active_window(self, platform):
        webview = platform.new_webview()
        window = webview.load_page(lambda w: None)
        assert platform.active_window is window

    def test_new_page_cancels_old_timers(self, platform):
        webview = platform.new_webview()
        fired = []
        webview.load_page(lambda w: w.set_interval(lambda: fired.append(1), 100.0))
        webview.load_page(lambda w: None)
        platform.run_for(1_000.0)
        assert fired == []

    def test_page_script_runs_during_load(self, platform):
        webview = platform.new_webview()
        ran = []
        webview.load_page(lambda w: ran.append(True))
        assert ran == [True]
        assert webview.page_loaded


class TestNotificationTable:
    def test_post_and_drain_fifo(self):
        table = NotificationTable()
        notif_id = table.new_id()
        table.post(notif_id, "k", {"n": 1}, now_ms=1.0)
        table.post(notif_id, "k", {"n": 2}, now_ms=2.0)
        drained = table.drain(notif_id)
        assert [n.payload["n"] for n in drained] == [1, 2]
        assert table.drain(notif_id) == []

    def test_pending_count(self):
        table = NotificationTable()
        notif_id = table.new_id()
        assert table.pending(notif_id) == 0
        table.post(notif_id, "k", {}, now_ms=0.0)
        assert table.pending(notif_id) == 1

    def test_unknown_id_rejected(self):
        table = NotificationTable()
        with pytest.raises(KeyError):
            table.post("ghost", "k", {}, now_ms=0.0)

    def test_non_json_payload_rejected_at_post(self):
        table = NotificationTable()
        notif_id = table.new_id()
        with pytest.raises(TypeError):
            table.post(notif_id, "k", {"fn": lambda: None}, now_ms=0.0)

    def test_drain_json_shape(self):
        table = NotificationTable()
        notif_id = table.new_id()
        table.post(notif_id, "proximity", {"entering": True}, now_ms=5.0)
        batch = json.loads(table.drain_json(notif_id))
        assert batch == [
            {"kind": "proximity", "payload": {"entering": True}, "posted_at_ms": 5.0}
        ]

    def test_close_forgets_queue(self):
        table = NotificationTable()
        notif_id = table.new_id()
        table.close(notif_id)
        with pytest.raises(KeyError):
            table.post(notif_id, "k", {}, now_ms=0.0)

    def test_total_posted(self):
        table = NotificationTable()
        first, second = table.new_id(), table.new_id()
        table.post(first, "k", {}, now_ms=0.0)
        table.post(second, "k", {}, now_ms=0.0)
        assert table.total_posted == 2

    def test_platform_requires_same_device_android(self, device):
        from repro.device.device import MobileDevice
        from repro.platforms.android.platform import AndroidPlatform

        other = MobileDevice("+9")
        android = AndroidPlatform(other)
        with pytest.raises(ValueError):
            WebViewPlatform(device, android=android)
