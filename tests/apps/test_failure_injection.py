"""Failure injection: the proxied app under degraded conditions.

The uniform error surface must hold up when the world misbehaves —
network loss, SMSC failures, out-of-service location providers — on every
platform.
"""

import pytest

from repro.apps.workforce import scenario
from repro.apps.workforce.proxied import launch_on_android, launch_on_s60
from repro.core.proxies import create_proxy
from repro.errors import ProxyPlatformError


class TestNetworkLoss:
    def test_report_failure_surfaces_as_event_android(self):
        sc = scenario.build_android()
        logic = launch_on_android(sc.platform, sc.new_context(), sc.config)
        sc.platform.run_for(10_000.0)
        sc.device.network.fail_next("cell handover")
        with pytest.raises(ProxyPlatformError):
            logic.report_location()
        # subsequent reports recover
        logic.report_location()
        assert sc.server.track_of(sc.config.agent.agent_id).report_count == 1

    def test_report_failure_surfaces_uniformly_s60(self):
        sc = scenario.build_s60()
        logic = launch_on_s60(sc.platform, sc.config)
        sc.platform.run_for(10_000.0)
        sc.device.network.fail_next("tunnel")
        with pytest.raises(ProxyPlatformError):
            logic.report_location()

    def test_same_uniform_error_class_on_both_platforms(self):
        """Different native exceptions (Apache IOException vs GCF
        IOException), one uniform error type."""
        errors = []
        for build, launch in (
            (scenario.build_android, None),
            (scenario.build_s60, None),
        ):
            sc = build()
            proxy = create_proxy("Http", sc.platform)
            if sc.platform.platform_name == "android":
                proxy.set_property("context", sc.new_context())
            sc.device.network.add_server("api.test")
            sc.device.network.fail_next("boom")
            try:
                proxy.get("http://api.test/x")
            except ProxyPlatformError as error:
                errors.append(type(error))
        # De-fragmentation: both platforms raise the SAME uniform class
        # (the transient-refined ProxyNetworkError), still within the
        # ProxyPlatformError surface applications already handle.
        assert len(errors) == 2
        assert errors[0] is errors[1]
        assert issubclass(errors[0], ProxyPlatformError)


class TestSmsFailures:
    def test_unreachable_supervisor_does_not_crash_app(self):
        sc = scenario.build_android()
        sc.device.sms_center.set_unreachable(sc.config.agent.supervisor_number)
        logic = launch_on_android(sc.platform, sc.new_context(), sc.config)
        sc.platform.run_for(200_000.0)
        # the app kept running: proximity events still logged
        assert "arrived" in logic.activity_events
        # and no SMS reached the supervisor
        inbox = sc.device.sms_center.inbox_of(sc.config.agent.supervisor_number)
        assert inbox == []

    def test_failed_listener_event_android(self):
        sc = scenario.build_android()
        sc.device.sms_center.set_unreachable("+2")
        proxy = create_proxy("Sms", sc.platform)
        proxy.set_property("context", sc.new_context())
        events = []
        proxy.send_text_message("+2", "x", lambda e, mid, r: events.append((e, r)))
        sc.platform.run_for(5_000.0)
        assert events[0][0] == "failed"


class TestLocationOutOfService:
    def test_s60_provider_outage_mid_run(self):
        sc = scenario.build_s60()
        proxy = create_proxy("Location", sc.platform)
        proxy.get_location()  # works
        sc.platform.location_provider.out_of_service = True
        with pytest.raises(ProxyPlatformError):
            proxy.get_location()
        sc.platform.location_provider.out_of_service = False
        proxy.get_location()  # recovered


class TestWebViewDegradation:
    def test_page_reload_stops_stale_polling(self):
        """Reloading the page must not leave orphan polls hammering the
        bridge for a dead callback."""
        from repro.core.proxies.location.webview import (
            LocationProxyJs,
            install_location_wrapper,
        )

        sc = scenario.build_webview()
        webview = sc.platform.new_webview()
        install_location_wrapper(webview, sc.platform, sc.new_context())
        events = []

        def page_one(window):
            proxy = LocationProxyJs.in_page(window)
            proxy.add_proximity_alert(
                sc.config.site.latitude,
                sc.config.site.longitude,
                0.0,
                sc.config.site.radius_m,
                -1,
                lambda *args: events.append(args),
            )

        window_one = webview.load_page(page_one)
        assert window_one.active_timer_count() == 1
        webview.load_page(lambda w: None)  # navigation
        assert window_one.active_timer_count() == 0
        sc.platform.run_for(200_000.0)
        assert events == []  # the old page's callback never fires
