"""Integration tests: the full workforce app, native and proxied, on
every platform, against the live server."""

import pytest

from repro.apps.workforce import scenario
from repro.apps.workforce.native_android import (
    WorkforceNativeAndroid,
    WorkforceNativeAndroidV10,
)
from repro.apps.workforce.native_s60 import WorkforceNativeS60
from repro.apps.workforce.native_webview import install_native_shims, make_native_page
from repro.apps.workforce.proxied import (
    WorkforceLogic,
    launch_on_android,
    launch_on_s60,
    launch_on_webview,
)
from repro.core.plugin.packaging import WebViewPlatformExtension
from repro.platforms.android.exceptions import IllegalArgumentException
from repro.platforms.android.versions import SdkVersion

EXPECTED_EVENTS = ["arrived", "departed", "arrived"]


class TestNativeVariants:
    def test_native_android_full_run(self):
        sc = scenario.build_android()
        app = WorkforceNativeAndroid(sc.platform, scenario.PACKAGE)
        app.config = sc.config
        app.perform_launch()
        sc.platform.run_for(200_000.0)
        app.report_location()
        assert [e for e in app.activity_events if e in ("arrived", "departed")] == (
            EXPECTED_EVENTS
        )
        assert [r.event for r in sc.server.activity_log()] == EXPECTED_EVENTS
        assert sc.server.track_of(scenario.AGENT.agent_id).report_count == 1

    def test_native_android_notifies_supervisor(self):
        sc = scenario.build_android()
        app = WorkforceNativeAndroid(sc.platform, scenario.PACKAGE)
        app.config = sc.config
        app.perform_launch()
        sc.platform.run_for(200_000.0)
        inbox = sc.device.sms_center.inbox_of(scenario.AGENT.supervisor_number)
        assert [m.text for m in inbox] == ["Arrived at site", "Arrived at site"]

    def test_native_m5_code_breaks_on_sdk_10(self):
        """The maintenance problem: unmodified m5 code fails on 1.0."""
        sc = scenario.build_android(sdk_version=SdkVersion.V1_0)
        app = WorkforceNativeAndroid(sc.platform, scenario.PACKAGE)
        app.config = sc.config
        with pytest.raises(IllegalArgumentException):
            app.perform_launch()

    def test_ported_v10_code_works_on_sdk_10(self):
        sc = scenario.build_android(sdk_version=SdkVersion.V1_0)
        app = WorkforceNativeAndroidV10(sc.platform, scenario.PACKAGE)
        app.config = sc.config
        app.perform_launch()
        sc.platform.run_for(200_000.0)
        assert [r.event for r in sc.server.activity_log()] == EXPECTED_EVENTS

    def test_native_s60_full_run(self):
        sc = scenario.build_s60()
        app = WorkforceNativeS60(sc.platform, scenario.PACKAGE)
        app.config = sc.config
        app.perform_start()
        sc.platform.run_for(200_000.0)
        app.report_location()
        assert [r.event for r in sc.server.activity_log()] == EXPECTED_EVENTS

    def test_native_webview_full_run(self):
        sc = scenario.build_webview()
        webview = sc.platform.new_webview()
        install_native_shims(webview, sc.platform, sc.new_context())
        window = webview.load_page(make_native_page(sc.config))
        sc.platform.run_for(200_000.0)
        window.get_global("report_location")()
        state = window.get_global("app_state")
        assert state["activity_events"] == EXPECTED_EVENTS
        assert [r.event for r in sc.server.activity_log()] == EXPECTED_EVENTS


class TestProxiedVariant:
    @pytest.mark.parametrize("sdk", [SdkVersion.M5_RC15, SdkVersion.V1_0])
    def test_proxied_android_unchanged_across_sdks(self, sdk):
        """The maintenance solution: identical code on both SDK versions."""
        sc = scenario.build_android(sdk_version=sdk)
        logic = launch_on_android(sc.platform, sc.new_context(), sc.config)
        sc.platform.run_for(200_000.0)
        logic.report_location()
        assert logic.activity_events == EXPECTED_EVENTS
        assert [r.event for r in sc.server.activity_log()] == EXPECTED_EVENTS

    def test_proxied_s60(self):
        sc = scenario.build_s60()
        logic = launch_on_s60(sc.platform, sc.config)
        sc.platform.run_for(200_000.0)
        logic.report_location()
        assert logic.activity_events == EXPECTED_EVENTS

    def test_proxied_webview(self):
        sc = scenario.build_webview()
        webview = sc.platform.new_webview()
        WebViewPlatformExtension().install_wrappers(
            webview, sc.platform, sc.new_context(), ["Location", "Sms", "Http"]
        )
        holder = {}
        webview.load_page(
            lambda window: holder.update(logic=launch_on_webview(sc.platform, sc.config))
        )
        sc.platform.run_for(200_000.0)
        holder["logic"].report_location()
        assert holder["logic"].activity_events == EXPECTED_EVENTS

    def test_business_logic_class_is_shared(self):
        """The portability claim in its strongest form: the SAME class
        object runs on every platform (not merely similar code)."""
        android = scenario.build_android()
        logic_android = launch_on_android(
            android.platform, android.new_context(), android.config
        )
        s60 = scenario.build_s60()
        logic_s60 = launch_on_s60(s60.platform, s60.config)
        assert type(logic_android) is type(logic_s60) is WorkforceLogic

    def test_proxied_supervisor_notification(self):
        sc = scenario.build_s60()
        logic = launch_on_s60(sc.platform, sc.config)
        sc.platform.run_for(200_000.0)
        inbox = sc.device.sms_center.inbox_of(scenario.AGENT.supervisor_number)
        assert [m.text for m in inbox] == ["Arrived at site", "Arrived at site"]

    def test_server_sees_identical_logs_from_all_platforms(self):
        logs = {}
        sc = scenario.build_android()
        launch_on_android(sc.platform, sc.new_context(), sc.config)
        sc.platform.run_for(200_000.0)
        logs["android"] = [r.event for r in sc.server.activity_log()]

        sc = scenario.build_s60()
        launch_on_s60(sc.platform, sc.config)
        sc.platform.run_for(200_000.0)
        logs["s60"] = [r.event for r in sc.server.activity_log()]

        sc = scenario.build_webview()
        webview = sc.platform.new_webview()
        WebViewPlatformExtension().install_wrappers(
            webview, sc.platform, sc.new_context(), ["Location", "Sms", "Http"]
        )
        webview.load_page(lambda w: launch_on_webview(sc.platform, sc.config))
        sc.platform.run_for(200_000.0)
        logs["webview"] = [r.event for r in sc.server.activity_log()]

        assert logs["android"] == logs["s60"] == logs["webview"] == EXPECTED_EVENTS
