"""Tests for the workforce server-side application."""

import pytest

from repro.apps.workforce.common import (
    PATH_COMPLETE_ASSIGNMENT,
    PATH_CREATE_ASSIGNMENT,
    PATH_LOG_EVENT,
    PATH_POLL_ASSIGNMENT,
    PATH_REPORT_LOCATION,
    SERVER_HOST,
    encode,
)
from repro.apps.workforce.server import WorkforceServer
from repro.device.network import HttpRequest, SimulatedNetwork
from repro.util.clock import Scheduler


@pytest.fixture
def network(scheduler):
    return SimulatedNetwork(scheduler)


@pytest.fixture
def server(network):
    return WorkforceServer(network)


def _post(network, path, payload):
    return network.request(
        HttpRequest("POST", SERVER_HOST, path, body=encode(payload))
    )


class TestTracking:
    def test_location_report_updates_track(self, network, server):
        response = _post(
            network,
            PATH_REPORT_LOCATION,
            {"agent": "a1", "latitude": 28.6, "longitude": 77.2, "timestamp_ms": 5.0},
        )
        assert response.ok
        track = server.track_of("a1")
        assert (track.latitude, track.longitude) == (28.6, 77.2)
        assert track.report_count == 1

    def test_report_requires_agent(self, network, server):
        response = _post(network, PATH_REPORT_LOCATION, {"latitude": 1.0})
        assert response.status == 400

    def test_unknown_agent_track_is_none(self, server):
        assert server.track_of("ghost") is None


class TestActivityLog:
    def test_event_logged(self, network, server):
        _post(
            network,
            PATH_LOG_EVENT,
            {"agent": "a1", "event": "arrived", "detail": "x", "timestamp_ms": 9.0},
        )
        log = server.activity_log("a1")
        assert [(r.event, r.detail) for r in log] == [("arrived", "x")]

    def test_log_filters_by_agent(self, network, server):
        _post(network, PATH_LOG_EVENT, {"agent": "a1", "event": "arrived"})
        _post(network, PATH_LOG_EVENT, {"agent": "a2", "event": "departed"})
        assert len(server.activity_log()) == 2
        assert len(server.activity_log("a1")) == 1

    def test_event_requires_fields(self, network, server):
        assert _post(network, PATH_LOG_EVENT, {"agent": "a1"}).status == 400


class TestAssignments:
    def test_dispatch_and_poll(self, network, server):
        server.dispatch("a1", "site-7", "fix the antenna")
        response = _post(network, PATH_POLL_ASSIGNMENT, {"agent": "a1"})
        import json

        body = json.loads(response.body)
        assert body["site"] == "site-7"
        assert body["description"] == "fix the antenna"
        # polled assignment is now assigned, not re-served
        second = _post(network, PATH_POLL_ASSIGNMENT, {"agent": "a1"})
        assert json.loads(second.body)["assignment"] is None

    def test_poll_other_agents_assignment_hidden(self, network, server):
        import json

        server.dispatch("a1", "site-7", "task")
        response = _post(network, PATH_POLL_ASSIGNMENT, {"agent": "a2"})
        assert json.loads(response.body)["assignment"] is None

    def test_create_over_http(self, network, server):
        import json

        response = _post(
            network,
            PATH_CREATE_ASSIGNMENT,
            {"agent": "a1", "site": "s", "description": "d"},
        )
        assignment_id = json.loads(response.body)["assignment"]
        assert server.assignment(assignment_id).status == "pending"

    def test_complete_assignment(self, network, server):
        assignment = server.dispatch("a1", "s", "d")
        response = _post(
            network, PATH_COMPLETE_ASSIGNMENT, {"assignment": assignment.assignment_id}
        )
        assert response.ok
        assert server.assignment(assignment.assignment_id).status == "completed"

    def test_complete_unknown_404(self, network, server):
        response = _post(network, PATH_COMPLETE_ASSIGNMENT, {"assignment": "ghost"})
        assert response.status == 404

    def test_assignments_for_agent(self, server):
        server.dispatch("a1", "s1", "d1")
        server.dispatch("a1", "s2", "d2")
        server.dispatch("a2", "s3", "d3")
        assert len(server.assignments_for("a1")) == 2
