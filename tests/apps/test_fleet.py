"""Multi-agent fleet integration tests (shared clock, SMSC, network)."""

import pytest

from repro.apps.workforce.fleet import build_fleet, launch_fleet


class TestFleetConstruction:
    def test_minimum_one_agent(self):
        with pytest.raises(ValueError):
            build_fleet(0)

    def test_shared_infrastructure(self):
        fleet = build_fleet(3)
        schedulers = {id(agent.device.scheduler) for agent in fleet.agents}
        schedulers.add(id(fleet.supervisor.scheduler))
        assert len(schedulers) == 1
        centers = {id(agent.device.sms_center) for agent in fleet.agents}
        assert len(centers) == 1

    def test_distinct_sites_and_numbers(self):
        fleet = build_fleet(4)
        sites = {agent.site.site_id for agent in fleet.agents}
        numbers = {agent.profile.phone_number for agent in fleet.agents}
        assert len(sites) == len(numbers) == 4

    def test_agent_lookup(self):
        fleet = build_fleet(2)
        assert fleet.agent("agent-2").profile.phone_number.endswith("2")
        with pytest.raises(KeyError):
            fleet.agent("agent-99")


class TestFleetRun:
    @pytest.fixture(scope="class")
    def run_fleet(self):
        fleet = build_fleet(3)
        launch_fleet(fleet)
        for agent in fleet.agents:
            fleet.server.dispatch(
                agent.profile.agent_id, agent.site.site_id, "inspect"
            )
        fleet.run_for(250_000.0)
        for agent in fleet.agents:
            agent.logic.report_location()
        return fleet

    def test_every_agent_arrived_and_departed(self, run_fleet):
        for agent in run_fleet.agents:
            assert agent.logic.activity_events[:2] == ["arrived", "departed"]

    def test_server_log_attributes_per_agent(self, run_fleet):
        for agent in run_fleet.agents:
            log = run_fleet.server.activity_log(agent.profile.agent_id)
            assert [r.event for r in log][:2] == ["arrived", "departed"]

    def test_server_tracks_all_agents(self, run_fleet):
        for agent in run_fleet.agents:
            track = run_fleet.server.track_of(agent.profile.agent_id)
            assert track is not None and track.report_count == 1

    def test_supervisor_receives_one_text_per_arrival(self, run_fleet):
        arrivals = sum(
            agent.logic.activity_events.count("arrived")
            for agent in run_fleet.agents
        )
        assert len(run_fleet.supervisor_inbox) == arrivals
        assert set(run_fleet.supervisor_inbox) == {"Arrived at site"}

    def test_staggered_arrival_order(self, run_fleet):
        """Agents commute with staggered starts; the server log's arrival
        order follows the stagger."""
        arrival_order = [
            record.agent_id
            for record in run_fleet.server.activity_log()
            if record.event == "arrived"
        ]
        assert arrival_order[:3] == ["agent-1", "agent-2", "agent-3"]

    def test_agents_do_not_cross_talk(self, run_fleet):
        """Agent K's proximity alert never fires for agent J's site."""
        for agent in run_fleet.agents:
            # exactly one arrival per agent in this trajectory
            assert agent.logic.activity_events.count("arrived") == 1
