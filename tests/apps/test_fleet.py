"""Multi-agent fleet integration tests (shared clock, SMSC, network)."""

import pytest

from repro.apps.workforce.fleet import build_fleet, launch_fleet


class TestFleetConstruction:
    def test_minimum_one_agent(self):
        with pytest.raises(ValueError):
            build_fleet(0)

    def test_shared_infrastructure(self):
        fleet = build_fleet(3)
        schedulers = {id(agent.device.scheduler) for agent in fleet.agents}
        schedulers.add(id(fleet.supervisor.scheduler))
        assert len(schedulers) == 1
        centers = {id(agent.device.sms_center) for agent in fleet.agents}
        assert len(centers) == 1

    def test_distinct_sites_and_numbers(self):
        fleet = build_fleet(4)
        sites = {agent.site.site_id for agent in fleet.agents}
        numbers = {agent.profile.phone_number for agent in fleet.agents}
        assert len(sites) == len(numbers) == 4

    def test_agent_lookup(self):
        fleet = build_fleet(2)
        assert fleet.agent("agent-2").profile.phone_number.endswith("2")
        with pytest.raises(KeyError):
            fleet.agent("agent-99")


class TestFleetRun:
    @pytest.fixture(scope="class")
    def run_fleet(self):
        fleet = build_fleet(3)
        launch_fleet(fleet)
        for agent in fleet.agents:
            fleet.server.dispatch(
                agent.profile.agent_id, agent.site.site_id, "inspect"
            )
        fleet.run_for(250_000.0)
        for agent in fleet.agents:
            agent.logic.report_location()
        return fleet

    def test_every_agent_arrived_and_departed(self, run_fleet):
        for agent in run_fleet.agents:
            assert agent.logic.activity_events[:2] == ["arrived", "departed"]

    def test_server_log_attributes_per_agent(self, run_fleet):
        for agent in run_fleet.agents:
            log = run_fleet.server.activity_log(agent.profile.agent_id)
            assert [r.event for r in log][:2] == ["arrived", "departed"]

    def test_server_tracks_all_agents(self, run_fleet):
        for agent in run_fleet.agents:
            track = run_fleet.server.track_of(agent.profile.agent_id)
            assert track is not None and track.report_count == 1

    def test_supervisor_receives_one_text_per_arrival(self, run_fleet):
        arrivals = sum(
            agent.logic.activity_events.count("arrived")
            for agent in run_fleet.agents
        )
        assert len(run_fleet.supervisor_inbox) == arrivals
        assert set(run_fleet.supervisor_inbox) == {"Arrived at site"}

    def test_staggered_arrival_order(self, run_fleet):
        """Agents commute with staggered starts; the server log's arrival
        order follows the stagger."""
        arrival_order = [
            record.agent_id
            for record in run_fleet.server.activity_log()
            if record.event == "arrived"
        ]
        assert arrival_order[:3] == ["agent-1", "agent-2", "agent-3"]

    def test_agents_do_not_cross_talk(self, run_fleet):
        """Agent K's proximity alert never fires for agent J's site."""
        for agent in run_fleet.agents:
            # exactly one arrival per agent in this trajectory
            assert agent.logic.activity_events.count("arrived") == 1


class TestFleetSlos:
    @pytest.fixture(scope="class")
    def observed_fleet(self):
        from repro.obs.analyze.slo import SloSpec

        fleet = build_fleet(2, observability=True)
        launch_fleet(fleet)
        fleet.install_slos(
            [
                SloSpec("sendTextMessage", 200.0, window_ms=300_000.0),
                SloSpec("post", 0.001, target_ratio=0.5, window_ms=300_000.0),
            ]
        )
        fleet.run_for(180_000.0)
        return fleet

    def test_observability_flag_enables_tracing(self):
        assert not build_fleet(1).agents[0].device.obs.enabled
        assert build_fleet(1, observability=True).agents[0].device.obs.enabled

    def test_install_requires_engines_per_agent(self, observed_fleet):
        engines = {id(agent.slo_engine) for agent in observed_fleet.agents}
        assert len(engines) == len(observed_fleet.agents)

    def test_evaluate_ingests_dispatch_spans(self, observed_fleet):
        statuses = observed_fleet.evaluate_slos()
        assert set(statuses) == {"agent-1", "agent-2"}
        for agent_statuses in statuses.values():
            sms = next(
                s for s in agent_statuses if s.spec.operation == "sendTextMessage"
            )
            assert sms.window_count >= 1
            assert not sms.breached

    def test_impossible_slo_breaches_and_emits(self, observed_fleet):
        observed_fleet.evaluate_slos()
        breached = observed_fleet.breached_slos()
        # The 1µs post threshold is unmeetable: every agent breaches it.
        assert set(breached) == {"agent-1", "agent-2"}
        assert all("post@*" in names for names in breached.values())
        metrics = observed_fleet.agents[0].device.obs.metrics
        assert metrics.total("slo.breaches") >= 1

    def test_repeated_evaluation_does_not_double_ingest(self, observed_fleet):
        first = observed_fleet.evaluate_slos()
        second = observed_fleet.evaluate_slos()
        for agent_id in first:
            counts = [
                (a.spec.name, a.window_count) for a in first[agent_id]
            ]
            assert counts == [
                (b.spec.name, b.window_count) for b in second[agent_id]
            ]
