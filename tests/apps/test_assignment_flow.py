"""The device-side assignment lifecycle over the HTTP proxy."""

import pytest

from repro.apps.workforce import scenario
from repro.apps.workforce.proxied import (
    AssignmentClient,
    launch_on_android,
    launch_on_s60,
)


class TestAssignmentFlow:
    def test_poll_empty_queue(self):
        sc = scenario.build_android()
        logic = launch_on_android(sc.platform, sc.new_context(), sc.config)
        assert AssignmentClient(logic).poll() is None

    def test_poll_then_complete(self):
        sc = scenario.build_android()
        logic = launch_on_android(sc.platform, sc.new_context(), sc.config)
        dispatched = sc.server.dispatch(
            sc.config.agent.agent_id, sc.config.site.site_id, "replace fuse"
        )
        assignment = AssignmentClient(logic).poll()
        assert assignment["assignment"] == dispatched.assignment_id
        assert assignment["description"] == "replace fuse"
        assert sc.server.assignment(dispatched.assignment_id).status == "assigned"
        assert AssignmentClient(logic).complete(dispatched.assignment_id)
        assert sc.server.assignment(dispatched.assignment_id).status == "completed"
        assert f"completed:{dispatched.assignment_id}" in logic.activity_events

    def test_poll_is_exactly_once(self):
        sc = scenario.build_android()
        logic = launch_on_android(sc.platform, sc.new_context(), sc.config)
        sc.server.dispatch(sc.config.agent.agent_id, "site-7", "one job")
        assert AssignmentClient(logic).poll() is not None
        assert AssignmentClient(logic).poll() is None

    def test_complete_unknown_rejected(self):
        sc = scenario.build_android()
        logic = launch_on_android(sc.platform, sc.new_context(), sc.config)
        assert not AssignmentClient(logic).complete("job-999")

    def test_same_flow_on_s60(self):
        """The assignment logic lives in the shared class: S60 gets it too."""
        sc = scenario.build_s60()
        logic = launch_on_s60(sc.platform, sc.config)
        dispatched = sc.server.dispatch(
            sc.config.agent.agent_id, sc.config.site.site_id, "paint fence"
        )
        assignment = AssignmentClient(logic).poll()
        assert assignment["description"] == "paint fence"
        assert AssignmentClient(logic).complete(dispatched.assignment_id)
