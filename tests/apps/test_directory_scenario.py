"""Integration: five proxies composed in one directory-services flow."""

import json

import pytest

from repro.apps.workforce import scenario
from repro.core.enrichment import CallRetryCoordinator, RetryPolicy
from repro.core.proxies import create_proxy
from repro.core.proxy.datatypes import CallOutcome
from repro.device.network import HttpResponse
from repro.device.telephony import TelephonyUnit
from repro.platforms.android.calendar_provider import READ_CALENDAR, WRITE_CALENDAR
from repro.platforms.android.contacts import READ_CONTACTS, WRITE_CONTACTS
from repro.util.geo import destination_point, haversine_m

HOST = "directory.example.com"


@pytest.fixture
def world():
    sc = scenario.build_android()
    sc.platform.install(
        "dir",
        scenario.ANDROID_PERMISSIONS
        | {READ_CONTACTS, WRITE_CONTACTS, READ_CALENDAR, WRITE_CALENDAR},
    )
    near = destination_point(scenario.SITE.latitude, scenario.SITE.longitude, 90.0, 900.0)
    far = destination_point(scenario.SITE.latitude, scenario.SITE.longitude, 0.0, 4_000.0)
    sites = [
        {"site": "near-site", "latitude": near.latitude, "longitude": near.longitude, "oncall": "Near Nia"},
        {"site": "far-site", "latitude": far.latitude, "longitude": far.longitude, "oncall": "Far Fred"},
    ]

    def nearby(request):
        body = json.loads(request.body)
        ranked = sorted(
            sites,
            key=lambda s: haversine_m(
                body["latitude"], body["longitude"], s["latitude"], s["longitude"]
            ),
        )
        return HttpResponse(200, json.dumps(ranked))

    sc.device.network.add_server(HOST).route("POST", "/nearby", nearby)
    sc.device.contacts.add("Near Nia", ("+911",))
    sc.device.contacts.add("Far Fred", ("+912",))
    return sc


@pytest.fixture
def proxies(world):
    context = world.platform.new_context("dir")
    bundle = {}
    for interface in ("Location", "Http", "Contacts", "Call", "Calendar"):
        proxy = create_proxy(interface, world.platform)
        proxy.set_property("context", context)
        bundle[interface] = proxy
    return bundle


class TestDirectoryFlow:
    def test_nearest_site_ranked_by_real_position(self, world, proxies):
        position = proxies["Location"].get_location()
        result = proxies["Http"].post(
            f"http://{HOST}/nearby",
            json.dumps({"latitude": position.latitude, "longitude": position.longitude}),
        )
        ranked = json.loads(result.body)
        assert ranked[0]["site"] == "near-site"

    def test_oncall_lookup_and_retry_call(self, world, proxies):
        engineer = proxies["Contacts"].find_by_name("Near Nia")[0]
        world.device.telephony.set_callee_behavior(
            engineer.primary_number, TelephonyUnit.UNREACHABLE
        )
        coordinator = CallRetryCoordinator(
            proxies["Call"],
            world.platform.scheduler,
            RetryPolicy(max_attempts=2, retry_delay_ms=1_000.0),
        )
        report = coordinator.make_a_call(engineer.primary_number)
        world.platform.run_for(500.0)
        world.device.telephony.set_callee_behavior(
            engineer.primary_number, TelephonyUnit.ANSWER
        )
        world.platform.run_for(20_000.0)
        assert report.attempts == 2
        assert report.outcomes[0] is CallOutcome.UNREACHABLE

    def test_visit_booked_in_calendar(self, world, proxies):
        calendar = proxies["Calendar"]
        calendar.set_property("eventLocation", "near-site")
        now = world.platform.clock.now_ms
        calendar.add_event("Visit near-site", now + 1_000.0, now + 2_000.0)
        events = calendar.events_between(now, now + 10_000.0)
        assert [e.location for e in events] == ["near-site"]

    def test_end_to_end_under_one_permission_model(self, world, proxies):
        """All five proxies attribute permissions to the same package."""
        world.platform.install("stranger", set())
        stranger_context = world.platform.new_context("stranger")
        from repro.errors import ProxyPermissionError

        for interface in ("Location", "Http", "Contacts", "Calendar"):
            proxy = create_proxy(interface, world.platform)
            proxy.set_property("context", stranger_context)
            with pytest.raises(ProxyPermissionError):
                if interface == "Location":
                    proxy.get_location()
                elif interface == "Http":
                    proxy.get(f"http://{HOST}/nearby")
                elif interface == "Contacts":
                    proxy.list_contacts()
                else:
                    proxy.list_events()
