"""SLO engine: specs, sliding windows, breach edges, emission."""

import pytest

from repro.errors import ConfigurationError
from repro.obs import MetricsRegistry, Tracer
from repro.obs.analyze.slo import SloEngine, SloSpec
from repro.util.clock import SimulatedClock

pytestmark = pytest.mark.obs


class TestSloSpec:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SloSpec("op", latency_threshold_ms=0.0)
        with pytest.raises(ConfigurationError):
            SloSpec("op", 10.0, target_ratio=0.0)
        with pytest.raises(ConfigurationError):
            SloSpec("op", 10.0, error_budget=1.5)
        with pytest.raises(ConfigurationError):
            SloSpec("op", 10.0, window_ms=-1.0)

    def test_name_and_matching(self):
        anywhere = SloSpec("getLocation", 50.0)
        assert anywhere.name == "getLocation@*"
        assert anywhere.matches("getLocation", "android")
        assert anywhere.matches("getLocation", None)
        assert not anywhere.matches("sendTextMessage", "android")

        pinned = SloSpec("getLocation", 50.0, platform="s60")
        assert pinned.name == "getLocation@s60"
        assert pinned.matches("getLocation", "s60")
        assert not pinned.matches("getLocation", "android")

    def test_parse_full_and_partial(self):
        spec = SloSpec.parse("getLocation:50")
        assert spec.latency_threshold_ms == 50.0
        assert spec.target_ratio == 0.99

        spec = SloSpec.parse("getLocation:50:0.9:30000:android")
        assert spec.target_ratio == 0.9
        assert spec.window_ms == 30_000.0
        assert spec.platform == "android"

        with pytest.raises(ConfigurationError):
            SloSpec.parse("getLocation")


class TestEngine:
    def test_needs_specs_and_unique_names(self):
        with pytest.raises(ConfigurationError):
            SloEngine([])
        with pytest.raises(ConfigurationError):
            SloEngine([SloSpec("op", 10.0), SloSpec("op", 20.0)])

    def test_attainment_vacuous_on_empty_window(self):
        engine = SloEngine([SloSpec("op", 10.0)])
        (status,) = engine.evaluate(0.0)
        assert status.attainment == 1.0
        assert status.error_rate == 0.0
        assert not status.breached

    def test_latency_breach(self):
        engine = SloEngine([SloSpec("op", 10.0, target_ratio=0.8)])
        for t, latency in ((1.0, 5.0), (2.0, 5.0), (3.0, 50.0), (4.0, 50.0)):
            engine.observe("op", latency, t_ms=t)
        (status,) = engine.evaluate(5.0)
        assert status.attainment == 0.5
        assert status.breached
        assert engine.breached() == ["op@*"]

    def test_error_budget_breach(self):
        engine = SloEngine([SloSpec("op", 100.0, error_budget=0.1)])
        engine.observe("op", 1.0, t_ms=1.0)
        engine.observe("op", 1.0, ok=False, t_ms=2.0)
        (status,) = engine.evaluate(3.0)
        assert status.error_rate == 0.5
        assert status.breached
        assert any("budget" in reason for reason in status.reasons)

    def test_window_slides_and_recovers(self):
        engine = SloEngine([SloSpec("op", 10.0, window_ms=100.0)])
        engine.observe("op", 99.0, t_ms=50.0)  # slow call
        (status,) = engine.evaluate(60.0)
        assert status.breached
        # 100ms later the slow call ages out and the SLO recovers.
        (status,) = engine.evaluate(200.0)
        assert not status.breached
        assert status.window_count == 0
        assert engine.breached() == []

    def test_ingest_records_filters_unfinished_and_non_dispatch(self):
        records = [
            {"name": "dispatch:op", "span_id": 1, "start_virtual_ms": 0.0,
             "end_virtual_ms": 5.0, "status": "ok",
             "attributes": {"platform": "android"}},
            {"name": "dispatch:op", "span_id": 2, "start_virtual_ms": 0.0,
             "end_virtual_ms": None, "status": "ok", "attributes": {}},
            {"name": "binding:op", "span_id": 3, "start_virtual_ms": 0.0,
             "end_virtual_ms": 5.0, "status": "ok", "attributes": {}},
        ]
        engine = SloEngine([SloSpec("op", 10.0)])
        assert engine.ingest_records(records) == 1
        (status,) = engine.evaluate(5.0)
        assert status.window_count == 1

    def test_breach_counter_is_edge_triggered(self):
        metrics = MetricsRegistry()
        engine = SloEngine([SloSpec("op", 10.0)], metrics=metrics)
        engine.observe("op", 99.0, t_ms=1.0)
        engine.evaluate(2.0)   # enters breach
        engine.observe("op", 99.0, t_ms=3.0)
        engine.evaluate(4.0)   # still breached: no second increment
        assert metrics.total("slo.breaches") == 1
        assert metrics.total("slo.evaluations") == 2

    def test_gauges_emitted_per_slo(self):
        metrics = MetricsRegistry()
        engine = SloEngine([SloSpec("op", 10.0)], metrics=metrics)
        engine.observe("op", 5.0, t_ms=1.0)
        engine.evaluate(2.0)
        snapshot = metrics.snapshot()
        assert snapshot["slo.attainment"][0]["labels"] == {"slo": "op@*"}
        assert snapshot["slo.attainment"][0]["value"] == 1.0
        assert snapshot["slo.window_count"][0]["value"] == 1

    def test_breach_span_event(self):
        clock = SimulatedClock()
        tracer = Tracer(clock, capture_real_time=False)
        engine = SloEngine([SloSpec("op", 10.0)], tracer=tracer)
        engine.observe("op", 99.0, t_ms=1.0)
        engine.evaluate(2.0)
        (span,) = tracer.finished_spans()
        assert span.name == "slo:evaluate"
        (event,) = span.events
        assert event.name == "slo.breach"
        assert event.attributes["slo"] == "op@*"

    def test_status_to_dict_jsonable(self):
        import json

        engine = SloEngine([SloSpec("op", 10.0)])
        engine.observe("op", 5.0, t_ms=1.0)
        (status,) = engine.evaluate(2.0)
        payload = json.dumps(status.to_dict())
        assert "op@*" in payload
