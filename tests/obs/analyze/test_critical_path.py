"""Critical-path analyzer tests: exact makespan accounting, slack, and
the hypothesis-backed determinism/coverage properties over real
dispatcher traces."""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.obs import CriticalPath, Observability, ShardTimelines
from repro.obs.analyze.overhead import parse_jsonl
from repro.runtime import ConcurrencyRuntime
from repro.util.clock import Scheduler, SimulatedClock

pytestmark = pytest.mark.obs


def rec(span_id, start, end, *, shard, wait=0.0, platform="p", op="work"):
    return {
        "name": f"queue:{op}",
        "span_id": span_id,
        "start_virtual_ms": start,
        "end_virtual_ms": end,
        "status": "ok",
        "attributes": {"platform": platform, "shard": shard, "wait_ms": wait},
    }


class TestSyntheticSchedules:
    def test_single_lane_back_to_back(self):
        path = CriticalPath.from_records([
            rec(1, 0.0, 10.0, shard=0),
            rec(2, 10.0, 30.0, shard=0, wait=10.0),
        ])
        assert path.makespan_ms == 30.0
        assert [step.kind for step in path.steps] == ["run", "run"]
        assert path.total_ms == pytest.approx(path.makespan_ms)
        assert path.wait_ms == 0.0

    def test_wait_step_covers_gaps(self):
        # A 10ms idle gap between the two executions: nothing ends inside
        # it, so the path records an irreducible wait.
        path = CriticalPath.from_records([
            rec(1, 0.0, 10.0, shard=0),
            rec(2, 20.0, 30.0, shard=0),
        ])
        assert [step.kind for step in path.steps] == ["run", "wait", "run"]
        assert path.wait_ms == 10.0
        assert path.total_ms == pytest.approx(path.makespan_ms)

    def test_chain_prefers_resource_edges_on_same_lane(self):
        # Lane 0 is packed to the end; lane 1 finishes early.  The path
        # must walk lane 0 back-to-back, never hopping to lane 1.
        path = CriticalPath.from_records([
            rec(1, 0.0, 10.0, shard=0),
            rec(2, 10.0, 20.0, shard=0, wait=10.0),
            rec(3, 0.0, 10.0, shard=1),
        ])
        assert [step.lane for step in path.steps] == ["p/0", "p/0"]

    def test_slack_zero_on_critical_lane_positive_elsewhere(self):
        path = CriticalPath.from_records([
            rec(1, 0.0, 10.0, shard=0),
            rec(2, 10.0, 20.0, shard=0, wait=10.0),
            rec(3, 0.0, 5.0, shard=1),
        ])
        slack = {entry["span_id"]: entry["slack_ms"] for entry in path.span_slack}
        assert slack[1] == 0.0  # shifting it delays span 2, then the end
        assert slack[2] == 0.0
        assert slack[3] == 15.0  # lane 1 could run 15ms longer for free

    def test_parallelism_and_ideal(self):
        path = CriticalPath.from_records([
            rec(1, 0.0, 10.0, shard=0),
            rec(2, 0.0, 10.0, shard=1),
        ])
        assert path.work_ms == 20.0
        assert path.ideal_ms == 10.0
        assert path.parallelism == pytest.approx(2.0)

    def test_by_operation_attribution(self):
        path = CriticalPath.from_records([
            rec(1, 0.0, 10.0, shard=0, op="get"),
            rec(2, 10.0, 30.0, shard=0, op="post", wait=10.0),
        ])
        assert path.by_operation() == {"get": 10.0, "post": 20.0}

    def test_empty_trace(self):
        path = CriticalPath.from_records([])
        assert path.steps == []
        assert path.makespan_ms == 0.0
        assert path.render_text() == "(no lane spans in trace)"

    def test_json_export_schema(self):
        path = CriticalPath.from_records([rec(1, 0.0, 10.0, shard=0)])
        payload = json.loads(path.to_json())
        assert payload["schema"] == "repro.obs.critical_path/v1"
        assert payload["makespan_ms"] == 10.0
        assert payload["steps"][0]["kind"] == "run"

    def test_render_text_elides_long_paths(self):
        records = [
            rec(i + 1, 10.0 * i, 10.0 * (i + 1), shard=0, wait=10.0 * i)
            for i in range(50)
        ]
        text = CriticalPath.from_records(records).render_text(max_steps=10)
        assert "step(s) elided" in text


# Hypothesis-generated dispatcher workloads: arbitrary sleeps, charges
# and priorities over a sharded runtime, analysed from the real export.
LEG = st.tuples(
    st.floats(min_value=0.0, max_value=50.0),
    st.floats(min_value=0.1, max_value=40.0),
)
WORKLOAD = st.tuples(st.integers(min_value=0, max_value=3), st.lists(LEG, max_size=4))
FLEET_SPEC = st.lists(WORKLOAD, min_size=1, max_size=5)


def run_spec(spec, *, seed: int, shards: int = 3) -> str:
    world = Scheduler(SimulatedClock())
    hub = Observability(capture_real_time=False)
    runtime = ConcurrencyRuntime(
        world, shards=shards, queue_depth=64, seed=seed, observability=hub
    )
    dispatcher = runtime.dispatcher("prop")

    def workload(legs):
        for sleep_ms, charge_ms in legs:
            yield sleep_ms
            yield dispatcher.submit(
                "leg",
                lambda c=charge_ms: world.clock.advance(c),
                tracer=hub.tracer,
            )

    for index, (priority, legs) in enumerate(spec):
        runtime.spawn(f"agent-{index}", workload(legs), priority=priority)
    runtime.drain()
    return hub.export_jsonl()


class TestTraceProperties:
    @settings(max_examples=25, deadline=None)
    @given(spec=FLEET_SPEC, seed=st.integers(min_value=0, max_value=2**16))
    def test_path_durations_sum_exactly_to_makespan(self, spec, seed):
        records = parse_jsonl(run_spec(spec, seed=seed))
        path = CriticalPath.from_records(records)
        assert path.total_ms == pytest.approx(path.makespan_ms, abs=1e-6)
        assert path.run_ms + path.wait_ms == pytest.approx(
            path.makespan_ms, abs=1e-6
        )
        # Steps tile the window contiguously, in chronological order.
        cursor = path.t0_ms
        for step in path.steps:
            assert step.start_ms == pytest.approx(cursor, abs=1e-6)
            cursor = step.end_ms
        if path.steps:
            assert cursor == pytest.approx(path.t_end_ms, abs=1e-6)

    @settings(max_examples=25, deadline=None)
    @given(spec=FLEET_SPEC, seed=st.integers(min_value=0, max_value=2**16))
    def test_lane_segments_never_overlap(self, spec, seed):
        records = parse_jsonl(run_spec(spec, seed=seed))
        timelines = ShardTimelines.from_records(records)
        for lane in timelines.sorted_lanes():
            for earlier, later in zip(lane.segments, lane.segments[1:]):
                assert earlier.end_ms <= later.start_ms + 1e-9

    @settings(max_examples=15, deadline=None)
    @given(spec=FLEET_SPEC, seed=st.integers(min_value=0, max_value=2**16))
    def test_same_seed_byte_identical_exports(self, spec, seed):
        first = run_spec(spec, seed=seed)
        second = run_spec(spec, seed=seed)
        assert first == second
        a = parse_jsonl(first)
        assert (
            CriticalPath.from_records(a).to_json()
            == CriticalPath.from_records(parse_jsonl(second)).to_json()
        )
        assert (
            ShardTimelines.from_records(a).to_json()
            == ShardTimelines.from_records(parse_jsonl(second)).to_json()
        )
