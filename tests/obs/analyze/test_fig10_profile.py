"""Acceptance: the traced Figure-10 run decomposes per layer and is
byte-identical across identically-seeded runs."""

import pytest

from repro.bench.harness import APIS, Fig10Runner, PLATFORMS, fig10_overhead_profile
from repro.obs.analyze.overhead import OverheadProfile, render_profile_text

pytestmark = pytest.mark.obs

#: harness API name → dispatched operation name in the span vocabulary.
OPERATION_OF = {
    "addProximityAlert": "addProximityAlert",
    "getLocation": "getLocation",
    "sendSMS": "sendTextMessage",
}


@pytest.fixture(scope="module")
def trace():
    return Fig10Runner().trace(repetitions=2)


def test_profile_covers_every_api_on_every_platform(trace):
    profile = OverheadProfile.from_jsonl(trace)
    for api in APIS:
        for platform in PLATFORMS:
            key = (OPERATION_OF[api], platform)
            assert key in profile.operations, f"missing {key}"
            entry = profile.operations[key]
            assert entry.invocations >= 2
            assert entry.errors == 0
            assert entry.native_ms > 0.0


def test_webview_invocations_cross_the_bridge(trace):
    profile = OverheadProfile.from_jsonl(trace)
    entry = profile.operations[("getLocation", "webview")]
    assert entry.layer_spans["bridge"] > 0


def test_trace_and_profile_byte_identical_across_runs(trace):
    again = Fig10Runner().trace(repetitions=2)
    assert again == trace
    assert (
        OverheadProfile.from_jsonl(again).to_json()
        == OverheadProfile.from_jsonl(trace).to_json()
    )


def test_fig10_overhead_profile_helper(trace):
    profile = fig10_overhead_profile(repetitions=2)
    rendered = render_profile_text(profile)
    for platform in PLATFORMS:
        assert platform in rendered
