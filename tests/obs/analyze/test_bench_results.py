"""The repro.bench result writer: deterministic BENCH_*.json documents."""

import json

import pytest

from repro.bench.results import (
    BENCH_DIR_ENV,
    BENCH_SCHEMA,
    BenchResult,
    bench_output_dir,
    read_bench_result,
    write_bench_result,
)

pytestmark = pytest.mark.obs


@pytest.fixture
def result():
    return BenchResult(
        name="fig10",
        params={"repetitions": 3},
        metrics={"bar_ms": {"getLocation/android/with": 15.5000001}},
        measured={"real_ms": 0.123456789},
    )


class TestBenchResult:
    def test_schema_and_rounding(self, result):
        payload = result.to_dict()
        assert payload["schema"] == BENCH_SCHEMA
        assert payload["metrics"]["bar_ms"]["getLocation/android/with"] == 15.5
        assert payload["measured"]["real_ms"] == 0.123457

    def test_measured_excluded_on_request(self, result):
        payload = result.to_dict(include_measured=False)
        assert "measured" not in payload

    def test_to_json_deterministic(self, result):
        first = result.to_json(include_measured=False)
        second = BenchResult(
            name="fig10",
            params={"repetitions": 3},
            metrics={"bar_ms": {"getLocation/android/with": 15.5000001}},
            measured={"real_ms": 999.0},  # measured must not leak in
        ).to_json(include_measured=False)
        assert first == second
        assert first.endswith("\n")
        assert json.loads(first)["name"] == "fig10"

    def test_default_filename(self, result):
        assert result.default_filename == "BENCH_fig10.json"


class TestFileRoundTrip:
    def test_write_and_read(self, result, tmp_path):
        path = write_bench_result(result, tmp_path / "BENCH_fig10.json")
        loaded = read_bench_result(path)
        assert loaded.name == "fig10"
        assert loaded.params == {"repetitions": 3}
        assert loaded.measured["real_ms"] == pytest.approx(0.123457)

    def test_output_dir_env_override(self, result, tmp_path, monkeypatch):
        monkeypatch.setenv(BENCH_DIR_ENV, str(tmp_path))
        assert bench_output_dir() == tmp_path
        path = write_bench_result(result)
        assert path == tmp_path / "BENCH_fig10.json"
        assert path.exists()

    def test_non_bench_document_rejected(self, tmp_path):
        bogus = tmp_path / "BENCH_x.json"
        bogus.write_text(json.dumps({"schema": "other"}), encoding="utf-8")
        with pytest.raises(ValueError):
            read_bench_result(bogus)
