"""The ``python -m repro.obs`` command line."""

import json

import pytest

from repro.obs import Tracer, export_jsonl
from repro.obs.analyze.cli import main
from repro.util.clock import SimulatedClock

pytestmark = pytest.mark.obs


@pytest.fixture
def trace_path(tmp_path):
    clock = SimulatedClock()
    tracer = Tracer(clock, capture_real_time=False)
    for latency in (5.0, 50.0):
        with tracer.span("dispatch:getLocation", platform="android"):
            clock.advance(1.0)
            with tracer.span("substrate:android.getLocation"):
                clock.advance(latency)
    path = tmp_path / "trace.jsonl"
    path.write_text(export_jsonl(tracer.finished_spans()), encoding="utf-8")
    return path


class TestProfileCommand:
    def test_table_output(self, trace_path, capsys):
        assert main(["profile", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "getLocation" in out
        assert "android" in out

    def test_json_and_out_file(self, trace_path, tmp_path, capsys):
        saved = tmp_path / "profile.json"
        assert main(
            ["profile", str(trace_path), "--json", "--out", str(saved)]
        ) == 0
        printed = json.loads(capsys.readouterr().out)
        assert printed == json.loads(saved.read_text())
        assert printed["schema"] == "repro.obs.profile/v1"

    def test_flame_and_top(self, trace_path, capsys):
        assert main(["profile", str(trace_path), "--flame", "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "dispatch:getLocation;substrate:android.getLocation" in out
        assert "self%" in out  # the top-N table rode along

    def test_time_domain_flag(self, trace_path, capsys):
        assert main(["profile", str(trace_path), "--time", "real", "--json"]) == 0
        printed = json.loads(capsys.readouterr().out)
        assert printed["time"] == "real"


class TestSloCommand:
    def test_met_slo_exits_zero(self, trace_path, capsys):
        code = main(
            ["slo", str(trace_path), "--slo", "getLocation:100:0.9"]
        )
        assert code == 0
        assert "ok" in capsys.readouterr().out

    def test_breached_slo_exits_one(self, trace_path, capsys):
        code = main(["slo", str(trace_path), "--slo", "getLocation:10"])
        assert code == 1
        assert "BREACHED" in capsys.readouterr().out

    def test_json_output(self, trace_path, capsys):
        main(["slo", str(trace_path), "--slo", "getLocation:100:0.9", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["ingested"] == 2
        assert payload["statuses"][0]["slo"] == "getLocation@*"


class TestDiffCommand:
    def test_identical_passes(self, trace_path, capsys):
        assert main(["diff", str(trace_path), str(trace_path)]) == 0
        assert "no per-layer regressions" in capsys.readouterr().out

    def test_report_only_by_default(self, trace_path, tmp_path, capsys):
        slower = tmp_path / "slower.jsonl"
        records = [
            json.loads(line)
            for line in trace_path.read_text().splitlines()
        ]
        for record in records:
            record["end_virtual_ms"] = record["end_virtual_ms"] * 2.0
        slower.write_text(
            "\n".join(json.dumps(r, sort_keys=True) for r in records) + "\n",
            encoding="utf-8",
        )
        # Without --gate regressions are reported but exit 0.
        assert main(["diff", str(trace_path), str(slower)]) == 0
        assert "REGRESSIONS" in capsys.readouterr().out
        # With --gate the same comparison fails the run.
        assert main(["diff", str(trace_path), str(slower), "--gate"]) == 1

    def test_gate_json_output(self, trace_path, capsys):
        assert main(
            ["diff", str(trace_path), str(trace_path), "--gate", "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["passed"] is True
