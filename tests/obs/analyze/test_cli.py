"""The ``python -m repro.obs`` command line."""

import json

import pytest

from repro.obs import FlightRecorder, Tracer, export_jsonl
from repro.obs.analyze.cli import COMMANDS, build_parser, main
from repro.util.clock import SimulatedClock

pytestmark = pytest.mark.obs


@pytest.fixture
def trace_path(tmp_path):
    clock = SimulatedClock()
    tracer = Tracer(clock, capture_real_time=False)
    for latency in (5.0, 50.0):
        with tracer.span("dispatch:getLocation", platform="android"):
            clock.advance(1.0)
            with tracer.span("substrate:android.getLocation"):
                clock.advance(latency)
    path = tmp_path / "trace.jsonl"
    path.write_text(export_jsonl(tracer.finished_spans()), encoding="utf-8")
    return path


def lane_record(span_id, start, end, *, shard, wait=0.0):
    return {
        "name": "queue:work",
        "span_id": span_id,
        "start_virtual_ms": start,
        "end_virtual_ms": end,
        "status": "ok",
        "attributes": {"platform": "bench", "shard": shard, "wait_ms": wait},
    }


@pytest.fixture
def lane_trace_path(tmp_path):
    """A trace with overlapping ``queue:<op>`` lane spans on two shards."""
    records = [
        lane_record(1, 0.0, 10.0, shard=0),
        lane_record(2, 10.0, 25.0, shard=0, wait=10.0),
        lane_record(3, 0.0, 5.0, shard=1),
    ]
    path = tmp_path / "lanes.jsonl"
    path.write_text(
        "\n".join(json.dumps(r, sort_keys=True) for r in records) + "\n",
        encoding="utf-8",
    )
    return path


class TestHelpConvention:
    def test_help_enumerates_every_subcommand(self):
        text = build_parser().format_help()
        for name, description in COMMANDS:
            assert name in text
            assert description in text

    def test_every_subcommand_accepts_format_and_json(self):
        parser = build_parser()
        extra = {"slo": ["--slo", "get:10"], "diff": ["y"]}
        # `scenario` nests its own actions; `list` carries the convention.
        argv = {"scenario": ["scenario", "list"]}
        for name, _ in COMMANDS:
            args = argv.get(name, [name, "x"] + extra.get(name, []))
            parsed = parser.parse_args(args + ["--json"])
            assert parsed.format == "json"
            parsed = parser.parse_args(args + ["--format", "text"])
            assert parsed.format == "text"


class TestProfileCommand:
    def test_table_output(self, trace_path, capsys):
        assert main(["profile", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "getLocation" in out
        assert "android" in out

    def test_json_and_out_file(self, trace_path, tmp_path, capsys):
        saved = tmp_path / "profile.json"
        assert main(
            ["profile", str(trace_path), "--json", "--out", str(saved)]
        ) == 0
        printed = json.loads(capsys.readouterr().out)
        assert printed == json.loads(saved.read_text())
        assert printed["schema"] == "repro.obs.profile/v1"

    def test_flame_and_top(self, trace_path, capsys):
        assert main(["profile", str(trace_path), "--flame", "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "dispatch:getLocation;substrate:android.getLocation" in out
        assert "self%" in out  # the top-N table rode along

    def test_time_domain_flag(self, trace_path, capsys):
        assert main(["profile", str(trace_path), "--time", "real", "--json"]) == 0
        printed = json.loads(capsys.readouterr().out)
        assert printed["time"] == "real"


class TestSloCommand:
    def test_met_slo_exits_zero(self, trace_path, capsys):
        code = main(
            ["slo", str(trace_path), "--slo", "getLocation:100:0.9"]
        )
        assert code == 0
        assert "ok" in capsys.readouterr().out

    def test_breached_slo_exits_one(self, trace_path, capsys):
        code = main(["slo", str(trace_path), "--slo", "getLocation:10"])
        assert code == 1
        assert "BREACHED" in capsys.readouterr().out

    def test_json_output(self, trace_path, capsys):
        main(["slo", str(trace_path), "--slo", "getLocation:100:0.9", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["ingested"] == 2
        assert payload["statuses"][0]["slo"] == "getLocation@*"


class TestDiffCommand:
    def test_identical_passes(self, trace_path, capsys):
        assert main(["diff", str(trace_path), str(trace_path)]) == 0
        assert "no per-layer regressions" in capsys.readouterr().out

    def test_report_only_by_default(self, trace_path, tmp_path, capsys):
        slower = tmp_path / "slower.jsonl"
        records = [
            json.loads(line)
            for line in trace_path.read_text().splitlines()
        ]
        for record in records:
            record["end_virtual_ms"] = record["end_virtual_ms"] * 2.0
        slower.write_text(
            "\n".join(json.dumps(r, sort_keys=True) for r in records) + "\n",
            encoding="utf-8",
        )
        # Without --gate regressions are reported but exit 0.
        assert main(["diff", str(trace_path), str(slower)]) == 0
        assert "REGRESSIONS" in capsys.readouterr().out
        # With --gate the same comparison fails the run.
        assert main(["diff", str(trace_path), str(slower), "--gate"]) == 1

    def test_gate_json_output(self, trace_path, capsys):
        assert main(
            ["diff", str(trace_path), str(trace_path), "--gate", "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["passed"] is True


class TestTimelineCommand:
    def test_text_gantt_and_use_summary(self, lane_trace_path, capsys):
        assert main(["timeline", str(lane_trace_path), "--width", "10"]) == 0
        out = capsys.readouterr().out
        assert "bench/0" in out
        assert "bench/1" in out
        assert "USE summary" in out

    def test_json_and_out_file(self, lane_trace_path, tmp_path, capsys):
        saved = tmp_path / "timeline.json"
        assert main(
            ["timeline", str(lane_trace_path), "--json", "--out", str(saved)]
        ) == 0
        printed = json.loads(capsys.readouterr().out)
        assert printed == json.loads(saved.read_text())
        assert printed["schema"] == "repro.obs.timeline/v1"
        assert set(printed["segments"]) == {"bench/0", "bench/1"}


class TestCriticalPathCommand:
    def test_text_output(self, lane_trace_path, capsys):
        assert main(["critical-path", str(lane_trace_path)]) == 0
        out = capsys.readouterr().out
        assert "critical path" in out
        assert "makespan" in out

    def test_json_and_out_file(self, lane_trace_path, tmp_path, capsys):
        saved = tmp_path / "path.json"
        assert main(
            [
                "critical-path",
                str(lane_trace_path),
                "--json",
                "--out",
                str(saved),
            ]
        ) == 0
        printed = json.loads(capsys.readouterr().out)
        assert printed == json.loads(saved.read_text())
        assert printed["schema"] == "repro.obs.critical_path/v1"
        # The lane-0 chain exactly explains the 25ms makespan.
        assert printed["makespan_ms"] == 25.0
        assert sum(s["duration_ms"] for s in printed["steps"]) == 25.0


@pytest.fixture
def flight_path(tmp_path):
    clock = SimulatedClock()
    recorder = FlightRecorder(clock=clock)
    tracer = Tracer(clock, capture_real_time=False)
    recorder.attach(tracer, source="agent-0")
    with tracer.span("queue:work", shard=0):
        clock.advance(5.0)
    recorder.trigger("task.crashed", task="doomed")
    path = tmp_path / "flight.json"
    path.write_text(recorder.to_json(), encoding="utf-8")
    return path


class TestFlightCommand:
    def test_text_render(self, flight_path, capsys):
        assert main(["flight", str(flight_path)]) == 0
        out = capsys.readouterr().out
        assert "dump #1: task.crashed" in out
        assert "queue:work" in out

    def test_json_roundtrip(self, flight_path, capsys):
        assert main(["flight", str(flight_path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == "repro.obs.flight/v1"
        assert payload["dumps"][0]["reason"] == "task.crashed"

    def test_rejects_non_flight_document(self, trace_path):
        with pytest.raises(ValueError):
            main(["flight", str(trace_path)])


def admission_record(span_id, events):
    return {
        "name": "queue:get",
        "span_id": span_id,
        "start_virtual_ms": 0.0,
        "end_virtual_ms": 1.0,
        "status": "error",
        "attributes": {"platform": "android"},
        "events": events,
    }


@pytest.fixture
def admission_trace_path(tmp_path):
    """A trace with shed, throttle and autoscale events."""
    records = [
        admission_record(1, [{
            "name": "queue.shed", "t_virtual_ms": 1.0,
            "attributes": {"platform": "android", "priority": "low",
                           "reason": "evicted"},
        }]),
        admission_record(2, [{
            "name": "queue.shed", "t_virtual_ms": 2.0,
            "attributes": {"platform": "android", "priority": "normal",
                           "reason": "queue_full"},
        }]),
        admission_record(3, [{
            "name": "queue.throttled", "t_virtual_ms": 3.0,
            "attributes": {"platform": "android", "priority": "low",
                           "tenant": "agent-1", "retry_after_ms": 25.0},
        }]),
        admission_record(4, [{
            "name": "autoscale.resize", "t_virtual_ms": 4.0,
            "attributes": {"platform": "android", "from_shards": 2,
                           "to_shards": 3, "direction": "up"},
        }]),
    ]
    path = tmp_path / "admission.jsonl"
    path.write_text(
        "\n".join(json.dumps(r, sort_keys=True) for r in records) + "\n",
        encoding="utf-8",
    )
    return path


class TestAdmissionCommand:
    def test_text_output(self, admission_trace_path, capsys):
        assert main(["admission", str(admission_trace_path)]) == 0
        out = capsys.readouterr().out
        assert "2 shed, 1 throttled, 1 autoscaler resizes" in out
        assert "evicted" in out
        assert "queue_full" in out
        assert "agent-1" in out

    def test_json_and_out_file(self, admission_trace_path, tmp_path, capsys):
        out_path = tmp_path / "admission.json"
        assert main([
            "admission", str(admission_trace_path),
            "--json", "--out", str(out_path),
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload == json.loads(out_path.read_text(encoding="utf-8"))
        assert payload["shed_by_priority"] == {"low": 1, "normal": 1}
        assert payload["shed_by_reason"] == {"evicted": 1, "queue_full": 1}
        assert payload["throttled_by_tenant"] == {"agent-1": 1}
        assert payload["resizes"] == [{
            "t_ms": 4.0, "platform": "android",
            "from": 2, "to": 3, "direction": "up",
        }]

    def test_empty_trace_reports_zeros(self, trace_path, capsys):
        # a trace with no admission events is a valid (quiet) report
        assert main(["admission", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "0 shed, 0 throttled, 0 autoscaler resizes" in out


def distrib_record(span_id, name, attributes, events=()):
    return {
        "name": name,
        "span_id": span_id,
        "start_virtual_ms": 0.0,
        "end_virtual_ms": 0.0,
        "status": "ok",
        "attributes": attributes,
        "events": list(events),
    }


@pytest.fixture
def distrib_trace_path(tmp_path):
    """A trace with replication, gossip, partition, dedup and saga records."""
    records = [
        distrib_record(1, "replicate:reports", {
            "table": "reports", "region": "eu-west", "lag_ms": 250.0,
        }),
        distrib_record(2, "replicate:reports", {
            "table": "reports", "region": "eu-west", "lag_ms": 350.0,
        }),
        distrib_record(3, "gossip:reports", {"table": "reports", "merges": 4}),
        distrib_record(4, "partition:ap-south|eu-west", {"event": "cut"}),
        distrib_record(5, "partition:ap-south|eu-west", {"event": "heal"}),
        distrib_record(6, "resilience:post", {"platform": "android"}, [
            {"name": "distrib.dedup", "t_virtual_ms": 1.0,
             "attributes": {"store": "network", "site": "network.request"}},
        ]),
        distrib_record(7, "saga:report", {"saga": "report"}, [
            {"name": "saga.completed", "t_virtual_ms": 2.0,
             "attributes": {"saga": "report", "steps": 2}},
        ]),
    ]
    path = tmp_path / "distrib.jsonl"
    path.write_text(
        "\n".join(json.dumps(r, sort_keys=True) for r in records) + "\n",
        encoding="utf-8",
    )
    return path


class TestDistribCommand:
    def test_text_output(self, distrib_trace_path, capsys):
        assert main(["distrib", str(distrib_trace_path)]) == 0
        out = capsys.readouterr().out
        assert "2 replication applies, 1 dedup suppressions, 1 saga names" in out
        assert "reports/eu-west" in out
        assert "mean=300.0ms max=350.0ms" in out
        assert "sweeps=1 merges=4" in out
        assert "cuts=1 heals=1" in out
        assert "network.request" in out
        assert "completed=1 compensated=0" in out

    def test_json_and_out_file(self, distrib_trace_path, tmp_path, capsys):
        out_path = tmp_path / "distrib.json"
        assert main([
            "distrib", str(distrib_trace_path),
            "--json", "--out", str(out_path),
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload == json.loads(out_path.read_text(encoding="utf-8"))
        assert payload["replication"] == {
            "reports/eu-west": {"count": 2, "mean_ms": 300.0, "max_ms": 350.0}
        }
        assert payload["gossip"] == {"reports": {"sweeps": 1, "merges": 4}}
        assert payload["partitions"] == {
            "ap-south|eu-west": {"cuts": 1, "heals": 1}
        }
        assert payload["dedup_by_store"] == {"network": 1}
        assert payload["dedup_by_site"] == {"network.request": 1}
        assert payload["sagas"] == {"report": {"completed": 1}}

    def test_quiet_trace_says_so(self, trace_path, capsys):
        # a trace with no distrib activity is a valid (quiet) report
        assert main(["distrib", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "no distrib activity in this trace" in out


@pytest.fixture
def causal_trace_path(tmp_path):
    """A write, its replication apply, and a dedup suppression."""
    records = [
        distrib_record(1, "write:reports", {
            "table": "reports", "key": "agent-1", "version": "1@ap-south",
            "region": "ap-south", "causal.vc": "ap-south:1",
        }),
        {
            "name": "replicate:reports", "span_id": 2,
            "start_virtual_ms": 250.0, "end_virtual_ms": 250.0,
            "status": "ok", "events": [],
            "attributes": {
                "table": "reports", "key": "agent-1",
                "version": "1@ap-south", "region": "eu-west",
                "lag_ms": 250.0, "causal.origin": "None:1",
                "causal.vc": "ap-south:1",
            },
        },
        distrib_record(3, "resilience:post", {"platform": "android"}, [
            {"name": "distrib.dedup", "t_virtual_ms": 1.0,
             "attributes": {"store": "network", "chain": "Http:post#1",
                            "region": "ap-south"}},
        ]),
    ]
    path = tmp_path / "causal.jsonl"
    path.write_text(
        "\n".join(json.dumps(r, sort_keys=True) for r in records) + "\n",
        encoding="utf-8",
    )
    return path


@pytest.fixture
def violation_trace_path(tmp_path):
    records = [
        distrib_record(1, "causal.audit", {"kind": "lww_causality_inversion"}, [
            {"name": "causal.violation", "t_virtual_ms": 3.0,
             "attributes": {"kind": "lww_causality_inversion",
                            "table": "t", "key": "k", "region": "eu-west",
                            "winner": "2@eu-west",
                            "overwritten": "1@ap-south"}},
        ]),
    ]
    path = tmp_path / "violation.jsonl"
    path.write_text(
        "\n".join(json.dumps(r, sort_keys=True) for r in records) + "\n",
        encoding="utf-8",
    )
    return path


class TestCausalCommand:
    def test_text_output(self, causal_trace_path, capsys):
        assert main(["causal", str(causal_trace_path)]) == 0
        out = capsys.readouterr().out
        assert "acyclic" in out
        assert "reports/eu-west" in out
        assert "audit: clean" in out
        assert "dedup chains joined: 1" in out

    def test_json_and_out_file(self, causal_trace_path, tmp_path, capsys):
        out_path = tmp_path / "causal.json"
        assert main([
            "causal", str(causal_trace_path),
            "--json", "--out", str(out_path),
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload == json.loads(out_path.read_text(encoding="utf-8"))
        assert payload["schema"] == "repro.obs.causal/v1"
        assert payload["writes"] == 1
        assert payload["visibility"]["reports/eu-west"]["count"] == 1
        assert payload["visibility"]["reports/eu-west"]["max_ms"] == 250.0
        assert payload["graph"]["acyclic"] is True
        assert payload["dedup_chains"] == {"Http:post#1": 1}

    def test_gate_passes_clean_trace(self, causal_trace_path):
        assert main(["causal", str(causal_trace_path), "--gate"]) == 0

    def test_gate_fails_on_violation(self, violation_trace_path, capsys):
        assert main(["causal", str(violation_trace_path)]) == 0
        assert main(["causal", str(violation_trace_path), "--gate"]) == 1
        out = capsys.readouterr().out
        assert "VIOLATIONS: 1" in out
        assert "lww_causality_inversion" in out
