"""Overhead accounting: folding span trees into per-layer self-time."""

import pytest

from repro.obs import Observability, Tracer, export_jsonl
from repro.obs.analyze.overhead import (
    OverheadProfile,
    collapsed_stacks,
    parse_jsonl,
    records_to_jsonl,
    render_profile_text,
    top_spans_text,
)
from repro.util.clock import SimulatedClock

pytestmark = pytest.mark.obs


def make_invocation(tracer, clock, *, platform="android", native_ms=10.0,
                    dispatch_ms=1.0, binding_ms=2.0, fail=False):
    """One dispatch→resilience→binding→substrate tree with known self-times."""
    try:
        with tracer.span("dispatch:getLocation", interface="Location", platform=platform):
            clock.advance(dispatch_ms)  # dispatch self-time
            with tracer.span("resilience:getLocation"):
                with tracer.span("binding:getLocation", platform=platform):
                    clock.advance(binding_ms)  # binding self-time
                    with tracer.span(f"substrate:{platform}.getLocation"):
                        clock.advance(native_ms)
                    if fail:
                        raise RuntimeError("gps down")
    except RuntimeError:
        pass


@pytest.fixture
def clock():
    return SimulatedClock()


@pytest.fixture
def tracer(clock):
    return Tracer(clock, capture_real_time=False)


class TestFold:
    def test_layer_self_times(self, tracer, clock):
        make_invocation(tracer, clock)
        profile = OverheadProfile.from_spans(tracer.finished_spans())
        entry = profile.operations[("getLocation", "android")]
        assert entry.invocations == 1
        assert entry.layer_self_ms["dispatch"] == pytest.approx(1.0)
        assert entry.layer_self_ms["resilience"] == pytest.approx(0.0)
        assert entry.layer_self_ms["binding"] == pytest.approx(2.0)
        assert entry.layer_self_ms["substrate"] == pytest.approx(10.0)
        assert entry.middleware_ms == pytest.approx(3.0)
        assert entry.native_ms == pytest.approx(10.0)
        assert entry.total_ms == pytest.approx(13.0)

    def test_aggregation_and_percentiles(self, tracer, clock):
        for native in (10.0, 20.0, 30.0):
            make_invocation(tracer, clock, native_ms=native)
        profile = OverheadProfile.from_spans(tracer.finished_spans())
        entry = profile.operations[("getLocation", "android")]
        assert entry.invocations == 3
        assert entry.per_invocation("substrate") == pytest.approx(20.0)
        assert entry.latency.as_dict()["p50"] == pytest.approx(23.0)

    def test_error_dispatch_counted(self, tracer, clock):
        make_invocation(tracer, clock)
        make_invocation(tracer, clock, fail=True)
        profile = OverheadProfile.from_spans(tracer.finished_spans())
        assert profile.operations[("getLocation", "android")].errors == 1

    def test_platforms_are_distinct_rows(self, tracer, clock):
        make_invocation(tracer, clock, platform="android")
        make_invocation(tracer, clock, platform="s60")
        profile = OverheadProfile.from_spans(tracer.finished_spans())
        assert set(profile.operations) == {
            ("getLocation", "android"), ("getLocation", "s60"),
        }

    def test_bridge_rooted_tree_billed_to_dispatch(self, tracer, clock):
        # WebView shape: the bridge crossing is the root, dispatch beneath.
        with tracer.span("bridge:get_location"):
            clock.advance(3.0)  # bridge self-time
            with tracer.span("dispatch:getLocation", platform="webview"):
                with tracer.span("substrate:android.getLocation"):
                    clock.advance(10.0)
        profile = OverheadProfile.from_spans(tracer.finished_spans())
        entry = profile.operations[("getLocation", "webview")]
        assert entry.layer_self_ms["bridge"] == pytest.approx(3.0)
        assert entry.native_ms == pytest.approx(10.0)
        assert entry.total_ms == pytest.approx(13.0)

    def test_binding_root_anchors_guard_only_invocations(self, tracer, clock):
        # Callback registration opens no dispatch span; the binding span
        # anchors the invocation instead.
        with tracer.span("binding:addProximityAlert", platform="android"):
            with tracer.span("substrate:android.addProximityAlert"):
                clock.advance(25.0)
        profile = OverheadProfile.from_spans(tracer.finished_spans())
        entry = profile.operations[("addProximityAlert", "android")]
        assert entry.invocations == 1
        assert entry.native_ms == pytest.approx(25.0)

    def test_non_invocation_trees_skipped(self, tracer, clock):
        with tracer.span("substrate:android.boot"):
            clock.advance(5.0)
        profile = OverheadProfile.from_spans(tracer.finished_spans())
        assert profile.operations == {}

    def test_orphan_parent_treated_as_root(self, tracer, clock):
        make_invocation(tracer, clock)
        records = [
            record
            for record in parse_jsonl(export_jsonl(tracer.finished_spans()))
            if record["name"] != "dispatch:getLocation"
        ]
        profile = OverheadProfile.from_records(records)
        # The resilience subtree survives, anchored by its binding span.
        entry = profile.operations[("getLocation", "android")]
        assert entry.native_ms == pytest.approx(10.0)

    def test_concatenated_exports_resegmented(self, clock):
        chunks = []
        for _ in range(2):  # two tracers → span ids restart
            tracer = Tracer(clock, capture_real_time=False)
            make_invocation(tracer, clock)
            chunks.append(export_jsonl(tracer.finished_spans()))
        profile = OverheadProfile.from_jsonl("".join(chunks))
        assert profile.operations[("getLocation", "android")].invocations == 2


class TestSerialization:
    def test_jsonl_round_trip_byte_identical(self, tracer, clock):
        make_invocation(tracer, clock)
        payload = export_jsonl(tracer.finished_spans())
        assert records_to_jsonl(parse_jsonl(payload)) == payload

    def test_profile_json_deterministic(self, tracer, clock):
        make_invocation(tracer, clock)
        spans = tracer.finished_spans()
        assert (
            OverheadProfile.from_spans(spans).to_json()
            == OverheadProfile.from_spans(spans).to_json()
        )

    def test_to_dict_from_dict_round_trip(self, tracer, clock):
        make_invocation(tracer, clock)
        profile = OverheadProfile.from_spans(tracer.finished_spans())
        rehydrated = OverheadProfile.from_dict(profile.to_dict())
        entry = rehydrated.operations[("getLocation", "android")]
        assert entry.native_ms == pytest.approx(10.0)
        assert rehydrated.time_domain == "virtual"

    def test_bad_schema_rejected(self):
        with pytest.raises(ValueError):
            OverheadProfile.from_dict({"schema": "nope"})

    def test_bad_time_domain_rejected(self):
        with pytest.raises(ValueError):
            OverheadProfile(time_domain="cpu")


class TestRealTimeDomain:
    def test_real_fold_uses_real_stamps(self):
        clock = SimulatedClock()
        tracer = Tracer(clock, capture_real_time=True)
        make_invocation(tracer, clock)
        records = parse_jsonl(
            export_jsonl(tracer.finished_spans(), include_real_time=True)
        )
        profile = OverheadProfile.from_records(records, time="real")
        entry = profile.operations[("getLocation", "android")]
        assert profile.time_domain == "real"
        # Wall-clock self-times: tiny but the tree total is positive and
        # the virtual substrate charge (10ms) is nowhere to be seen.
        assert entry.total_ms < 10.0

    def test_real_fold_of_virtual_only_export_is_zero(self, tracer, clock):
        make_invocation(tracer, clock)
        records = parse_jsonl(export_jsonl(tracer.finished_spans()))
        profile = OverheadProfile.from_records(records, time="real")
        assert profile.operations[("getLocation", "android")].total_ms == 0.0


class TestViews:
    def test_render_profile_table(self, tracer, clock):
        make_invocation(tracer, clock)
        rendered = render_profile_text(
            OverheadProfile.from_spans(tracer.finished_spans())
        )
        assert "getLocation" in rendered
        assert "middleware" in rendered
        assert "p99" in rendered

    def test_render_empty_profile(self):
        assert "no dispatch" in render_profile_text(OverheadProfile())

    def test_collapsed_stacks_weights(self, tracer, clock):
        make_invocation(tracer, clock)
        records = parse_jsonl(export_jsonl(tracer.finished_spans()))
        lines = collapsed_stacks(records).splitlines()
        stacks = dict(line.rsplit(" ", 1) for line in lines)
        key = (
            "dispatch:getLocation;resilience:getLocation;"
            "binding:getLocation;substrate:android.getLocation"
        )
        assert stacks[key] == "10000"  # 10ms in integer µs
        assert stacks["dispatch:getLocation"] == "1000"

    def test_top_spans_ranked_by_self_time(self, tracer, clock):
        make_invocation(tracer, clock)
        rendered = top_spans_text(
            parse_jsonl(export_jsonl(tracer.finished_spans())), 2
        )
        lines = rendered.splitlines()
        assert "substrate:android.getLocation" in lines[2]  # top row
