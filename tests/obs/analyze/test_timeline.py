"""Unit tests for shard-timeline reconstruction from trace records."""

import json

import pytest

from repro.obs import ShardTimelines

pytestmark = pytest.mark.obs


def rec(span_id, start, end, *, shard, wait=0.0, platform="p", op="work",
        outcome=None, status="ok"):
    """A ``queue:<op>`` span record as ``export_jsonl`` would emit it."""
    attributes = {"platform": platform, "shard": shard}
    if outcome is not None:
        attributes["outcome"] = outcome
    else:
        attributes["wait_ms"] = wait
    return {
        "name": f"queue:{op}",
        "span_id": span_id,
        "start_virtual_ms": start,
        "end_virtual_ms": end,
        "status": status,
        "attributes": attributes,
    }


class TestReconstruction:
    def test_lanes_group_by_platform_and_shard(self):
        timelines = ShardTimelines.from_records([
            rec(1, 0.0, 10.0, shard=0),
            rec(2, 0.0, 10.0, shard=1),
            rec(3, 0.0, 5.0, shard=0, platform="q"),
        ])
        assert sorted(lane.name for lane in timelines.sorted_lanes()) == [
            "p/0", "p/1", "q/0",
        ]
        assert timelines.t0_ms == 0.0
        assert timelines.t_end_ms == 10.0

    def test_ignores_non_queue_and_unfinished_spans(self):
        records = [
            rec(1, 0.0, 10.0, shard=0),
            {"name": "dispatch:work", "span_id": 2, "start_virtual_ms": 0.0,
             "end_virtual_ms": 5.0, "attributes": {"shard": 0}},
            dict(rec(3, 0.0, None, shard=0), end_virtual_ms=None),
        ]
        timelines = ShardTimelines.from_records(records)
        (lane,) = timelines.sorted_lanes()
        assert lane.executed == 1

    def test_sheds_counted_not_segmented(self):
        timelines = ShardTimelines.from_records([
            rec(1, 0.0, 10.0, shard=0),
            rec(2, 0.0, 0.0, shard=0, outcome="shed", status="error"),
        ])
        (lane,) = timelines.sorted_lanes()
        assert lane.executed == 1
        assert lane.sheds == 1
        assert lane.shed_rate == pytest.approx(0.5)

    def test_window_starts_at_earliest_submit(self):
        # The request waited 4ms, so the window opens at its submit time.
        timelines = ShardTimelines.from_records([
            rec(1, 4.0, 10.0, shard=0, wait=4.0),
        ])
        assert timelines.t0_ms == 0.0
        assert timelines.window_ms == 10.0


class TestUseSummary:
    def test_utilization_by_lane(self):
        timelines = ShardTimelines.from_records([
            rec(1, 0.0, 10.0, shard=0),
            rec(2, 0.0, 5.0, shard=1),
        ])
        assert timelines.utilization_by_lane() == {"p/0": 1.0, "p/1": 0.5}

    def test_queue_depth_percentiles_and_peak(self):
        # Two requests submitted at t=0 on one lane: the second waits
        # 10ms, so depth is 1 for the first 10ms then 0 for the next 10.
        timelines = ShardTimelines.from_records([
            rec(1, 0.0, 10.0, shard=0),
            rec(2, 10.0, 20.0, shard=0, wait=10.0),
        ])
        (lane,) = timelines.sorted_lanes()
        assert lane.peak_depth == 2  # both queued at the submit instant
        # Depth dwell over the 20ms window: 10ms at 2, 10ms at 0.
        depth = lane.depth_percentiles(timelines.t_end_ms)
        assert depth["p50"] == 0.0
        assert depth["p95"] == 2.0

    def test_summary_errors_count_non_ok_statuses(self):
        timelines = ShardTimelines.from_records([
            rec(1, 0.0, 10.0, shard=0, status="error"),
        ])
        entry = timelines.summary()["lanes"][0]
        assert entry["errors"] == 1


class TestRendering:
    def test_text_gantt_rows_and_use_lines(self):
        timelines = ShardTimelines.from_records([
            rec(1, 0.0, 10.0, shard=0),
            rec(2, 0.0, 5.0, shard=1),
        ])
        text = timelines.render_text(width=10)
        assert "p/0 |##########|" in text
        assert "p/1 |#####.....|" in text
        assert "USE summary (Utilization / Saturation / Errors):" in text

    def test_empty_trace_renders_placeholder(self):
        assert ShardTimelines.from_records([]).render_text() == (
            "(no lane spans in trace)"
        )

    def test_narrow_width_rejected(self):
        timelines = ShardTimelines.from_records([rec(1, 0.0, 10.0, shard=0)])
        with pytest.raises(ValueError):
            timelines.render_text(width=5)

    def test_json_export_schema_and_determinism(self):
        records = [rec(1, 0.0, 10.0, shard=0), rec(2, 0.0, 5.0, shard=1)]
        first = ShardTimelines.from_records(records).to_json()
        second = ShardTimelines.from_records(records).to_json()
        assert first == second
        payload = json.loads(first)
        assert payload["schema"] == "repro.obs.timeline/v1"
        assert set(payload["segments"]) == {"p/0", "p/1"}
