"""P² streaming percentiles: determinism, accuracy, small-sample exactness."""

import pytest

from repro.errors import ConfigurationError
from repro.obs.quantiles import (
    DEFAULT_QUANTILES,
    P2Quantile,
    StreamingPercentiles,
    quantile_label,
)

pytestmark = pytest.mark.obs


def lcg_stream(n, seed=42):
    """A seeded pseudo-random stream with no stdlib RNG involved."""
    state = seed
    for _ in range(n):
        state = (state * 1_103_515_245 + 12_345) % (2**31)
        yield state / (2**31)


class TestP2Quantile:
    def test_rejects_invalid_quantile(self):
        with pytest.raises(ConfigurationError):
            P2Quantile(0.0)
        with pytest.raises(ConfigurationError):
            P2Quantile(1.5)

    def test_empty_is_zero(self):
        assert P2Quantile(0.5).value == 0.0

    def test_small_samples_are_exact_nearest_rank(self):
        estimator = P2Quantile(0.5)
        for value in (30.0, 10.0, 20.0):
            estimator.observe(value)
        assert estimator.value == 20.0  # exact median of three

    def test_median_accuracy_on_seeded_stream(self):
        estimator = P2Quantile(0.5)
        values = list(lcg_stream(5_000))
        for value in values:
            estimator.observe(value)
        exact = sorted(values)[len(values) // 2]
        assert estimator.value == pytest.approx(exact, abs=0.02)

    def test_p99_accuracy_on_seeded_stream(self):
        estimator = P2Quantile(0.99)
        values = list(lcg_stream(5_000, seed=7))
        for value in values:
            estimator.observe(value)
        exact = sorted(values)[int(0.99 * len(values))]
        assert estimator.value == pytest.approx(exact, abs=0.02)

    def test_deterministic_for_same_stream(self):
        a, b = P2Quantile(0.95), P2Quantile(0.95)
        for value in lcg_stream(1_000, seed=3):
            a.observe(value)
        for value in lcg_stream(1_000, seed=3):
            b.observe(value)
        assert a.value == b.value
        assert a.count == b.count == 1_000

    def test_monotone_stream(self):
        estimator = P2Quantile(0.5)
        for value in range(1, 101):
            estimator.observe(float(value))
        assert estimator.value == pytest.approx(50.0, abs=2.0)


class TestStreamingPercentiles:
    def test_default_quantiles_and_labels(self):
        stream = StreamingPercentiles()
        assert stream.quantiles == DEFAULT_QUANTILES
        assert quantile_label(0.5) == "p50"
        assert quantile_label(0.99) == "p99"
        assert quantile_label(0.999) == "p99.9"

    def test_tracks_count_sum_max_mean(self):
        stream = StreamingPercentiles()
        for value in (2.0, 4.0, 6.0):
            stream.observe(value)
        assert stream.count == 3
        assert stream.sum == 12.0
        assert stream.max == 6.0
        assert stream.mean == 4.0

    def test_as_dict_keys(self):
        stream = StreamingPercentiles()
        stream.observe(1.0)
        assert set(stream.as_dict()) == {"p50", "p95", "p99"}

    def test_untracked_quantile_rejected(self):
        with pytest.raises(ConfigurationError):
            StreamingPercentiles().value(0.42)
