"""CausalReport: the cross-region happens-before graph analyzer.

Unit tests pin the folding rules on synthesized records; the
hypothesis-backed properties run real traced tiers through scripted
interleavings and check the analyzer's three contracts — the stitched
graph is acyclic, every write's visibility steps exactly tile its
convergence window, and same-seed runs export byte-identical reports.
"""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.distrib import DistribConfig, DistribRuntime, SagaStep
from repro.errors import ProxyNetworkError
from repro.obs import CausalReport, Observability, parse_jsonl, render_causal_text
from repro.obs.analyze.causal import CAUSAL_SCHEMA
from repro.util.clock import Scheduler, SimulatedClock

pytestmark = pytest.mark.distrib

REGIONS = ("ap-south", "eu-west")


def build_traced_tier(*, seed=1, regions=REGIONS):
    scheduler = Scheduler(SimulatedClock())
    hub = Observability(capture_real_time=False)
    hub.bind_clock(scheduler.clock)
    tier = DistribRuntime(
        scheduler, DistribConfig(regions=regions, seed=seed), observability=hub
    )
    return hub, tier


def report_of(hub):
    return CausalReport.from_records(parse_jsonl(hub.export_jsonl()))


class TestFoldingRules:
    def test_empty_trace(self):
        report = CausalReport.from_records([])
        assert report.acyclic
        data = report.to_dict()
        assert data["schema"] == CAUSAL_SCHEMA
        assert data["graph"] == {
            "nodes": 0, "edges": 0, "cross_region_edges": 0, "acyclic": True,
        }
        assert "audit: clean" in render_causal_text(report)

    def test_write_and_replicate_give_visibility(self):
        hub, tier = build_traced_tier()
        tier.table("t").put("k", "v", region="ap-south")
        tier.scheduler.run_for(1_000.0)
        report = report_of(hub)
        data = report.to_dict()
        assert data["writes"] == 1
        stats = data["visibility"]["t/eu-west"]
        assert stats["count"] == 1
        assert stats["mean_ms"] == 250.0
        assert data["convergence"]["converged"] == 1
        assert data["convergence"]["max_window_ms"] == 250.0
        # The replicate hop carries a causal.origin edge back to the write.
        assert data["graph"]["cross_region_edges"] >= 1
        assert report.acyclic

    def test_dedup_chain_joins(self):
        records = [
            {
                "name": "resilience:post", "trace_id": 1, "span_id": 1,
                "start_virtual_ms": 0.0, "end_virtual_ms": 1.0,
                "attributes": {}, "events": [
                    {"name": "distrib.dedup", "t_virtual_ms": 0.5,
                     "attributes": {"store": "network",
                                    "chain": "Http:post#3",
                                    "region": "ap-south"}},
                    {"name": "distrib.dedup", "t_virtual_ms": 0.8,
                     "attributes": {"store": "network",
                                    "chain": "Http:post#3",
                                    "region": "ap-south"}},
                ],
            },
        ]
        report = CausalReport.from_records(records)
        assert report.dedup_chains == {"Http:post#3": 2}
        assert report.hops["dedup"] == 2

    def test_cycle_is_detected(self):
        records = [
            {"name": "write:t", "trace_id": 1, "span_id": 1, "parent_id": 2,
             "start_virtual_ms": 0.0, "end_virtual_ms": 0.0,
             "attributes": {}, "events": []},
            {"name": "invalidate:c", "trace_id": 1, "span_id": 2,
             "start_virtual_ms": 0.0, "end_virtual_ms": 0.0,
             "attributes": {"causal.origin": "1:1"}, "events": []},
        ]
        report = CausalReport.from_records(records)
        assert not report.acyclic
        assert "CYCLE DETECTED" in render_causal_text(report)


class TestSagaDecomposition:
    def test_completed_saga_with_replicated_write(self):
        hub, tier = build_traced_tier()
        table = tier.table("t")
        tier.sagas.run(
            "report",
            [SagaStep("write", lambda: table.put("k", "v", region="ap-south"))],
        )
        tier.scheduler.run_for(1_000.0)
        report = report_of(hub)
        (saga,) = report.sagas
        assert saga["saga"] == "report"
        assert saga["status"] == "completed"
        assert saga["region"] == "ap-south"
        assert saga["steps"] == 1
        assert saga["writes"] == 1
        # The saga's write took one replication delay to reach eu-west.
        assert saga["replication_wait_ms"] == 250.0
        assert saga["compensation_ms"] == 0.0

    def test_compensated_saga_counts_compensation(self):
        hub, tier = build_traced_tier()

        def boom():
            raise ProxyNetworkError("injected: peer gone")

        with pytest.raises(ProxyNetworkError):
            tier.sagas.run(
                "report",
                [
                    SagaStep("reserve", lambda: "r", lambda r: None),
                    SagaStep("post", boom),
                ],
            )
        report = report_of(hub)
        (saga,) = report.sagas
        assert saga["status"] == "compensated"
        assert saga["steps"] == 2  # reserve + the failed post attempt
        assert saga["writes"] == 0
        assert saga["replication_wait_ms"] == 0.0


class TestViolationsSurface:
    def test_injected_inversion_lands_in_report(self):
        hub, tier = build_traced_tier()
        table = tier.table("t")
        table.put("k", "old", region="ap-south")
        table.put("k", "new", region="eu-west")
        tier.causal.lookup("t", "k", (1, "ap-south")).vc = {"ap-south": 9}
        tier.causal.lookup("t", "k", (2, "eu-west")).vc = {"ap-south": 1}
        tier.scheduler.run_for(10_000.0)
        tier.run_until_converged()
        report = report_of(hub)
        assert [v["kind"] for v in report.violations] == [
            "lww_causality_inversion"
        ]
        assert report.acyclic
        text = render_causal_text(report)
        assert "VIOLATIONS: 1" in text
        assert "lww_causality_inversion" in text


# One scripted operation against a traced tier:
#   ("put", key ordinal, value, region ordinal)
#   ("cache_put", key ordinal, value, region ordinal)
#   ("partition",) / ("heal",)  — the single region pair
#   ("advance", milliseconds)
OP = st.one_of(
    st.tuples(
        st.just("put"),
        st.integers(min_value=0, max_value=3),
        st.integers(min_value=0, max_value=99),
        st.integers(min_value=0, max_value=1),
    ),
    st.tuples(
        st.just("cache_put"),
        st.integers(min_value=0, max_value=3),
        st.integers(min_value=0, max_value=99),
        st.integers(min_value=0, max_value=1),
    ),
    st.tuples(st.just("partition")),
    st.tuples(st.just("heal")),
    st.tuples(st.just("advance"), st.floats(min_value=0.0, max_value=600.0)),
)
OPS = st.lists(OP, min_size=1, max_size=25)


def run_script(ops, *, seed):
    """Apply a scripted interleaving to a fresh traced tier."""
    hub, tier = build_traced_tier(seed=seed)
    table = tier.table("t")
    cache = tier.cache("c")
    for op in ops:
        if op[0] == "put":
            table.put(f"k{op[1]}", op[2], region=REGIONS[op[3]])
        elif op[0] == "cache_put":
            cache.put(f"k{op[1]}", op[2], region=REGIONS[op[3]])
        elif op[0] == "partition":
            if not tier.partitions.edges():
                tier.partition(*REGIONS)
        elif op[0] == "heal":
            tier.heal_all()
        else:
            tier.scheduler.run_for(op[1])
    tier.heal_all()
    tier.scheduler.run_for(2_000.0)
    tier.run_until_converged()
    return hub, tier


class TestGraphProperties:
    @settings(max_examples=25, deadline=None)
    @given(ops=OPS, seed=st.integers(min_value=0, max_value=9))
    def test_happens_before_graph_is_acyclic(self, ops, seed):
        hub, _ = run_script(ops, seed=seed)
        assert report_of(hub).acyclic

    @settings(max_examples=25, deadline=None)
    @given(ops=OPS, seed=st.integers(min_value=0, max_value=9))
    def test_visibility_steps_tile_the_convergence_window(self, ops, seed):
        hub, _ = run_script(ops, seed=seed)
        for entry in report_of(hub).convergence_entries():
            tiled = sum(step["delta_ms"] for step in entry["steps"])
            assert tiled == pytest.approx(entry["window_ms"], abs=1e-5)
            # Steps arrive in order; the origin region is step zero.
            assert entry["steps"][0]["via"] == "origin"
            assert entry["steps"][0]["delta_ms"] == 0.0

    @settings(max_examples=15, deadline=None)
    @given(ops=OPS, seed=st.integers(min_value=0, max_value=9))
    def test_same_seed_byte_identical_reports(self, ops, seed):
        first, _ = run_script(ops, seed=seed)
        second, _ = run_script(ops, seed=seed)
        first_json = report_of(first).to_json()
        assert first_json == report_of(second).to_json()
        json.loads(first_json)  # and it is valid JSON

    @settings(max_examples=15, deadline=None)
    @given(ops=OPS, seed=st.integers(min_value=0, max_value=9))
    def test_healthy_scripts_audit_clean(self, ops, seed):
        hub, tier = run_script(ops, seed=seed)
        assert tier.monitor.clean
        assert report_of(hub).violations == []
