"""Profile diff and the perf-regression gate."""

import json

import pytest

from repro.obs import Tracer, export_jsonl
from repro.obs.analyze.diff import diff_profiles, load_profile_text
from repro.obs.analyze.overhead import OverheadProfile
from repro.util.clock import SimulatedClock

pytestmark = pytest.mark.obs


def profile_with(native_ms, *, dispatch_ms=1.0, invocations=2):
    clock = SimulatedClock()
    tracer = Tracer(clock, capture_real_time=False)
    for _ in range(invocations):
        with tracer.span("dispatch:getLocation", platform="android"):
            clock.advance(dispatch_ms)
            with tracer.span("substrate:android.getLocation"):
                clock.advance(native_ms)
    return OverheadProfile.from_spans(tracer.finished_spans())


class TestDiff:
    def test_identical_profiles_pass(self):
        base = profile_with(10.0)
        diff = diff_profiles(base, profile_with(10.0))
        assert diff.passed
        assert diff.regressions() == []
        assert "no per-layer regressions" in diff.render_text()

    def test_regression_flagged_beyond_both_thresholds(self):
        diff = diff_profiles(profile_with(10.0), profile_with(13.0))
        regressions = diff.regressions()
        assert not diff.passed
        (delta,) = [d for d in regressions if d.layer == "substrate"]
        assert delta.base_ms == pytest.approx(10.0)
        assert delta.new_ms == pytest.approx(13.0)

    def test_growth_within_noise_floor_ignored(self):
        # +0.02ms per invocation: above 0% relative but below the 0.05ms
        # absolute noise floor.
        diff = diff_profiles(profile_with(10.0), profile_with(10.02))
        assert diff.passed

    def test_relative_threshold_protects_large_bases(self):
        # +0.5ms on a 100ms base is 0.5%: above the absolute floor but
        # below the 10% relative bar.
        diff = diff_profiles(profile_with(100.0), profile_with(100.5))
        assert diff.passed

    def test_custom_thresholds(self):
        diff = diff_profiles(
            profile_with(100.0), profile_with(100.5),
            noise_ms=0.1, noise_frac=0.001,
        )
        assert not diff.passed

    def test_missing_and_new_operations_reported(self):
        base = profile_with(10.0)
        empty = OverheadProfile()
        diff = diff_profiles(base, empty)
        assert diff.missing_in_new == ["getLocation/android"]
        assert not diff.passed

        diff = diff_profiles(empty, base)
        assert diff.new_operations == ["getLocation/android"]
        assert diff.passed  # new coverage is not a regression

    def test_to_dict_schema(self):
        diff = diff_profiles(profile_with(10.0), profile_with(13.0))
        payload = diff.to_dict()
        assert payload["schema"] == "repro.obs.diff/v1"
        assert payload["passed"] is False
        json.dumps(payload)  # JSON-able


class TestLoadProfile:
    def test_loads_trace_jsonl(self):
        clock = SimulatedClock()
        tracer = Tracer(clock, capture_real_time=False)
        with tracer.span("dispatch:op", platform="android"):
            clock.advance(5.0)
        profile = load_profile_text(export_jsonl(tracer.finished_spans()))
        assert ("op", "android") in profile.operations

    def test_loads_profile_document(self):
        saved = profile_with(10.0).to_json()
        profile = load_profile_text(saved)
        assert profile.operations[("getLocation", "android")].native_ms == (
            pytest.approx(20.0)
        )

    def test_loads_bench_document_with_embedded_profile(self):
        bench = json.dumps(
            {
                "schema": "repro.bench/v1",
                "name": "fig10",
                "metrics": {"profile": profile_with(10.0).to_dict()},
            }
        )
        profile = load_profile_text(bench)
        assert ("getLocation", "android") in profile.operations

    def test_unrecognized_document_rejected(self):
        with pytest.raises(ValueError):
            load_profile_text(json.dumps({"what": "ever"}))
