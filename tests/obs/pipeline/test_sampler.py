"""Sampling decisions: seeded head hash, tail keep rules, P² slow rule."""

import pytest

from repro.obs.pipeline import ANOMALY_EVENTS, TailRules, anomaly_rules, head_keep
from repro.obs.pipeline.sampler import RULE_ERROR
from repro.obs.span import Span

pytestmark = [pytest.mark.obs, pytest.mark.pipeline]


def _span(status="ok", events=(), **attributes):
    span = Span(
        name="dispatch:op",
        trace_id=1,
        span_id=1,
        parent_id=None,
        start_virtual_ms=0.0,
        start_real_ms=0.0,
        end_virtual_ms=1.0,
    )
    span.status = status
    span.attributes.update(attributes)
    for name, attrs in events:
        span.add_event(name, 0.0, **attrs)
    return span


class TestHeadKeep:
    def test_deterministic(self):
        decisions = [head_keep(7, "agent-1", 42, 0.5) for _ in range(3)]
        assert len(set(decisions)) == 1

    def test_rate_bounds(self):
        assert head_keep(0, None, 1, 1.0)
        assert not head_keep(0, None, 1, 0.0)

    def test_keep_fraction_tracks_rate(self):
        kept = sum(head_keep(3, None, trace_id, 0.1) for trace_id in range(10_000))
        assert 0.07 < kept / 10_000 < 0.13

    def test_seed_changes_the_keep_set(self):
        a = {t for t in range(2_000) if head_keep(1, None, t, 0.1)}
        b = {t for t in range(2_000) if head_keep(2, None, t, 0.1)}
        assert a != b

    def test_source_is_part_of_the_identity(self):
        a = {t for t in range(2_000) if head_keep(1, "agent-1", t, 0.1)}
        b = {t for t in range(2_000) if head_keep(1, "agent-2", t, 0.1)}
        assert a != b


class TestAnomalyRules:
    def test_clean_trace_has_no_rules(self):
        assert anomaly_rules([_span(), _span()]) == []

    def test_error_status(self):
        assert anomaly_rules([_span(status="error")]) == [RULE_ERROR]

    @pytest.mark.parametrize("event", sorted(ANOMALY_EVENTS))
    def test_each_anomaly_event(self, event):
        assert anomaly_rules([_span(events=[(event, {})])]) == [event]

    def test_breaker_transition_to_open_counts(self):
        spans = [_span(events=[("breaker.transition", {"to_state": "open"})])]
        assert anomaly_rules(spans) == ["breaker.open"]

    def test_breaker_transition_to_closed_does_not(self):
        spans = [_span(events=[("breaker.transition", {"to_state": "closed"})])]
        assert anomaly_rules(spans) == []

    def test_rules_deduplicate(self):
        spans = [
            _span(status="error", events=[("queue.shed", {})]),
            _span(status="error", events=[("queue.shed", {})]),
        ]
        assert anomaly_rules(spans) == [RULE_ERROR, "queue.shed"]

    def test_dict_records_match_live_spans(self):
        live = [_span(status="error", events=[("queue.throttled", {"tenant": "t"})])]
        records = [span.to_dict() for span in live]
        assert anomaly_rules(records) == anomaly_rules(live)


class TestTailRules:
    def test_unarmed_below_min_count(self):
        tail = TailRules(min_count=5)
        for _ in range(4):
            assert not tail.is_slow("op", 1_000.0)
            tail.observe("op", 1.0)
        assert tail.threshold("op") is None

    def test_armed_flags_outliers(self):
        tail = TailRules(min_count=5)
        for _ in range(50):
            tail.observe("op", 10.0)
        assert tail.threshold("op") is not None
        assert tail.is_slow("op", 1_000.0)
        assert not tail.is_slow("op", 5.0)

    def test_op_classes_are_independent(self):
        tail = TailRules(min_count=5)
        for _ in range(50):
            tail.observe("fast", 1.0)
        assert tail.is_slow("fast", 100.0)
        assert not tail.is_slow("slow", 100.0)  # never observed → unarmed
