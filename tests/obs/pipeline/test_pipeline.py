"""TelemetryPipeline end to end: live sink, streaming retention, the
sampling decision path, offline replay, and the registry cardinality
guard it builds on."""

import json

import pytest

from repro.obs import MetricsRegistry, Observability, Tracer
from repro.obs.metrics import OVERFLOW_LABELS
from repro.obs.pipeline import PipelineConfig, TelemetryPipeline
from repro.util.clock import SimulatedClock

pytestmark = [pytest.mark.obs, pytest.mark.pipeline]


def _tracer():
    clock = SimulatedClock()
    return clock, Tracer(clock, capture_real_time=False)


def _invoke(clock, tracer, name="dispatch:notify", *, ms=5.0, fail=False, **attrs):
    """One two-span trace: a root with one child, ``ms`` of virtual time."""
    try:
        with tracer.span(name, **attrs):
            with tracer.span("binding:send"):
                clock.advance(ms)
            if fail:
                raise RuntimeError("boom")
    except RuntimeError:
        pass


class TestLiveSink:
    def test_keep_all_accounting(self):
        clock, tracer = _tracer()
        pipeline = TelemetryPipeline(PipelineConfig(default_rate=1.0))
        pipeline.attach(tracer)
        for _ in range(4):
            _invoke(clock, tracer)
        accounting = pipeline.accounting()
        assert accounting["traces_total"] == 4
        assert accounting["traces_kept"] == 4
        assert accounting["spans_total"] == 8
        assert accounting["sampled_out"] == 0
        assert accounting["open_traces"] == 0
        assert len(pipeline.retention) == 8
        assert pipeline.rollups.requests == 4

    def test_head_rate_zero_drops_healthy_traces(self):
        clock, tracer = _tracer()
        pipeline = TelemetryPipeline(PipelineConfig(default_rate=0.0))
        pipeline.attach(tracer)
        for _ in range(3):
            _invoke(clock, tracer)
        accounting = pipeline.accounting()
        assert accounting["traces_kept"] == 0
        assert accounting["traces_sampled_out"] == 3
        assert accounting["sampled_out"] == 6
        assert pipeline.export_jsonl() == ""
        # Rollups still saw the unsampled truth.
        assert pipeline.rollups.requests == 3

    def test_tail_rule_keeps_error_trace_at_rate_zero(self):
        clock, tracer = _tracer()
        pipeline = TelemetryPipeline(PipelineConfig(default_rate=0.0))
        pipeline.attach(tracer)
        _invoke(clock, tracer)
        _invoke(clock, tracer, fail=True)
        accounting = pipeline.accounting()
        assert accounting["traces_kept"] == 1
        assert accounting["anomalous_traces"] == 1
        assert accounting["anomalous_kept"] == 1
        assert accounting["tail_misses"] == 0
        kept = [json.loads(line) for line in pipeline.export_jsonl().splitlines()]
        assert any(record["status"] == "error" for record in kept)

    def test_slow_trace_kept_after_rule_arms(self):
        clock, tracer = _tracer()
        pipeline = TelemetryPipeline(
            PipelineConfig(default_rate=0.0, slow_trace_min_count=5)
        )
        pipeline.attach(tracer)
        for _ in range(40):
            _invoke(clock, tracer, ms=5.0)
        _invoke(clock, tracer, ms=500.0)
        assert pipeline.accounting()["traces_kept"] == 1
        assert pipeline.metrics.counter_values("obs.tail_kept") == {
            (("rule", "slow.p99"),): 1
        }

    def test_source_tags_retained_records(self):
        clock, tracer = _tracer()
        pipeline = TelemetryPipeline(PipelineConfig(default_rate=1.0))
        pipeline.attach(tracer, source="agent-1")
        _invoke(clock, tracer)
        records = pipeline.retention.records()
        assert {record["source"] for record in records} == {"agent-1"}

    def test_observers_fire_for_dropped_traces(self):
        clock, tracer = _tracer()
        pipeline = TelemetryPipeline(PipelineConfig(default_rate=0.0))
        pipeline.attach(tracer)
        seen = []
        pipeline.add_observer(lambda source, spans: seen.append(len(spans)))
        _invoke(clock, tracer)
        assert seen == [2]


class TestStreamingRetention:
    def test_tracer_stops_retaining(self):
        clock, tracer = _tracer()
        pipeline = TelemetryPipeline(
            PipelineConfig(default_rate=1.0, streaming=True)
        )
        pipeline.attach(tracer)
        assert not tracer.retaining
        for _ in range(10):
            _invoke(clock, tracer)
        assert tracer.spans == []  # ring is the only storage
        assert len(pipeline.retention) == 20

    def test_ring_eviction_is_accounted(self):
        clock, tracer = _tracer()
        pipeline = TelemetryPipeline(
            PipelineConfig(default_rate=1.0, span_capacity=6)
        )
        pipeline.attach(tracer)
        for _ in range(5):
            _invoke(clock, tracer)
        assert len(pipeline.retention) == 6
        assert pipeline.dropped_spans == 4
        assert pipeline.accounting()["dropped_spans"] == 4


class TestOfflineReplay:
    def test_replay_matches_live_accounting(self):
        config = PipelineConfig(default_rate=0.3, seed=11)
        clock, tracer = _tracer()
        live = TelemetryPipeline(config)
        live.attach(tracer)
        for index in range(20):
            _invoke(clock, tracer, ms=float(index + 1), fail=index % 7 == 0)
        export = "".join(
            json.dumps(span.to_dict(), sort_keys=True) + "\n"
            for span in tracer.finished_spans()
        )
        offline = TelemetryPipeline(config)
        traces = offline.ingest_records(
            json.loads(line) for line in export.splitlines()
        )
        assert traces == 20
        assert offline.accounting() == live.accounting()
        assert sorted(offline.export_jsonl().splitlines()) == sorted(
            live.export_jsonl().splitlines()
        )


class TestCardinalityGuard:
    def test_registry_overflow_collapses_series(self):
        registry = MetricsRegistry(max_series_per_metric=2)
        for index in range(5):
            registry.counter("requests", site=f"s{index}").inc()
        values = registry.counter_values("requests")
        overflow_key = tuple(sorted(OVERFLOW_LABELS.items()))
        assert values[overflow_key] == 3
        assert registry.total("requests") == 5
        assert registry.total("obs.cardinality_overflow") == 3

    def test_pipeline_wires_the_limit(self):
        pipeline = TelemetryPipeline(
            PipelineConfig(default_rate=1.0, max_metric_series=1)
        )
        for index in range(3):
            pipeline.metrics.counter("custom", shard=str(index)).inc()
        assert pipeline.cardinality_overflow == 2


class TestObservabilityAttachment:
    def test_install_pipeline_is_idempotent(self):
        hub = Observability(capture_real_time=False)
        first = hub.install_pipeline(PipelineConfig(default_rate=1.0))
        second = hub.install_pipeline()
        assert first is second is hub.pipeline
        assert hub.pipeline.metrics is hub.metrics

    def test_disabled_hub_attach_is_a_noop(self):
        hub = Observability.disabled()
        pipeline = TelemetryPipeline(PipelineConfig(streaming=True))
        pipeline.attach(hub.tracer)  # no sink support on the noop tracer
        assert pipeline.accounting()["traces_total"] == 0
