"""RED rollup series: bucketing, exemplars, read-time quantiles, the
series-cardinality bound."""

import pytest

from repro.obs import MetricsRegistry
from repro.obs.pipeline import RedRollups
from repro.obs.pipeline.rollup import RollupSeries

pytestmark = [pytest.mark.obs, pytest.mark.pipeline]

KEY = ("notify", "android", "eu-west", "tenant-1")


@pytest.fixture
def series():
    return RollupSeries(KEY, bounds=(10.0, 100.0, 1_000.0))


class TestRollupSeries:
    def test_red_accumulation(self, series):
        series.observe(5.0, error=False, t_ms=0.0)
        series.observe(50.0, error=True, t_ms=500.0)
        series.observe(5_000.0, error=False, t_ms=1_000.0)
        assert series.count == 3
        assert series.errors == 1
        assert series.error_ratio == pytest.approx(1 / 3)
        assert series.sum == pytest.approx(5_055.0)
        assert series.max == 5_000.0
        assert series.bucket_counts == [1, 1, 0]
        assert series.overflow == 1
        assert series.rate_per_s() == pytest.approx(3.0)  # 3 over 1s window

    def test_degenerate_window_rate(self, series):
        series.observe(1.0, error=False, t_ms=42.0)
        assert series.rate_per_s() == 1.0

    def test_exemplars_land_in_their_bucket(self, series):
        series.observe(5.0, error=False, t_ms=0.0, exemplar="agent-1:7")
        series.observe(50.0, error=False, t_ms=0.0)  # sampled out: no exemplar
        series.observe(5_000.0, error=False, t_ms=0.0, exemplar="agent-2:9")
        assert series.exemplars[0] == "agent-1:7"
        assert series.exemplars[1] is None
        assert series.exemplars[-1] == "agent-2:9"
        buckets = series.to_dict()["buckets"]
        assert buckets[0]["exemplar"] == "agent-1:7"
        assert buckets[-1] == {"le": "+Inf", "count": 3, "exemplar": "agent-2:9"}

    def test_cumulative_bucket_counts(self, series):
        for duration in (1.0, 2.0, 20.0, 200.0):
            series.observe(duration, error=False, t_ms=0.0)
        counts = [bucket["count"] for bucket in series.to_dict()["buckets"]]
        assert counts == [2, 3, 4, 4]

    def test_quantiles_from_buckets(self, series):
        assert series.quantile(0.5) == 0.0  # empty
        for duration in [1.0] * 50 + [50.0] * 45 + [500.0] * 5:
            series.observe(duration, error=False, t_ms=0.0)
        p50, p99 = series.quantile(0.5), series.quantile(0.99)
        assert 0.0 < p50 <= 10.0
        assert 100.0 < p99 <= 1_000.0
        assert p50 <= series.quantile(0.95) <= p99 <= series.max
        labels = series.percentiles()
        assert set(labels) == {"p50", "p95", "p99"}

    def test_overflow_quantile_bounded_by_max(self, series):
        for duration in (5_000.0, 6_000.0, 7_000.0):
            series.observe(duration, error=False, t_ms=0.0)
        assert 1_000.0 <= series.quantile(0.99) <= 7_000.0


class TestRedRollups:
    def test_series_per_key_sorted(self):
        rollups = RedRollups(max_series=8)
        rollups.observe(("b", "-", "-", "-"), 1.0, error=False, t_ms=0.0)
        rollups.observe(("a", "-", "-", "-"), 2.0, error=True, t_ms=0.0)
        rollups.observe(("a", "-", "-", "-"), 3.0, error=False, t_ms=1.0)
        assert [series.op for series in rollups.series()] == ["a", "b"]
        assert rollups.requests == 3
        assert rollups.errors == 1

    def test_cardinality_bound_collapses(self):
        registry = MetricsRegistry()
        rollups = RedRollups(max_series=2, metrics=registry)
        for index in range(5):
            rollups.observe(
                (f"op-{index}", "-", "-", "-"), 1.0, error=False, t_ms=0.0
            )
        assert rollups.collapsed_observations == 3
        collapsed = rollups.series()[-1]
        assert collapsed.collapsed and collapsed.count == 3
        assert collapsed.to_dict()["labels"] == {"other": "true"}
        assert registry.total("obs.cardinality_overflow") == 3
        assert rollups.requests == 5  # nothing lost, only label detail

    def test_existing_keys_keep_flowing_after_the_bound(self):
        rollups = RedRollups(max_series=1)
        rollups.observe(("a", "-", "-", "-"), 1.0, error=False, t_ms=0.0)
        rollups.observe(("b", "-", "-", "-"), 1.0, error=False, t_ms=0.0)
        rollups.observe(("a", "-", "-", "-"), 1.0, error=False, t_ms=0.0)
        assert rollups.collapsed_observations == 1
        by_op = {series.op: series.count for series in rollups.series()}
        assert by_op == {"a": 2, "other": 1}

    def test_to_dict_shape(self):
        rollups = RedRollups(max_series=4)
        rollups.observe(KEY, 1.0, error=False, t_ms=0.0)
        payload = rollups.to_dict()
        assert payload["distinct_keys"] == 1
        assert payload["collapsed_observations"] == 0
        assert payload["series"][0]["labels"]["op"] == "notify"
