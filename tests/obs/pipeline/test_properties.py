"""Property tests for the sampling pipeline's three core guarantees:

1. same-seed determinism — replaying an identical trace stream through
   identically-configured pipelines yields **byte-identical** sampled
   exports (and on real workloads, across all three platforms);
2. safety — the tail keep rules never drop an anomalous trace, at any
   head rate;
3. truthful accounting — rollup request/error counts always equal the
   unsampled totals, at any head rate.
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st
import pytest

from repro.obs import Observability
from repro.obs.pipeline import ANOMALY_EVENTS, PipelineConfig, TelemetryPipeline
from tests.chaos.drivers import DRIVERS, PLATFORMS, transient_plan

pytestmark = [pytest.mark.obs, pytest.mark.pipeline]

OPS = ("dispatch:notify", "dispatch:report", "locate")


@st.composite
def trace_records(draw):
    """One synthetic exported trace: a root plus 0–3 children, possibly
    carrying an error status or an anomaly event."""
    trace_id = draw(st.integers(min_value=1, max_value=10_000))
    start = float(draw(st.integers(min_value=0, max_value=100_000)))
    duration = float(draw(st.integers(min_value=1, max_value=2_000)))
    error = draw(st.booleans())
    event = draw(
        st.one_of(st.none(), st.sampled_from(sorted(ANOMALY_EVENTS)))
    )
    records = [
        {
            "name": draw(st.sampled_from(OPS)),
            "trace_id": trace_id,
            "span_id": 1,
            "parent_id": None,
            "start_virtual_ms": start,
            "end_virtual_ms": start + duration,
            "status": "error" if error else "ok",
            "error": "boom" if error else None,
            "attributes": {"platform": draw(st.sampled_from(PLATFORMS))},
            "events": []
            if event is None
            else [{"name": event, "t_virtual_ms": start, "attributes": {}}],
        }
    ]
    for child_id in range(2, draw(st.integers(min_value=2, max_value=5))):
        records.append(
            {
                "name": "binding:send",
                "trace_id": trace_id,
                "span_id": child_id,
                "parent_id": 1,
                "start_virtual_ms": start,
                "end_virtual_ms": start + duration,
                "status": "ok",
                "error": None,
                "attributes": {},
                "events": [],
            }
        )
    return records


def _distinct_traces(streams):
    """Flatten, dropping duplicate trace ids (one pipeline trace each)."""
    seen, flat = set(), []
    for records in streams:
        if records[0]["trace_id"] not in seen:
            seen.add(records[0]["trace_id"])
            flat.extend(records)
    return flat


stream_strategy = st.lists(trace_records(), min_size=1, max_size=30)
rate_strategy = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
seed_strategy = st.integers(min_value=0, max_value=2**32)


class TestSampledExportDeterminism:
    @given(streams=stream_strategy, rate=rate_strategy, seed=seed_strategy)
    @settings(max_examples=40, deadline=None)
    def test_same_seed_byte_identical_exports(self, streams, rate, seed):
        records = _distinct_traces(streams)
        config = PipelineConfig(default_rate=rate, seed=seed)
        exports = []
        for _ in range(2):
            pipeline = TelemetryPipeline(config)
            pipeline.ingest_records(json.loads(json.dumps(records)))
            exports.append(pipeline.export_jsonl())
        assert exports[0] == exports[1]

    @given(streams=stream_strategy, rate=rate_strategy)
    @settings(max_examples=20, deadline=None)
    def test_different_seeds_only_change_head_keeps(self, streams, rate):
        records = _distinct_traces(streams)
        accountings = []
        for seed in (1, 2):
            pipeline = TelemetryPipeline(
                PipelineConfig(default_rate=rate, seed=seed)
            )
            pipeline.ingest_records(records)
            accountings.append(pipeline.accounting())
        a, b = accountings
        assert a["traces_total"] == b["traces_total"]
        assert a["anomalous_traces"] == b["anomalous_traces"]
        assert a["tail_misses"] == b["tail_misses"] == 0


class TestTailSafety:
    @given(streams=stream_strategy, rate=rate_strategy, seed=seed_strategy)
    @settings(max_examples=40, deadline=None)
    def test_tail_rules_never_drop_anomalous_traces(self, streams, rate, seed):
        records = _distinct_traces(streams)
        pipeline = TelemetryPipeline(
            PipelineConfig(default_rate=rate, seed=seed)
        )
        pipeline.ingest_records(records)
        accounting = pipeline.accounting()
        assert accounting["tail_misses"] == 0
        assert accounting["anomalous_kept"] == accounting["anomalous_traces"]
        # Every anomalous root is present in the sampled export.
        kept_traces = {
            record["trace_id"]
            for record in map(json.loads, pipeline.export_jsonl().splitlines())
        }
        for record in records:
            anomalous = record["status"] != "ok" or record["events"]
            if record["parent_id"] is None and anomalous:
                assert record["trace_id"] in kept_traces


class TestRollupTruth:
    @given(streams=stream_strategy, rate=rate_strategy, seed=seed_strategy)
    @settings(max_examples=40, deadline=None)
    def test_rollup_counts_equal_unsampled_counts(self, streams, rate, seed):
        records = _distinct_traces(streams)
        pipeline = TelemetryPipeline(
            PipelineConfig(default_rate=rate, seed=seed)
        )
        traces = pipeline.ingest_records(records)
        assert pipeline.rollups.requests == traces
        assert pipeline.rollups.errors == sum(
            1
            for record in records
            if record["parent_id"] is None and record["status"] != "ok"
        )


@pytest.mark.parametrize("platform", PLATFORMS)
class TestWorkloadExportDeterminism:
    def test_same_seed_byte_identical_on_every_platform(self, platform):
        """The full-stack version of the property: a seeded chaos
        workload at a 30% head rate exports byte-identical JSONL on
        repeat runs, on all three platforms."""
        exports = []
        for _ in range(2):
            hub = Observability(capture_real_time=False)
            hub.install_pipeline(
                PipelineConfig(default_rate=0.3, seed=5, streaming=True)
            )
            DRIVERS[platform](transient_plan(0.3, seed=9), seed=9, observability=hub)
            exports.append(hub.pipeline.export_jsonl())
        assert exports[0] == exports[1]
        assert exports[0]  # a silent empty export would pass trivially
        accounting = hub.pipeline.accounting()
        assert accounting["traces_kept"] < accounting["traces_total"]
        assert accounting["tail_misses"] == 0
