"""`python -m repro.obs health`: the fleet health console and its gate."""

import json

import pytest

from repro.obs import Tracer
from repro.obs.analyze.cli import main
from repro.obs.pipeline import HEALTH_SCHEMA
from repro.util.clock import SimulatedClock

pytestmark = [pytest.mark.obs, pytest.mark.pipeline]


@pytest.fixture
def trace_path(tmp_path):
    """20 clean dispatches plus one error trace, exported to JSONL."""
    clock = SimulatedClock()
    tracer = Tracer(clock, capture_real_time=False)
    for _ in range(20):
        with tracer.span("dispatch:notify", platform="android"):
            clock.advance(5.0)
    try:
        with tracer.span("dispatch:notify", platform="android"):
            clock.advance(5.0)
            raise RuntimeError("boom")
    except RuntimeError:
        pass
    path = tmp_path / "trace.jsonl"
    path.write_text(
        "".join(
            json.dumps(span.to_dict(), sort_keys=True) + "\n"
            for span in tracer.finished_spans()
        )
    )
    return str(path)


class TestHealthConsole:
    def test_text_verdict(self, trace_path, capsys):
        assert main(["health", trace_path]) == 0
        out = capsys.readouterr().out
        assert "telemetry health: HEALTHY" in out
        assert "tail misses 0" in out

    def test_json_document(self, trace_path, capsys):
        assert main(["health", trace_path, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == HEALTH_SCHEMA
        telemetry = payload["telemetry"]["accounting"]
        assert telemetry["traces_total"] == 21
        assert telemetry["anomalous_traces"] == 1
        assert telemetry["tail_misses"] == 0

    def test_out_writes_the_report(self, trace_path, tmp_path, capsys):
        out = tmp_path / "HEALTH.json"
        assert main(["health", trace_path, "--out", str(out)]) == 0
        capsys.readouterr()
        assert json.loads(out.read_text())["schema"] == HEALTH_SCHEMA

    def test_sampling_flags_replay_a_rate(self, trace_path, capsys):
        assert main(
            ["health", trace_path, "--rate", "0.0", "--seed", "3", "--json"]
        ) == 0
        telemetry = json.loads(capsys.readouterr().out)["telemetry"]["accounting"]
        # Only the tail-kept error trace survives a zero head rate.
        assert telemetry["traces_kept"] == 1
        assert telemetry["anomalous_kept"] == 1

    def test_rate_op_override(self, trace_path, capsys):
        assert main(
            ["health", trace_path, "--rate", "0.0",
             "--rate-op", "notify=1.0", "--json"]
        ) == 0
        telemetry = json.loads(capsys.readouterr().out)["telemetry"]["accounting"]
        assert telemetry["traces_kept"] == 21

    def test_rate_op_rejects_malformed(self, trace_path):
        with pytest.raises(SystemExit):
            main(["health", trace_path, "--rate-op", "notify"])


class TestHealthGate:
    def test_healthy_run_passes(self, trace_path, capsys):
        assert main(["health", trace_path, "--gate"]) == 0
        capsys.readouterr()

    def test_captured_anomalies_pass_but_strict_fails(self, trace_path, capsys):
        assert main(["health", trace_path, "--gate"]) == 0
        assert main(["health", trace_path, "--gate", "--strict"]) == 1
        assert "anomalous" in capsys.readouterr().out

    def test_ring_drops_fail_the_gate(self, trace_path, capsys):
        assert main(["health", trace_path, "--gate", "--retain", "2"]) == 1
        assert "dropped" in capsys.readouterr().out

    def test_slo_breach_fails_the_gate(self, trace_path, capsys):
        # Every dispatch takes 5ms; a 1ms threshold at target 0.99 breaches.
        assert main(
            ["health", trace_path, "--gate", "--slo", "notify:1"]
        ) == 1
        out = capsys.readouterr().out
        assert "slo" in out.lower()

    def test_generous_slo_passes(self, tmp_path, capsys):
        # A clean trace (the fixture's error trace would blow the 1%
        # error budget no matter the latency threshold).
        clock = SimulatedClock()
        tracer = Tracer(clock, capture_real_time=False)
        for _ in range(20):
            with tracer.span("dispatch:notify", platform="android"):
                clock.advance(5.0)
        path = tmp_path / "clean.jsonl"
        path.write_text(
            "".join(
                json.dumps(span.to_dict(), sort_keys=True) + "\n"
                for span in tracer.finished_spans()
            )
        )
        assert main(
            ["health", str(path), "--gate", "--slo", "notify:1000:0.5"]
        ) == 0
        capsys.readouterr()
