"""Unit tests for the flight recorder's rings, triggers and dumps."""

import pytest

from repro.obs import FlightRecorder, Tracer, render_flight_text
from repro.util.clock import SimulatedClock

pytestmark = pytest.mark.obs


def make_recorder(**kwargs):
    clock = SimulatedClock()
    recorder = FlightRecorder(clock=clock, **kwargs)
    return clock, recorder


class TestRecording:
    def test_attach_shadows_finished_spans_and_events(self):
        clock, recorder = make_recorder()
        tracer = Tracer(clock, capture_real_time=False)
        recorder.attach(tracer, source="agent-1")
        with tracer.span("queue:work", shard=0):
            tracer.event("queue.shed", depth=3)
            clock.advance(5.0)
        dump = recorder.trigger("test")
        assert [span["name"] for span in dump["spans"]] == ["queue:work"]
        assert dump["spans"][0]["source"] == "agent-1"
        event = dump["events"][0]
        assert event["name"] == "queue.shed"
        assert event["span_id"] == dump["spans"][0]["span_id"]
        assert event["source"] == "agent-1"

    def test_span_ring_is_bounded(self):
        clock, recorder = make_recorder(span_capacity=2)
        tracer = Tracer(clock, capture_real_time=False)
        recorder.attach(tracer)
        for index in range(4):
            with tracer.span(f"s{index}"):
                pass
        dump = recorder.trigger("test")
        assert [span["name"] for span in dump["spans"]] == ["s2", "s3"]

    def test_note_records_standalone_event(self):
        clock, recorder = make_recorder()
        clock.advance(7.0)
        recorder.note("task.crashed", task="t", error="boom")
        dump = recorder.trigger("test")
        assert dump["events"] == [
            {
                "attributes": {"error": "boom", "task": "t"},
                "name": "task.crashed",
                "span_id": None,
                "t_virtual_ms": 7.0,
            }
        ]

    def test_record_sample_matches_sampler_sink_signature(self):
        _, recorder = make_recorder()
        recorder.record_sample("runtime.queue_depth", {"shard": "0"}, 3.0, 12.0)
        dump = recorder.trigger("test")
        assert dump["samples"] == [
            {
                "labels": {"shard": "0"},
                "metric": "runtime.queue_depth",
                "t_virtual_ms": 3.0,
                "value": 12.0,
            }
        ]


class TestTriggering:
    def test_cooldown_collapses_bursts(self):
        clock, recorder = make_recorder(cooldown_ms=100.0)
        assert recorder.trigger("shed") is not None
        for _ in range(5):
            assert recorder.trigger("shed") is None  # same instant: suppressed
        assert recorder.triggered == 1
        assert recorder.last_dump["suppressed"] == 5
        clock.advance(100.0)
        assert recorder.trigger("shed") is not None
        assert recorder.triggered == 2

    def test_cooldown_is_per_reason(self):
        _, recorder = make_recorder(cooldown_ms=100.0)
        assert recorder.trigger("shed") is not None
        assert recorder.trigger("breaker.open") is not None
        assert recorder.triggered == 2

    def test_dump_eviction_keeps_sequence_monotonic(self):
        clock, recorder = make_recorder(dump_capacity=2, cooldown_ms=0.0)
        for _ in range(4):
            recorder.trigger("shed")
            clock.advance(1.0)
        assert [dump["sequence"] for dump in recorder.dumps] == [3, 4]
        assert recorder.triggered == 4

    def test_trigger_attributes_are_cleaned(self):
        _, recorder = make_recorder()
        dump = recorder.trigger("shed", shard=0, operation="work")
        assert dump["attributes"] == {"operation": "work", "shard": 0}

    def test_negative_cooldown_rejected(self):
        with pytest.raises(ValueError):
            make_recorder(cooldown_ms=-1.0)


class TestSerialization:
    def test_json_roundtrip_and_schema(self):
        clock, recorder = make_recorder()
        recorder.note("task.crashed", task="t")
        recorder.trigger("task.crashed", task="t")
        payload = FlightRecorder.parse(recorder.to_json())
        assert payload["schema"] == "repro.obs.flight/v1"
        assert payload["dumps"][0]["reason"] == "task.crashed"

    def test_parse_rejects_foreign_documents(self):
        with pytest.raises(ValueError):
            FlightRecorder.parse('{"schema": "something/else"}')

    def test_render_text_mentions_dump_and_suppression(self):
        clock, recorder = make_recorder()
        tracer = Tracer(clock, capture_real_time=False)
        recorder.attach(tracer)
        with tracer.span("queue:work"):
            clock.advance(2.0)
        recorder.trigger("queue.shed", shard=1)
        recorder.trigger("queue.shed", shard=1)
        text = render_flight_text(recorder.to_dict())
        assert "dump #1: queue.shed" in text
        assert "+1 suppressed" in text
        assert "span 1 queue:work" in text

    def test_deterministic_across_identical_runs(self):
        def run():
            clock, recorder = make_recorder()
            tracer = Tracer(clock, capture_real_time=False)
            recorder.attach(tracer, source="a")
            with tracer.span("queue:get", shard=0):
                clock.advance(3.0)
            recorder.record_sample("g", {}, clock.now_ms, 1.0)
            recorder.trigger("queue.shed", shard=0)
            return recorder.to_json()

        assert run() == run()
