"""Unit tests for the virtual-clock metric time-series sampler."""

import json

import pytest

from repro.obs import MetricsRegistry, TimeSeriesSampler
from repro.util.clock import SimulatedClock

pytestmark = pytest.mark.obs


def make_sampler(**kwargs):
    clock = SimulatedClock()
    metrics = MetricsRegistry()
    sampler = TimeSeriesSampler(metrics, clock=clock, **kwargs)
    return clock, metrics, sampler


class TestSampling:
    def test_tracks_gauge_over_ticks(self):
        clock, metrics, sampler = make_sampler()
        depth = metrics.gauge("runtime.queue_depth", source="p", shard="0")
        sampler.track("runtime.queue_depth")
        for value in (1, 3, 2):
            depth.set(value)
            clock.advance(10.0)
            sampler.tick()
        series = sampler.series("runtime.queue_depth", source="p", shard="0")
        assert series.values() == [1.0, 3.0, 2.0]
        assert [t for t, _, _ in series.points] == [10.0, 20.0, 30.0]

    def test_same_instant_updates_in_place_and_keeps_peak(self):
        clock, metrics, sampler = make_sampler()
        gauge = metrics.gauge("g")
        sampler.track("g")
        gauge.set(64)
        sampler.tick()
        gauge.set(12)
        sampler.tick()  # same virtual instant
        series = sampler.series("g")
        assert len(series.points) == 1
        t, value, peak = series.points[0]
        assert (value, peak) == (12.0, 64.0)

    def test_period_folds_subperiod_values_into_next_peak(self):
        clock, metrics, sampler = make_sampler(period_ms=100.0)
        gauge = metrics.gauge("g")
        sampler.track("g")
        gauge.set(1)
        sampler.tick()
        clock.advance(10.0)
        gauge.set(9)
        sampler.tick()  # inside the period: folded, not appended
        clock.advance(100.0)
        gauge.set(2)
        sampler.tick()
        series = sampler.series("g")
        assert series.values() == [1.0, 2.0]
        assert series.peaks() == [1.0, 9.0]  # the spike survives as peak

    def test_capacity_evicts_and_counts_dropped(self):
        clock, metrics, sampler = make_sampler(capacity=3)
        counter = metrics.counter("c")
        sampler.track("c")
        for _ in range(5):
            counter.inc()
            clock.advance(1.0)
            sampler.tick()
        series = sampler.series("c")
        assert series.values() == [3.0, 4.0, 5.0]
        assert series.dropped == 2

    def test_label_subset_selector(self):
        clock, metrics, sampler = make_sampler()
        metrics.gauge("g", source="a", shard="0").set(1)
        metrics.gauge("g", source="b", shard="0").set(2)
        sampler.track("g", source="a")
        clock.advance(1.0)
        sampler.tick()
        tracked = sampler.tracked_series()
        assert [series.labels for series in tracked] == [
            {"source": "a", "shard": "0"}
        ]

    def test_histogram_tracked_by_count(self):
        clock, metrics, sampler = make_sampler()
        hist = metrics.histogram("h")
        sampler.track("h")
        hist.observe(5.0)
        hist.observe(7.0)
        clock.advance(1.0)
        sampler.tick()
        assert sampler.series("h").values() == [2.0]

    def test_sink_sees_every_appended_point(self):
        clock, metrics, sampler = make_sampler()
        gauge = metrics.gauge("g")
        sampler.track("g")
        seen = []
        sampler.add_sink(lambda m, labels, t, v: seen.append((m, t, v)))
        gauge.set(4)
        clock.advance(2.0)
        sampler.tick()
        gauge.set(9)
        sampler.tick()  # in-place update: no sink call
        assert seen == [("g", 2.0, 4.0)]

    def test_validation(self):
        with pytest.raises(ValueError):
            make_sampler(period_ms=-1.0)
        with pytest.raises(ValueError):
            make_sampler(capacity=0)


class TestExport:
    def test_jsonl_is_sorted_and_deterministic(self):
        def run():
            clock, metrics, sampler = make_sampler()
            for name in ("b", "a"):
                metrics.gauge("g", source=name).set(1)
            sampler.track("g")
            clock.advance(1.0)
            sampler.tick()
            return sampler.export_jsonl()

        first, second = run(), run()
        assert first == second
        lines = [json.loads(line) for line in first.splitlines()]
        assert [line["labels"]["source"] for line in lines] == ["a", "b"]
        assert all(
            list(line) == sorted(line) for line in lines
        )  # keys sorted per record

    def test_render_text_lists_series(self):
        clock, metrics, sampler = make_sampler()
        metrics.gauge("g", source="p").set(3)
        sampler.track("g")
        clock.advance(5.0)
        sampler.tick()
        text = sampler.render_text()
        assert "g{source=p}" in text
        assert "last=3@5.0ms" in text

    def test_to_dict_schema(self):
        _, _, sampler = make_sampler()
        assert sampler.to_dict()["schema"] == "repro.obs.timeseries/v1"
