"""Tracer unit behaviour: nesting, events, errors, determinism knobs."""

import pytest

from repro.obs import NOOP_TRACER, Observability, Tracer
from repro.util.clock import SimulatedClock

pytestmark = pytest.mark.obs


@pytest.fixture
def clock():
    return SimulatedClock()


@pytest.fixture
def tracer(clock):
    return Tracer(clock, capture_real_time=False)


class TestSpanLifecycle:
    def test_nesting_builds_parent_links(self, tracer):
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert tracer.current_span is inner
            assert tracer.current_span is outer
        assert tracer.current_span is None
        assert inner.parent_id == outer.span_id
        assert inner.trace_id == outer.trace_id

    def test_sibling_roots_get_fresh_trace_ids(self, tracer):
        with tracer.span("a") as a:
            pass
        with tracer.span("b") as b:
            pass
        assert a.trace_id != b.trace_id
        assert a.parent_id is None and b.parent_id is None

    def test_span_ids_are_sequential_from_construction(self, tracer):
        with tracer.span("a") as a:
            with tracer.span("b") as b:
                pass
        with tracer.span("c") as c:
            pass
        assert (a.span_id, b.span_id, c.span_id) == (1, 2, 3)

    def test_virtual_stamps_come_from_the_clock(self, tracer, clock):
        clock.advance(100.0)
        with tracer.span("op") as span:
            clock.advance(15.5)
        assert span.start_virtual_ms == 100.0
        assert span.end_virtual_ms == 115.5
        assert span.duration_virtual_ms == 15.5

    def test_real_time_capture_disabled_yields_constants(self, tracer):
        with tracer.span("op") as span:
            pass
        assert span.start_real_ms == 0.0
        assert span.end_real_ms == 0.0

    def test_escaping_exception_marks_error_and_reraises(self, tracer):
        with pytest.raises(ValueError, match="boom"):
            with tracer.span("op") as span:
                raise ValueError("boom")
        assert span.status == "error"
        assert "boom" in span.error
        assert span.finished

    def test_end_span_closes_dangling_children(self, tracer):
        outer = tracer.start_span("outer")
        tracer.start_span("leaked")
        tracer.end_span(outer)
        assert tracer.current_span is None
        assert all(span.finished for span in tracer.spans)

    def test_ending_an_unopened_span_raises(self, tracer):
        with tracer.span("done") as span:
            pass
        with pytest.raises(ValueError):
            tracer.end_span(span)

    def test_late_clock_binding(self):
        tracer = Tracer(capture_real_time=False)
        clock = SimulatedClock()
        clock.advance(42.0)
        tracer.bind_clock(clock)
        with tracer.span("op") as span:
            pass
        assert span.start_virtual_ms == 42.0


class TestEvents:
    def test_event_attaches_to_innermost_span(self, tracer, clock):
        with tracer.span("outer"):
            with tracer.span("inner") as inner:
                clock.advance(3.0)
                tracer.event("retry", attempt=2)
        assert [event.name for event in inner.events] == ["retry"]
        assert inner.events[0].t_virtual_ms == 3.0
        assert inner.events[0].attributes == {"attempt": 2}

    def test_event_outside_any_span_is_dropped(self, tracer):
        tracer.event("orphan")
        assert tracer.spans == []


class TestReading:
    def test_finished_excludes_open_spans(self, tracer):
        open_span = tracer.start_span("open")
        with tracer.span("closed"):
            pass
        names = [span.name for span in tracer.finished_spans()]
        assert names == ["closed"]
        tracer.end_span(open_span)

    def test_roots_and_children(self, tracer):
        with tracer.span("root") as root:
            with tracer.span("child"):
                pass
        assert [span.name for span in tracer.roots()] == ["root"]
        assert [span.name for span in tracer.children_of(root)] == ["child"]

    def test_reset_refuses_with_open_spans(self, tracer):
        span = tracer.start_span("open")
        with pytest.raises(ValueError):
            tracer.reset()
        tracer.end_span(span)
        tracer.reset()
        assert tracer.spans == []


class TestNoopTracer:
    def test_flag_and_nullity(self):
        assert NOOP_TRACER.enabled is False
        assert NOOP_TRACER.current_span is None
        with NOOP_TRACER.span("anything", key="value") as span:
            assert span is None
        NOOP_TRACER.event("dropped")
        assert NOOP_TRACER.spans == []
        assert NOOP_TRACER.finished_spans() == []


class TestObservabilityHub:
    def test_disabled_hub_shares_the_noop_tracer(self):
        hub = Observability.disabled()
        assert hub.tracer is NOOP_TRACER
        assert hub.enabled is False
        assert hub.metrics is not None  # metrics stay live regardless

    def test_enabled_hub_records(self):
        hub = Observability(capture_real_time=False)
        assert hub.enabled is True
        with hub.tracer.span("op"):
            pass
        assert len(hub.tracer.finished_spans()) == 1
