"""Registry-backed reports, including the empty/zero-sample-run guards."""

import pytest

from repro.core.proxies import standard_registry
from repro.core.resilience import ResiliencePolicy, ResilienceRuntime
from repro.faults import FaultInjector, FaultPlan
from repro.obs import MetricsRegistry
from repro.obs.report import (
    RESILIENCE_FIELDS,
    breaker_report,
    chaos_summary,
    fault_report,
    instrumentation_points,
    registry_report,
    resilience_report,
    zeroed_resilience_stats,
)
from repro.util.clock import Scheduler, SimulatedClock

pytestmark = pytest.mark.obs


class _Stub:
    """A proxy-shaped object with (or without) a resilience runtime."""

    def __init__(self, runtime=None):
        if runtime is not None:
            self.resilience = runtime


def _runtime(label="stub"):
    return ResilienceRuntime(
        ResiliencePolicy(), Scheduler(SimulatedClock()), label=label
    )


class TestEmptyRunGuards:
    """The satellite: aggregators must not choke on empty/zero-sample runs."""

    def test_resilience_report_no_proxies(self):
        report = resilience_report([])
        assert report == {"total": zeroed_resilience_stats()}
        assert all(report["total"][field] == 0 for field in RESILIENCE_FIELDS)

    def test_resilience_report_accepts_none(self):
        assert resilience_report(None)["total"] == zeroed_resilience_stats()

    def test_resilience_report_skips_runtimeless_proxies(self):
        report = resilience_report([_Stub(), _Stub(_runtime())])
        assert set(report) == {"stub", "total"}
        assert report["stub"] == zeroed_resilience_stats()

    def test_fault_report_none_injector(self):
        assert fault_report(None) == {"total": 0, "by_site": {}, "schedule": []}

    def test_fault_report_fault_free_injector(self):
        injector = FaultInjector(FaultPlan(seed=0), SimulatedClock())
        report = fault_report(injector)
        assert report["total"] == 0
        assert report["by_site"] == {}
        assert report["schedule"] == []

    def test_breaker_report_empty(self):
        assert breaker_report([]) == {}
        assert breaker_report(None) == {}
        assert breaker_report([_Stub(_runtime())]) == {}  # no transitions yet

    def test_chaos_summary_of_nothing(self):
        summary = chaos_summary(None, [])
        assert summary["faults"]["total"] == 0
        assert summary["resilience"]["total"] == zeroed_resilience_stats()
        assert summary["breakers"] == {}

    def test_registry_report_of_fresh_registry(self):
        report = registry_report(MetricsRegistry())
        assert report["resilience_totals"] == zeroed_resilience_stats()
        assert report["faults_injected"] == 0
        assert report["metrics"] == {}


class TestPopulatedReports:
    def test_resilience_report_sums_runtimes(self):
        first, second = _runtime("a"), _runtime("b")
        first.stats.inc("attempts")
        first.stats.inc("successes")
        second.stats.inc("attempts", 2)
        report = resilience_report([_Stub(first), _Stub(second)])
        assert report["a"]["attempts"] == 1
        assert report["b"]["attempts"] == 2
        assert report["total"]["attempts"] == 3
        assert report["total"]["successes"] == 1

    def test_registry_report_reads_shared_series(self):
        from repro.obs import Observability

        hub = Observability.disabled()
        runtime = ResilienceRuntime(
            ResiliencePolicy(),
            Scheduler(SimulatedClock()),
            label="shared",
            observability=hub,
        )
        runtime.stats.inc("attempts", 5)
        report = registry_report(hub.metrics)
        assert report["resilience_totals"]["attempts"] == 5
        assert "resilience.attempts" in report["metrics"]


class TestInstrumentationPoints:
    def test_every_semantic_method_is_listed(self):
        descriptor = standard_registry().descriptor("Location")
        points = instrumentation_points(descriptor)
        methods = {point["method"] for point in points}
        assert "getLocation" in methods
        assert "addProximityAlert" in methods

    def test_span_names_follow_the_vocabulary(self):
        descriptor = standard_registry().descriptor("Http")
        for point in instrumentation_points(descriptor):
            assert point["spans"][0] == f"dispatch:{point['method']}"
            assert point["spans"][1] == f"resilience:{point['method']}"
            assert point["spans"][2] == f"binding:{point['method']}"
            assert point["spans"][3].startswith("substrate:")
            assert point["metrics"]
