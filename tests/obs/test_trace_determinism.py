"""Span-tree determinism: traces are a pure function of (plan, seed).

The contract: two chaos runs from identical seeds and fault plans must
export **byte-identical** JSONL (virtual-time stamps, sequential ids,
no real-time fields), on every platform.  A windowed-blackout run must
additionally show the breaker's full open → half_open → closed cycle as
``breaker.transition`` span events.
"""

import json

import pytest

from repro.apps.workforce import scenario
from repro.core.proxies import create_proxy
from repro.faults import FaultPlan
from repro.obs import Observability
from tests.chaos.drivers import DRIVERS, PLATFORMS, WARMUP_MS, run_android, transient_plan

pytestmark = [pytest.mark.obs, pytest.mark.chaos]


def _traced_run(platform: str, plan, *, seed: int):
    hub = Observability(capture_real_time=False)
    run = DRIVERS[platform](plan, seed=seed, observability=hub)
    return hub, run


def _events(payload: str):
    for line in payload.strip().splitlines():
        record = json.loads(line)
        for event in record["events"]:
            yield record, event


@pytest.mark.parametrize("platform", PLATFORMS)
class TestByteIdenticalExports:
    def test_same_seed_same_bytes(self, platform):
        exports = []
        for _ in range(2):
            hub, _run = _traced_run(
                platform, transient_plan(0.3, seed=9), seed=9
            )
            exports.append(hub.export_jsonl())
        assert exports[0] == exports[1]
        assert exports[0]  # a silent empty trace would pass trivially

    def test_trace_is_substantive(self, platform):
        hub, _run = _traced_run(platform, transient_plan(0.3, seed=9), seed=9)
        records = [json.loads(line) for line in hub.export_jsonl().splitlines()]
        names = {record["name"] for record in records}
        assert any(name.startswith("dispatch:") for name in names)
        assert any(name.startswith("resilience:") for name in names)
        assert any(name.startswith("binding:") for name in names)
        # At a 30% fault rate the retry loop must have fired somewhere.
        event_names = {event["name"] for _, event in _events(hub.export_jsonl())}
        assert "fault.injected" in event_names or "retry" in event_names

    def test_no_real_time_leaks_into_export(self, platform):
        hub, _run = _traced_run(platform, transient_plan(0.3, seed=9), seed=9)
        assert "real_ms" not in hub.export_jsonl()


class TestBreakerLifecycleAsSpanEvents:
    """A bounded blackout drives breakers open, half-open, then closed —
    and every transition must surface as a ``breaker.transition`` event."""

    @pytest.fixture(scope="class")
    def blackout_hub(self):
        hub = Observability(capture_real_time=False)
        run_android(
            FaultPlan.network_blackout(WARMUP_MS, 150_000.0, seed=4),
            seed=4,
            observability=hub,
        )
        return hub

    def test_full_breaker_cycle_is_traced(self, blackout_hub):
        states = {
            event["attributes"]["to_state"]
            for _, event in _events(blackout_hub.export_jsonl())
            if event["name"] == "breaker.transition"
        }
        assert {"open", "half_open", "closed"} <= states

    def test_transitions_match_the_breaker_history(self, blackout_hub):
        """Span events and the registry-backed breaker report agree."""
        traced = [
            (event["attributes"]["from_state"], event["attributes"]["to_state"])
            for _, event in _events(blackout_hub.export_jsonl())
            if event["name"] == "breaker.transition"
        ]
        counted = blackout_hub.metrics.total("resilience.breaker_transitions")
        assert len(traced) == counted > 0

    def test_blackout_export_is_deterministic(self):
        exports = []
        for _ in range(2):
            hub = Observability(capture_real_time=False)
            run_android(
                FaultPlan.network_blackout(WARMUP_MS, 150_000.0, seed=4),
                seed=4,
                observability=hub,
            )
            exports.append(hub.export_jsonl())
        assert exports[0] == exports[1]


class TestTracingDoesNotPerturbTheRun:
    """Enabling tracing must not change simulation behaviour: the chaos
    fingerprint (fault schedule, counters, app events) is identical with
    the hub on and off."""

    @pytest.mark.parametrize("platform", PLATFORMS)
    def test_fingerprint_unchanged(self, platform):
        plain = DRIVERS[platform](transient_plan(0.3, seed=9), seed=9)
        hub = Observability(capture_real_time=False)
        traced = DRIVERS[platform](
            transient_plan(0.3, seed=9), seed=9, observability=hub
        )
        assert plain.summary() == traced.summary()
        assert plain.logic.activity_events == traced.logic.activity_events


class TestSpanTreeShape:
    """One fault-free getLocation yields the acceptance span tree."""

    def test_dispatch_resilience_binding_substrate(self):
        hub = Observability(capture_real_time=False)
        sc = scenario.build_android(observability=hub)
        sc.platform.run_for(5_000.0)  # let the GPS produce a first fix
        proxy = create_proxy("Location", sc.platform)
        proxy.set_property("context", sc.new_context())
        proxy.set_property("provider", "gps")
        hub.tracer.reset()  # ignore setup-era spans

        proxy.get_location()

        roots = [s for s in hub.tracer.roots() if s.name == "dispatch:getLocation"]
        assert len(roots) == 1
        root = roots[0]
        assert root.attributes["interface"] == "Location"
        assert root.attributes["platform"] == "android"

        def names_below(span):
            out = []
            for child in hub.tracer.children_of(span):
                out.append(child.name)
                out.extend(names_below(child))
            return out

        lineage = names_below(root)
        assert lineage[0] == "resilience:getLocation"
        assert "binding:getLocation" in lineage
        assert any(name.startswith("substrate:") for name in lineage)
        # The whole tree is virtual-time stamped and finished.
        for span in [root] + [s for s in hub.tracer.spans if s.trace_id == root.trace_id]:
            assert span.finished
