"""MetricsRegistry unit behaviour: instruments, dedupe, snapshots."""

import pytest

from repro.errors import ConfigurationError
from repro.obs import MetricsRegistry
from repro.obs.metrics import DEFAULT_BUCKETS

pytestmark = pytest.mark.obs


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestCounter:
    def test_inc_and_value(self, registry):
        counter = registry.counter("requests", site="a")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_negative_increment_rejected(self, registry):
        with pytest.raises(ConfigurationError):
            registry.counter("requests").inc(-1)

    def test_same_name_and_labels_share_one_instrument(self, registry):
        a = registry.counter("requests", site="x", kind="drop")
        b = registry.counter("requests", kind="drop", site="x")  # order-insensitive
        assert a is b

    def test_distinct_labels_are_distinct_series(self, registry):
        registry.counter("requests", site="x").inc()
        registry.counter("requests", site="y").inc(2)
        assert registry.total("requests") == 3
        values = registry.counter_values("requests")
        assert values[(("site", "x"),)] == 1
        assert values[(("site", "y"),)] == 2


class TestGauge:
    def test_set_and_add(self, registry):
        gauge = registry.gauge("depth")
        gauge.set(3.0)
        gauge.add(-1.0)
        assert gauge.value == 2.0


class TestHistogram:
    def test_bucketing_and_overflow(self, registry):
        histogram = registry.histogram("latency", buckets=(10.0, 100.0))
        for value in (5.0, 10.0, 50.0, 1_000.0):
            histogram.observe(value)
        assert histogram.bucket_counts == [2, 1]  # <=10 twice, <=100 once
        assert histogram.overflow == 1
        assert histogram.count == 4
        assert histogram.sum == 1_065.0
        assert histogram.mean == pytest.approx(266.25)

    def test_cumulative_ends_with_inf(self, registry):
        histogram = registry.histogram("latency", buckets=(1.0, 2.0))
        histogram.observe(1.5)
        histogram.observe(99.0)
        assert histogram.cumulative() == [(1.0, 0), (2.0, 1), (float("inf"), 2)]

    def test_default_buckets_are_sorted(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)

    def test_unsorted_bounds_rejected(self, registry):
        with pytest.raises(ConfigurationError):
            registry.histogram("bad", buckets=(5.0, 1.0))

    def test_empty_histogram_mean_is_zero(self, registry):
        assert registry.histogram("latency").mean == 0.0

    def test_value_on_bucket_bound_counts_into_that_bucket(self, registry):
        # Buckets are cumulative-<=, so an observation exactly on a
        # bound belongs to that bound's bucket, not the next one.
        histogram = registry.histogram("latency", buckets=(10.0, 100.0))
        histogram.observe(10.0)
        histogram.observe(100.0)
        assert histogram.bucket_counts == [1, 1]
        assert histogram.overflow == 0

    def test_negative_and_zero_observations(self, registry):
        histogram = registry.histogram("delta", buckets=(0.0, 10.0))
        histogram.observe(-5.0)
        histogram.observe(0.0)
        histogram.observe(5.0)
        assert histogram.bucket_counts == [2, 1]  # <=0 twice
        assert histogram.count == 3
        assert histogram.sum == 0.0
        assert histogram.mean == 0.0

    def test_empty_bounds_rejected(self, registry):
        with pytest.raises(ConfigurationError):
            registry.histogram("bad", buckets=())

    def test_streaming_percentiles(self, registry):
        histogram = registry.histogram("latency", buckets=(100.0,))
        for value in (1.0, 2.0, 3.0, 4.0):
            histogram.observe(value)
        # Under five samples the P² markers hold exact order statistics
        # (nearest-rank, so the median of {1,2,3,4} is 2).
        assert histogram.quantile(0.5) == pytest.approx(2.0)
        percentiles = histogram.percentiles()
        assert set(percentiles) == {"p50", "p95", "p99"}
        assert percentiles["p99"] == pytest.approx(4.0)

    def test_percentiles_in_snapshot(self, registry):
        histogram = registry.histogram("latency", buckets=(10.0,))
        histogram.observe(4.0)
        snapshot = registry.snapshot()
        assert snapshot["latency"][0]["percentiles"] == {
            "p50": 4.0, "p95": 4.0, "p99": 4.0,
        }


class TestRegistry:
    def test_kind_clash_rejected(self, registry):
        registry.counter("metric")
        with pytest.raises(ConfigurationError):
            registry.gauge("metric")

    def test_kind_of(self, registry):
        registry.counter("c")
        assert registry.kind_of("c") == "counter"
        assert registry.kind_of("missing") is None

    def test_total_of_unregistered_metric_is_zero(self, registry):
        assert registry.total("nothing") == 0

    def test_collect_is_sorted_and_filterable(self, registry):
        registry.counter("b", z="1")
        registry.counter("a")
        registry.counter("b", a="1")
        names = [instrument.name for instrument in registry.collect()]
        assert names == ["a", "b", "b"]
        assert len(list(registry.collect("b"))) == 2

    def test_snapshot_is_deterministic_and_jsonable(self, registry):
        import json

        registry.counter("requests", site="x").inc(3)
        histogram = registry.histogram("latency", buckets=(10.0,))
        histogram.observe(5.0)
        histogram.observe(50.0)
        snapshot = registry.snapshot()
        assert snapshot["requests"] == [{"labels": {"site": "x"}, "value": 3}]
        assert snapshot["latency"][0]["buckets"] == [[10.0, 1], ["+Inf", 2]]
        # +Inf is encoded as a string precisely so this round-trips.
        assert json.loads(json.dumps(snapshot)) == snapshot
        assert registry.snapshot() == snapshot
