"""Exporter behaviour: deterministic JSONL, file append, text rendering."""

import json

import pytest

from repro.obs import (
    InMemoryExporter,
    JsonlFileExporter,
    MetricsRegistry,
    Tracer,
    export_jsonl,
    render_metrics_text,
    render_span_tree,
)
from repro.util.clock import SimulatedClock

pytestmark = pytest.mark.obs


@pytest.fixture
def trace():
    """A small finished trace with an event and an error span."""
    clock = SimulatedClock()
    tracer = Tracer(clock)  # real-time capture on: exports must drop it
    with tracer.span("dispatch:get", interface="Http"):
        clock.advance(2.0)
        with tracer.span("binding:get"):
            tracer.event("binding.http_request", method="GET")
            clock.advance(10.0)
    try:
        with tracer.span("dispatch:post"):
            raise RuntimeError("offline")
    except RuntimeError:
        pass
    return tracer


class TestJsonl:
    def test_real_time_excluded_by_default(self, trace):
        payload = export_jsonl(trace.finished_spans())
        assert "real" not in payload
        for line in payload.strip().splitlines():
            record = json.loads(line)
            assert "start_real_ms" not in record
            assert "end_real_ms" not in record

    def test_real_time_opt_in(self, trace):
        payload = export_jsonl(trace.finished_spans(), include_real_time=True)
        record = json.loads(payload.splitlines()[0])
        assert "start_real_ms" in record

    def test_keys_sorted_and_one_object_per_line(self, trace):
        payload = export_jsonl(trace.finished_spans())
        lines = payload.strip().splitlines()
        assert len(lines) == 3
        for line in lines:
            record = json.loads(line)
            assert list(record) == sorted(record)

    def test_empty_export_is_empty_string(self):
        assert export_jsonl([]) == ""

    def test_error_span_round_trips(self, trace):
        records = [json.loads(line) for line in export_jsonl(trace.finished_spans()).splitlines()]
        errored = [r for r in records if r["status"] == "error"]
        assert len(errored) == 1
        assert "offline" in errored[0]["error"]


class TestInMemoryExporter:
    def test_collects_dicts(self, trace):
        exporter = InMemoryExporter()
        batch = exporter.export(trace.finished_spans())
        assert exporter.exported == batch
        assert batch[0]["name"] == "dispatch:get"
        assert batch[0]["attributes"] == {"interface": "Http"}


class TestJsonlFileExporter:
    def test_appends_batches(self, trace, tmp_path):
        path = tmp_path / "spans.jsonl"
        exporter = JsonlFileExporter(path)
        spans = trace.finished_spans()
        assert exporter.export(spans[:1]) == 1
        assert exporter.export(spans[1:]) == 2
        exporter.close()
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 3
        assert json.loads(lines[0])["name"] == "dispatch:get"  # start order

    def test_flushes_after_each_batch(self, trace, tmp_path):
        path = tmp_path / "spans.jsonl"
        exporter = JsonlFileExporter(path)
        exporter.export(trace.finished_spans())
        # Readable before close: the handle flushes per batch.
        assert len(path.read_text(encoding="utf-8").splitlines()) == 3
        exporter.close()
        exporter.close()  # idempotent

    def test_context_manager_closes(self, trace, tmp_path):
        path = tmp_path / "spans.jsonl"
        with JsonlFileExporter(path) as exporter:
            exporter.export(trace.finished_spans())
        assert len(path.read_text().splitlines()) == 3
        # Reopening after close appends rather than truncating.
        with JsonlFileExporter(path) as exporter:
            exporter.export(trace.finished_spans()[:1])
        assert len(path.read_text().splitlines()) == 4

    def test_utf8_attributes_survive(self, tmp_path):
        clock = SimulatedClock()
        tracer = Tracer(clock, capture_real_time=False)
        with tracer.span("dispatch:send", text="नमस्ते"):
            clock.advance(1.0)
        path = tmp_path / "spans.jsonl"
        with JsonlFileExporter(path) as exporter:
            exporter.export(tracer.finished_spans())
        record = json.loads(path.read_text(encoding="utf-8"))
        assert record["attributes"]["text"] == "नमस्ते"


class TestTextRendering:
    def test_span_tree_shape(self, trace):
        rendered = render_span_tree(trace.spans)
        lines = rendered.splitlines()
        assert lines[0].startswith("dispatch:get (interface=Http) @0.0ms +12.0ms")
        assert any(line.startswith("  binding:get") for line in lines)
        assert any("* binding.http_request (method=GET)" in line for line in lines)
        assert any("[error: RuntimeError: offline]" in line for line in lines)

    def test_metrics_text(self):
        registry = MetricsRegistry()
        registry.counter("requests", site="x").inc(3)
        registry.histogram("latency", buckets=(10.0,)).observe(4.0)
        registry.gauge("depth").set(2.5)
        rendered = render_metrics_text(registry)
        assert "requests{site=x} counter 3" in rendered
        assert "depth gauge 2.5" in rendered
        assert (
            "latency histogram count=1 sum=4.000 mean=4.000 "
            "p50=4.000 p95=4.000 p99=4.000"
        ) in rendered
        assert "buckets: le10=1 le+Inf=1" in rendered

    def test_orphan_spans_render_as_roots(self, trace):
        # A filtered export can drop a parent; its children must still
        # render (as roots) instead of vanishing.
        spans = [s for s in trace.spans if s.name != "dispatch:get"]
        rendered = render_span_tree(spans)
        assert rendered.startswith("binding:get")
        assert "dispatch:post" in rendered

    def test_jsonl_parse_reserialize_byte_identical(self, trace):
        from repro.obs import parse_jsonl, records_to_jsonl

        payload = export_jsonl(trace.finished_spans())
        assert records_to_jsonl(parse_jsonl(payload)) == payload
