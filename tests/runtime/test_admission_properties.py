"""Property-based tests for the admission plane's three contracts.

1. **Bucket safety** — token balances never go negative under arbitrary
   take sequences, and identically-seeded workloads make byte-identical
   throttling decisions (same rejected set, same trace export).
2. **Shedding order** — a full queue never drops a higher class while a
   strictly lower class sits queued: the victim of every admission
   decision is minimal in the system at that instant.
3. **Autoscaler bounds** — the shard count never leaves
   ``[min_shards, max_shards]``, and autoscaling changes *when* work
   runs, never what it computes: the completed set matches a
   fixed-shard run of the same workload.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ProxyOverloadError, ProxyThrottledError
from repro.obs import Observability
from repro.runtime import (
    AdmissionConfig,
    AutoscalerConfig,
    ConcurrencyRuntime,
    TokenBucketConfig,
)
from repro.runtime.admission import (
    PRIORITY_HIGH,
    PRIORITY_LOW,
    PRIORITY_NORMAL,
    TokenBucket,
)
from repro.util.clock import Scheduler, SimulatedClock

pytestmark = pytest.mark.concurrency

PRIORITY_OPS = {
    PRIORITY_LOW: "get",
    PRIORITY_NORMAL: "post",
    PRIORITY_HIGH: "sendTextMessage",
}

# An arrival: (gap to previous arrival ms, priority class, charge ms).
ARRIVAL = st.tuples(
    st.floats(min_value=0.0, max_value=30.0),
    st.sampled_from((PRIORITY_LOW, PRIORITY_NORMAL, PRIORITY_HIGH)),
    st.floats(min_value=0.5, max_value=25.0),
)
ARRIVALS = st.lists(ARRIVAL, min_size=1, max_size=25)


class TestBucketSafety:
    @settings(max_examples=50, deadline=None)
    @given(
        rate=st.floats(min_value=0.5, max_value=100.0),
        capacity=st.floats(min_value=1.0, max_value=20.0),
        gaps=st.lists(
            st.floats(min_value=0.0, max_value=500.0), min_size=1, max_size=40
        ),
    )
    def test_balance_never_negative(self, rate, capacity, gaps):
        bucket = TokenBucket(TokenBucketConfig(rate_per_s=rate, capacity=capacity))
        now = 0.0
        for gap in gaps:
            now += gap
            hint = bucket.try_take(now)
            assert bucket.tokens >= 0.0
            assert bucket.tokens <= capacity
            if hint is not None:
                assert hint > 0.0

    @settings(max_examples=25, deadline=None)
    @given(
        arrivals=ARRIVALS,
        seed=st.integers(min_value=0, max_value=2**16),
        rate=st.floats(min_value=1.0, max_value=60.0),
    )
    def test_same_seed_identical_throttling(self, arrivals, seed, rate):
        def run():
            world = Scheduler(SimulatedClock())
            hub = Observability(capture_real_time=False)
            runtime = ConcurrencyRuntime(
                world,
                shards=2,
                queue_depth=64,
                seed=seed,
                observability=hub,
                admission=AdmissionConfig(
                    bucket=TokenBucketConfig(rate_per_s=rate, capacity=2.0),
                    overflow_capacity=0,
                    autoscaler=None,
                ),
            )
            dispatcher = runtime.dispatcher("prop")
            futures = []

            def feeder():
                for gap, priority, charge in arrivals:
                    yield gap
                    futures.append(
                        dispatcher.submit(
                            PRIORITY_OPS[priority],
                            lambda c=charge: world.clock.advance(c),
                            tracer=hub.tracer,
                        )
                    )

            runtime.spawn("feeder", feeder())
            runtime.drain()
            throttled = [
                index
                for index, future in enumerate(futures)
                if isinstance(future.error, ProxyThrottledError)
            ]
            return throttled, dispatcher.outcome_counts(), hub.export_jsonl()

        first_throttled, first_outcomes, first_export = run()
        second_throttled, second_outcomes, second_export = run()
        assert first_throttled == second_throttled
        assert first_outcomes == second_outcomes
        assert first_export == second_export


class TestSheddingOrder:
    @settings(max_examples=40, deadline=None)
    @given(
        arrivals=st.lists(
            st.tuples(
                st.sampled_from((PRIORITY_LOW, PRIORITY_NORMAL, PRIORITY_HIGH)),
                st.floats(min_value=1.0, max_value=20.0),
            ),
            min_size=2,
            max_size=30,
        ),
        queue_depth=st.integers(min_value=1, max_value=4),
    )
    def test_never_drops_higher_while_lower_queued(self, arrivals, queue_depth):
        world = Scheduler(SimulatedClock())
        runtime = ConcurrencyRuntime(
            world,
            shards=1,
            queue_depth=queue_depth,
            observability=Observability(capture_real_time=False),
            admission=AdmissionConfig(
                bucket=None, overflow_capacity=0, autoscaler=None
            ),
        )
        dispatcher = runtime.dispatcher("prop")
        live = {}  # future -> priority, for everything not yet rejected

        def queued_priorities():
            return [p for f, p in live.items() if not f.done()]

        for priority, charge in arrivals:
            # All at t=0: the queue fills and every admission decision
            # (door shed or eviction) is observable synchronously.
            future = dispatcher.submit(
                PRIORITY_OPS[priority],
                lambda c=charge: world.clock.advance(c),
            )
            live[future] = priority
            rejected = [
                (f, p)
                for f, p in live.items()
                if isinstance(f.error, ProxyOverloadError)
            ]
            for f, p in rejected:
                del live[f]
                # The invariant: at the instant f was dropped, nothing
                # of a strictly lower class may remain queued.
                floor = min(queued_priorities(), default=p)
                assert floor >= p, (
                    f"dropped class {p} while class {floor} stayed queued"
                )
        runtime.drain()
        assert all(f.error is None for f in live)


class TestAutoscalerBounds:
    CONFIG = AutoscalerConfig(
        min_shards=1,
        max_shards=4,
        scale_up_depth=1.5,
        scale_down_depth=0.25,
        scale_down_utilization=0.6,
        hysteresis_ticks=2,
        cooldown_ms=40.0,
    )

    def _run(self, arrivals, *, autoscale):
        world = Scheduler(SimulatedClock())
        hub = Observability(capture_real_time=False)
        hub.install_sampler()
        runtime = ConcurrencyRuntime(
            world,
            shards=2,
            queue_depth=8,
            observability=hub,
            admission=AdmissionConfig(
                bucket=None,
                overflow_capacity=32,
                autoscaler=self.CONFIG if autoscale else None,
            ),
        )
        dispatcher = runtime.dispatcher("prop")
        results = []
        shard_counts = []

        def feeder():
            for index, (gap, priority, charge) in enumerate(arrivals):
                yield gap
                future = dispatcher.submit(
                    PRIORITY_OPS[priority],
                    lambda i=index, c=charge: (world.clock.advance(c), i)[1],
                )
                future.add_done_callback(
                    lambda f: results.append(f.value) if f.error is None else None
                )
                shard_counts.append(dispatcher.shards)

        runtime.spawn("feeder", feeder())
        runtime.drain()
        shard_counts.append(dispatcher.shards)
        return results, shard_counts, dispatcher

    @settings(max_examples=20, deadline=None)
    @given(arrivals=ARRIVALS)
    def test_bounds_and_result_parity(self, arrivals):
        scaled_results, shard_counts, scaled = self._run(arrivals, autoscale=True)
        fixed_results, _, fixed = self._run(arrivals, autoscale=False)
        config = self.CONFIG
        assert all(
            config.min_shards <= count <= config.max_shards
            for count in shard_counts
        )
        # Autoscaling moves *when* work runs, never what it computes.
        assert sorted(scaled_results) == sorted(fixed_results)
        assert scaled.completed_count == fixed.completed_count
        assert scaled.outcome_counts()["shed"] == 0
        assert fixed.outcome_counts()["shed"] == 0
