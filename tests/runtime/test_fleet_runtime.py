"""Integration: the workforce fleet driven through the concurrency
runtime — determinism, coalescing savings, and error surfacing."""

import pytest

from repro.apps.workforce.fleet import (
    build_fleet,
    launch_fleet,
    launch_fleet_on_runtime,
)
from repro.errors import ProxyTransientError

pytestmark = pytest.mark.concurrency

RUN_MS = 150_000.0


def run_runtime_fleet(*, agents=3, shards=2, seed=0):
    fleet = build_fleet(
        agents, observability=True, runtime=True, shards=shards, runtime_seed=seed
    )
    launch_fleet_on_runtime(fleet, reports=3, period_ms=20_000.0)
    fleet.run_for(RUN_MS)
    return fleet


class TestFleetOnRuntime:
    def test_requires_runtime_flag(self):
        fleet = build_fleet(2)
        with pytest.raises(ValueError):
            launch_fleet_on_runtime(fleet)

    def test_all_workloads_complete(self):
        fleet = run_runtime_fleet()
        assert all(agent.task.state == "done" for agent in fleet.agents)

    def test_reports_reach_the_server(self):
        fleet = run_runtime_fleet()
        for agent in fleet.agents:
            track = fleet.server.track_of(agent.profile.agent_id)
            assert track is not None and track.report_count == 3

    def test_status_gets_coalesce(self):
        fleet = run_runtime_fleet()
        dispatcher = fleet.runtime.dispatcher("android")
        # 3 agents × 3 polls submitted; coalescing saved round trips
        assert dispatcher.coalesced_count > 0
        assert fleet.server.status_requests + dispatcher.coalesced_count == 9

    def test_proximity_behaviour_unchanged(self):
        # the runtime runs *alongside* the proximity machinery: agents
        # still arrive and notify the supervisor exactly as before
        fleet = run_runtime_fleet()
        texts = [m.text for m in fleet.supervisor.inbox]
        assert texts.count("Arrived at site") == len(fleet.agents)


class TestByteIdenticalTraces:
    def _trace_of(self, fleet):
        # every agent handset's full span export, concatenated in fleet
        # order: the whole deployment's observable history
        return "".join(agent.device.obs.export_jsonl() for agent in fleet.agents)

    def test_same_seed_byte_identical_exports(self):
        first = run_runtime_fleet(seed=11)
        second = run_runtime_fleet(seed=11)
        export_a, export_b = self._trace_of(first), self._trace_of(second)
        assert export_a  # non-trivial: queue + dispatch spans recorded
        assert export_a == export_b

    def test_queue_spans_present_in_agent_traces(self):
        fleet = run_runtime_fleet()
        names = {
            span.name
            for agent in fleet.agents
            for span in agent.device.obs.tracer.finished_spans()
        }
        assert any(name.startswith("queue:") for name in names)
        assert any(name.startswith("dispatch:") for name in names)


class TestErrorSurfacing:
    def test_clean_run_has_no_alerts(self):
        fleet = run_runtime_fleet()
        assert fleet.alerts == []

    def test_swallowed_failure_events_become_alerts(self):
        fleet = build_fleet(2)
        launch_fleet(fleet)
        fleet.run_for(50_000.0)
        # the app's pattern: business logic records the failure locally
        # and carries on — previously nobody downstream ever saw it.
        fleet.agent("agent-1").logic.activity_events.append("report-failed")
        fleet.run_for(1_000.0)
        assert "[fleet-alert] agent-1: report-failed" in fleet.supervisor_inbox

    def test_alerts_not_duplicated_across_runs(self):
        fleet = build_fleet(2)
        launch_fleet(fleet)
        fleet.agent("agent-1").logic.activity_events.append("sms-failed")
        fleet.run_for(1_000.0)
        fleet.run_for(1_000.0)
        alerts = [a for a in fleet.alerts if "sms-failed" in a]
        assert len(alerts) == 1

    def test_failed_runtime_task_becomes_alert(self):
        fleet = build_fleet(2, runtime=True)
        launch_fleet(fleet)

        def doomed():
            yield 10.0
            raise ProxyTransientError("shard exploded")

        fleet.runtime.spawn("doomed", doomed())
        fleet.run_for(1_000.0)
        matching = [a for a in fleet.alerts if "doomed" in a]
        assert matching == [
            "[fleet-alert] task doomed failed: "
            "ProxyTransientError: shard exploded"
        ]

    def test_inbox_keeps_sms_order_then_alerts(self):
        fleet = run_runtime_fleet()
        fleet.agent("agent-1").logic.activity_events.append("log-failed")
        fleet.run_for(1_000.0)
        inbox = fleet.supervisor_inbox
        # real texts first, surfaced alerts appended after
        assert inbox[-1] == "[fleet-alert] agent-1: log-failed"
        assert "Arrived at site" in inbox[0]


class TestAdmissionStorms:
    def test_admission_requires_runtime(self):
        from repro.runtime import AdmissionConfig

        with pytest.raises(ValueError):
            build_fleet(2, admission=AdmissionConfig())

    def _stormy_fleet(self):
        from repro.runtime import AdmissionConfig

        return build_fleet(
            2,
            runtime=True,
            shards=1,
            queue_depth=1,
            admission=AdmissionConfig(
                bucket=None,
                overflow_capacity=0,
                autoscaler=None,
                storm_window_ms=1_000.0,
                storm_threshold=3,
            ),
        )

    def test_storm_surfaces_as_fleet_alert(self):
        fleet = self._stormy_fleet()
        launch_fleet(fleet)
        dispatcher = fleet.runtime.dispatcher("android")
        for _ in range(8):
            dispatcher.submit("burst", lambda: None)
        fleet.run_for(1_000.0)
        storms = [a for a in fleet.alerts if "admission storm" in a]
        assert len(storms) == 1
        assert storms[0].startswith("[fleet-alert] admission storm on android:")
        assert "kind=shed" in storms[0]

    def test_storm_alert_not_duplicated_across_runs(self):
        fleet = self._stormy_fleet()
        launch_fleet(fleet)
        dispatcher = fleet.runtime.dispatcher("android")
        for _ in range(8):
            dispatcher.submit("burst", lambda: None)
        fleet.run_for(1_000.0)
        fleet.run_for(1_000.0)
        storms = [a for a in fleet.alerts if "admission storm" in a]
        assert len(storms) == 1

    def test_agent_submissions_charged_per_tenant(self):
        from repro.runtime import AdmissionConfig, TokenBucketConfig

        fleet = build_fleet(
            2,
            runtime=True,
            admission=AdmissionConfig(
                bucket=TokenBucketConfig(rate_per_s=1_000.0, capacity=1_000.0),
                overflow_capacity=0,
                autoscaler=None,
            ),
        )
        launch_fleet_on_runtime(fleet, reports=2, period_ms=20_000.0)
        fleet.run_for(RUN_MS)
        controller = fleet.runtime.dispatcher("android").admission
        assert set(controller.buckets()) >= {"agent-1", "agent-2"}
