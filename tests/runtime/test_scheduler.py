"""Unit tests for the cooperative task scheduler."""

import pytest

from repro.errors import ProxyTransientError
from repro.runtime import CooperativeScheduler, Future
from repro.util.clock import Scheduler, SimulatedClock

pytestmark = pytest.mark.concurrency


@pytest.fixture
def world():
    return Scheduler(SimulatedClock())


@pytest.fixture
def coop(world):
    return CooperativeScheduler(world, seed=0)


class TestYieldProtocol:
    def test_sleep_yield_advances_on_virtual_clock(self, world, coop):
        trace = []

        def task():
            trace.append(world.clock.now_ms)
            yield 250.0
            trace.append(world.clock.now_ms)

        coop.spawn("sleeper", task())
        world.run_for(1_000.0)
        assert trace == [0.0, 250.0]
        assert coop.all_finished

    def test_none_yield_requeues_after_peers(self, world, coop):
        order = []

        def chatty(name):
            order.append(f"{name}.a")
            yield None
            order.append(f"{name}.b")

        coop.spawn("one", chatty("one"))
        coop.spawn("two", chatty("two"))
        world.run_for(1.0)
        # both take step a before either takes step b
        assert order == ["one.a", "two.a", "one.b", "two.b"]

    def test_future_yield_resumes_with_value(self, world, coop):
        future = Future()
        got = []

        def task():
            got.append((yield future))

        coop.spawn("waiter", task())
        world.run_for(1.0)
        assert got == []  # still parked
        future.resolve("payload")
        world.run_for(1.0)
        assert got == ["payload"]

    def test_failed_future_is_thrown_into_the_task(self, world, coop):
        future = Future()
        caught = []

        def task():
            try:
                yield future
            except ProxyTransientError as exc:
                caught.append(exc)

        coop.spawn("catcher", task())
        future.fail(ProxyTransientError("uniform"))
        world.run_for(1.0)
        assert len(caught) == 1
        assert coop.all_finished

    def test_bad_yield_fails_the_task(self, world, coop):
        def task():
            yield "nonsense"

        bad = coop.spawn("bad", task())
        world.run_for(1.0)
        assert bad.state == "failed"
        assert "expected None" in str(bad.error)

    def test_negative_sleep_fails_the_task(self, world, coop):
        def task():
            yield -5.0

        bad = coop.spawn("negative", task())
        world.run_for(1.0)
        assert bad.state == "failed"


class TestOrdering:
    def test_priority_beats_spawn_order(self, world, coop):
        order = []

        def step(name):
            order.append(name)
            yield 0.0
            order.append(name)

        coop.spawn("low", step("low"), priority=0)
        coop.spawn("high", step("high"), priority=5)
        world.run_for(1.0)
        assert order[:2] == ["high", "low"]

    def test_fifo_within_priority(self, world, coop):
        order = []

        def one_shot(name):
            order.append(name)
            return
            yield  # pragma: no cover - makes this a generator

        for name in ("a", "b", "c"):
            coop.spawn(name, one_shot(name))
        world.run_for(1.0)
        assert order == ["a", "b", "c"]


class TestIsolationAndResults:
    def test_task_exception_does_not_kill_peers(self, world, coop):
        def crasher():
            yield 10.0
            raise RuntimeError("agent bug")

        def survivor():
            yield 50.0
            return "fine"

        bad = coop.spawn("crasher", crasher())
        good = coop.spawn("survivor", survivor())
        world.run_for(100.0)
        assert bad.state == "failed" and isinstance(bad.error, RuntimeError)
        assert good.state == "done" and good.result == "fine"
        assert coop.failed_tasks() == [bad]

    def test_return_value_captured(self, world, coop):
        def task():
            yield 1.0
            return {"answer": 42}

        done = coop.spawn("returner", task())
        world.run_for(10.0)
        assert done.result == {"answer": 42}

    def test_metrics_count_lifecycle(self, world):
        from repro.obs import Observability

        hub = Observability(capture_real_time=False)
        coop = CooperativeScheduler(world, seed=0, observability=hub)

        def ok():
            yield 1.0

        def bad():
            raise RuntimeError("x")
            yield  # pragma: no cover

        coop.spawn("ok", ok())
        coop.spawn("bad", bad())
        world.run_for(10.0)
        metrics = hub.metrics
        assert metrics.counter("runtime.tasks_spawned", source="coop").value == 2
        assert metrics.counter("runtime.tasks_completed", source="coop").value == 1
        assert metrics.counter("runtime.tasks_failed", source="coop").value == 1


class TestSeededRng:
    def test_same_seed_same_draws(self, world):
        a = CooperativeScheduler(world, seed=7)
        b = CooperativeScheduler(Scheduler(SimulatedClock()), seed=7)
        assert [a.rng.random() for _ in range(5)] == [
            b.rng.random() for _ in range(5)
        ]

    def test_different_seed_different_draws(self, world):
        a = CooperativeScheduler(world, seed=1)
        b = CooperativeScheduler(Scheduler(SimulatedClock()), seed=2)
        assert a.rng.random() != b.rng.random()
