"""The adaptive admission plane: token buckets, priority shedding,
overflow leveling, the shard autoscaler, and their dispatcher wiring."""

import pytest

from repro.core.resilience import BackoffSchedule, ResiliencePolicy, ResilienceRuntime
from repro.core.proxies import standard_registry
from repro.errors import (
    ConfigurationError,
    ProxyOverloadError,
    ProxyThrottledError,
)
from repro.obs import Observability
from repro.runtime import (
    AdmissionConfig,
    AutoscalerConfig,
    ConcurrencyRuntime,
    TokenBucketConfig,
)
from repro.runtime.admission import (
    OverflowBuffer,
    PRIORITY_HIGH,
    PRIORITY_LOW,
    PRIORITY_NORMAL,
    ShardAutoscaler,
    TokenBucket,
    classify_operation,
    priority_name,
)
from repro.util.clock import Scheduler, SimulatedClock

pytestmark = pytest.mark.concurrency


@pytest.fixture
def world():
    return Scheduler(SimulatedClock())


def make_runtime(world, **kwargs):
    kwargs.setdefault("observability", Observability(capture_real_time=False))
    return ConcurrencyRuntime(world, **kwargs)


def charge(world, ms):
    return lambda: world.clock.advance(ms)


def plain_admission(**overrides):
    """An AdmissionConfig with every adaptive mechanism off unless
    overridden — lets each test enable exactly one."""
    config = dict(bucket=None, overflow_capacity=0, autoscaler=None)
    config.update(overrides)
    return AdmissionConfig(**config)


class TestTokenBucket:
    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            TokenBucketConfig(rate_per_s=0.0)
        with pytest.raises(ConfigurationError):
            TokenBucketConfig(capacity=0.0)
        with pytest.raises(ConfigurationError):
            TokenBucketConfig(initial=-1.0)

    def test_burst_then_throttle(self):
        bucket = TokenBucket(TokenBucketConfig(rate_per_s=10.0, capacity=3.0))
        assert [bucket.try_take(0.0) for _ in range(3)] == [None, None, None]
        retry_after = bucket.try_take(0.0)
        # One token refills in 100ms at 10/s.
        assert retry_after == pytest.approx(100.0)
        assert bucket.tokens >= 0.0  # rejection never drives it negative

    def test_refill_is_lazy_and_capped(self):
        bucket = TokenBucket(TokenBucketConfig(rate_per_s=10.0, capacity=2.0))
        assert bucket.try_take(0.0) is None
        assert bucket.try_take(0.0) is None
        # 10 virtual seconds pass: refill caps at capacity, not 100.
        assert bucket.try_take(10_000.0) is None
        assert bucket.tokens == pytest.approx(1.0)

    def test_retry_after_is_exact(self):
        bucket = TokenBucket(TokenBucketConfig(rate_per_s=4.0, capacity=1.0))
        assert bucket.try_take(0.0) is None
        hint = bucket.try_take(0.0)
        assert hint == pytest.approx(250.0)
        # Waiting exactly the hint admits the retry.
        assert bucket.try_take(hint) is None


class TestPriorityClasses:
    def test_default_map(self):
        assert classify_operation("get") == PRIORITY_LOW
        assert classify_operation("getLocation") == PRIORITY_LOW
        assert classify_operation("post") == PRIORITY_NORMAL
        assert classify_operation("sendTextMessage") == PRIORITY_HIGH
        assert classify_operation("frobnicate") == PRIORITY_NORMAL

    def test_names(self):
        assert priority_name(PRIORITY_LOW) == "low"
        assert priority_name(PRIORITY_HIGH) == "high"

    def test_custom_map_via_config(self):
        config = AdmissionConfig(priority_map={"get": PRIORITY_HIGH})
        assert config.classify("get") == PRIORITY_HIGH


class _Item:
    def __init__(self, seq, priority):
        self.seq = seq
        self.priority = priority


class TestOverflowBuffer:
    def test_drains_highest_class_fifo_within(self):
        buffer = OverflowBuffer(4)
        for seq, priority in enumerate(
            (PRIORITY_LOW, PRIORITY_HIGH, PRIORITY_NORMAL, PRIORITY_HIGH)
        ):
            accepted, _ = buffer.offer(_Item(seq, priority))
            assert accepted
        order = [buffer.take().seq for _ in range(4)]
        assert order == [1, 3, 2, 0]
        assert buffer.take() is None

    def test_full_buffer_evicts_newest_of_lowest(self):
        buffer = OverflowBuffer(2)
        buffer.offer(_Item(0, PRIORITY_LOW))
        buffer.offer(_Item(1, PRIORITY_LOW))
        accepted, victim = buffer.offer(_Item(2, PRIORITY_NORMAL))
        assert accepted and victim.seq == 1  # newest low loses first
        refused, none = buffer.offer(_Item(3, PRIORITY_LOW))
        assert not refused and none is None

    def test_force_bypasses_bound(self):
        buffer = OverflowBuffer(0)
        refused, _ = buffer.offer(_Item(0, PRIORITY_LOW))
        assert not refused
        accepted, _ = buffer.offer(_Item(0, PRIORITY_LOW), force=True)
        assert accepted and len(buffer) == 1


class TestThrottling:
    def test_over_budget_fails_with_1013(self, world):
        runtime = make_runtime(
            world,
            shards=1,
            queue_depth=8,
            admission=plain_admission(
                bucket=TokenBucketConfig(rate_per_s=10.0, capacity=2.0)
            ),
        )
        d = runtime.dispatcher("p")
        futures = [d.submit("work", charge(world, 5.0)) for _ in range(4)]
        throttled = [
            f for f in futures if isinstance(f.error, ProxyThrottledError)
        ]
        assert len(throttled) == 2
        error = throttled[0].error
        assert error.error_code == 1013
        assert error.transient
        assert error.retry_after_ms > 0.0
        assert error.context["platform"] == "p"
        assert error.context["tenant"] == "default"
        assert d.outcome_counts()["throttled"] == 2
        runtime.drain()
        assert d.completed_count == 2

    def test_tenants_have_independent_budgets(self, world):
        runtime = make_runtime(
            world,
            shards=1,
            queue_depth=16,
            admission=plain_admission(
                bucket=TokenBucketConfig(rate_per_s=10.0, capacity=1.0)
            ),
        )
        d = runtime.dispatcher("p")
        ok_a = d.submit("work", charge(world, 5.0), tenant="a")
        ok_b = d.submit("work", charge(world, 5.0), tenant="b")
        refused_a = d.submit("work", charge(world, 5.0), tenant="a")
        assert ok_a.error is None or not ok_a.done()
        assert ok_b.error is None or not ok_b.done()
        assert isinstance(refused_a.error, ProxyThrottledError)
        assert refused_a.error.context["tenant"] == "a"
        runtime.drain()

    def test_virtual_time_refills_budget(self, world):
        runtime = make_runtime(
            world,
            shards=1,
            queue_depth=8,
            admission=plain_admission(
                bucket=TokenBucketConfig(rate_per_s=10.0, capacity=1.0)
            ),
        )
        d = runtime.dispatcher("p")
        assert d.submit("work", charge(world, 5.0)).error is None
        refused = d.submit("work", charge(world, 5.0))
        assert isinstance(refused.error, ProxyThrottledError)
        world.run_for(refused.error.retry_after_ms)
        assert d.submit("work", charge(world, 5.0)).error is None
        runtime.drain()


class TestPriorityShedding:
    def test_full_queue_evicts_lower_class(self, world):
        runtime = make_runtime(
            world, shards=1, queue_depth=2, admission=plain_admission()
        )
        d = runtime.dispatcher("p")
        polls = [d.submit("get", charge(world, 10.0)) for _ in range(2)]
        report = d.submit("post", charge(world, 10.0))
        # Queue was [get#0, get#1] (full) → the post evicts the *newest*
        # queued get rather than shedding at the door.
        assert polls[0].error is None or not polls[0].done()
        evicted = [f for f in polls if isinstance(f.error, ProxyOverloadError)]
        assert len(evicted) == 1
        assert evicted[0] is polls[1]
        assert evicted[0].error.context["reason"] == "evicted"
        assert evicted[0].error.context["priority"] == "low"
        runtime.drain()
        assert report.error is None
        assert d.outcome_counts()["shed"] == 0  # eviction, not a door shed

    def test_equal_class_sheds_incoming(self, world):
        runtime = make_runtime(
            world, shards=1, queue_depth=1, admission=plain_admission()
        )
        d = runtime.dispatcher("p")
        d.submit("post", charge(world, 10.0))
        d.submit("post", charge(world, 10.0))
        refused = d.submit("post", charge(world, 10.0))
        assert isinstance(refused.error, ProxyOverloadError)
        assert refused.error.context["reason"] == "queue_full"
        runtime.drain()

    def test_evicted_coalesce_primary_fails_followers(self, world):
        runtime = make_runtime(
            world, shards=1, queue_depth=2, admission=plain_admission()
        )
        d = runtime.dispatcher("p")
        blocker = d.submit("post", charge(world, 10.0))
        primary = d.submit("get", charge(world, 5.0), coalesce_key="k")
        follower = d.submit("get", charge(world, 5.0), coalesce_key="k")
        # Queue [post, get] is full; the high-class alert evicts the
        # queued coalesce primary, taking its attached follower with it.
        alert = d.submit("sendTextMessage", charge(world, 1.0))
        assert isinstance(primary.error, ProxyOverloadError)
        assert isinstance(follower.error, ProxyOverloadError)
        # The shed accounting counts both failed futures, per-future.
        assert d.shed_count == 2
        runtime.drain()
        assert blocker.error is None and alert.error is None
        # A fresh coalesce key after eviction executes normally.
        again = d.submit("get", charge(world, 5.0), coalesce_key="k")
        runtime.drain()
        assert again.error is None


class TestLoadLeveling:
    def test_burst_absorbed_not_shed(self, world):
        runtime = make_runtime(
            world,
            shards=2,
            queue_depth=2,
            admission=plain_admission(overflow_capacity=8),
        )
        d = runtime.dispatcher("p")
        futures = [d.submit("work", charge(world, 10.0)) for _ in range(10)]
        outcomes = d.outcome_counts()
        assert outcomes["shed"] == 0
        assert outcomes["absorbed"] == 6  # 2 lanes × depth 2 admit 4
        runtime.drain()
        assert all(f.error is None for f in futures)
        assert d.absorbed_count == 6

    def test_buffer_drains_into_idle_lane(self, world):
        runtime = make_runtime(
            world,
            shards=2,
            queue_depth=1,
            admission=plain_admission(overflow_capacity=8),
        )
        d = runtime.dispatcher("p")
        # Lane 0 gets slow keyed work; unkeyed spill must not wait on it.
        for _ in range(2):
            d.submit("work", charge(world, 100.0), key="slow")
        for _ in range(6):
            d.submit("work", charge(world, 1.0))
        runtime.drain()
        executed = d.executed_per_shard()
        assert sum(executed) == 8
        assert min(executed) >= 2  # both lanes pulled buffered work

    def test_overflow_past_buffer_sheds(self, world):
        runtime = make_runtime(
            world,
            shards=1,
            queue_depth=1,
            admission=plain_admission(overflow_capacity=1),
        )
        d = runtime.dispatcher("p")
        futures = [d.submit("work", charge(world, 10.0)) for _ in range(5)]
        shed = [f for f in futures if isinstance(f.error, ProxyOverloadError)]
        assert len(shed) == 3  # 1 queued, 1 absorbed, rest shed
        runtime.drain()


class TestResize:
    def test_grow_drains_overflow(self, world):
        runtime = make_runtime(
            world,
            shards=1,
            queue_depth=2,
            admission=plain_admission(overflow_capacity=8),
        )
        d = runtime.dispatcher("p")
        for _ in range(6):
            d.submit("work", charge(world, 10.0))
        assert len(d.overflow) == 4  # queue admits 2, the rest buffer
        d.resize(4)
        assert len(d.overflow) == 0  # leveled onto the new lanes
        runtime.drain()
        assert d.completed_count == 6

    def test_shrink_reflows_without_loss(self, world):
        runtime = make_runtime(world, shards=4, queue_depth=4)
        d = runtime.dispatcher("p")
        futures = [
            d.submit("work", charge(world, 10.0), key=f"k{i}") for i in range(12)
        ]
        d.resize(1)
        assert d.shards == 1
        runtime.drain()
        assert all(f.done() and f.error is None for f in futures)
        assert d.completed_count == 12

    def test_shrink_spills_to_buffer_when_survivors_full(self, world):
        runtime = make_runtime(
            world,
            shards=2,
            queue_depth=2,
            admission=plain_admission(overflow_capacity=1),
        )
        d = runtime.dispatcher("p")
        futures = [d.submit("work", charge(world, 10.0)) for _ in range(4)]
        d.resize(1)
        runtime.drain()
        assert all(f.error is None for f in futures)

    def test_resize_validates(self, world):
        runtime = make_runtime(world, shards=2, queue_depth=2)
        with pytest.raises(ConfigurationError):
            runtime.dispatcher("p").resize(0)

    def test_busy_lane_count(self, world):
        runtime = make_runtime(world, shards=2, queue_depth=4)
        d = runtime.dispatcher("p")
        assert d.busy_lane_count() == 0
        d.submit("work", charge(world, 10.0))
        world.run_for(1.0)
        assert d.busy_lane_count() == 1
        runtime.drain()
        assert d.busy_lane_count() == 0


class TestAutoscaler:
    def _make(self, world, config=None, **runtime_kwargs):
        runtime_kwargs.setdefault("shards", 2)
        runtime_kwargs.setdefault("queue_depth", 4)
        runtime = make_runtime(
            world,
            admission=plain_admission(
                autoscaler=config
                or AutoscalerConfig(
                    min_shards=1,
                    max_shards=4,
                    scale_up_depth=2.0,
                    scale_down_depth=0.25,
                    hysteresis_ticks=2,
                    cooldown_ms=50.0,
                )
            ),
            **runtime_kwargs,
        )
        return runtime, runtime.dispatcher("p")

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            AutoscalerConfig(min_shards=0)
        with pytest.raises(ConfigurationError):
            AutoscalerConfig(min_shards=4, max_shards=2)
        with pytest.raises(ConfigurationError):
            AutoscalerConfig(scale_down_depth=5.0, scale_up_depth=1.0)
        with pytest.raises(ConfigurationError):
            AutoscalerConfig(hysteresis_ticks=0)

    def test_scales_up_under_backlog(self, world):
        runtime, d = self._make(world)
        scaler = runtime.autoscalers()["p"]
        for _ in range(10):
            d.submit("work", charge(world, 10.0))
        scaler.evaluate(0.0)
        assert d.shards == 2  # hysteresis: one hot tick is not a trend
        scaler.evaluate(0.0)
        assert d.shards == 3
        assert scaler.resizes[-1]["direction"] == "up"
        runtime.drain()

    def test_cooldown_blocks_flapping(self, world):
        runtime, d = self._make(world)
        scaler = runtime.autoscalers()["p"]
        for _ in range(12):
            d.submit("work", charge(world, 10.0))
        scaler.evaluate(0.0)
        scaler.evaluate(0.0)
        assert d.shards == 3
        scaler.evaluate(10.0)
        scaler.evaluate(20.0)
        assert d.shards == 3  # still cooling down
        scaler.evaluate(60.0)
        scaler.evaluate(70.0)
        assert d.shards == 4
        runtime.drain()

    def test_scales_down_when_idle(self, world):
        runtime, d = self._make(world)
        scaler = runtime.autoscalers()["p"]
        d.submit("work", charge(world, 5.0))
        runtime.drain()
        scaler.evaluate(100.0)
        scaler.evaluate(200.0)
        assert d.shards == 1
        assert scaler.resizes[-1]["direction"] == "down"

    def test_drain_evaluates_automatically(self, world):
        runtime, d = self._make(world)
        for _ in range(16):
            d.submit("work", charge(world, 10.0))
        runtime.drain()
        assert runtime.autoscalers()["p"].resizes  # it acted unprompted
        assert d.completed_count + d.shed_count + len(
            runtime.autoscalers()
        ) > 1


class TestStormDetection:
    def test_edge_triggered_storm_record(self, world):
        runtime = make_runtime(
            world,
            shards=1,
            queue_depth=1,
            admission=plain_admission(
                storm_window_ms=1_000.0, storm_threshold=3
            ),
        )
        d = runtime.dispatcher("p")
        for _ in range(8):
            d.submit("work", charge(world, 10.0))
        controller = d.admission
        assert len(controller.storms) == 1  # one crossing, not one per shed
        storm = controller.storms[0]
        assert storm["kind"] == "shed"
        assert storm["rejections"] >= 3
        runtime.drain()


class TestRetryAfterHonored:
    def test_backoff_floors_at_the_hint(self):
        scheduler = Scheduler(SimulatedClock())
        binding = standard_registry().binding("Http", "android")
        runtime = ResilienceRuntime(
            ResiliencePolicy(
                max_attempts=2,
                backoff=BackoffSchedule(
                    initial_delay_ms=10.0, multiplier=1.0, max_delay_ms=10.0,
                    jitter=0.0,
                ),
            ),
            scheduler,
            label="throttle-test",
        )
        calls = []

        def throttled_once():
            calls.append(scheduler.clock.now_ms)
            if len(calls) == 1:
                raise ProxyThrottledError("slow down", retry_after_ms=500.0)
            return "ok"

        assert runtime.execute(binding, "get", throttled_once) == "ok"
        # The 10ms schedule was floored to the 500ms hint.
        assert calls[1] - calls[0] == pytest.approx(500.0)

    def test_schedule_wins_when_longer(self):
        scheduler = Scheduler(SimulatedClock())
        binding = standard_registry().binding("Http", "android")
        runtime = ResilienceRuntime(
            ResiliencePolicy(
                max_attempts=2,
                backoff=BackoffSchedule(
                    initial_delay_ms=1_000.0, multiplier=1.0,
                    max_delay_ms=1_000.0, jitter=0.0,
                ),
            ),
            scheduler,
            label="throttle-test",
        )
        calls = []

        def throttled_once():
            calls.append(scheduler.clock.now_ms)
            if len(calls) == 1:
                raise ProxyThrottledError("slow down", retry_after_ms=5.0)
            return "ok"

        assert runtime.execute(binding, "get", throttled_once) == "ok"
        assert calls[1] - calls[0] == pytest.approx(1_000.0)


class TestEnrichedEvents:
    def test_shed_event_carries_context(self, world):
        hub = Observability(capture_real_time=False)
        runtime = make_runtime(
            world, shards=1, queue_depth=1, observability=hub
        )
        d = runtime.dispatcher("android")
        for _ in range(3):
            d.submit("burst", charge(world, 10.0), tracer=hub.tracer)
        shed_events = [
            event
            for span in hub.tracer.finished_spans()
            for event in span.events
            if event.name == "queue.shed"
        ]
        assert shed_events
        attrs = shed_events[0].attributes
        assert attrs["platform"] == "android"
        assert attrs["bound"] == 1
        assert attrs["reason"] == "queue_full"
        assert attrs["priority"] == "normal"
        assert "shard" in attrs and "depth" in attrs
        runtime.drain()

    def test_throttle_event_and_span_outcome(self, world):
        hub = Observability(capture_real_time=False)
        runtime = make_runtime(
            world,
            shards=1,
            queue_depth=8,
            observability=hub,
            admission=plain_admission(
                bucket=TokenBucketConfig(rate_per_s=10.0, capacity=1.0)
            ),
        )
        d = runtime.dispatcher("android")
        d.submit("work", charge(world, 5.0), tracer=hub.tracer)
        d.submit("work", charge(world, 5.0), tracer=hub.tracer)
        throttle_spans = [
            span
            for span in hub.tracer.finished_spans()
            if span.attributes.get("outcome") == "throttled"
        ]
        assert len(throttle_spans) == 1
        assert throttle_spans[0].status == "error"
        (event,) = throttle_spans[0].events
        assert event.name == "queue.throttled"
        assert event.attributes["retry_after_ms"] > 0
        runtime.drain()

    def test_1012_context_dict(self, world):
        runtime = make_runtime(world, shards=1, queue_depth=1)
        d = runtime.dispatcher("s60")
        d.submit("burst", charge(world, 10.0))
        d.submit("burst", charge(world, 10.0))
        refused = d.submit("burst", charge(world, 10.0))
        assert refused.error.context == {
            "platform": "s60",
            "shard": 0,
            "depth": 1,
            "bound": 1,
            "priority": "normal",
            "operation": "burst",
            "reason": "queue_full",
        }
        runtime.drain()


class TestBridgeRegistration:
    def test_1012_and_1013_are_uniform(self):
        from repro.core.proxy.exceptions import UNIFORM_ERRORS

        codes = {cls.error_code for cls in UNIFORM_ERRORS.values()}
        assert {1012, 1013} <= codes

    def test_1013_attributes_survive_construction(self):
        error = ProxyThrottledError(
            "busy", retry_after_ms=42.0, context={"tenant": "a"}
        )
        assert error.retry_after_ms == 42.0
        assert error.context["tenant"] == "a"
        bare = ProxyThrottledError("it broke")  # bridge-side reconstruction
        assert bare.retry_after_ms == 0.0
        assert bare.context == {}
