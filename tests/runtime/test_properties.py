"""Property-based tests for the concurrency runtime's two contracts.

1. **Determinism** — two runs of the same seeded workload produce
   byte-identical trace exports (and identical shard layouts).  The
   workload itself is hypothesis-generated, so the property covers
   arbitrary interleavings of sleeps, priorities and dispatch charges,
   not just the shapes the unit tests happen to pick.
2. **Coalescing safety** — coalescing idempotent reads changes the
   execution count, never the results; and a ``set_property`` write
   always invalidates exactly that key's cached read.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.workforce import scenario
from repro.apps.workforce.proxied import launch_on_android
from repro.obs import Observability
from repro.runtime import ConcurrencyRuntime
from repro.util.clock import Scheduler, SimulatedClock

pytestmark = pytest.mark.concurrency

# One generated agent workload: priority plus a few (sleep, charge) legs.
LEG = st.tuples(
    st.floats(min_value=0.0, max_value=50.0),   # pre-sleep ms
    st.floats(min_value=0.1, max_value=40.0),   # dispatch charge ms
)
WORKLOAD = st.tuples(st.integers(min_value=0, max_value=3), st.lists(LEG, max_size=4))
FLEET_SPEC = st.lists(WORKLOAD, min_size=1, max_size=5)


def run_fleet_spec(spec, *, seed: int, shards: int):
    """Execute a generated workload mix; return every observable output."""
    world = Scheduler(SimulatedClock())
    hub = Observability(capture_real_time=False)
    runtime = ConcurrencyRuntime(
        world, shards=shards, queue_depth=64, seed=seed, observability=hub
    )
    dispatcher = runtime.dispatcher("prop")

    def workload(legs):
        for sleep_ms, charge_ms in legs:
            yield sleep_ms
            yield dispatcher.submit(
                "leg",
                lambda c=charge_ms: world.clock.advance(c),
                tracer=hub.tracer,
            )

    for index, (priority, legs) in enumerate(spec):
        runtime.spawn(f"agent-{index}", workload(legs), priority=priority)
    runtime.drain()
    return {
        "export": hub.export_jsonl(),
        "per_shard": dispatcher.executed_per_shard(),
        "final_ms": world.clock.now_ms,
        "steps": [task.steps for task in runtime.tasks.tasks],
    }


class TestSchedulerDeterminism:
    @settings(max_examples=30, deadline=None)
    @given(spec=FLEET_SPEC, seed=st.integers(min_value=0, max_value=2**16))
    def test_same_seed_byte_identical(self, spec, seed):
        first = run_fleet_spec(spec, seed=seed, shards=3)
        second = run_fleet_spec(spec, seed=seed, shards=3)
        assert first["export"] == second["export"]  # byte-identical traces
        assert first == second

    @settings(max_examples=15, deadline=None)
    @given(spec=FLEET_SPEC)
    def test_shard_count_never_changes_results(self, spec):
        # sharding reorders *when* work runs, never what it computes:
        # every task takes the same number of steps and all work runs.
        narrow = run_fleet_spec(spec, seed=0, shards=1)
        wide = run_fleet_spec(spec, seed=0, shards=4)
        assert narrow["steps"] == wide["steps"]
        assert sum(narrow["per_shard"]) == sum(wide["per_shard"])


class TestCoalescingSafety:
    @settings(max_examples=30, deadline=None)
    @given(
        batches=st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=6),   # concurrent GETs
                st.floats(min_value=1.0, max_value=30.0)  # gap to next batch
            ),
            min_size=1,
            max_size=5,
        )
    )
    def test_coalesced_equals_uncoalesced(self, batches):
        def run(coalesce: bool):
            world = Scheduler(SimulatedClock())
            runtime = ConcurrencyRuntime(world, shards=2, queue_depth=256)
            dispatcher = runtime.dispatcher("prop")
            executions = []
            results = []

            def read():
                executions.append(world.clock.now_ms)
                world.clock.advance(10.0)
                return "stable-body"

            def driver():
                for count, gap_ms in batches:
                    futures = [
                        dispatcher.submit(
                            "get",
                            read,
                            coalesce_key="GET:/status" if coalesce else None,
                        )
                        for _ in range(count)
                    ]
                    for future in futures:
                        value = yield future
                        results.append(value)
                    yield gap_ms

            runtime.spawn("driver", driver())
            runtime.drain()
            return results, len(executions)

        coalesced_results, coalesced_runs = run(coalesce=True)
        plain_results, plain_runs = run(coalesce=False)
        # identical results delivered in identical order...
        assert coalesced_results == plain_results
        # ...for no more (usually far fewer) substrate executions.
        assert coalesced_runs <= plain_runs


class TestPropertyInvalidation:
    @settings(max_examples=20, deadline=None)
    @given(
        ops=st.lists(
            st.one_of(
                st.just(("get", None)),
                st.tuples(st.just("set"), st.text(min_size=1, max_size=8)),
            ),
            max_size=10,
        )
    )
    def test_cached_read_never_stale(self, ops):
        sc = scenario.build_android()
        logic = launch_on_android(sc.platform, sc.new_context(), sc.config)
        runtime = ConcurrencyRuntime(sc.device.scheduler)
        for op, value in ops:
            if op == "set":
                logic.http.set_property("userAgent", value)
            # the invariant: the cache NEVER serves a value the proxy
            # itself would not return right now.
            assert runtime.get_property(logic.http, "userAgent") == (
                logic.http.get_property("userAgent")
            )
