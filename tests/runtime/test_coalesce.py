"""Unit tests for the read caches: location staleness window, property
invalidation, and the runtime's proxy-aware helpers."""

import pytest

from repro.apps.workforce import scenario
from repro.apps.workforce.proxied import launch_on_android
from repro.runtime import ConcurrencyRuntime, LocationFixCache
from repro.util.clock import Scheduler, SimulatedClock

pytestmark = pytest.mark.concurrency


@pytest.fixture
def world():
    return Scheduler(SimulatedClock())


class TestLocationFixCache:
    def test_fresh_fix_is_reused(self, world):
        cache = LocationFixCache(world.clock, staleness_ms=5_000.0)
        cache.put("fix-1")
        world.clock.advance(4_999.0)
        assert cache.get() == "fix-1"
        assert cache.hits == 1

    def test_stale_fix_is_not_reused(self, world):
        cache = LocationFixCache(world.clock, staleness_ms=5_000.0)
        cache.put("fix-1")
        world.clock.advance(5_001.0)
        assert cache.get() is None
        assert cache.misses == 1

    def test_zero_staleness_at_same_instant_still_serves(self, world):
        cache = LocationFixCache(world.clock, staleness_ms=0.0)
        cache.put("fix-1")
        assert cache.get() == "fix-1"
        world.clock.advance(0.001)
        assert cache.get() is None

    def test_invalidate(self, world):
        cache = LocationFixCache(world.clock, staleness_ms=5_000.0)
        cache.put("fix-1")
        cache.invalidate()
        assert cache.get() is None

    def test_negative_staleness_rejected(self, world):
        with pytest.raises(ValueError):
            LocationFixCache(world.clock, staleness_ms=-1.0)


@pytest.fixture
def android():
    sc = scenario.build_android()
    logic = launch_on_android(sc.platform, sc.new_context(), sc.config)
    sc.platform.run_for(10_000.0)
    return sc, logic


class TestRuntimeLocationHelper:
    def test_second_fix_within_window_is_cached(self, android):
        sc, logic = android
        runtime = ConcurrencyRuntime(
            sc.device.scheduler, shards=1, location_staleness_ms=5_000.0
        )
        first = runtime.get_location(logic.location)
        runtime.drain()
        before = sc.platform.clock.now_ms
        second = runtime.get_location(logic.location)
        # cache hit: resolved immediately, no virtual charge, same fix
        assert second.done()
        assert sc.platform.clock.now_ms == before
        assert second.result() is first.result()

    def test_fresh_bypasses_but_refreshes_cache(self, android):
        sc, logic = android
        runtime = ConcurrencyRuntime(sc.device.scheduler, shards=1)
        runtime.get_location(logic.location)
        runtime.drain()
        fresh = runtime.get_location(logic.location, fresh=True)
        assert not fresh.done()  # really went to the GPS
        runtime.drain()
        again = runtime.get_location(logic.location)
        assert again.result() is fresh.result()

    def test_stale_fix_triggers_new_read(self, android):
        sc, logic = android
        runtime = ConcurrencyRuntime(
            sc.device.scheduler, shards=1, location_staleness_ms=1_000.0
        )
        runtime.get_location(logic.location)
        runtime.drain()
        sc.platform.run_for(2_000.0)
        second = runtime.get_location(logic.location)
        assert not second.done()
        runtime.drain()
        assert second.error is None


class TestPropertyReadCache:
    def test_repeat_read_is_memoised(self, android):
        sc, logic = android
        runtime = ConcurrencyRuntime(sc.device.scheduler)
        assert runtime.get_property(logic.location, "provider") == "gps"
        assert runtime.get_property(logic.location, "provider") == "gps"
        assert runtime.properties.hits == 1
        assert runtime.properties.misses == 1

    def test_set_property_invalidates_exactly_that_key(self, android):
        sc, logic = android
        runtime = ConcurrencyRuntime(sc.device.scheduler)
        runtime.get_property(logic.http, "userAgent")
        runtime.get_property(logic.http, "contentType")
        logic.http.set_property("userAgent", "Conformance/2.0")
        assert runtime.properties.cached_value(logic.http, "userAgent") is None
        assert runtime.properties.cached_value(logic.http, "contentType") is not None
        assert runtime.get_property(logic.http, "userAgent") == "Conformance/2.0"

    def test_caches_are_per_proxy(self, android):
        sc, logic = android
        runtime = ConcurrencyRuntime(sc.device.scheduler)
        runtime.get_property(logic.location, "provider")
        runtime.get_property(logic.http, "userAgent")
        logic.http.set_property("userAgent", "Conformance/2.0")
        # the location proxy's slot is untouched
        assert (
            runtime.properties.cached_value(logic.location, "provider") is not None
        )
