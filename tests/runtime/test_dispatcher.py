"""Unit tests for the sharded dispatcher: lanes, shedding, coalescing,
queue spans."""

import pytest

from repro.errors import ConfigurationError, ProxyOverloadError, ProxyTransientError
from repro.obs import Observability
from repro.runtime import ConcurrencyRuntime, Dispatcher
from repro.util.clock import Scheduler, SimulatedClock

pytestmark = pytest.mark.concurrency


@pytest.fixture
def world():
    return Scheduler(SimulatedClock())


def make_runtime(world, **kwargs):
    kwargs.setdefault("observability", Observability(capture_real_time=False))
    return ConcurrencyRuntime(world, **kwargs)


def charge(world, ms):
    """A thunk modelling a substrate call that charges ``ms`` virtual."""
    return lambda: world.clock.advance(ms)


class TestConstruction:
    def test_rejects_bad_shards(self, world):
        with pytest.raises(ConfigurationError):
            Dispatcher(world, shards=0)

    def test_rejects_bad_queue_depth(self, world):
        with pytest.raises(ConfigurationError):
            Dispatcher(world, queue_depth=0)


class TestLaneParallelism:
    def test_single_shard_serialises(self, world):
        runtime = make_runtime(world, shards=1, queue_depth=16)
        d = runtime.dispatcher("p")
        for _ in range(8):
            d.submit("work", charge(world, 100.0))
        runtime.drain()
        assert world.clock.now_ms == pytest.approx(800.0)

    def test_shards_overlap_in_virtual_time(self, world):
        runtime = make_runtime(world, shards=4, queue_depth=16)
        d = runtime.dispatcher("p")
        futures = [d.submit("work", charge(world, 100.0)) for _ in range(8)]
        runtime.drain()
        # 8 × 100ms over 4 lanes: makespan is 200ms, not 800ms.
        assert world.clock.now_ms == pytest.approx(200.0)
        assert all(f.done() and f.error is None for f in futures)
        assert d.executed_per_shard() == [2, 2, 2, 2]

    def test_key_pins_to_one_shard(self, world):
        runtime = make_runtime(world, shards=4, queue_depth=16)
        d = runtime.dispatcher("p")
        for _ in range(6):
            d.submit("work", charge(world, 10.0), key="agent-1")
        runtime.drain()
        per_shard = d.executed_per_shard()
        assert sorted(per_shard, reverse=True)[0] == 6  # all on one lane
        assert sum(per_shard) == 6

    def test_keyed_requests_complete_in_submission_order(self, world):
        runtime = make_runtime(world, shards=4, queue_depth=16)
        d = runtime.dispatcher("p")
        done = []
        for index in range(4):
            future = d.submit("work", charge(world, 10.0), key="agent-1")
            future.add_done_callback(lambda f, i=index: done.append(i))
        runtime.drain()
        assert done == [0, 1, 2, 3]


class TestAdmissionControl:
    def test_overflow_sheds_with_uniform_error(self, world):
        runtime = make_runtime(world, shards=1, queue_depth=4)
        d = runtime.dispatcher("p")
        futures = [d.submit("burst", charge(world, 10.0)) for _ in range(10)]
        shed = [f for f in futures if f.done() and isinstance(f.error, ProxyOverloadError)]
        # all 10 arrive at the same instant: 4 queue slots fill, 6 shed
        # at the door (execution starts when the scheduler next runs)
        assert len(shed) == 6
        assert d.shed_count == 6
        assert all(f.error.error_code == 1012 for f in shed)
        runtime.drain()
        assert d.completed_count == 4

    def test_shed_records_span_event(self, world):
        hub = Observability(capture_real_time=False)
        runtime = make_runtime(world, shards=1, queue_depth=1, observability=hub)
        d = runtime.dispatcher("p")
        for _ in range(4):
            d.submit("burst", charge(world, 10.0), tracer=hub.tracer)
        shed_spans = [
            span
            for span in hub.tracer.finished_spans()
            if span.attributes.get("outcome") == "shed"
        ]
        assert len(shed_spans) == 3
        for span in shed_spans:
            assert span.status == "error"
            assert [event.name for event in span.events] == ["queue.shed"]
        runtime.drain()

    def test_shed_metric_labelled_by_platform(self, world):
        hub = Observability(capture_real_time=False)
        runtime = make_runtime(world, shards=1, queue_depth=1, observability=hub)
        d = runtime.dispatcher("android")
        for _ in range(4):
            d.submit("burst", charge(world, 10.0))
        assert hub.metrics.counter("runtime.shed", source="android").value == 3
        runtime.drain()


class TestCoalescing:
    def test_inflight_reads_share_one_execution(self, world):
        runtime = make_runtime(world, shards=2, queue_depth=16)
        d = runtime.dispatcher("p")
        executions = []

        def read():
            executions.append(world.clock.now_ms)
            world.clock.advance(50.0)
            return "body"

        futures = [
            d.submit("get", read, coalesce_key="GET:/status") for _ in range(5)
        ]
        runtime.drain()
        assert len(executions) == 1
        assert d.coalesced_count == 4
        assert [f.result() for f in futures] == ["body"] * 5

    def test_coalescing_window_closes_at_settle(self, world):
        runtime = make_runtime(world, shards=1, queue_depth=16)
        d = runtime.dispatcher("p")
        executions = []

        def read():
            executions.append(world.clock.now_ms)
            world.clock.advance(50.0)
            return len(executions)

        first = d.submit("get", read, coalesce_key="k")
        runtime.drain()
        second = d.submit("get", read, coalesce_key="k")
        runtime.drain()
        # after the first settles, a later GET is a fresh execution
        assert len(executions) == 2
        assert first.result() == 1 and second.result() == 2

    def test_failure_propagates_to_all_attached(self, world):
        runtime = make_runtime(world, shards=1, queue_depth=16)
        d = runtime.dispatcher("p")

        def read():
            world.clock.advance(10.0)
            raise ProxyTransientError("flaky read")

        futures = [d.submit("get", read, coalesce_key="k") for _ in range(3)]
        runtime.drain()
        assert all(isinstance(f.error, ProxyTransientError) for f in futures)

    def test_different_keys_do_not_coalesce(self, world):
        runtime = make_runtime(world, shards=2, queue_depth=16)
        d = runtime.dispatcher("p")
        executions = []

        def read():
            executions.append(None)
            world.clock.advance(10.0)

        d.submit("get", read, coalesce_key="a")
        d.submit("get", read, coalesce_key="b")
        runtime.drain()
        assert len(executions) == 2
        assert d.coalesced_count == 0


class TestQueueSpans:
    def test_executed_request_records_queue_span(self, world):
        hub = Observability(capture_real_time=False)
        runtime = make_runtime(world, shards=1, queue_depth=16, observability=hub)
        d = runtime.dispatcher("android")
        d.submit("getLocation", charge(world, 25.0), tracer=hub.tracer)
        d.submit("getLocation", charge(world, 25.0), tracer=hub.tracer)
        runtime.drain()
        spans = [
            s for s in hub.tracer.finished_spans() if s.name == "queue:getLocation"
        ]
        assert len(spans) == 2
        first, second = sorted(spans, key=lambda s: s.start_virtual_ms)
        assert first.attributes["wait_ms"] == pytest.approx(0.0)
        # the second waited for the first's full service interval
        assert second.attributes["wait_ms"] == pytest.approx(25.0)
        assert first.attributes["platform"] == "android"
        assert first.duration_virtual_ms == pytest.approx(25.0)

    def test_lane_spans_overlap_across_shards(self, world):
        hub = Observability(capture_real_time=False)
        runtime = make_runtime(world, shards=2, queue_depth=16, observability=hub)
        d = runtime.dispatcher("p")
        d.submit("work", charge(world, 100.0), tracer=hub.tracer)
        d.submit("work", charge(world, 100.0), tracer=hub.tracer)
        runtime.drain()
        spans = [s for s in hub.tracer.finished_spans() if s.name == "queue:work"]
        starts = sorted(s.start_virtual_ms for s in spans)
        assert starts == [0.0, 0.0]  # genuinely parallel in virtual time


class TestDeterminism:
    def test_identical_runs_identical_shard_layout(self):
        def run():
            world = Scheduler(SimulatedClock())
            runtime = make_runtime(world, shards=4, queue_depth=64, seed=3)
            d = runtime.dispatcher("p")
            for index in range(20):
                d.submit(
                    "work",
                    charge(world, 10.0 + index),
                    key=f"agent-{index % 5}",
                )
            runtime.drain()
            return d.executed_per_shard(), world.clock.now_ms

        assert run() == run()
