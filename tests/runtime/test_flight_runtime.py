"""Flight-recorder integration across the runtime: scheduler crash
isolation, dispatcher shed bursts, breaker opens, SLO breaches, and the
fleet's ``[fleet-alert]`` surfacing."""

import pytest

from repro.apps.workforce.fleet import build_fleet
from repro.core.proxies import standard_registry
from repro.core.resilience import (
    BreakerConfig,
    ResiliencePolicy,
    ResilienceRuntime,
)
from repro.errors import ProxyTransientError
from repro.obs import Observability
from repro.obs.analyze.slo import SloEngine, SloSpec
from repro.runtime import ConcurrencyRuntime
from repro.util.clock import Scheduler, SimulatedClock

pytestmark = pytest.mark.concurrency


def make_runtime(**kwargs):
    scheduler = Scheduler(SimulatedClock())
    hub = Observability(capture_real_time=False)
    sampler = hub.install_sampler()
    sampler.track("runtime.queue_depth")
    sampler.track("runtime.inflight")
    flight = hub.install_flight_recorder()
    runtime = ConcurrencyRuntime(scheduler, observability=hub, **kwargs)
    return scheduler, hub, flight, runtime


class TestTaskCrashDump:
    def crash_run(self):
        scheduler, hub, flight, runtime = make_runtime(shards=2)
        dispatcher = runtime.dispatcher("crash")

        def doomed():
            yield dispatcher.submit(
                "work",
                lambda: scheduler.clock.advance(5.0),
                tracer=hub.tracer,
            )
            raise RuntimeError("meltdown")

        runtime.spawn("doomed", doomed())
        runtime.drain()
        return flight

    def test_crash_triggers_dump_with_final_spans(self):
        flight = self.crash_run()
        assert flight.triggered == 1
        dump = flight.last_dump
        assert dump["reason"] == "task.crashed"
        assert dump["attributes"]["task"] == "doomed"
        assert dump["attributes"]["error"] == "meltdown"
        # The crashing task's final lane span is in the buffered history.
        assert any(span["name"] == "queue:work" for span in dump["spans"])
        assert any(
            event["name"] == "task.crashed" for event in dump["events"]
        )
        # Sampler points captured en route are in the dump too.
        assert any(
            sample["metric"] == "runtime.inflight" for sample in dump["samples"]
        )

    def test_same_seed_dumps_are_byte_identical(self):
        assert self.crash_run().to_json() == self.crash_run().to_json()


class TestShedDump:
    def test_shed_burst_collapses_to_one_dump(self):
        scheduler, hub, flight, runtime = make_runtime(shards=1, queue_depth=2)
        dispatcher = runtime.dispatcher("p")
        for _ in range(8):
            dispatcher.submit(
                "work",
                lambda: scheduler.clock.advance(1.0),
                tracer=hub.tracer,
            )
        runtime.drain()
        assert dispatcher.shed_count == 6
        assert flight.triggered == 1  # cooldown swallowed the burst
        dump = flight.last_dump
        assert dump["reason"] == "queue.shed"
        assert dump["suppressed"] == 5


class TestBreakerDump:
    def test_breaker_open_triggers_dump(self):
        scheduler = Scheduler(SimulatedClock())
        hub = Observability(capture_real_time=False)
        flight = hub.install_flight_recorder()
        runtime = ResilienceRuntime(
            ResiliencePolicy(
                breaker=BreakerConfig(
                    failure_threshold=2,
                    reset_timeout_ms=1_000.0,
                    half_open_successes=1,
                )
            ),
            scheduler,
            observability=hub,
        )
        binding = standard_registry().binding("Http", "android")

        def fail():
            raise ProxyTransientError("down")

        for _ in range(2):
            with pytest.raises(ProxyTransientError):
                runtime.execute(binding, "get", fail)
        assert flight.triggered == 1
        dump = flight.last_dump
        assert dump["reason"] == "breaker.open"
        assert dump["attributes"]["operation"] == "get"


class TestSloBreachDump:
    def test_newly_breached_slo_triggers_dump(self):
        hub = Observability(capture_real_time=False)
        flight = hub.install_flight_recorder()
        engine = SloEngine(
            [SloSpec(operation="get", latency_threshold_ms=10.0)],
            flight=flight,
        )
        engine.observe("get", 50.0, ok=True, platform="android", t_ms=100.0)
        engine.evaluate(100.0)
        assert flight.triggered == 1
        assert flight.last_dump["reason"] == "slo.breach"
        assert flight.last_dump["attributes"]["slo"] == "get@*"
        # Still breached on re-evaluation: no second dump.
        engine.evaluate(200.0)
        assert flight.triggered == 1


class TestFleetFlight:
    def test_requires_runtime(self):
        with pytest.raises(ValueError):
            build_fleet(1, flight_recorder=True)

    def crashed_fleet(self):
        fleet = build_fleet(
            1, observability=True, runtime=True, flight_recorder=True
        )

        def doomed():
            yield 10.0
            raise RuntimeError("field failure")

        fleet.runtime.spawn("doomed", doomed())
        fleet.run_for(20.0)
        return fleet

    def test_dump_surfaces_as_fleet_alert(self):
        fleet = self.crashed_fleet()
        assert fleet.flight is not None
        assert fleet.flight.triggered == 1
        alerts = [
            line
            for line in fleet.supervisor_inbox
            if line.startswith("[fleet-alert] flight dump")
        ]
        assert len(alerts) == 1
        assert "task.crashed" in alerts[0]
        # Alerts do not repeat on later advances.
        fleet.run_for(10.0)
        assert (
            sum(
                1
                for line in fleet.supervisor_inbox
                if line.startswith("[fleet-alert] flight dump")
            )
            == 1
        )

    def test_fleet_dumps_byte_identical_across_builds(self):
        first = self.crashed_fleet().flight.to_json()
        second = self.crashed_fleet().flight.to_json()
        assert first == second
