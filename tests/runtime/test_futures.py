"""Unit tests for the runtime's deterministic futures."""

import pytest

from repro.errors import ProxyTransientError
from repro.runtime import Future, FutureStateError

pytestmark = pytest.mark.concurrency


class TestLifecycle:
    def test_starts_pending(self):
        future = Future()
        assert not future.done()
        assert future.state == "pending"
        assert future.value is None and future.error is None

    def test_resolve(self):
        future = Future()
        future.resolve(42)
        assert future.done() and future.state == "resolved"
        assert future.result() == 42

    def test_fail(self):
        future = Future()
        error = ProxyTransientError("boom")
        future.fail(error)
        assert future.done() and future.state == "failed"
        assert future.error is error
        with pytest.raises(ProxyTransientError):
            future.result()

    def test_result_before_settle_raises(self):
        with pytest.raises(FutureStateError):
            Future().result()

    def test_double_settle_rejected(self):
        future = Future.resolved(1)
        with pytest.raises(FutureStateError):
            future.resolve(2)
        with pytest.raises(FutureStateError):
            future.fail(ProxyTransientError("late"))

    def test_prebuilt_helpers(self):
        assert Future.resolved("x").result() == "x"
        failed = Future.failed(ProxyTransientError("shed"))
        assert failed.error is not None


class TestCallbacks:
    def test_callbacks_fire_in_registration_order(self):
        future = Future()
        order = []
        future.add_done_callback(lambda f: order.append("first"))
        future.add_done_callback(lambda f: order.append("second"))
        future.resolve(None)
        assert order == ["first", "second"]

    def test_callback_after_settle_fires_immediately(self):
        future = Future.resolved(7)
        seen = []
        future.add_done_callback(lambda f: seen.append(f.value))
        assert seen == [7]

    def test_callback_receives_the_future(self):
        future = Future()
        box = []
        future.add_done_callback(box.append)
        future.fail(ProxyTransientError("x"))
        assert box[0] is future and box[0].error is not None
