"""Tests for the proximity-debounce enrichment."""

import pytest
from hypothesis import given, strategies as st

from repro.core.enrichment.debounce import DebouncedProximityListener
from repro.core.proxy.callbacks import ProximityListener
from repro.core.proxy.datatypes import Location
from repro.errors import ConfigurationError

LOCATION = Location(28.6, 77.2)


class Recorder(ProximityListener):
    def __init__(self):
        self.events = []

    def proximity_event(self, lat, lon, alt, current, entering):
        self.events.append(entering)


def _feed(listener, sequence):
    for entering in sequence:
        listener.proximity_event(28.6, 77.2, 0.0, LOCATION, entering)


class TestDebounce:
    def test_initial_event_always_forwards(self):
        inner = Recorder()
        debounced = DebouncedProximityListener(inner, confirmations=3)
        _feed(debounced, [True])
        assert inner.events == [True]
        assert debounced.confirmed_state is True

    def test_single_flap_suppressed(self):
        inner = Recorder()
        debounced = DebouncedProximityListener(inner, confirmations=2)
        # enter, then one spurious exit, then re-assertion of enter
        _feed(debounced, [True, False, True])
        assert inner.events == [True]
        assert debounced.suppressed_count == 2

    def test_sustained_transition_forwards(self):
        inner = Recorder()
        debounced = DebouncedProximityListener(inner, confirmations=2)
        _feed(debounced, [True, False, False])
        assert inner.events == [True, False]
        assert debounced.confirmed_state is False

    def test_alternating_flaps_never_forward(self):
        inner = Recorder()
        debounced = DebouncedProximityListener(inner, confirmations=2)
        _feed(debounced, [True] + [False, True] * 10)
        assert inner.events == [True]

    def test_confirmations_one_forwards_everything(self):
        inner = Recorder()
        debounced = DebouncedProximityListener(inner, confirmations=1)
        _feed(debounced, [True, False, True, False])
        assert inner.events == [True, False, True, False]

    def test_invalid_confirmations_rejected(self):
        with pytest.raises(ConfigurationError):
            DebouncedProximityListener(Recorder(), confirmations=0)

    @given(st.lists(st.booleans(), min_size=1, max_size=60),
           st.integers(min_value=1, max_value=4))
    def test_invariants(self, sequence, confirmations):
        """Forwarded stream alternates and never flaps faster than the
        confirmation threshold allows."""
        inner = Recorder()
        debounced = DebouncedProximityListener(inner, confirmations=confirmations)
        _feed(debounced, sequence)
        # Forwarded stream strictly alternates.
        for previous, current in zip(inner.events, inner.events[1:]):
            assert previous != current
        # First forwarded event matches the first raw event.
        assert inner.events[0] == sequence[0]
        # Confirmed state mirrors the last forwarded event.
        assert debounced.confirmed_state == inner.events[-1]

    def test_works_behind_a_real_proxy(self, android_scenario):
        """Wrap a live Android proxy registration with the debounce."""
        from repro.apps.workforce import scenario as sc_mod
        from repro.core.proxies import create_proxy

        sc = android_scenario
        proxy = create_proxy("Location", sc.platform)
        proxy.set_property("context", sc.new_context())
        inner = Recorder()
        debounced = DebouncedProximityListener(inner, confirmations=1)
        proxy.add_proximity_alert(
            sc_mod.SITE.latitude,
            sc_mod.SITE.longitude,
            0.0,
            sc_mod.SITE.radius_m,
            -1,
            debounced,
        )
        sc.platform.run_for(200_000.0)
        assert inner.events == [True, False, True]
