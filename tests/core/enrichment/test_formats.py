"""Tests for the location-format enrichment."""

import math

import pytest

from repro.core.enrichment.formats import FormattedPosition, LocationFormatEnrichment
from repro.core.proxies import create_proxy
from repro.core.proxy.datatypes import AngleFormat
from repro.errors import ConfigurationError


@pytest.fixture
def inner(android_scenario):
    proxy = create_proxy("Location", android_scenario.platform)
    proxy.set_property("context", android_scenario.new_context())
    return proxy


class TestFormats:
    def test_degrees_passthrough(self, inner):
        enriched = LocationFormatEnrichment(inner, AngleFormat.DEGREES)
        position = enriched.get_position()
        raw = inner.get_location()
        assert position.latitude == pytest.approx(raw.latitude)

    def test_radians_conversion(self, inner):
        enriched = LocationFormatEnrichment(inner, AngleFormat.RADIANS)
        position = enriched.get_position()
        raw = inner.get_location()
        assert position.latitude == pytest.approx(math.radians(raw.latitude))
        assert position.angle_format is AngleFormat.RADIANS

    def test_as_degrees_round_trip(self):
        position = FormattedPosition(math.pi / 4, math.pi / 2, 0.0, AngleFormat.RADIANS)
        degrees = position.as_degrees()
        assert degrees.latitude == pytest.approx(45.0)
        assert degrees.longitude == pytest.approx(90.0)

    def test_dms(self):
        position = FormattedPosition(28.5, -77.25, 0.0, AngleFormat.DEGREES)
        (d1, m1, s1), (d2, m2, s2) = position.dms()
        assert (d1, m1) == (28, 30)
        assert s1 == pytest.approx(0.0, abs=1e-6)
        assert (d2, m2) == (-77, 15)

    def test_invalid_format_rejected(self, inner):
        with pytest.raises(ConfigurationError):
            LocationFormatEnrichment(inner, "radians")

    def test_delegation_preserves_inner_api(self, inner, android_scenario):
        """Enrichment is additive: the uniform API still works through it."""
        enriched = LocationFormatEnrichment(inner, AngleFormat.RADIANS)
        location = enriched.get_location()  # raw pass-through
        assert location.latitude == pytest.approx(
            math.degrees(enriched.get_position().latitude), abs=1e-6
        )
        enriched.set_property("provider", "gps")  # delegated via __getattr__
