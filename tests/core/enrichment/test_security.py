"""Tests for the security/policy enrichment."""

import pytest

from repro.core.enrichment.security import (
    AccessDecision,
    AccessRule,
    Principal,
    SecurityPolicy,
    SecuredProxy,
)
from repro.core.proxies import create_proxy
from repro.errors import ConfigurationError, ProxyPermissionError


@pytest.fixture
def sms_proxy(android_scenario):
    proxy = create_proxy("Sms", android_scenario.platform)
    proxy.set_property("context", android_scenario.new_context())
    return proxy


AGENT = Principal("agent-42", frozenset({"field-agent"}))
SUPERVISOR = Principal("boss", frozenset({"supervisor"}))


class TestPolicy:
    def test_default_deny(self):
        policy = SecurityPolicy()
        assert policy.evaluate(AGENT, "Sms", "send_text_message") is AccessDecision.DENY

    def test_first_match_wins(self):
        policy = SecurityPolicy()
        policy.deny(roles="field-agent", interface="Call")
        policy.allow(roles="field-agent")
        assert policy.evaluate(AGENT, "Call", "make_a_call") is AccessDecision.DENY
        assert policy.evaluate(AGENT, "Sms", "send_text_message") is AccessDecision.ALLOW

    def test_role_glob(self):
        policy = SecurityPolicy().allow(roles="field-*")
        assert policy.evaluate(AGENT, "Sms", "x") is AccessDecision.ALLOW
        assert policy.evaluate(SUPERVISOR, "Sms", "x") is AccessDecision.DENY

    def test_method_glob(self):
        policy = SecurityPolicy().allow(interface="Location", method="get*")
        assert policy.evaluate(AGENT, "Location", "get_location") is AccessDecision.ALLOW
        assert (
            policy.evaluate(AGENT, "Location", "add_proximity_alert")
            is AccessDecision.DENY
        )

    def test_rule_matching(self):
        rule = AccessRule(AccessDecision.ALLOW, "supervisor", "Sms", "*")
        assert rule.matches(SUPERVISOR, "Sms", "anything")
        assert not rule.matches(AGENT, "Sms", "anything")


class TestSecuredProxy:
    def test_allowed_call_passes_through(self, android_scenario, sms_proxy):
        policy = SecurityPolicy().allow(roles="field-agent", interface="Sms")
        secured = SecuredProxy(sms_proxy, policy, AGENT)
        message_id = secured.send_text_message("+2", "hi")
        assert message_id

    def test_denied_call_raises_uniform_permission_error(self, sms_proxy):
        secured = SecuredProxy(sms_proxy, SecurityPolicy(), AGENT)
        with pytest.raises(ProxyPermissionError, match="policy denies"):
            secured.send_text_message("+2", "hi")

    def test_audit_log_records_both(self, sms_proxy):
        policy = SecurityPolicy().allow(roles="field-agent", interface="Sms")
        secured = SecuredProxy(sms_proxy, policy, AGENT)
        secured.send_text_message("+2", "hi")
        with pytest.raises(ProxyPermissionError):
            SecuredProxy(sms_proxy, SecurityPolicy(), AGENT).send_text_message("+2", "x")
        assert [r.decision for r in secured.audit_log] == [AccessDecision.ALLOW]

    def test_set_property_not_policy_checked(self, sms_proxy):
        secured = SecuredProxy(sms_proxy, SecurityPolicy(), AGENT)
        secured.set_property("serviceCenter", "+smsc")  # no raise

    def test_wraps_only_mproxies(self):
        with pytest.raises(ConfigurationError):
            SecuredProxy(object(), SecurityPolicy(), AGENT)

    def test_non_callable_attributes_pass_through(self, sms_proxy):
        secured = SecuredProxy(sms_proxy, SecurityPolicy(), AGENT)
        assert secured.interface == "Sms"
