"""Tests for the call-retry enrichment."""

import pytest

from repro.core.enrichment.retry import CallRetryCoordinator, RetryPolicy
from repro.core.proxies import create_proxy
from repro.core.proxy.callbacks import CallStateListener
from repro.core.proxy.datatypes import CallOutcome
from repro.device.telephony import TelephonyUnit
from repro.errors import ConfigurationError


@pytest.fixture
def call_proxy(android_scenario):
    proxy = create_proxy("Call", android_scenario.platform)
    proxy.set_property("context", android_scenario.new_context())
    return proxy


class Recorder(CallStateListener):
    def __init__(self):
        self.finished = []
        self.answered = 0

    def on_answered(self, call):
        self.answered += 1

    def on_finished(self, call):
        self.finished.append(call.outcome)


class TestRetryPolicy:
    def test_invalid_policies_rejected(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(retry_delay_ms=-1.0)


class TestCoordinator:
    def test_immediate_success_no_retry(self, android_scenario, call_proxy):
        coordinator = CallRetryCoordinator(
            call_proxy, android_scenario.platform.scheduler
        )
        recorder = Recorder()
        report = coordinator.make_a_call("+2", recorder)
        android_scenario.platform.run_for(10_000.0)
        assert report.attempts == 1
        assert recorder.answered == 1

    def test_unreachable_then_reachable(self, android_scenario, call_proxy):
        telephony = android_scenario.device.telephony
        telephony.set_callee_behavior("+2", TelephonyUnit.UNREACHABLE)
        coordinator = CallRetryCoordinator(
            call_proxy,
            android_scenario.platform.scheduler,
            RetryPolicy(max_attempts=3, retry_delay_ms=2_000.0),
        )
        recorder = Recorder()
        report = coordinator.make_a_call("+2", recorder)
        android_scenario.platform.run_for(1_000.0)
        # After the first failure, the callee comes back on network.
        telephony.set_callee_behavior("+2", TelephonyUnit.ANSWER)
        android_scenario.platform.run_for(30_000.0)
        assert report.attempts == 2
        assert report.outcomes[0] is CallOutcome.UNREACHABLE
        assert recorder.answered == 1
        # Exactly one on_finished despite two attempts.
        assert len(recorder.finished) == 0  # still active (never hung up)

    def test_gives_up_after_max_attempts(self, android_scenario, call_proxy):
        android_scenario.device.telephony.set_callee_behavior(
            "+2", TelephonyUnit.UNREACHABLE
        )
        coordinator = CallRetryCoordinator(
            call_proxy,
            android_scenario.platform.scheduler,
            RetryPolicy(max_attempts=3, retry_delay_ms=1_000.0),
        )
        recorder = Recorder()
        report = coordinator.make_a_call("+2", recorder)
        android_scenario.platform.run_for(60_000.0)
        assert report.attempts == 3
        assert report.outcomes == [CallOutcome.UNREACHABLE] * 3
        assert recorder.finished == [CallOutcome.UNREACHABLE]
        assert not report.succeeded

    def test_busy_is_retryable_by_default(self, android_scenario, call_proxy):
        android_scenario.device.telephony.set_callee_behavior(
            "+2", TelephonyUnit.BUSY
        )
        coordinator = CallRetryCoordinator(
            call_proxy,
            android_scenario.platform.scheduler,
            RetryPolicy(max_attempts=2, retry_delay_ms=1_000.0),
        )
        report = coordinator.make_a_call("+2")
        android_scenario.platform.run_for(30_000.0)
        assert report.attempts == 2

    def test_non_retryable_outcome_stops(self, android_scenario, call_proxy):
        android_scenario.device.telephony.set_callee_behavior(
            "+2", TelephonyUnit.BUSY
        )
        coordinator = CallRetryCoordinator(
            call_proxy,
            android_scenario.platform.scheduler,
            RetryPolicy(
                max_attempts=5,
                retry_delay_ms=1_000.0,
                retry_on=frozenset({CallOutcome.UNREACHABLE}),
            ),
        )
        report = coordinator.make_a_call("+2")
        android_scenario.platform.run_for(60_000.0)
        assert report.attempts == 1
        assert report.final.outcome is CallOutcome.BUSY
