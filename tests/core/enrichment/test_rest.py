"""Tests for the REST enrichment (the paper's converged-network idea)."""

import pytest

from repro.apps.workforce import scenario
from repro.core.enrichment.rest import (
    InMemoryRestService,
    RestError,
    RestResource,
)
from repro.core.proxies import create_proxy


def _resource_for(platform_name):
    if platform_name == "android":
        sc = scenario.build_android()
        http = create_proxy("Http", sc.platform)
        http.set_property("context", sc.new_context())
    else:
        sc = scenario.build_s60()
        http = create_proxy("Http", sc.platform)
    server = sc.device.network.add_server("rest.example.com")
    service = InMemoryRestService(server, "/jobs")
    resource = RestResource(http, "http://rest.example.com/jobs")
    return sc, service, resource


class TestCrud:
    @pytest.mark.parametrize("platform_name", ["android", "s60"])
    def test_full_lifecycle(self, platform_name):
        """The same REST client code on two different HTTP stacks."""
        sc, service, resource = _resource_for(platform_name)
        created = resource.create({"title": "inspect tower"})
        assert created.status == 201
        item_id = created.body["id"]
        assert service.item_count() == 1

        fetched = resource.retrieve(item_id)
        assert fetched.body["title"] == "inspect tower"

        resource.update(item_id, {"title": "inspect tower", "done": True})
        assert resource.retrieve(item_id).body["done"] is True

        listing = resource.list()
        assert len(listing.body) == 1

        resource.delete(item_id)
        assert service.item_count() == 0

    def test_missing_item_raises_rest_error(self):
        sc, service, resource = _resource_for("android")
        with pytest.raises(RestError) as excinfo:
            resource.retrieve("item-999")
        assert excinfo.value.status == 404

    def test_delete_missing_raises(self):
        sc, service, resource = _resource_for("android")
        with pytest.raises(RestError):
            resource.delete("item-999")

    def test_update_missing_raises(self):
        sc, service, resource = _resource_for("android")
        with pytest.raises(RestError):
            resource.update("item-999", {"x": 1})

    def test_relative_url_rejected(self):
        sc = scenario.build_s60()
        http = create_proxy("Http", sc.platform)
        with pytest.raises(ValueError):
            RestResource(http, "/jobs")

    def test_non_json_body_passes_through(self):
        from repro.device.network import HttpResponse

        sc = scenario.build_s60()
        http = create_proxy("Http", sc.platform)
        server = sc.device.network.add_server("rest.example.com")
        server.route("GET", "/plain", lambda r: HttpResponse(200, "just text"))
        resource = RestResource(http, "http://rest.example.com/plain")
        assert resource.list().body == "just text"

    def test_content_type_set_to_json(self):
        sc, service, resource = _resource_for("android")
        seen = {}

        def spy(request):
            from repro.device.network import HttpResponse

            seen["ct"] = request.header("Content-Type")
            return HttpResponse(201, "{}")

        sc.device.network.server("rest.example.com").route("POST", "/spy", spy)
        resource._http.post("http://rest.example.com/spy", "{}")
        assert seen["ct"] == "application/json"
