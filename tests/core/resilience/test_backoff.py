"""BackoffSchedule arithmetic and determinism."""

import random

import pytest

from repro.core.resilience import BackoffSchedule
from repro.errors import ConfigurationError


class TestSchedule:
    def test_exponential_sequence(self):
        schedule = BackoffSchedule(
            initial_delay_ms=100.0, multiplier=2.0, max_delay_ms=10_000.0
        )
        assert schedule.schedule(6) == [100.0, 200.0, 400.0, 800.0, 1600.0, 3200.0]

    def test_cap_applies(self):
        schedule = BackoffSchedule(
            initial_delay_ms=100.0, multiplier=10.0, max_delay_ms=500.0
        )
        assert schedule.schedule(4) == [100.0, 500.0, 500.0, 500.0]

    def test_fixed_is_flat(self):
        schedule = BackoffSchedule.fixed(5_000.0)
        assert schedule.schedule(3) == [5_000.0, 5_000.0, 5_000.0]

    def test_negative_retry_index_rejected(self):
        with pytest.raises(ConfigurationError):
            BackoffSchedule().delay_ms(-1)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            BackoffSchedule(multiplier=0.5)
        with pytest.raises(ConfigurationError):
            BackoffSchedule(initial_delay_ms=100.0, max_delay_ms=50.0)
        with pytest.raises(ConfigurationError):
            BackoffSchedule(jitter=2.0)


class TestJitter:
    def test_jitter_bounds(self):
        schedule = BackoffSchedule(
            initial_delay_ms=100.0, multiplier=1.0, max_delay_ms=100.0, jitter=0.25
        )
        rng = random.Random("jitter-test")
        for _ in range(100):
            delay = schedule.delay_ms(0, rng)
            assert 100.0 <= delay <= 125.0

    def test_jitter_deterministic_per_seed(self):
        schedule = BackoffSchedule(jitter=0.5)
        a = [schedule.delay_ms(i, random.Random("s")) for i in range(5)]
        b = [schedule.delay_ms(i, random.Random("s")) for i in range(5)]
        assert a == b

    def test_no_rng_means_no_jitter(self):
        schedule = BackoffSchedule(jitter=0.5)
        assert schedule.delay_ms(0) == schedule.initial_delay_ms
