"""ResilienceRuntime.execute: retry, timeout, breaker, fallback layers."""

import pytest

from repro.core.proxies import standard_registry
from repro.core.resilience import (
    LAST_RESULT,
    UNHANDLED,
    BackoffSchedule,
    BreakerConfig,
    BreakerState,
    ResiliencePolicy,
    ResilienceRuntime,
    chaos_policy,
)
from repro.errors import (
    ConfigurationError,
    ProxyCircuitOpenError,
    ProxyError,
    ProxyPermissionError,
    ProxyTimeoutError,
    ProxyTransientError,
)
from repro.util.clock import Scheduler, SimulatedClock


@pytest.fixture
def binding():
    return standard_registry().binding("Http", "android")


def _runtime(policy=None, *, scheduler=None, label="test"):
    scheduler = scheduler or Scheduler(SimulatedClock())
    return ResilienceRuntime(policy or ResiliencePolicy(), scheduler, label=label)


class _Flaky:
    """Thunk that fails ``failures`` times before returning ``value``."""

    def __init__(self, failures, value="ok", error=ProxyTransientError):
        self.failures = failures
        self.value = value
        self.error = error
        self.calls = 0

    def __call__(self):
        self.calls += 1
        if self.calls <= self.failures:
            raise self.error(f"injected failure #{self.calls}")
        return self.value


class TestPassthroughDefault:
    def test_success(self, binding):
        runtime = _runtime()
        assert runtime.execute(binding, "get", lambda: 42) == 42
        assert runtime.stats.attempts == 1
        assert runtime.stats.successes == 1
        assert runtime.stats.failures == 0

    def test_single_attempt_failure_raises_unchanged(self, binding):
        runtime = _runtime()
        thunk = _Flaky(failures=5)
        with pytest.raises(ProxyTransientError):
            runtime.execute(binding, "get", thunk)
        assert thunk.calls == 1
        assert runtime.stats.retries == 0

    def test_platform_exception_is_mapped(self, binding):
        runtime = _runtime()

        def boom():
            raise ValueError("raw platform failure")

        with pytest.raises(ProxyError) as excinfo:
            runtime.execute(binding, "get", boom)
        assert isinstance(excinfo.value.__cause__, ValueError)

    def test_fallback_ignored_when_disabled(self, binding):
        runtime = _runtime()  # fallbacks_enabled=False by default
        with pytest.raises(ProxyTransientError):
            runtime.execute(
                binding, "get", _Flaky(failures=1), fallback=lambda error: "degraded"
            )
        assert runtime.stats.fallbacks_served == 0


class TestRetry:
    def _retry_policy(self, attempts=3):
        return ResiliencePolicy(
            max_attempts=attempts, backoff=BackoffSchedule.fixed(100.0)
        )

    def test_transient_failures_retried_until_success(self, binding):
        scheduler = Scheduler(SimulatedClock())
        runtime = _runtime(self._retry_policy(), scheduler=scheduler)
        thunk = _Flaky(failures=2)
        assert runtime.execute(binding, "get", thunk) == "ok"
        assert thunk.calls == 3
        assert runtime.stats.retries == 2
        # backoff advanced virtual time, never wall time
        assert scheduler.clock.now_ms == 200.0

    def test_exhausted_retries_raise_last_error(self, binding):
        runtime = _runtime(self._retry_policy(attempts=2))
        with pytest.raises(ProxyTransientError, match="#2"):
            runtime.execute(binding, "get", _Flaky(failures=10))
        assert runtime.stats.attempts == 2

    def test_permanent_errors_never_retried(self, binding):
        runtime = _runtime(self._retry_policy())
        thunk = _Flaky(failures=1, error=ProxyPermissionError)
        with pytest.raises(ProxyPermissionError):
            runtime.execute(binding, "get", thunk)
        assert thunk.calls == 1
        assert runtime.stats.retries == 0

    def test_jitter_is_deterministic_per_seed_and_label(self, binding):
        policy = ResiliencePolicy(
            max_attempts=4,
            backoff=BackoffSchedule(
                initial_delay_ms=100.0,
                multiplier=2.0,
                max_delay_ms=5_000.0,
                jitter=0.5,
            ),
            seed=7,
        )
        elapsed = []
        for _ in range(2):
            scheduler = Scheduler(SimulatedClock())
            runtime = _runtime(policy, scheduler=scheduler, label="fixed-label")
            with pytest.raises(ProxyTransientError):
                runtime.execute(binding, "get", _Flaky(failures=10))
            elapsed.append(scheduler.clock.now_ms)
        assert elapsed[0] == elapsed[1]


class TestTimeout:
    def test_slow_success_becomes_timeout(self, binding):
        scheduler = Scheduler(SimulatedClock())
        runtime = _runtime(
            ResiliencePolicy(timeout_ms=50.0), scheduler=scheduler
        )

        def slow():
            scheduler.clock.advance(100.0)
            return "too late"

        with pytest.raises(ProxyTimeoutError):
            runtime.execute(binding, "get", slow)
        assert runtime.stats.timeouts == 1

    def test_fast_success_within_budget(self, binding):
        scheduler = Scheduler(SimulatedClock())
        runtime = _runtime(
            ResiliencePolicy(timeout_ms=50.0), scheduler=scheduler
        )

        def fast():
            scheduler.clock.advance(10.0)
            return "in time"

        assert runtime.execute(binding, "get", fast) == "in time"
        assert runtime.stats.timeouts == 0


class TestBreaker:
    def _breaker_policy(self, **kwargs):
        return ResiliencePolicy(
            breaker=BreakerConfig(
                failure_threshold=2, reset_timeout_ms=1_000.0, half_open_successes=1
            ),
            **kwargs,
        )

    def test_open_breaker_rejects_without_invoking(self, binding):
        runtime = _runtime(self._breaker_policy())
        for _ in range(2):
            with pytest.raises(ProxyTransientError):
                runtime.execute(binding, "get", _Flaky(failures=1))
        thunk = _Flaky(failures=0)
        with pytest.raises(ProxyCircuitOpenError):
            runtime.execute(binding, "get", thunk)
        assert thunk.calls == 0
        assert runtime.stats.circuit_rejections == 1

    def test_breakers_are_per_operation(self, binding):
        runtime = _runtime(self._breaker_policy())
        for _ in range(2):
            with pytest.raises(ProxyTransientError):
                runtime.execute(binding, "get", _Flaky(failures=1))
        # "post" has its own breaker and still executes
        assert runtime.execute(binding, "post", lambda: "ok") == "ok"

    def test_half_open_probe_recovers(self, binding):
        scheduler = Scheduler(SimulatedClock())
        runtime = _runtime(self._breaker_policy(), scheduler=scheduler)
        for _ in range(2):
            with pytest.raises(ProxyTransientError):
                runtime.execute(binding, "get", _Flaky(failures=1))
        scheduler.clock.advance(1_000.0)
        assert runtime.execute(binding, "get", lambda: "recovered") == "recovered"
        assert runtime.breaker_for("get").state is BreakerState.CLOSED

    def test_transitions_surface_operation_labels(self, binding):
        runtime = _runtime(self._breaker_policy())
        for _ in range(2):
            with pytest.raises(ProxyTransientError):
                runtime.execute(binding, "get", _Flaky(failures=1))
        transitions = runtime.breaker_transitions()
        assert transitions
        operation, _, frm, to = transitions[0]
        assert operation == "get"
        assert (frm, to) == (BreakerState.CLOSED, BreakerState.OPEN)

    def test_open_breaker_stops_retry_loop(self, binding):
        runtime = _runtime(
            self._breaker_policy(
                max_attempts=10, backoff=BackoffSchedule.fixed(1.0)
            )
        )
        thunk = _Flaky(failures=100)
        with pytest.raises(ProxyTransientError):
            runtime.execute(binding, "get", thunk)
        # breaker opened after 2 failures and cut the remaining 8 attempts
        assert thunk.calls == 2


class TestFallbacks:
    def _fallback_policy(self, **kwargs):
        return ResiliencePolicy(fallbacks_enabled=True, **kwargs)

    def test_last_result_served_after_failure(self, binding):
        runtime = _runtime(self._fallback_policy())
        assert runtime.execute(binding, "get", lambda: "fresh") == "fresh"
        served = runtime.execute(
            binding, "get", _Flaky(failures=1), fallback=LAST_RESULT
        )
        assert served == "fresh"
        assert runtime.stats.fallbacks_served == 1

    def test_last_result_declines_without_history(self, binding):
        runtime = _runtime(self._fallback_policy())
        with pytest.raises(ProxyTransientError):
            runtime.execute(
                binding, "get", _Flaky(failures=1), fallback=LAST_RESULT
            )

    def test_callable_fallback_receives_error(self, binding):
        runtime = _runtime(self._fallback_policy())
        seen = []

        def fallback(error):
            seen.append(error)
            return "degraded"

        assert (
            runtime.execute(binding, "get", _Flaky(failures=1), fallback=fallback)
            == "degraded"
        )
        assert isinstance(seen[0], ProxyTransientError)

    def test_callable_fallback_may_decline(self, binding):
        runtime = _runtime(self._fallback_policy())
        with pytest.raises(ProxyTransientError):
            runtime.execute(
                binding,
                "get",
                _Flaky(failures=1),
                fallback=lambda error: UNHANDLED,
            )
        assert runtime.stats.fallbacks_served == 0

    def test_circuit_rejection_reaches_fallback(self, binding):
        runtime = _runtime(
            self._fallback_policy(
                breaker=BreakerConfig(
                    failure_threshold=1,
                    reset_timeout_ms=1_000.0,
                    half_open_successes=1,
                )
            )
        )
        with pytest.raises(ProxyTransientError):
            runtime.execute(binding, "get", _Flaky(failures=1))
        served = runtime.execute(
            binding,
            "get",
            lambda: "never runs",
            fallback=lambda error: f"degraded: {type(error).__name__}",
        )
        assert served == "degraded: ProxyCircuitOpenError"


class TestPolicyConfig:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ResiliencePolicy(max_attempts=0)
        with pytest.raises(ConfigurationError):
            ResiliencePolicy(timeout_ms=0.0)

    def test_chaos_policy_profile(self):
        policy = chaos_policy("Sms", seed=3)
        assert policy.max_attempts == 4
        assert policy.breaker is not None
        assert policy.fallbacks_enabled
        assert policy.redelivery is not None
        assert policy.seed == 3
        assert chaos_policy("Http").redelivery is None
