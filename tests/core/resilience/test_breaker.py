"""Circuit-breaker state machine on the virtual clock."""

import pytest

from repro.core.resilience import BreakerConfig, BreakerState, CircuitBreaker
from repro.errors import ConfigurationError
from repro.util.clock import SimulatedClock


def _breaker(clock=None, **overrides):
    config = BreakerConfig(
        failure_threshold=3, reset_timeout_ms=1_000.0, half_open_successes=1
    )
    if overrides:
        config = BreakerConfig(
            failure_threshold=overrides.get("failure_threshold", 3),
            reset_timeout_ms=overrides.get("reset_timeout_ms", 1_000.0),
            half_open_successes=overrides.get("half_open_successes", 1),
        )
    return CircuitBreaker(config, clock or SimulatedClock())


class TestOpening:
    def test_threshold_opens(self):
        breaker = _breaker()
        for _ in range(2):
            breaker.record_failure(transient=True)
            assert breaker.state is BreakerState.CLOSED
        breaker.record_failure(transient=True)
        assert breaker.state is BreakerState.OPEN
        assert not breaker.allow()

    def test_success_resets_streak(self):
        breaker = _breaker()
        breaker.record_failure(transient=True)
        breaker.record_failure(transient=True)
        breaker.record_success()
        breaker.record_failure(transient=True)
        breaker.record_failure(transient=True)
        assert breaker.state is BreakerState.CLOSED

    def test_permanent_failures_never_open(self):
        breaker = _breaker()
        for _ in range(10):
            breaker.record_failure(transient=False)
        assert breaker.state is BreakerState.CLOSED

    def test_permanent_failure_resets_transient_streak(self):
        breaker = _breaker()
        breaker.record_failure(transient=True)
        breaker.record_failure(transient=True)
        breaker.record_failure(transient=False)
        breaker.record_failure(transient=True)
        breaker.record_failure(transient=True)
        assert breaker.state is BreakerState.CLOSED


class TestRecovery:
    def _opened(self, clock):
        breaker = _breaker(clock)
        for _ in range(3):
            breaker.record_failure(transient=True)
        assert breaker.state is BreakerState.OPEN
        return breaker

    def test_half_opens_after_reset_timeout(self):
        clock = SimulatedClock()
        breaker = self._opened(clock)
        clock.advance(999.0)
        assert not breaker.allow()
        clock.advance(1.0)
        assert breaker.allow()
        assert breaker.state is BreakerState.HALF_OPEN

    def test_half_open_success_closes(self):
        clock = SimulatedClock()
        breaker = self._opened(clock)
        clock.advance(1_000.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state is BreakerState.CLOSED

    def test_half_open_failure_reopens(self):
        clock = SimulatedClock()
        breaker = self._opened(clock)
        clock.advance(1_000.0)
        assert breaker.allow()
        breaker.record_failure(transient=True)
        assert breaker.state is BreakerState.OPEN
        assert not breaker.allow()

    def test_half_open_requires_n_successes(self):
        clock = SimulatedClock()
        breaker = _breaker(clock, half_open_successes=2)
        for _ in range(3):
            breaker.record_failure(transient=True)
        clock.advance(1_000.0)
        breaker.record_success()
        assert breaker.state is BreakerState.HALF_OPEN
        breaker.record_success()
        assert breaker.state is BreakerState.CLOSED

    def test_transitions_log_stamped_on_virtual_clock(self):
        clock = SimulatedClock()
        breaker = self._opened(clock)
        clock.advance(1_000.0)
        breaker.allow()
        breaker.record_success()
        states = [(frm, to) for _, frm, to in breaker.transitions]
        assert states == [
            (BreakerState.CLOSED, BreakerState.OPEN),
            (BreakerState.OPEN, BreakerState.HALF_OPEN),
            (BreakerState.HALF_OPEN, BreakerState.CLOSED),
        ]
        times = [t for t, _, _ in breaker.transitions]
        assert times == [0.0, 1_000.0, 1_000.0]


class TestConfig:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            BreakerConfig(failure_threshold=0)
        with pytest.raises(ConfigurationError):
            BreakerConfig(reset_timeout_ms=-1.0)
        with pytest.raises(ConfigurationError):
            BreakerConfig(half_open_successes=0)
