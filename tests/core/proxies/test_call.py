"""Tests for the Call proxy (Android, WebView — and the S60 gap)."""

import pytest

from repro.core.proxies import create_proxy
from repro.core.proxies.call.webview import CallProxyJs, install_call_wrapper
from repro.core.proxy.callbacks import CallStateListener
from repro.core.proxy.datatypes import CallOutcome
from repro.device.telephony import TelephonyUnit
from repro.errors import ProxyPermissionError, ProxyUnavailableError


class Recorder(CallStateListener):
    def __init__(self):
        self.events = []

    def on_ringing(self, call):
        self.events.append("ringing")

    def on_answered(self, call):
        self.events.append("answered")

    def on_finished(self, call):
        self.events.append(("finished", call.outcome))


class TestAndroidBinding:
    @pytest.fixture
    def proxy(self, android_scenario):
        proxy = create_proxy("Call", android_scenario.platform)
        proxy.set_property("context", android_scenario.new_context())
        return proxy

    def test_answered_call(self, android_scenario, proxy):
        recorder = Recorder()
        handle = proxy.make_a_call("+2", recorder)
        android_scenario.platform.run_for(10_000.0)
        proxy.end_call(handle)
        assert recorder.events == [
            "ringing",
            "answered",
            ("finished", CallOutcome.COMPLETED),
        ]
        assert handle.answered

    def test_busy_outcome(self, android_scenario, proxy):
        android_scenario.device.telephony.set_callee_behavior(
            "+2", TelephonyUnit.BUSY
        )
        recorder = Recorder()
        proxy.make_a_call("+2", recorder)
        android_scenario.platform.run_for(10_000.0)
        assert recorder.events == [("finished", CallOutcome.BUSY)]

    def test_unreachable_outcome(self, android_scenario, proxy):
        android_scenario.device.telephony.set_callee_behavior(
            "+2", TelephonyUnit.UNREACHABLE
        )
        recorder = Recorder()
        proxy.make_a_call("+2", recorder)
        android_scenario.platform.run_for(10_000.0)
        assert recorder.events == [("finished", CallOutcome.UNREACHABLE)]

    def test_no_answer_outcome(self, android_scenario, proxy):
        android_scenario.device.telephony.set_callee_behavior(
            "+2", TelephonyUnit.NO_ANSWER
        )
        recorder = Recorder()
        proxy.make_a_call("+2", recorder)
        android_scenario.platform.run_for(60_000.0)
        assert recorder.events[-1] == ("finished", CallOutcome.NO_ANSWER)

    def test_function_callback_style(self, android_scenario, proxy):
        events = []
        handle = proxy.make_a_call("+2", lambda e, cid, outcome: events.append(e))
        android_scenario.platform.run_for(10_000.0)
        proxy.end_call(handle)
        assert events == ["ringing", "answered", "finished"]

    def test_permission_maps_uniformly(self, android_scenario):
        android_scenario.platform.install("noperm", set())
        proxy = create_proxy("Call", android_scenario.platform)
        proxy.set_property("context", android_scenario.platform.new_context("noperm"))
        with pytest.raises(ProxyPermissionError):
            proxy.make_a_call("+2")

    def test_call_without_listener(self, android_scenario, proxy):
        handle = proxy.make_a_call("+2")
        android_scenario.platform.run_for(10_000.0)
        assert handle.call_id


class TestS60Gap:
    def test_no_call_proxy_on_s60(self, s60_scenario):
        """The paper: 'Call proxy could not be created ... because the core
        functionality was not exposed on the S60 platform.'"""
        with pytest.raises(ProxyUnavailableError, match="Call"):
            create_proxy("Call", s60_scenario.platform)


class TestWebViewBinding:
    @pytest.fixture
    def page(self, webview_scenario):
        webview = webview_scenario.platform.new_webview()
        install_call_wrapper(
            webview, webview_scenario.platform, webview_scenario.new_context()
        )
        return webview.load_page(lambda w: None)

    def test_call_states_polled(self, webview_scenario, page):
        proxy = CallProxyJs.in_page(page)
        events = []
        handle = proxy.make_a_call("+2", lambda e, cid, outcome: events.append(e))
        webview_scenario.platform.run_for(10_000.0)
        proxy.end_call(handle)
        webview_scenario.platform.run_for(5_000.0)
        assert events == ["ringing", "answered", "finished"]

    def test_outcome_mirrored_to_js_handle(self, webview_scenario, page):
        webview_scenario.device.telephony.set_callee_behavior(
            "+2", TelephonyUnit.BUSY
        )
        proxy = CallProxyJs.in_page(page)
        recorder = Recorder()
        handle = proxy.make_a_call("+2", recorder)
        webview_scenario.platform.run_for(10_000.0)
        assert handle.outcome is CallOutcome.BUSY

    def test_polling_stops_after_finish(self, webview_scenario, page):
        proxy = CallProxyJs.in_page(page)
        handle = proxy.make_a_call("+2", lambda e, cid, outcome: None)
        webview_scenario.platform.run_for(10_000.0)
        proxy.end_call(handle)
        webview_scenario.platform.run_for(5_000.0)
        assert page.active_timer_count() == 0
