"""Tests for the WebView Location proxy (Figure 6 machinery)."""

import pytest

from repro.apps.workforce import scenario
from repro.core.proxies import create_proxy
from repro.core.proxies.location.webview import (
    LocationProxyJs,
    install_location_wrapper,
)
from repro.core.proxy.datatypes import Location
from repro.errors import ProxyError, ProxyPermissionError

SITE = scenario.SITE


@pytest.fixture
def sc(webview_scenario):
    return webview_scenario


@pytest.fixture
def page(sc):
    webview = sc.platform.new_webview()
    install_location_wrapper(webview, sc.platform, sc.new_context())
    return webview.load_page(lambda w: None)


class TestJsProxyConstruction:
    def test_in_page_constructor(self, sc, page):
        proxy = LocationProxyJs.in_page(page)
        assert proxy.interface == "Location"

    def test_factory_needs_loaded_page(self, sc):
        webview = sc.platform.new_webview()
        install_location_wrapper(webview, sc.platform, sc.new_context())
        sc.platform.active_window = None
        with pytest.raises(ProxyError, match="page"):
            create_proxy("Location", sc.platform)

    def test_factory_uses_active_window(self, sc, page):
        proxy = create_proxy("Location", sc.platform)
        assert isinstance(proxy, LocationProxyJs)

    def test_wrapper_instance_per_proxy(self, sc, page):
        first = LocationProxyJs.in_page(page)
        second = LocationProxyJs.in_page(page)
        assert first._swi != second._swi


class TestBridgeSemantics:
    def test_get_location_crosses_as_json(self, sc, page):
        proxy = LocationProxyJs.in_page(page)
        location = proxy.get_location()
        assert isinstance(location, Location)

    def test_callbacks_polled_not_pushed(self, sc, page):
        """Events only arrive when the JS polling timer drains the table."""
        proxy = LocationProxyJs.in_page(page)
        proxy.set_property("pollInterval", 1_000)
        events = []
        proxy.add_proximity_alert(
            SITE.latitude,
            SITE.longitude,
            0.0,
            SITE.radius_m,
            -1,
            lambda lat, lon, alt, cur, entering: events.append(entering),
        )
        sc.platform.run_for(200_000.0)
        assert events == [True, False, True]

    def test_function_callback_style(self, sc, page):
        """The JS syntactic plane's callback style is a bare function."""
        proxy = LocationProxyJs.in_page(page)
        calls = []
        proxy.add_proximity_alert(
            SITE.latitude, SITE.longitude, 0.0, SITE.radius_m, -1,
            lambda *args: calls.append(args),
        )
        sc.platform.run_for(100_000.0)
        ref_lat, ref_lon, ref_alt, current, entering = calls[0]
        assert ref_lat == SITE.latitude
        assert isinstance(current, Location)
        assert entering is True

    def test_remove_stops_polling(self, sc, page):
        proxy = LocationProxyJs.in_page(page)
        events = []
        listener = lambda *args: events.append(args)  # noqa: E731
        proxy.add_proximity_alert(
            SITE.latitude, SITE.longitude, 0.0, SITE.radius_m, -1, listener
        )
        proxy.remove_proximity_alert(listener)
        sc.platform.run_for(200_000.0)
        assert events == []
        assert page.active_timer_count() == 0

    def test_error_travels_as_code(self, sc, page):
        """Permission failures arrive as coded envelopes, re-raised as the
        right uniform error class in the JS domain."""
        sc.platform.android.install("noperm", set())
        webview = sc.platform.new_webview()
        install_location_wrapper(
            webview, sc.platform, sc.platform.android.new_context("noperm")
        )
        window = webview.load_page(lambda w: None)
        proxy = LocationProxyJs.in_page(window)
        with pytest.raises(ProxyPermissionError):
            proxy.get_location()

    def test_poll_interval_property_is_js_side_only(self, sc, page):
        proxy = LocationProxyJs.in_page(page)
        proxy.set_property("pollInterval", 250)
        assert proxy.get_property("pollInterval") == 250

    def test_provider_property_forwarded_to_java(self, sc, page):
        proxy = LocationProxyJs.in_page(page)
        proxy.set_property("provider", "gps")  # crosses the bridge; validated there
        assert proxy.get_location() is not None
