"""Tests for asynchronous HTTP across the three bindings."""

import pytest

from repro.core.proxies import create_proxy
from repro.core.proxies.http.webview import install_http_wrapper
from repro.core.proxy.callbacks import HttpResponseListener
from repro.device.network import HttpResponse
from repro.errors import ProxyInvalidArgumentError, ProxyPermissionError


def _add_routes(device):
    server = device.network.add_server("api.test")
    server.route("GET", "/slow", lambda r: HttpResponse(200, "eventually"))
    return server


class Recorder(HttpResponseListener):
    def __init__(self):
        self.responses = []
        self.errors = []

    def on_response(self, result):
        self.responses.append(result)

    def on_error(self, reason):
        self.errors.append(reason)


class TestAndroidAsync:
    @pytest.fixture
    def proxy(self, android_scenario):
        _add_routes(android_scenario.device)
        proxy = create_proxy("Http", android_scenario.platform)
        proxy.set_property("context", android_scenario.new_context())
        return proxy

    def test_response_arrives_later(self, android_scenario, proxy):
        recorder = Recorder()
        proxy.get_async("http://api.test/slow", recorder)
        assert recorder.responses == []  # not yet
        android_scenario.platform.run_for(5_000.0)
        assert recorder.responses[0].body == "eventually"

    def test_transport_error_to_listener(self, android_scenario, proxy):
        android_scenario.device.network.fail_next("gone")
        recorder = Recorder()
        proxy.get_async("http://api.test/slow", recorder)
        android_scenario.platform.run_for(5_000.0)
        assert recorder.errors == ["gone"]
        assert recorder.responses == []

    def test_function_callback_style(self, android_scenario, proxy):
        events = []
        proxy.get_async(
            "http://api.test/slow", lambda result, error: events.append((result, error))
        )
        android_scenario.platform.run_for(5_000.0)
        result, error = events[0]
        assert result.ok and error is None

    def test_bad_url_raises_immediately(self, proxy):
        with pytest.raises(Exception):
            proxy.get_async("nonsense", Recorder())

    def test_requires_permission(self, android_scenario):
        _add_routes(android_scenario.device)
        android_scenario.platform.install("noperm", set())
        proxy = create_proxy("Http", android_scenario.platform)
        proxy.set_property("context", android_scenario.platform.new_context("noperm"))
        with pytest.raises(ProxyPermissionError):
            proxy.get_async("http://api.test/slow", Recorder())


class TestS60Async:
    @pytest.fixture
    def proxy(self, s60_scenario):
        _add_routes(s60_scenario.device)
        return create_proxy("Http", s60_scenario.platform)

    def test_response_arrives_later(self, s60_scenario, proxy):
        recorder = Recorder()
        proxy.get_async("http://api.test/slow", recorder)
        assert recorder.responses == []
        s60_scenario.platform.run_for(5_000.0)
        assert recorder.responses[0].body == "eventually"

    def test_transport_error_to_listener(self, s60_scenario, proxy):
        s60_scenario.device.network.fail_next("tunnel")
        recorder = Recorder()
        proxy.get_async("http://api.test/slow", recorder)
        s60_scenario.platform.run_for(5_000.0)
        assert recorder.errors == ["tunnel"]

    def test_malformed_url_uniform_error(self, proxy):
        with pytest.raises(ProxyInvalidArgumentError):
            proxy.get_async("ftp://x/y", Recorder())


class TestWebViewAsync:
    @pytest.fixture
    def proxy(self, webview_scenario):
        _add_routes(webview_scenario.device)
        webview = webview_scenario.platform.new_webview()
        install_http_wrapper(
            webview, webview_scenario.platform, webview_scenario.new_context()
        )
        webview.load_page(lambda w: None)
        return create_proxy("Http", webview_scenario.platform)

    def test_response_polled_from_table(self, webview_scenario, proxy):
        recorder = Recorder()
        proxy.get_async("http://api.test/slow", recorder)
        assert recorder.responses == []
        webview_scenario.platform.run_for(5_000.0)
        assert recorder.responses[0].body == "eventually"

    def test_polling_is_one_shot(self, webview_scenario, proxy):
        window = webview_scenario.platform.active_window
        proxy.get_async("http://api.test/slow", Recorder())
        webview_scenario.platform.run_for(5_000.0)
        assert window.active_timer_count() == 0

    def test_error_crosses_as_payload(self, webview_scenario, proxy):
        webview_scenario.device.network.fail_next("dead zone")
        recorder = Recorder()
        proxy.get_async("http://api.test/slow", recorder)
        webview_scenario.platform.run_for(5_000.0)
        assert recorder.errors == ["dead zone"]
