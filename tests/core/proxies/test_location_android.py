"""Tests for the Android Location proxy binding."""

import pytest

from repro.apps.workforce import scenario
from repro.core.proxies import create_proxy
from repro.core.proxy.callbacks import ProximityListener
from repro.core.proxy.datatypes import Location
from repro.errors import (
    ProxyInvalidArgumentError,
    ProxyPermissionError,
    ProxyPropertyError,
)
from repro.platforms.android.versions import SdkVersion

SITE = scenario.SITE


class Recorder(ProximityListener):
    def __init__(self):
        self.events = []

    def proximity_event(self, ref_lat, ref_lon, ref_alt, current, entering):
        self.events.append((entering, current))


@pytest.fixture
def sc(android_scenario):
    return android_scenario


@pytest.fixture
def proxy(sc):
    proxy = create_proxy("Location", sc.platform)
    proxy.set_property("context", sc.new_context())
    return proxy


class TestGetLocation:
    def test_returns_uniform_location(self, proxy):
        location = proxy.get_location()
        assert isinstance(location, Location)
        assert location.latitude != 0.0

    def test_context_required(self, sc):
        proxy = create_proxy("Location", sc.platform)
        with pytest.raises(ProxyPropertyError, match="context"):
            proxy.get_location()

    def test_context_must_be_android_context(self, sc):
        proxy = create_proxy("Location", sc.platform)
        with pytest.raises(Exception, match="Context"):
            proxy.set_property("context", "not a context")
            proxy.get_location()

    def test_missing_permission_maps_to_uniform_error(self, sc):
        sc.platform.install("noperm", set())
        proxy = create_proxy("Location", sc.platform)
        proxy.set_property("context", sc.platform.new_context("noperm"))
        with pytest.raises(ProxyPermissionError):
            proxy.get_location()


class TestProximityAlerts:
    def test_enter_exit_enter_sequence(self, sc, proxy):
        recorder = Recorder()
        proxy.add_proximity_alert(
            SITE.latitude, SITE.longitude, 0.0, SITE.radius_m, -1, recorder
        )
        sc.platform.run_for(200_000.0)
        assert [entering for entering, _ in recorder.events] == [True, False, True]

    def test_event_carries_uniform_location(self, sc, proxy):
        recorder = Recorder()
        proxy.add_proximity_alert(
            SITE.latitude, SITE.longitude, 0.0, SITE.radius_m, -1, recorder
        )
        sc.platform.run_for(100_000.0)
        __, current = recorder.events[0]
        assert isinstance(current, Location)
        site_centre = Location(SITE.latitude, SITE.longitude)
        assert current.distance_to_m(site_centre) <= SITE.radius_m + 100.0

    def test_timer_expiration(self, sc, proxy):
        recorder = Recorder()
        # The device reaches the site at ~55 s; expire the alert at 30 s.
        proxy.add_proximity_alert(
            SITE.latitude, SITE.longitude, 0.0, SITE.radius_m, 30.0, recorder
        )
        sc.platform.run_for(200_000.0)
        assert recorder.events == []

    def test_remove_alert(self, sc, proxy):
        recorder = Recorder()
        proxy.add_proximity_alert(
            SITE.latitude, SITE.longitude, 0.0, SITE.radius_m, -1, recorder
        )
        proxy.remove_proximity_alert(recorder)
        sc.platform.run_for(200_000.0)
        assert recorder.events == []
        # broadcast registry cleaned up too
        assert sc.platform.broadcast_registry.registered_count() == 0

    def test_remove_unknown_listener_is_noop(self, proxy):
        proxy.remove_proximity_alert(Recorder())

    def test_invalid_latitude_rejected_uniformly(self, proxy):
        with pytest.raises(ProxyInvalidArgumentError):
            proxy.add_proximity_alert(200.0, 0.0, 0.0, 100.0, -1, Recorder())

    def test_invalid_radius_rejected_uniformly(self, proxy):
        with pytest.raises(ProxyInvalidArgumentError):
            proxy.add_proximity_alert(0.0, 0.0, 0.0, -5.0, -1, Recorder())

    def test_multiple_alerts_independent(self, sc, proxy):
        near, far = Recorder(), Recorder()
        proxy.add_proximity_alert(
            SITE.latitude, SITE.longitude, 0.0, SITE.radius_m, -1, near
        )
        proxy.add_proximity_alert(0.0, 0.0, 0.0, 100.0, -1, far)
        sc.platform.run_for(200_000.0)
        assert len(near.events) == 3
        assert far.events == []


class TestSdkAbsorption:
    """The maintenance claim: identical proxy code on both SDK versions."""

    @pytest.mark.parametrize("sdk", [SdkVersion.M5_RC15, SdkVersion.V1_0])
    def test_same_code_both_sdks(self, sdk):
        sc = scenario.build_android(sdk_version=sdk)
        proxy = create_proxy("Location", sc.platform)
        proxy.set_property("context", sc.new_context())
        recorder = Recorder()
        proxy.add_proximity_alert(
            SITE.latitude, SITE.longitude, 0.0, SITE.radius_m, -1, recorder
        )
        sc.platform.run_for(200_000.0)
        assert [entering for entering, _ in recorder.events] == [True, False, True]

    def test_v10_binding_uses_pending_intent_internally(self):
        from repro.platforms.android.intents import PendingIntent

        sc = scenario.build_android(sdk_version=SdkVersion.V1_0)
        proxy = create_proxy("Location", sc.platform)
        proxy.set_property("context", sc.new_context())
        recorder = Recorder()
        proxy.add_proximity_alert(
            SITE.latitude, SITE.longitude, 0.0, SITE.radius_m, -1, recorder
        )
        target, _ = proxy._registrations[id(recorder)]
        assert isinstance(target, PendingIntent)
