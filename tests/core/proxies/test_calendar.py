"""Tests for the Calendar proxy on all three platforms."""

import pytest

from repro.apps.workforce import scenario
from repro.core.plugin.packaging import WebViewPlatformExtension
from repro.core.proxies import create_proxy
from repro.core.proxy.datatypes import CalendarEvent
from repro.errors import (
    ProxyInvalidArgumentError,
    ProxyPermissionError,
)
from repro.platforms.android.calendar_provider import READ_CALENDAR, WRITE_CALENDAR
from repro.platforms.s60.packaging import Jar, JarEntry, JadDescriptor, MidletSuite
from repro.platforms.s60.pim import PERMISSION_EVENT_READ, PERMISSION_EVENT_WRITE


def _android_proxy(sc, permissions=None):
    sc.platform.install(
        "cal",
        permissions if permissions is not None else {READ_CALENDAR, WRITE_CALENDAR},
    )
    proxy = create_proxy("Calendar", sc.platform)
    proxy.set_property("context", sc.platform.new_context("cal"))
    return proxy


def _s60_proxy(sc, permissions=None):
    perms = (
        permissions
        if permissions is not None
        else [PERMISSION_EVENT_READ, PERMISSION_EVENT_WRITE]
    )
    sc.platform.install_suite(
        MidletSuite(
            JadDescriptor("cal", permissions=perms),
            Jar("c.jar", [JarEntry("A.class", 1)]),
        )
    )
    sc.platform.pim.bind_suite("cal")
    return create_proxy("Calendar", sc.platform)


def _webview_proxy(sc):
    sc.platform.android.install("cal", {READ_CALENDAR, WRITE_CALENDAR})
    context = sc.platform.android.new_context("cal")
    webview = sc.platform.new_webview()
    WebViewPlatformExtension().install_wrappers(
        webview, sc.platform, context, ["Calendar"]
    )
    webview.load_page(lambda w: None)
    return create_proxy("Calendar", sc.platform)


def _proxy_for(platform_name):
    if platform_name == "android":
        return _android_proxy(scenario.build_android())
    if platform_name == "s60":
        return _s60_proxy(scenario.build_s60())
    return _webview_proxy(scenario.build_webview())


PLATFORMS = ["android", "s60", "webview"]


class TestUniformBehaviour:
    @pytest.mark.parametrize("platform_name", PLATFORMS)
    def test_crud_round_trip(self, platform_name):
        proxy = _proxy_for(platform_name)
        event_id = proxy.add_event("Maintenance", 1_000.0, 5_000.0)
        proxy.add_event("Stand-up", 8_000.0, 9_000.0)
        events = proxy.list_events()
        assert [e.summary for e in events] == ["Maintenance", "Stand-up"]
        assert all(isinstance(e, CalendarEvent) for e in events)
        proxy.remove_event(event_id)
        assert [e.summary for e in proxy.list_events()] == ["Stand-up"]

    @pytest.mark.parametrize("platform_name", PLATFORMS)
    def test_events_between_window(self, platform_name):
        proxy = _proxy_for(platform_name)
        proxy.add_event("Inside", 1_000.0, 2_000.0)
        proxy.add_event("Outside", 10_000.0, 11_000.0)
        hits = proxy.events_between(500.0, 3_000.0)
        assert [e.summary for e in hits] == ["Inside"]

    @pytest.mark.parametrize("platform_name", PLATFORMS)
    def test_event_location_property(self, platform_name):
        proxy = _proxy_for(platform_name)
        proxy.set_property("eventLocation", "site-7")
        proxy.add_event("Visit", 0.0, 100.0)
        assert proxy.list_events()[0].location == "site-7"

    @pytest.mark.parametrize("platform_name", PLATFORMS)
    def test_inverted_window_rejected_uniformly(self, platform_name):
        proxy = _proxy_for(platform_name)
        with pytest.raises(ProxyInvalidArgumentError):
            proxy.add_event("Backwards", 100.0, 50.0)

    @pytest.mark.parametrize("platform_name", PLATFORMS)
    def test_negative_instant_rejected(self, platform_name):
        proxy = _proxy_for(platform_name)
        with pytest.raises(ProxyInvalidArgumentError):
            proxy.add_event("Prehistoric", -5.0, 100.0)

    @pytest.mark.parametrize("platform_name", PLATFORMS)
    def test_remove_unknown_is_noop(self, platform_name):
        proxy = _proxy_for(platform_name)
        proxy.remove_event("event-999")


class TestPermissionMapping:
    def test_android_read_permission(self):
        proxy = _android_proxy(scenario.build_android(), permissions=set())
        with pytest.raises(ProxyPermissionError):
            proxy.list_events()

    def test_android_write_permission(self):
        proxy = _android_proxy(scenario.build_android(), permissions={READ_CALENDAR})
        proxy.list_events()
        with pytest.raises(ProxyPermissionError):
            proxy.add_event("X", 0.0, 1.0)

    def test_s60_permissions(self):
        proxy = _s60_proxy(scenario.build_s60(), permissions=[PERMISSION_EVENT_READ])
        proxy.list_events()
        with pytest.raises(ProxyPermissionError):
            proxy.add_event("X", 0.0, 1.0)

    def test_webview_error_as_code(self):
        sc = scenario.build_webview()
        sc.platform.android.install("noperm", set())
        webview = sc.platform.new_webview()
        WebViewPlatformExtension().install_wrappers(
            webview, sc.platform, sc.platform.android.new_context("noperm"), ["Calendar"]
        )
        webview.load_page(lambda w: None)
        proxy = create_proxy("Calendar", sc.platform)
        with pytest.raises(ProxyPermissionError):
            proxy.list_events()
