"""Cross-platform uniformity: the paper's central claim, as tests.

The same application-level interaction sequence, run through the proxies
on Android, S60 and WebView, must produce the *same observable behaviour*
— identical event sequences, identical value types, identical uniform
errors — even though the three native stacks disagree about everything.
"""

import pytest

from repro.apps.workforce import scenario
from repro.core.proxies import create_proxy
from repro.core.proxies.location.webview import install_location_wrapper
from repro.core.proxies.sms.webview import install_sms_wrapper
from repro.core.proxies.http.webview import install_http_wrapper
from repro.core.proxy.callbacks import ProximityListener
from repro.core.proxy.datatypes import Location
from repro.device.network import HttpResponse
from repro.errors import ProxyInvalidArgumentError

SITE = scenario.SITE


class Recorder(ProximityListener):
    def __init__(self):
        self.events = []

    def proximity_event(self, ref_lat, ref_lon, ref_alt, current, entering):
        self.events.append(
            {
                "ref": (ref_lat, ref_lon, ref_alt),
                "entering": entering,
                "location_type": type(current).__name__,
            }
        )


def _location_proxy_for(platform_name):
    """Build (scenario, location proxy) for a platform by name."""
    if platform_name == "android":
        sc = scenario.build_android()
        proxy = create_proxy("Location", sc.platform)
        proxy.set_property("context", sc.new_context())
        return sc, proxy
    if platform_name == "s60":
        sc = scenario.build_s60()
        return sc, create_proxy("Location", sc.platform)
    sc = scenario.build_webview()
    webview = sc.platform.new_webview()
    install_location_wrapper(webview, sc.platform, sc.new_context())
    webview.load_page(lambda w: None)
    proxy = create_proxy("Location", sc.platform)
    proxy.set_property("pollInterval", 500)
    return sc, proxy


PLATFORMS = ["android", "s60", "webview"]


class TestProximityUniformity:
    @pytest.mark.parametrize("platform_name", PLATFORMS)
    def test_event_sequence_identical(self, platform_name):
        sc, proxy = _location_proxy_for(platform_name)
        recorder = Recorder()
        proxy.add_proximity_alert(
            SITE.latitude, SITE.longitude, 0.0, SITE.radius_m, -1, recorder
        )
        sc.platform.run_for(200_000.0)
        assert [e["entering"] for e in recorder.events] == [True, False, True], (
            f"{platform_name} diverged"
        )

    @pytest.mark.parametrize("platform_name", PLATFORMS)
    def test_event_payload_uniform(self, platform_name):
        sc, proxy = _location_proxy_for(platform_name)
        recorder = Recorder()
        proxy.add_proximity_alert(
            SITE.latitude, SITE.longitude, 0.0, SITE.radius_m, -1, recorder
        )
        sc.platform.run_for(100_000.0)
        event = recorder.events[0]
        assert event["ref"] == (SITE.latitude, SITE.longitude, 0.0)
        assert event["location_type"] == "Location"

    @pytest.mark.parametrize("platform_name", PLATFORMS)
    def test_expiration_uniform(self, platform_name):
        sc, proxy = _location_proxy_for(platform_name)
        recorder = Recorder()
        proxy.add_proximity_alert(
            SITE.latitude, SITE.longitude, 0.0, SITE.radius_m, 30.0, recorder
        )
        sc.platform.run_for(200_000.0)
        assert recorder.events == []

    @pytest.mark.parametrize("platform_name", PLATFORMS)
    def test_get_location_returns_uniform_type(self, platform_name):
        sc, proxy = _location_proxy_for(platform_name)
        location = proxy.get_location()
        assert isinstance(location, Location)

    @pytest.mark.parametrize("platform_name", PLATFORMS)
    def test_invalid_arguments_rejected_identically(self, platform_name):
        sc, proxy = _location_proxy_for(platform_name)
        with pytest.raises(ProxyInvalidArgumentError):
            proxy.add_proximity_alert(400.0, 0.0, 0.0, 100.0, -1, Recorder())


class TestSmsUniformity:
    def _sms_proxy_for(self, platform_name):
        if platform_name == "android":
            sc = scenario.build_android()
            proxy = create_proxy("Sms", sc.platform)
            proxy.set_property("context", sc.new_context())
            return sc, proxy
        if platform_name == "s60":
            sc = scenario.build_s60()
            return sc, create_proxy("Sms", sc.platform)
        sc = scenario.build_webview()
        webview = sc.platform.new_webview()
        install_sms_wrapper(webview, sc.platform, sc.new_context())
        webview.load_page(lambda w: None)
        return sc, create_proxy("Sms", sc.platform)

    @pytest.mark.parametrize("platform_name", PLATFORMS)
    def test_message_arrives(self, platform_name):
        sc, proxy = self._sms_proxy_for(platform_name)
        proxy.send_text_message("+77", "uniform hello")
        sc.platform.run_for(5_000.0)
        inbox = sc.device.sms_center.inbox_of("+77")
        assert [m.text for m in inbox] == ["uniform hello"]

    @pytest.mark.parametrize("platform_name", PLATFORMS)
    def test_sent_event_fires_everywhere(self, platform_name):
        sc, proxy = self._sms_proxy_for(platform_name)
        events = []
        proxy.send_text_message("+77", "x", lambda e, mid, r: events.append(e))
        sc.platform.run_for(5_000.0)
        assert "sent" in events


class TestHttpUniformity:
    def _http_proxy_for(self, platform_name):
        if platform_name == "android":
            sc = scenario.build_android()
            proxy = create_proxy("Http", sc.platform)
            proxy.set_property("context", sc.new_context())
        elif platform_name == "s60":
            sc = scenario.build_s60()
            proxy = create_proxy("Http", sc.platform)
        else:
            sc = scenario.build_webview()
            webview = sc.platform.new_webview()
            install_http_wrapper(webview, sc.platform, sc.new_context())
            webview.load_page(lambda w: None)
            proxy = create_proxy("Http", sc.platform)
        server = sc.device.network.add_server("api.test")
        server.route("GET", "/ping", lambda r: HttpResponse(200, "pong"))
        return sc, proxy

    @pytest.mark.parametrize("platform_name", PLATFORMS)
    def test_result_identical(self, platform_name):
        sc, proxy = self._http_proxy_for(platform_name)
        result = proxy.get("http://api.test/ping")
        assert (result.status, result.body) == (200, "pong")


class TestFactory:
    def test_implementation_strings_resolve(self):
        from repro.core.proxies.factory import implementation_class
        from repro.core.proxies import standard_registry

        registry = standard_registry()
        for interface in registry.interfaces():
            descriptor = registry.descriptor(interface)
            for binding in descriptor.bindings.values():
                assert implementation_class(binding.implementation_class)

    def test_unknown_implementation_string(self):
        from repro.core.proxies.factory import implementation_class
        from repro.errors import RegistryError

        with pytest.raises(RegistryError):
            implementation_class("com.nowhere.Ghost")
