"""Bridge error-code round trip: every uniform error survives JS <-> Java.

Exceptions cannot cross the WebView bridge, so errors travel as numeric
codes in JSON envelopes (paper Section 4.1).  This is the regression net
for the resilience additions: the new transient subclasses (network,
bridge, circuit-open, sensor) must round-trip like every older code —
encode on the Java side, decode on the JS side, and come back as the
SAME class with its transiency intact.
"""

import pytest

from repro.core.proxies.webview_common import decode_or_raise, encode_error
from repro.core.proxy.exceptions import (
    UNIFORM_ERRORS,
    code_to_error_class,
    error_code_for,
    is_transient,
    uniform_error_class,
)
from repro.errors import ProxyError


class TestCodeTable:
    def test_codes_are_unique(self):
        codes = [cls.error_code for cls in UNIFORM_ERRORS.values()]
        assert len(codes) == len(set(codes))

    def test_code_lookup_is_inverse_of_class_lookup(self):
        for name, cls in UNIFORM_ERRORS.items():
            assert uniform_error_class(name) is cls
            assert code_to_error_class(error_code_for(name)) is cls

    def test_unknown_code_degrades_to_base_error(self):
        assert code_to_error_class(99_999) is ProxyError

    def test_resilience_error_classes_are_registered(self):
        # the additions that motivated this net
        for name in (
            "ProxyTransientError",
            "ProxyNetworkError",
            "ProxyBridgeError",
            "ProxyCircuitOpenError",
            "ProxySensorError",
        ):
            assert name in UNIFORM_ERRORS


@pytest.mark.parametrize(
    "error_class", list(UNIFORM_ERRORS.values()), ids=lambda c: c.__name__
)
class TestRoundTrip:
    def test_class_survives_the_bridge(self, error_class):
        original = error_class("it broke")
        with pytest.raises(error_class) as excinfo:
            decode_or_raise(encode_error(original))
        assert type(excinfo.value) is error_class
        assert "it broke" in str(excinfo.value)

    def test_transiency_survives_the_bridge(self, error_class):
        original = error_class("it broke")
        try:
            decode_or_raise(encode_error(original))
        except ProxyError as decoded:
            assert is_transient(decoded) == is_transient(original)
        else:  # pragma: no cover - decode_or_raise must raise
            pytest.fail("decode_or_raise did not raise")
