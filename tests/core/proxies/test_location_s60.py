"""Tests for the S60 Location proxy binding — the gap-filling machinery."""

import pytest

from repro.apps.workforce import scenario
from repro.core.proxies import create_proxy
from repro.core.proxy.callbacks import ProximityListener
from repro.errors import ProxyPermissionError, ProxyPlatformError

SITE = scenario.SITE


class Recorder(ProximityListener):
    def __init__(self):
        self.events = []

    def proximity_event(self, ref_lat, ref_lon, ref_alt, current, entering):
        self.events.append(entering)


@pytest.fixture
def sc(s60_scenario):
    return s60_scenario


@pytest.fixture
def proxy(sc):
    return create_proxy("Location", sc.platform)


class TestGapFilling:
    def test_exit_events_synthesized(self, sc, proxy):
        """Native S60 has no exit events; the binding synthesizes them."""
        recorder = Recorder()
        proxy.add_proximity_alert(
            SITE.latitude, SITE.longitude, 0.0, SITE.radius_m, -1, recorder
        )
        sc.platform.run_for(200_000.0)
        assert recorder.events == [True, False, True]

    def test_reregistration_after_each_fire(self, sc, proxy):
        """The one-shot native listener is re-armed so the SECOND entry
        fires too — the uniform repeating semantics."""
        recorder = Recorder()
        proxy.add_proximity_alert(
            SITE.latitude, SITE.longitude, 0.0, SITE.radius_m, -1, recorder
        )
        sc.platform.run_for(200_000.0)
        assert recorder.events.count(True) == 2

    def test_expiration_emulated(self, sc, proxy):
        recorder = Recorder()
        proxy.add_proximity_alert(
            SITE.latitude, SITE.longitude, 0.0, SITE.radius_m, 30.0, recorder
        )
        sc.platform.run_for(200_000.0)
        assert recorder.events == []

    def test_expiration_mid_flight_stops_events(self, sc, proxy):
        recorder = Recorder()
        # Expire at 70 s: entry (~55 s) fires, exit (~65s) may fire, second
        # entry (~175 s) must not.
        proxy.add_proximity_alert(
            SITE.latitude, SITE.longitude, 0.0, SITE.radius_m, 70.0, recorder
        )
        sc.platform.run_for(200_000.0)
        assert recorder.events.count(True) == 1

    def test_remove_alert_tears_down_machinery(self, sc, proxy):
        recorder = Recorder()
        proxy.add_proximity_alert(
            SITE.latitude, SITE.longitude, 0.0, SITE.radius_m, -1, recorder
        )
        proxy.remove_proximity_alert(recorder)
        sc.platform.run_for(200_000.0)
        assert recorder.events == []
        assert sc.platform.location_provider.proximity_registration_count == 0


class TestCriteriaProperties:
    def test_properties_feed_criteria(self, sc, proxy):
        proxy.set_property("horizontalAccuracy", 100)
        proxy.set_property("powerConsumption", "LOW")
        location = proxy.get_location()
        assert location.latitude != 0.0

    def test_unsatisfiable_accuracy_is_uniform_error(self, sc, proxy):
        proxy.set_property("horizontalAccuracy", 1)
        with pytest.raises(ProxyPlatformError, match="criteria"):
            proxy.get_location()

    def test_out_of_service_maps_to_uniform_error(self, sc, proxy):
        sc.platform.location_provider.out_of_service = True
        with pytest.raises(ProxyPlatformError):
            proxy.get_location()

    def test_missing_permission_maps_uniformly(self, sc):
        from repro.platforms.s60.packaging import (
            Jar,
            JarEntry,
            JadDescriptor,
            MidletSuite,
        )

        sc.platform.install_suite(
            MidletSuite(
                JadDescriptor("noperm"), Jar("n.jar", [JarEntry("A.class", 1)])
            )
        )
        sc.platform.location_provider.bind_suite("noperm")
        proxy = create_proxy("Location", sc.platform)
        with pytest.raises(ProxyPermissionError):
            proxy.get_location()

    def test_android_only_property_unknown_here(self, proxy):
        from repro.errors import ProxyPropertyError

        with pytest.raises(ProxyPropertyError):
            proxy.set_property("context", object())
