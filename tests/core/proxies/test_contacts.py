"""Tests for the Contacts proxy (the paper's future-work interface)."""

import pytest

from repro.apps.workforce import scenario
from repro.core.plugin.packaging import WebViewPlatformExtension
from repro.core.proxies import create_proxy
from repro.core.proxy.datatypes import Contact
from repro.errors import ProxyPermissionError
from repro.platforms.android.contacts import READ_CONTACTS, WRITE_CONTACTS
from repro.platforms.s60.packaging import Jar, JarEntry, JadDescriptor, MidletSuite
from repro.platforms.s60.pim import PERMISSION_PIM_READ, PERMISSION_PIM_WRITE


def _android_proxy(sc, permissions=None):
    sc.platform.install(
        "pim", permissions if permissions is not None else {READ_CONTACTS, WRITE_CONTACTS}
    )
    proxy = create_proxy("Contacts", sc.platform)
    proxy.set_property("context", sc.platform.new_context("pim"))
    return proxy


def _s60_proxy(sc, permissions=None):
    perms = (
        permissions
        if permissions is not None
        else [PERMISSION_PIM_READ, PERMISSION_PIM_WRITE]
    )
    sc.platform.install_suite(
        MidletSuite(
            JadDescriptor("pim", permissions=perms),
            Jar("p.jar", [JarEntry("A.class", 1)]),
        )
    )
    sc.platform.pim.bind_suite("pim")
    return create_proxy("Contacts", sc.platform)


def _webview_proxy(sc):
    sc.platform.android.install("pim", {READ_CONTACTS, WRITE_CONTACTS})
    context = sc.platform.android.new_context("pim")
    webview = sc.platform.new_webview()
    WebViewPlatformExtension().install_wrappers(
        webview, sc.platform, context, ["Contacts"]
    )
    webview.load_page(lambda w: None)
    return create_proxy("Contacts", sc.platform)


class TestUniformBehaviour:
    @pytest.mark.parametrize("platform_name", ["android", "s60", "webview"])
    def test_crud_round_trip(self, platform_name):
        if platform_name == "android":
            sc = scenario.build_android()
            proxy = _android_proxy(sc)
        elif platform_name == "s60":
            sc = scenario.build_s60()
            proxy = _s60_proxy(sc)
        else:
            sc = scenario.build_webview()
            proxy = _webview_proxy(sc)

        contact_id = proxy.add_contact("Region Supervisor", "+915550001")
        proxy.add_contact("Alice Agent", "+915550042")
        contacts = proxy.list_contacts()
        assert [(c.name, c.primary_number) for c in contacts] == [
            ("Alice Agent", "+915550042"),
            ("Region Supervisor", "+915550001"),
        ]
        assert all(isinstance(c, Contact) for c in contacts)
        found = proxy.find_by_name("super")
        assert [c.name for c in found] == ["Region Supervisor"]
        proxy.remove_contact(contact_id)
        assert [c.name for c in proxy.list_contacts()] == ["Alice Agent"]

    @pytest.mark.parametrize("platform_name", ["android", "s60", "webview"])
    def test_remove_unknown_is_noop(self, platform_name):
        if platform_name == "android":
            proxy = _android_proxy(scenario.build_android())
        elif platform_name == "s60":
            proxy = _s60_proxy(scenario.build_s60())
        else:
            proxy = _webview_proxy(scenario.build_webview())
        proxy.remove_contact("contact-999")  # uniform: silently no-op


class TestPermissionMapping:
    def test_android_read_permission(self):
        sc = scenario.build_android()
        proxy = _android_proxy(sc, permissions=set())
        with pytest.raises(ProxyPermissionError):
            proxy.list_contacts()

    def test_android_write_permission(self):
        sc = scenario.build_android()
        proxy = _android_proxy(sc, permissions={READ_CONTACTS})
        proxy.list_contacts()  # read ok
        with pytest.raises(ProxyPermissionError):
            proxy.add_contact("X", "+1")

    def test_s60_read_permission(self):
        sc = scenario.build_s60()
        proxy = _s60_proxy(sc, permissions=[])
        with pytest.raises(ProxyPermissionError):
            proxy.list_contacts()

    def test_s60_write_permission(self):
        sc = scenario.build_s60()
        proxy = _s60_proxy(sc, permissions=[PERMISSION_PIM_READ])
        proxy.list_contacts()
        with pytest.raises(ProxyPermissionError):
            proxy.add_contact("X", "+1")

    def test_webview_error_as_code(self):
        sc = scenario.build_webview()
        sc.platform.android.install("noperm", set())
        context = sc.platform.android.new_context("noperm")
        webview = sc.platform.new_webview()
        WebViewPlatformExtension().install_wrappers(
            webview, sc.platform, context, ["Contacts"]
        )
        webview.load_page(lambda w: None)
        proxy = create_proxy("Contacts", sc.platform)
        with pytest.raises(ProxyPermissionError):
            proxy.list_contacts()


class TestDrawerIntegration:
    def test_contacts_in_every_drawer(self):
        from repro.core.plugin.drawer import ProxyDrawer
        from repro.core.proxies import standard_registry

        for platform in ("android", "s60", "webview"):
            drawer = ProxyDrawer(standard_registry(), platform)
            assert "Contacts" in drawer.categories()
            item_names = [i.name for i in drawer.items("Contacts")]
            assert item_names == [
                "listContacts",
                "findByName",
                "addContact",
                "removeContact",
            ]
