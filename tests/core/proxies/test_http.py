"""Tests for the HTTP proxy on all three platforms."""

import pytest

from repro.core.proxies import create_proxy
from repro.core.proxies.http.webview import HttpProxyJs, install_http_wrapper
from repro.device.network import HttpResponse
from repro.errors import (
    ProxyInvalidArgumentError,
    ProxyPermissionError,
    ProxyPlatformError,
)


def _add_routes(device):
    server = device.network.add_server("api.test")
    server.route("GET", "/ping", lambda r: HttpResponse(200, "pong"))
    server.route("POST", "/echo", lambda r: HttpResponse(200, r.body))
    server.route(
        "GET",
        "/agent",
        lambda r: HttpResponse(200, r.header("User-Agent", "")),
    )
    return server


class TestAndroidBinding:
    @pytest.fixture
    def proxy(self, android_scenario):
        _add_routes(android_scenario.device)
        proxy = create_proxy("Http", android_scenario.platform)
        proxy.set_property("context", android_scenario.new_context())
        return proxy

    def test_get(self, proxy):
        result = proxy.get("http://api.test/ping")
        assert result.ok and result.body == "pong"

    def test_post(self, proxy):
        result = proxy.post("http://api.test/echo", "payload")
        assert result.body == "payload"

    def test_user_agent_property(self, proxy):
        proxy.set_property("userAgent", "WorkforceApp/2.0")
        assert proxy.get("http://api.test/agent").body == "WorkforceApp/2.0"

    def test_default_user_agent(self, proxy):
        assert proxy.get("http://api.test/agent").body == "MobiVine/1.0"

    def test_transport_failure_uniform(self, android_scenario, proxy):
        android_scenario.device.network.fail_next("no bearer")
        with pytest.raises(ProxyPlatformError):
            proxy.get("http://api.test/ping")

    def test_bad_url_uniform(self, proxy):
        with pytest.raises((ProxyInvalidArgumentError, ProxyPlatformError)):
            proxy.get("not-a-url")

    def test_permission_uniform(self, android_scenario):
        _add_routes(android_scenario.device)
        android_scenario.platform.install("noperm", set())
        proxy = create_proxy("Http", android_scenario.platform)
        proxy.set_property("context", android_scenario.platform.new_context("noperm"))
        with pytest.raises(ProxyPermissionError):
            proxy.get("http://api.test/ping")


class TestS60Binding:
    @pytest.fixture
    def proxy(self, s60_scenario):
        _add_routes(s60_scenario.device)
        return create_proxy("Http", s60_scenario.platform)

    def test_get(self, proxy):
        assert proxy.get("http://api.test/ping").body == "pong"

    def test_post(self, proxy):
        assert proxy.post("http://api.test/echo", "data").body == "data"

    def test_transport_failure_uniform(self, s60_scenario, proxy):
        s60_scenario.device.network.fail_next("down")
        with pytest.raises(ProxyPlatformError):
            proxy.get("http://api.test/ping")

    def test_no_context_property_on_s60(self, proxy):
        from repro.errors import ProxyPropertyError

        with pytest.raises(ProxyPropertyError):
            proxy.set_property("context", object())


class TestWebViewBinding:
    @pytest.fixture
    def page(self, webview_scenario):
        _add_routes(webview_scenario.device)
        webview = webview_scenario.platform.new_webview()
        install_http_wrapper(
            webview, webview_scenario.platform, webview_scenario.new_context()
        )
        return webview.load_page(lambda w: None)

    def test_get_over_bridge(self, page):
        proxy = HttpProxyJs.in_page(page)
        assert proxy.get("http://api.test/ping").body == "pong"

    def test_post_over_bridge(self, page):
        proxy = HttpProxyJs.in_page(page)
        assert proxy.post("http://api.test/echo", "x").body == "x"

    def test_transport_failure_as_error_code(self, webview_scenario, page):
        proxy = HttpProxyJs.in_page(page)
        webview_scenario.device.network.fail_next("gone")
        with pytest.raises(ProxyPlatformError):
            proxy.get("http://api.test/ping")

    def test_content_type_property_forwarded(self, webview_scenario, page):
        seen = {}

        def handler(request):
            seen["ct"] = request.header("Content-Type")
            return HttpResponse(200)

        webview_scenario.device.network.server("api.test").route(
            "POST", "/ct", handler
        )
        proxy = HttpProxyJs.in_page(page)
        proxy.set_property("contentType", "application/json")
        proxy.post("http://api.test/ct", "{}")
        assert seen["ct"] == "application/json"
