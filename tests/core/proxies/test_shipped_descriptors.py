"""The packaged descriptor XML documents are the artifacts of record."""

import pytest

from repro.core.descriptor.schema import validate_descriptor_xml
from repro.core.descriptor.xml_io import descriptor_from_xml, descriptor_to_xml
from repro.core.proxies.factory import (
    SHIPPED_DESCRIPTOR_FILES,
    descriptors_dir,
    standard_registry,
)

BUILDERS = {
    "location.xml": "repro.core.proxies.location.descriptor.build_location_descriptor",
    "sms.xml": "repro.core.proxies.sms.descriptor.build_sms_descriptor",
    "call.xml": "repro.core.proxies.call.descriptor.build_call_descriptor",
    "http.xml": "repro.core.proxies.http.descriptor.build_http_descriptor",
    "contacts.xml": "repro.core.proxies.contacts.descriptor.build_contacts_descriptor",
    "calendar.xml": "repro.core.proxies.calendar.descriptor.build_calendar_descriptor",
}


def _builder(path):
    module_path, __, name = BUILDERS[path].rpartition(".")
    module = __import__(module_path, fromlist=[name])
    return getattr(module, name)


class TestShippedFiles:
    def test_every_listed_file_exists(self):
        for file_name in SHIPPED_DESCRIPTOR_FILES:
            assert (descriptors_dir() / file_name).exists(), file_name

    @pytest.mark.parametrize("file_name", SHIPPED_DESCRIPTOR_FILES)
    def test_file_is_schema_valid(self, file_name):
        text = (descriptors_dir() / file_name).read_text()
        assert validate_descriptor_xml(text) == []

    @pytest.mark.parametrize("file_name", SHIPPED_DESCRIPTOR_FILES)
    def test_file_matches_builder(self, file_name):
        """The XML on disk is exactly what the builder generates.

        Regenerate after editing a builder:
        ``descriptor_to_xml(build_*())`` → the file.
        """
        on_disk = (descriptors_dir() / file_name).read_text()
        assert on_disk == descriptor_to_xml(_builder(file_name)())

    @pytest.mark.parametrize("file_name", SHIPPED_DESCRIPTOR_FILES)
    def test_file_parses_to_builder_equivalent(self, file_name):
        parsed = descriptor_from_xml((descriptors_dir() / file_name).read_text())
        built = _builder(file_name)()
        assert parsed.semantic == built.semantic
        assert parsed.syntactic == built.syntactic
        assert parsed.bindings == built.bindings

    def test_registry_loads_from_files(self):
        registry = standard_registry()
        assert len(registry) == len(SHIPPED_DESCRIPTOR_FILES)
