"""Tests for the SMS proxy on all three platforms."""

import pytest

from repro.apps.workforce import scenario
from repro.core.proxies import create_proxy
from repro.core.proxies.sms.webview import SmsProxyJs, install_sms_wrapper
from repro.core.proxy.callbacks import SmsStatusListener
from repro.errors import (
    ProxyInvalidArgumentError,
    ProxyPermissionError,
    ProxyPropertyError,
)


class Recorder(SmsStatusListener):
    def __init__(self):
        self.events = []

    def on_sent(self, message_id):
        self.events.append(("sent", message_id))

    def on_delivered(self, message_id):
        self.events.append(("delivered", message_id))

    def on_failed(self, message_id, reason):
        self.events.append(("failed", reason))


class TestAndroidBinding:
    @pytest.fixture
    def proxy(self, android_scenario):
        proxy = create_proxy("Sms", android_scenario.platform)
        proxy.set_property("context", android_scenario.new_context())
        return proxy

    def test_send_returns_id(self, android_scenario, proxy):
        assert proxy.send_text_message("+2", "hi")

    def test_sent_and_delivered_events(self, android_scenario, proxy):
        recorder = Recorder()
        message_id = proxy.send_text_message("+2", "hi", recorder)
        android_scenario.platform.run_for(3_000.0)
        assert recorder.events == [
            ("sent", message_id),
            ("delivered", message_id),
        ]

    def test_delivery_reports_can_be_disabled(self, android_scenario, proxy):
        proxy.set_property("deliveryReports", False)
        recorder = Recorder()
        proxy.send_text_message("+2", "hi", recorder)
        android_scenario.platform.run_for(3_000.0)
        assert [event for event, _ in recorder.events] == ["sent"]

    def test_failure_event(self, android_scenario, proxy):
        android_scenario.device.sms_center.set_unreachable("+2")
        recorder = Recorder()
        proxy.send_text_message("+2", "hi", recorder)
        android_scenario.platform.run_for(3_000.0)
        assert recorder.events[0][0] == "failed"

    def test_function_callback_style(self, android_scenario, proxy):
        events = []
        proxy.send_text_message("+2", "hi", lambda e, mid, r: events.append(e))
        android_scenario.platform.run_for(3_000.0)
        assert events == ["sent", "delivered"]

    def test_permission_maps_uniformly(self, android_scenario):
        android_scenario.platform.install("noperm", set())
        proxy = create_proxy("Sms", android_scenario.platform)
        proxy.set_property("context", android_scenario.platform.new_context("noperm"))
        with pytest.raises(ProxyPermissionError):
            proxy.send_text_message("+2", "hi")

    def test_argument_validation(self, proxy):
        with pytest.raises(ProxyInvalidArgumentError):
            proxy.send_text_message(123, "hi")


class TestS60Binding:
    @pytest.fixture
    def proxy(self, s60_scenario):
        return create_proxy("Sms", s60_scenario.platform)

    def test_send_delivers(self, s60_scenario, proxy):
        proxy.send_text_message("+2", "hello from s60")
        s60_scenario.platform.run_for(3_000.0)
        inbox = s60_scenario.device.sms_center.inbox_of("+2")
        assert [m.text for m in inbox] == ["hello from s60"]

    def test_sent_fires_but_never_delivered(self, s60_scenario, proxy):
        """The WMA stack has no delivery reports (documented gap)."""
        recorder = Recorder()
        proxy.send_text_message("+2", "hi", recorder)
        s60_scenario.platform.run_for(10_000.0)
        assert [event for event, _ in recorder.events] == ["sent"]

    def test_delivery_reports_property_unknown_on_s60(self, proxy):
        with pytest.raises(ProxyPropertyError):
            proxy.set_property("deliveryReports", True)

    def test_permission_maps_uniformly(self, s60_scenario):
        from repro.platforms.s60.packaging import (
            Jar,
            JarEntry,
            JadDescriptor,
            MidletSuite,
        )

        s60_scenario.platform.install_suite(
            MidletSuite(JadDescriptor("noperm"), Jar("n.jar", [JarEntry("A.class", 1)]))
        )
        s60_scenario.platform.connector.bind_suite("noperm")
        proxy = create_proxy("Sms", s60_scenario.platform)
        with pytest.raises(ProxyPermissionError):
            proxy.send_text_message("+2", "hi")


class TestWebViewBinding:
    @pytest.fixture
    def page(self, webview_scenario):
        webview = webview_scenario.platform.new_webview()
        install_sms_wrapper(
            webview, webview_scenario.platform, webview_scenario.new_context()
        )
        return webview.load_page(lambda w: None)

    def test_send_and_status_via_polling(self, webview_scenario, page):
        proxy = SmsProxyJs.in_page(page)
        events = []
        message_id = proxy.send_text_message(
            "+2", "hi", lambda e, mid, r: events.append((e, mid))
        )
        webview_scenario.platform.run_for(5_000.0)
        assert ("sent", message_id) in events
        assert ("delivered", message_id) in events

    def test_stop_tracking_halts_polling(self, webview_scenario, page):
        proxy = SmsProxyJs.in_page(page)
        message_id = proxy.send_text_message("+2", "hi", lambda e, mid, r: None)
        proxy.stop_tracking(message_id)
        assert page.active_timer_count() == 0

    def test_error_code_over_bridge(self, webview_scenario):
        webview_scenario.platform.android.install("noperm", set())
        webview = webview_scenario.platform.new_webview()
        install_sms_wrapper(
            webview,
            webview_scenario.platform,
            webview_scenario.platform.android.new_context("noperm"),
        )
        window = webview.load_page(lambda w: None)
        proxy = SmsProxyJs.in_page(window)
        with pytest.raises(ProxyPermissionError):
            proxy.send_text_message("+2", "hi")

    def test_factory_path(self, webview_scenario, page):
        proxy = create_proxy("Sms", webview_scenario.platform)
        assert isinstance(proxy, SmsProxyJs)


class TestReceiverLifecycle:
    def test_receivers_unregister_after_delivery(self, android_scenario):
        proxy = create_proxy("Sms", android_scenario.platform)
        proxy.set_property("context", android_scenario.new_context())
        registry = android_scenario.platform.broadcast_registry
        for _ in range(5):
            proxy.send_text_message("+2", "hi", Recorder())
            android_scenario.platform.run_for(3_000.0)
        assert registry.registered_count() == 0

    def test_receivers_unregister_after_failure(self, android_scenario):
        android_scenario.device.sms_center.set_unreachable("+2")
        proxy = create_proxy("Sms", android_scenario.platform)
        proxy.set_property("context", android_scenario.new_context())
        registry = android_scenario.platform.broadcast_registry
        proxy.send_text_message("+2", "hi", Recorder())
        android_scenario.platform.run_for(3_000.0)
        # the delivery broadcast will never come; both receivers torn down
        assert registry.registered_count() == 0
