"""Tests for the end-to-end plugin flow (drawer → dialog → embed)."""

import pytest

from repro.core.plugin import CodeFile, MobiVinePlugin, Toolkit
from repro.core.proxies import standard_registry
from repro.errors import ConfigurationError


@pytest.fixture
def toolkit():
    return Toolkit("eclipse")


@pytest.fixture
def plugin(toolkit):
    return MobiVinePlugin(toolkit, standard_registry(), "s60")


class TestToolkitModel:
    def test_project_files(self, toolkit):
        project = toolkit.create_project("p", "android")
        project.add_file(CodeFile("Main.java", "class Main { /*HERE*/ }"))
        project.file("Main.java").insert_at_marker("/*HERE*/", "int x;")
        assert "int x;" in project.file("Main.java").content

    def test_duplicate_project_rejected(self, toolkit):
        toolkit.create_project("p", "android")
        with pytest.raises(ConfigurationError):
            toolkit.create_project("p", "s60")

    def test_duplicate_file_rejected(self, toolkit):
        project = toolkit.create_project("p", "android")
        project.add_file(CodeFile("A.java"))
        with pytest.raises(ConfigurationError):
            project.add_file(CodeFile("A.java"))

    def test_missing_marker_rejected(self, toolkit):
        project = toolkit.create_project("p", "android")
        project.add_file(CodeFile("A.java", "no marker here"))
        with pytest.raises(ConfigurationError):
            project.file("A.java").insert_at_marker("/*X*/", "y")

    def test_plugin_registration(self, toolkit, plugin):
        assert plugin in toolkit.plugins


class TestPluginFlow:
    def test_drawer_to_embed(self, toolkit, plugin):
        item = plugin.drawer.find("Location", "addProximityAlert")
        dialog = plugin.open_configuration(item)
        dialog.set_variable("radius", 500.0)
        dialog.set_callback_target("this")
        project = toolkit.create_project("wfm", "s60")
        project.add_file(
            CodeFile(
                "WorkForceManagement.java",
                "public void startApp() {\n    /*PROXY*/\n}\n",
            )
        )
        snippet = plugin.embed(
            project, dialog, file_name="WorkForceManagement.java", marker="/*PROXY*/"
        )
        content = project.file("WorkForceManagement.java").content
        assert snippet in content
        assert "mobivine-location-s60.jar" in project.classpath

    def test_platform_mismatch_rejected(self, toolkit, plugin):
        item = plugin.drawer.find("Location", "getLocation")
        dialog = plugin.open_configuration(item)
        project = toolkit.create_project("mismatch", "android")
        project.add_file(CodeFile("A.java", "/*M*/"))
        with pytest.raises(ConfigurationError, match="android"):
            plugin.embed(project, dialog, file_name="A.java", marker="/*M*/")

    def test_generated_code_is_previewable_before_embed(self, plugin):
        item = plugin.drawer.find("Sms", "sendTextMessage")
        dialog = plugin.open_configuration(item)
        dialog.set_variable("destination", "+915550001")
        dialog.set_variable("text", "Arrived at site")
        preview = dialog.preview()
        assert 'sendTextMessage("+915550001", "Arrived at site"' in preview
