"""Tests for the proxy documentation renderer."""

import pytest

from repro.core.plugin.docs import render_proxy_markdown, render_registry_markdown
from repro.core.proxies import standard_registry


class TestProxyPage:
    def test_location_page_covers_three_planes(self):
        page = render_proxy_markdown(standard_registry().descriptor("Location"))
        assert "# Location proxy" in page
        assert "## Interface (semantic plane)" in page
        assert "`addProximityAlert(" in page
        assert "## Language types (syntactic planes)" in page
        assert "### java (callback style: object)" in page
        assert "### javascript (callback style: function)" in page
        assert "## Platform bindings (binding planes)" in page
        assert "com.ibm.S60.location.LocationProxy" in page
        assert "`preferredResponseTime`" in page
        assert "NO_REQUIREMENT, LOW, MEDIUM, HIGH" in page
        assert "LocationException" in page

    def test_callback_documented(self):
        page = render_proxy_markdown(standard_registry().descriptor("Location"))
        assert "proximityEvent(refLatitude, refLongitude, refAltitude" in page

    def test_call_page_shows_only_two_platforms(self):
        page = render_proxy_markdown(standard_registry().descriptor("Call"))
        assert "### android" in page
        assert "### webview" in page
        assert "### s60" not in page

    def test_every_shipped_proxy_renders(self):
        registry = standard_registry()
        for interface in registry.interfaces():
            page = render_proxy_markdown(registry.descriptor(interface))
            assert page.startswith(f"# {interface} proxy")
            assert "Implementation:" in page


class TestCatalogue:
    def test_coverage_matrix(self):
        catalogue = render_registry_markdown(standard_registry())
        assert "# MobiVine proxy catalogue" in catalogue
        assert "| Call | android, webview |" in catalogue
        assert "| Location | android, s60, webview |" in catalogue

    def test_contains_all_pages(self):
        catalogue = render_registry_markdown(standard_registry())
        for interface in standard_registry().interfaces():
            assert f"# {interface} proxy" in catalogue

    def test_checked_in_catalogue_is_current(self):
        """docs/PROXIES.md is generated; fail if it drifts from the
        descriptors (regenerate with the snippet in its test)."""
        import pathlib

        path = pathlib.Path(__file__).resolve().parents[3] / "docs" / "PROXIES.md"
        assert path.read_text() == render_registry_markdown(standard_registry())
