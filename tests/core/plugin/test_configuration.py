"""Tests for the configuration dialog (plugin features 2 and 3)."""

import pytest

from repro.core.plugin.configuration import ConfigurationDialog
from repro.core.proxies import standard_registry
from repro.errors import ConfigurationError


@pytest.fixture
def descriptor():
    return standard_registry().descriptor("Location")


@pytest.fixture
def dialog(descriptor):
    return ConfigurationDialog(descriptor, "addProximityAlert", "s60")


class TestPresentation:
    def test_variables_column(self, dialog):
        fields = dialog.variable_fields()
        names = [field.name for field in fields]
        assert names == [
            "latitude",
            "longitude",
            "altitude",
            "radius",
            "timer",
            "proximityListener",
        ]
        # types from the java syntactic plane
        types = {field.name: field.type_name for field in fields}
        assert types["latitude"] == "double"
        assert types["radius"] == "float"

    def test_properties_column_shows_defaults_and_alloweds(self, dialog):
        fields = {field.name: field for field in dialog.property_fields()}
        assert fields["preferredResponseTime"].default == 1000
        assert fields["powerConsumption"].allowed_values == (
            "NO_REQUIREMENT",
            "LOW",
            "MEDIUM",
            "HIGH",
        )

    def test_android_dialog_shows_context_required(self, descriptor):
        dialog = ConfigurationDialog(descriptor, "addProximityAlert", "android")
        fields = {field.name: field for field in dialog.property_fields()}
        assert fields["context"].required

    def test_webview_dialog_uses_javascript_types(self, descriptor):
        dialog = ConfigurationDialog(descriptor, "addProximityAlert", "webview")
        types = {f.name: f.type_name for f in dialog.variable_fields()}
        assert types["latitude"] == "number"
        assert types["proximityListener"] == "function"


class TestConfiguration:
    def test_variable_dimension_checked(self, dialog):
        dialog.set_variable("latitude", 28.6)
        with pytest.raises(ConfigurationError):
            dialog.set_variable("latitude", 412.0)

    def test_identifier_reference_allowed(self, dialog):
        # A string is treated as a reference to a user variable.
        dialog.set_variable("latitude", "siteLatitude")

    def test_property_allowed_values_checked(self, dialog):
        dialog.set_property("powerConsumption", "MEDIUM")
        with pytest.raises(ConfigurationError):
            dialog.set_property("powerConsumption", "TURBO")

    def test_unknown_property_rejected(self, dialog):
        with pytest.raises(Exception):
            dialog.set_property("warpDrive", 9)

    def test_validation_issues_flag_required_property(self, descriptor):
        dialog = ConfigurationDialog(descriptor, "addProximityAlert", "android")
        issues = dialog.validation_issues()
        assert any("context" in issue for issue in issues)


class TestSourcePreview:
    def test_java_snippet_shape(self, dialog):
        dialog.set_variable("radius", 500.0)
        dialog.set_property("powerConsumption", "LOW")
        dialog.set_callback_target("this")
        snippet = dialog.preview()
        assert "new LocationProxy()" in snippet
        assert 'setProperty("powerConsumption", "LOW")' in snippet
        assert "addProximityAlert(latitude, longitude, altitude, 500.0, timer, this)" in snippet
        assert "try {" in snippet
        assert "LocationException" in snippet  # the S60 exception set

    def test_android_snippet_feeds_context(self, descriptor):
        dialog = ConfigurationDialog(descriptor, "addProximityAlert", "android")
        snippet = dialog.preview()
        assert 'setProperty("context", this)' in snippet

    def test_javascript_snippet_shape(self, descriptor):
        dialog = ConfigurationDialog(descriptor, "addProximityAlert", "webview")
        dialog.set_callback_target("proximityEvent")
        snippet = dialog.preview()
        assert "var proxy = new LocationProxyJs()" in snippet
        assert "proximityEvent" in snippet
        assert "catch (ex)" in snippet

    def test_get_location_snippet(self, descriptor):
        dialog = ConfigurationDialog(descriptor, "getLocation", "s60")
        snippet = dialog.preview()
        assert "proxy.getLocation()" in snippet


class TestNewInterfaceDialogs:
    """The dialog machinery is generic: future-work proxies get it free."""

    def test_contacts_dialog(self):
        descriptor = standard_registry().descriptor("Contacts")
        dialog = ConfigurationDialog(descriptor, "addContact", "android")
        names = [field.name for field in dialog.variable_fields()]
        assert names == ["name", "phoneNumber"]
        dialog.set_variable("name", "Region Supervisor")
        dialog.set_variable("phoneNumber", "+915550001")
        snippet = dialog.preview()
        assert 'proxy.addContact("Region Supervisor", "+915550001");' in snippet

    def test_calendar_dialog_validates_instants(self):
        descriptor = standard_registry().descriptor("Calendar")
        dialog = ConfigurationDialog(descriptor, "addEvent", "s60")
        dialog.set_variable("startMs", 1_000.0)
        with pytest.raises(ConfigurationError):
            dialog.set_variable("startMs", -5.0)

    def test_calendar_webview_dialog_types(self):
        descriptor = standard_registry().descriptor("Calendar")
        dialog = ConfigurationDialog(descriptor, "addEvent", "webview")
        types = {f.name: f.type_name for f in dialog.variable_fields()}
        assert types == {"summary": "string", "startMs": "number", "endMs": "number"}
