"""Tests for platform-specific plugin extensions (feature 4: embedding)."""

import pytest

from repro.core.plugin.packaging import (
    AndroidPlatformExtension,
    S60PlatformExtension,
    WebViewPlatformExtension,
    extension_for,
    proxy_jar,
)
from repro.core.plugin.toolkit import Project
from repro.errors import ConfigurationError
from repro.platforms.s60.packaging import Jar, JarEntry


class TestAndroidExtension:
    def test_embed_wires_classpath(self):
        project = Project("app", "android")
        AndroidPlatformExtension().embed_proxy(project, "Location")
        assert "mobivine-location-android.jar" in project.classpath
        assert "libs/mobivine-location-android.jar" in project.resources

    def test_embed_idempotent(self):
        project = Project("app", "android")
        extension = AndroidPlatformExtension()
        extension.embed_proxy(project, "Sms")
        extension.embed_proxy(project, "Sms")
        assert project.classpath.count("mobivine-sms-android.jar") == 1


class TestS60Extension:
    def test_single_jar_merge_on_deploy(self):
        """The platform requires ONE MIDlet-suite jar: proxies merge in."""
        project = Project("wfm", "s60")
        extension = S60PlatformExtension()
        extension.embed_proxy(project, "Location")
        extension.embed_proxy(project, "Sms")
        app_jar = Jar("wfm.jar", [JarEntry("WFM.class", 2_048)])
        suite = extension.build_suite(project, app_jar)
        paths = [entry.path for entry in suite.jar.entries]
        assert "WFM.class" in paths
        assert "com/ibm/S60/location/LocationProxy.class" in paths
        assert "com/ibm/S60/sms/SmsProxy.class" in paths

    def test_jad_gains_proxy_permissions(self):
        project = Project("wfm", "s60")
        extension = S60PlatformExtension()
        extension.embed_proxy(project, "Location")
        extension.embed_proxy(project, "Http")
        suite = extension.build_suite(
            project, Jar("wfm.jar", [JarEntry("A.class", 1)])
        )
        assert "javax.microedition.location.Location" in suite.jad.permissions
        assert "javax.microedition.io.Connector.http" in suite.jad.permissions

    def test_no_call_jar_exists_for_s60(self):
        with pytest.raises(ConfigurationError):
            proxy_jar("s60", "Call")

    def test_unembedded_project_builds_plain_suite(self):
        project = Project("bare", "s60")
        extension = S60PlatformExtension()
        suite = extension.build_suite(
            project, Jar("bare.jar", [JarEntry("A.class", 1)])
        )
        assert len(suite.jar.entries) == 1
        assert suite.jad.permissions == []


class TestWebViewExtension:
    def test_embed_injects_js_and_wiring(self):
        project = Project("web", "webview", language="javascript")
        extension = WebViewPlatformExtension()
        extension.embed_proxy(project, "Location")
        assert "proxies/location_proxy.js" in project.files
        wiring = project.file("WebViewWiring.java").content
        assert "addJavascriptInterface" in wiring
        assert "LocationWrapper" in wiring

    def test_embed_idempotent(self):
        project = Project("web", "webview")
        extension = WebViewPlatformExtension()
        extension.embed_proxy(project, "Sms")
        extension.embed_proxy(project, "Sms")
        wiring = project.file("WebViewWiring.java").content
        wiring_lines = [l for l in wiring.splitlines() if "new SmsWrapper" in l]
        assert len(wiring_lines) == 1

    def test_install_wrappers_runtime_half(self, webview_scenario):
        webview = webview_scenario.platform.new_webview()
        extension = WebViewPlatformExtension()
        installed = extension.install_wrappers(
            webview,
            webview_scenario.platform,
            webview_scenario.new_context(),
            ["Location", "Sms", "Http", "Call"],
        )
        assert set(installed) == {"Location", "Sms", "Http", "Call"}
        assert set(webview.bridge.names()) >= {
            "LocationWrapper",
            "SmsWrapper",
            "HttpWrapper",
            "CallWrapper",
        }

    def test_unknown_interface_rejected(self, webview_scenario):
        webview = webview_scenario.platform.new_webview()
        with pytest.raises(ConfigurationError):
            WebViewPlatformExtension().install_wrappers(
                webview, webview_scenario.platform, webview_scenario.new_context(), ["Camera"]
            )


class TestExtensionFactory:
    def test_known_platforms(self):
        assert isinstance(extension_for("android"), AndroidPlatformExtension)
        assert isinstance(extension_for("s60"), S60PlatformExtension)
        assert isinstance(extension_for("webview"), WebViewPlatformExtension)

    def test_unknown_platform(self):
        with pytest.raises(ConfigurationError):
            extension_for("palm")
