"""Tests for the C syntactic plane and generator (paper §3.1's C claim)."""

import pytest

from repro.core.descriptor.schema import validate_descriptor_xml
from repro.core.descriptor.xml_io import descriptor_to_xml
from repro.core.plugin.codegen import generator_for
from repro.core.proxies import standard_registry


@pytest.fixture
def location():
    return standard_registry().descriptor("Location")


class TestCSyntacticPlane:
    def test_location_ships_a_c_plane(self, location):
        assert "c" in location.languages()
        plane = location.syntactic["c"]
        assert plane.callback_style == "function"

    def test_callback_is_a_function_pointer(self, location):
        plane = location.syntactic["c"]
        assert plane.type_of("addProximityAlert", "proximityListener") == (
            "proximity_event_fn *"
        )

    def test_c_plane_survives_xml_and_schema(self, location):
        xml_text = descriptor_to_xml(location)
        assert 'language="c"' in xml_text
        assert validate_descriptor_xml(xml_text) == []

    def test_no_platform_binds_c(self, location):
        for binding in location.bindings.values():
            assert binding.language != "c"


class TestCGenerator:
    def test_snippet_shape(self, location):
        snippet = generator_for("c").generate(
            location,
            "addProximityAlert",
            "android",
            variables={"radius": 500.0},
            properties={"provider": "gps"},
        )
        assert "_new();" in snippet
        assert 'proxy_set_property(proxy, "provider", "gps");' in snippet
        assert "proxy_add_proximity_alert(proxy, latitude, longitude" in snippet
        assert "&callback_function" in snippet
        assert "proxy_last_error(proxy)" in snippet

    def test_boolean_rendering(self, location):
        snippet = generator_for("c").generate(
            location, "getLocation", "android", {}, {"flag": True}
        )
        assert '"flag", 1' in snippet
