"""Tests for the Proxy Drawer (plugin feature 1: visibility)."""

import pytest

from repro.core.plugin.drawer import ProxyDrawer
from repro.core.proxies import standard_registry
from repro.errors import RegistryError


@pytest.fixture
def registry():
    return standard_registry()


class TestCategories:
    def test_android_drawer_has_all_shipped(self, registry):
        drawer = ProxyDrawer(registry, "android")
        assert drawer.categories() == [
            "Calendar", "Call", "Contacts", "Http", "Location", "Sms",
        ]

    def test_s60_drawer_lacks_call(self, registry):
        """Figure 7(a): the S60 drawer shows only the implementable proxies."""
        drawer = ProxyDrawer(registry, "s60")
        assert drawer.categories() == [
            "Calendar", "Contacts", "Http", "Location", "Sms",
        ]

    def test_webview_drawer(self, registry):
        drawer = ProxyDrawer(registry, "webview")
        assert "Call" in drawer.categories()


class TestItems:
    def test_location_items_are_its_apis(self, registry):
        drawer = ProxyDrawer(registry, "android")
        names = [item.name for item in drawer.items("Location")]
        assert names == ["addProximityAlert", "removeProximityAlert", "getLocation"]

    def test_items_carry_descriptions(self, registry):
        drawer = ProxyDrawer(registry, "android")
        item = drawer.find("Location", "addProximityAlert")
        assert "proximity" in item.description.lower()

    def test_unavailable_category_rejected(self, registry):
        drawer = ProxyDrawer(registry, "s60")
        with pytest.raises(RegistryError):
            drawer.items("Call")

    def test_find_unknown_item(self, registry):
        drawer = ProxyDrawer(registry, "android")
        with pytest.raises(RegistryError):
            drawer.find("Location", "teleport")

    def test_all_items_maps_every_category(self, registry):
        drawer = ProxyDrawer(registry, "android")
        all_items = drawer.all_items()
        assert set(all_items) == set(drawer.categories())
        assert all(items for items in all_items.values())
