"""Tests for the per-language code generators."""

import pytest

from repro.core.plugin.codegen import (
    JavaGenerator,
    JavascriptGenerator,
    PythonGenerator,
    generator_for,
)
from repro.core.proxies import standard_registry
from repro.errors import ConfigurationError


@pytest.fixture
def location():
    return standard_registry().descriptor("Location")


@pytest.fixture
def sms():
    return standard_registry().descriptor("Sms")


class TestJavaGenerator:
    def test_figure8_shape(self, location):
        snippet = JavaGenerator().generate(
            location,
            "addProximityAlert",
            "android",
            variables={"radius": 500.0, "timer": -1},
            properties={"context": "__context__", "provider": "gps"},
            callback_target="this",
        )
        assert "LocationProxyImpl proxy = new LocationProxyImpl();" in snippet
        assert 'proxy.setProperty("context", this);' in snippet
        assert 'proxy.setProperty("provider", "gps");' in snippet
        assert (
            "proxy.addProximityAlert(latitude, longitude, altitude, 500.0, -1, this);"
            in snippet
        )
        assert snippet.startswith("try {")
        assert "catch (Exception e)" in snippet

    def test_exception_comment_lists_platform_set(self, location):
        snippet = JavaGenerator().generate(
            location, "addProximityAlert", "s60", {}, {}
        )
        assert "s60 specific exceptions" in snippet
        assert "LocationException" in snippet

    def test_boolean_rendering(self, sms):
        snippet = JavaGenerator().generate(
            sms, "sendTextMessage", "android", {}, {"deliveryReports": True}
        )
        assert 'setProperty("deliveryReports", true)' in snippet

    def test_unconfigured_variables_become_identifiers(self, location):
        snippet = JavaGenerator().generate(location, "getLocation", "android", {}, {})
        assert "proxy.getLocation();" in snippet


class TestJavascriptGenerator:
    def test_figure9_shape(self, location):
        snippet = JavascriptGenerator().generate(
            location,
            "addProximityAlert",
            "webview",
            variables={},
            properties={"provider": "gps"},
            callback_target="proximityEvent",
        )
        assert "var proxy = new LocationProxyJs();" in snippet
        assert 'proxy.setProperty("provider", "gps");' in snippet
        assert "proximityEvent" in snippet
        assert "catch (ex)" in snippet

    def test_default_callback_name(self, location):
        snippet = JavascriptGenerator().generate(
            location, "addProximityAlert", "webview", {}, {}
        )
        assert "callbackFunction" in snippet


class TestPythonGenerator:
    def test_snake_case_mapping(self, location):
        snippet = PythonGenerator().generate(
            location, "addProximityAlert", "android", {"radius": 500.0}, {}
        )
        assert "proxy.add_proximity_alert(" in snippet
        assert "except ProxyError" in snippet

    def test_runnable_shape(self, sms):
        snippet = PythonGenerator().generate(
            sms, "sendTextMessage", "s60", {"destination": "+1", "text": "hi"}, {}
        )
        assert "proxy.send_text_message('+1', 'hi'" in snippet


class TestGeneratorLookup:
    def test_known_languages(self):
        assert generator_for("java").language == "java"
        assert generator_for("javascript").language == "javascript"
        assert generator_for("python").language == "python"

    def test_unknown_language(self):
        with pytest.raises(ConfigurationError):
            generator_for("brainfuck")
