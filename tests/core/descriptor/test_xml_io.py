"""XML round-trip tests, including a property-based generator."""

import pytest
from hypothesis import given, strategies as st

from repro.core.descriptor.model import (
    BindingPlane,
    CallbackSpec,
    ExceptionSpec,
    MethodSpec,
    ParameterSpec,
    PropertySpec,
    ProxyDescriptor,
    ReturnSpec,
    SemanticPlane,
    SyntacticPlane,
    TypeBinding,
)
from repro.core.descriptor.xml_io import descriptor_from_xml, descriptor_to_xml
from repro.core.proxies.location.descriptor import build_location_descriptor
from repro.core.proxies.sms.descriptor import build_sms_descriptor
from repro.core.proxies.call.descriptor import build_call_descriptor
from repro.core.proxies.http.descriptor import build_http_descriptor
from repro.core.proxies.contacts.descriptor import build_contacts_descriptor
from repro.core.proxies.calendar.descriptor import build_calendar_descriptor
from repro.errors import DescriptorError


ALL_BUILDERS = [
    build_location_descriptor,
    build_sms_descriptor,
    build_call_descriptor,
    build_http_descriptor,
    build_contacts_descriptor,
    build_calendar_descriptor,
]


@pytest.mark.parametrize("build", ALL_BUILDERS)
def test_shipped_descriptors_round_trip(build):
    """Every shipped descriptor survives XML serialize → parse intact."""
    original = build()
    xml_text = descriptor_to_xml(original)
    parsed = descriptor_from_xml(xml_text)
    assert parsed.interface == original.interface
    assert parsed.semantic == original.semantic
    assert parsed.syntactic == original.syntactic
    assert parsed.bindings == original.bindings


def test_round_trip_is_fixed_point():
    xml_once = descriptor_to_xml(build_location_descriptor())
    xml_twice = descriptor_to_xml(descriptor_from_xml(xml_once))
    assert xml_once == xml_twice


class TestParsingErrors:
    def test_malformed_xml(self):
        with pytest.raises(DescriptorError, match="malformed"):
            descriptor_from_xml("<proxy")

    def test_wrong_root(self):
        with pytest.raises(DescriptorError, match="root"):
            descriptor_from_xml("<thing/>")

    def test_missing_interface(self):
        with pytest.raises(DescriptorError, match="interface"):
            descriptor_from_xml("<proxy><semantic/></proxy>")

    def test_missing_semantic(self):
        with pytest.raises(DescriptorError, match="semantic"):
            descriptor_from_xml('<proxy interface="X"/>')

    def test_parameter_missing_attributes(self):
        text = (
            '<proxy interface="X"><semantic>'
            '<method name="m"><parameter name="a"/></method>'
            "</semantic></proxy>"
        )
        with pytest.raises(DescriptorError):
            descriptor_from_xml(text)


# ---------------------------------------------------------------------------
# property-based round trip over generated descriptors
# ---------------------------------------------------------------------------

_name = st.from_regex(r"[a-z][a-zA-Z0-9]{0,10}", fullmatch=True)
_dimension = st.sampled_from(
    ["angle.latitude", "angle.longitude", "length.radius", "text.message", "flag.boolean"]
)


@st.composite
def _methods(draw):
    count = draw(st.integers(min_value=1, max_value=3))
    methods = []
    used = set()
    for _ in range(count):
        name = draw(_name.filter(lambda n: n not in used))
        used.add(name)
        param_count = draw(st.integers(min_value=0, max_value=4))
        param_names = draw(
            st.lists(_name, min_size=param_count, max_size=param_count, unique=True)
        )
        parameters = tuple(
            ParameterSpec(
                p,
                draw(_dimension),
                i + 1,
                description=draw(st.sampled_from(["", "a param"])),
                optional=draw(st.booleans()),
            )
            for i, p in enumerate(param_names)
        )
        returns = draw(
            st.one_of(st.none(), st.just(ReturnSpec("object.location", "r")))
        )
        methods.append(MethodSpec(name=name, parameters=parameters, returns=returns))
    return tuple(methods)


@given(_methods(), st.booleans())
def test_generated_descriptor_round_trips(methods, with_binding):
    semantic = SemanticPlane(interface="Gen", methods=methods)
    descriptor = ProxyDescriptor(semantic=semantic)
    descriptor.add_syntactic(
        SyntacticPlane(
            language="java",
            method_types={
                m.name: tuple(
                    TypeBinding(p.name, "java.lang.String") for p in m.parameters
                )
                for m in methods
            },
        )
    )
    if with_binding:
        descriptor.add_binding(
            BindingPlane(
                platform="android",
                language="java",
                implementation_class="com.x.Impl",
                properties=(
                    PropertySpec("p", type_name="int", default=3, allowed_values=(1, 2, 3)),
                ),
                exceptions=(ExceptionSpec("java.lang.SecurityException", "ProxyPermissionError", 1001),),
            )
        )
    parsed = descriptor_from_xml(descriptor_to_xml(descriptor))
    assert parsed.semantic == descriptor.semantic
    assert parsed.syntactic == descriptor.syntactic
    assert parsed.bindings == descriptor.bindings
