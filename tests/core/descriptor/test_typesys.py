"""Tests for the dimension system."""

import pytest

from repro.core.descriptor.typesys import (
    Dimension,
    DimensionRegistry,
    STANDARD_DIMENSIONS,
)
from repro.errors import DescriptorError


class TestDimension:
    def test_numeric_bounds(self):
        lat = STANDARD_DIMENSIONS.get("angle.latitude")
        lat.validate(45.0)
        with pytest.raises(ValueError):
            lat.validate(91.0)
        with pytest.raises(ValueError):
            lat.validate(-91.0)

    def test_numeric_rejects_bool(self):
        lat = STANDARD_DIMENSIONS.get("angle.latitude")
        with pytest.raises(ValueError):
            lat.validate(True)

    def test_numeric_rejects_string(self):
        radius = STANDARD_DIMENSIONS.get("length.radius")
        with pytest.raises(ValueError):
            radius.validate("500")

    def test_radius_must_be_positive(self):
        radius = STANDARD_DIMENSIONS.get("length.radius")
        radius.validate(0.5)
        with pytest.raises(ValueError):
            radius.validate(0.0)

    def test_duration_allows_minus_one(self):
        duration = STANDARD_DIMENSIONS.get("time.duration")
        duration.validate(-1)
        with pytest.raises(ValueError):
            duration.validate(-2)

    def test_string_dimension(self):
        text = STANDARD_DIMENSIONS.get("text.message")
        text.validate("hello")
        with pytest.raises(ValueError):
            text.validate(5)

    def test_bool_dimension(self):
        flag = STANDARD_DIMENSIONS.get("flag.boolean")
        flag.validate(True)
        with pytest.raises(ValueError):
            flag.validate(1)

    def test_object_dimension_accepts_anything(self):
        callback = STANDARD_DIMENSIONS.get("callback.proximity")
        callback.validate(object())
        callback.validate(None)

    def test_language_type_lookup(self):
        lat = STANDARD_DIMENSIONS.get("angle.latitude")
        assert lat.type_for_language("java") == "double"
        assert lat.type_for_language("javascript") == "number"
        with pytest.raises(DescriptorError):
            lat.type_for_language("cobol")


class TestDimensionRegistry:
    def test_duplicate_rejected(self):
        registry = DimensionRegistry()
        registry.register(Dimension("x"))
        with pytest.raises(DescriptorError):
            registry.register(Dimension("x"))

    def test_unknown_lookup(self):
        with pytest.raises(DescriptorError):
            DimensionRegistry().get("ghost")

    def test_contains(self):
        assert "angle.latitude" in STANDARD_DIMENSIONS
        assert "made.up" not in STANDARD_DIMENSIONS

    def test_standard_names_sorted(self):
        names = STANDARD_DIMENSIONS.names()
        assert names == sorted(names)
        assert len(names) >= 15
