"""Tests for the five descriptor schemas."""

import pytest

from repro.core.descriptor.schema import validate_descriptor_xml
from repro.core.descriptor.xml_io import descriptor_to_xml
from repro.core.proxies.location.descriptor import build_location_descriptor
from repro.errors import DescriptorError


def _valid_xml():
    return descriptor_to_xml(build_location_descriptor())


class TestValidDocuments:
    def test_shipped_descriptor_is_schema_clean(self):
        assert validate_descriptor_xml(_valid_xml()) == []


class TestProxyLevel:
    def test_missing_interface(self):
        violations = validate_descriptor_xml("<proxy><semantic><method name='m'/></semantic></proxy>")
        assert any("interface" in v.message for v in violations)

    def test_missing_semantic(self):
        violations = validate_descriptor_xml('<proxy interface="X"/>')
        assert any("semantic" in v.message for v in violations)

    def test_unknown_language_plane(self):
        text = (
            '<proxy interface="X"><semantic><method name="m"/></semantic>'
            '<syntactic language="cobol"/></proxy>'
        )
        violations = validate_descriptor_xml(text)
        assert any("cobol" in v.message for v in violations)

    def test_not_well_formed_raises(self):
        with pytest.raises(DescriptorError):
            validate_descriptor_xml("<proxy")


class TestSemanticSchema:
    def test_requires_a_method(self):
        violations = validate_descriptor_xml(
            '<proxy interface="X"><semantic/></proxy>'
        )
        assert any("at least one" in v.message for v in violations)

    def test_duplicate_method_names(self):
        text = (
            '<proxy interface="X"><semantic>'
            '<method name="m"/><method name="m"/>'
            "</semantic></proxy>"
        )
        violations = validate_descriptor_xml(text)
        assert any("duplicate method" in v.message for v in violations)

    def test_unknown_dimension(self):
        text = (
            '<proxy interface="X"><semantic><method name="m">'
            '<parameter name="a" dimension="made.up" order="1"/>'
            "</method></semantic></proxy>"
        )
        violations = validate_descriptor_xml(text)
        assert any("unknown dimension" in v.message for v in violations)

    def test_non_contiguous_orders(self):
        text = (
            '<proxy interface="X"><semantic><method name="m">'
            '<parameter name="a" dimension="text.message" order="1"/>'
            '<parameter name="b" dimension="text.message" order="3"/>'
            "</method></semantic></proxy>"
        )
        violations = validate_descriptor_xml(text)
        assert any("orders must be 1..N" in v.message for v in violations)

    def test_callback_attributes_required(self):
        text = (
            '<proxy interface="X"><semantic><method name="m">'
            "<callback/></method></semantic></proxy>"
        )
        violations = validate_descriptor_xml(text)
        messages = [v.message for v in violations]
        assert any("parameter attribute" in m for m in messages)
        assert any("event attribute" in m for m in messages)


class TestSyntacticSchemas:
    def test_java_rejects_function_callbacks(self):
        text = (
            '<proxy interface="X"><semantic><method name="m"/></semantic>'
            '<syntactic language="java" callbackStyle="function"/></proxy>'
        )
        violations = validate_descriptor_xml(text)
        assert any("callbackStyle" in v.message for v in violations)

    def test_javascript_rejects_object_callbacks(self):
        text = (
            '<proxy interface="X"><semantic><method name="m"/></semantic>'
            '<syntactic language="javascript" callbackStyle="object"/></proxy>'
        )
        violations = validate_descriptor_xml(text)
        assert any("callbackStyle" in v.message for v in violations)

    def test_java_unqualified_nonprimitive_type(self):
        text = (
            '<proxy interface="X"><semantic><method name="m"/></semantic>'
            '<syntactic language="java" callbackStyle="object">'
            '<method name="m"><type parameter="a">Widget</type></method>'
            "</syntactic></proxy>"
        )
        violations = validate_descriptor_xml(text)
        assert any("neither a java primitive" in v.message for v in violations)

    def test_java_primitives_accepted(self):
        text = (
            '<proxy interface="X"><semantic><method name="m">'
            '<parameter name="a" dimension="text.message" order="1"/></method></semantic>'
            '<syntactic language="java" callbackStyle="object">'
            '<method name="m"><type parameter="a">double</type></method>'
            "</syntactic></proxy>"
        )
        assert validate_descriptor_xml(text) == []

    def test_empty_type_name(self):
        text = (
            '<proxy interface="X"><semantic><method name="m"/></semantic>'
            '<syntactic language="javascript" callbackStyle="function">'
            '<method name="m"><type parameter="a"></type></method>'
            "</syntactic></proxy>"
        )
        violations = validate_descriptor_xml(text)
        assert any("empty type" in v.message for v in violations)


class TestBindingSchemas:
    def test_java_binding_platform_restricted(self):
        text = (
            '<proxy interface="X"><semantic><method name="m"/></semantic>'
            '<binding platform="webview" language="java"><class>com.x.Y</class></binding>'
            "</proxy>"
        )
        violations = validate_descriptor_xml(text)
        assert any("not allowed" in v.message for v in violations)

    def test_javascript_binding_platform_restricted(self):
        text = (
            '<proxy interface="X"><semantic><method name="m"/></semantic>'
            '<binding platform="android" language="javascript"><class>p.j</class></binding>'
            "</proxy>"
        )
        violations = validate_descriptor_xml(text)
        assert any("not allowed" in v.message for v in violations)

    def test_missing_class_element(self):
        text = (
            '<proxy interface="X"><semantic><method name="m"/></semantic>'
            '<binding platform="android" language="java"/></proxy>'
        )
        violations = validate_descriptor_xml(text)
        assert any("class" in v.message for v in violations)

    def test_bad_exception_code(self):
        text = (
            '<proxy interface="X"><semantic><method name="m"/></semantic>'
            '<binding platform="android" language="java"><class>c.X</class>'
            '<exception class="java.lang.E" code="lots"/></binding></proxy>'
        )
        violations = validate_descriptor_xml(text)
        assert any("integer" in v.message for v in violations)

    def test_duplicate_property_names(self):
        text = (
            '<proxy interface="X"><semantic><method name="m"/></semantic>'
            '<binding platform="android" language="java"><class>c.X</class>'
            '<property name="p"/><property name="p"/></binding></proxy>'
        )
        violations = validate_descriptor_xml(text)
        assert any("duplicate property" in v.message for v in violations)

    def test_unknown_property_type(self):
        text = (
            '<proxy interface="X"><semantic><method name="m"/></semantic>'
            '<binding platform="android" language="java"><class>c.X</class>'
            '<property name="p" type="quaternion"/></binding></proxy>'
        )
        violations = validate_descriptor_xml(text)
        assert any("unknown property type" in v.message for v in violations)

    def test_multiple_violations_all_reported(self):
        text = (
            '<proxy interface="X"><semantic/>'
            '<binding platform="palm" language="java"/></proxy>'
        )
        violations = validate_descriptor_xml(text)
        assert len(violations) >= 2
