"""Tests for the proxy registry."""

import pytest

from repro.core.descriptor.model import BindingPlane
from repro.core.descriptor.registry import ProxyRegistry
from repro.core.descriptor.xml_io import descriptor_to_xml
from repro.core.proxies import standard_registry
from repro.core.proxies.call.descriptor import build_call_descriptor
from repro.core.proxies.location.descriptor import build_location_descriptor
from repro.errors import DescriptorError, RegistryError


class TestRegistration:
    def test_register_and_lookup(self):
        registry = ProxyRegistry()
        registry.register(build_location_descriptor())
        assert "Location" in registry
        assert registry.descriptor("Location").interface == "Location"

    def test_duplicate_rejected(self):
        registry = ProxyRegistry()
        registry.register(build_location_descriptor())
        with pytest.raises(RegistryError):
            registry.register(build_location_descriptor())

    def test_register_xml_validates_schema(self):
        registry = ProxyRegistry()
        with pytest.raises(DescriptorError, match="schema"):
            registry.register_xml(
                '<proxy interface="Bad"><semantic/></proxy>'
            )

    def test_register_xml_happy_path(self):
        registry = ProxyRegistry()
        registry.register_xml(descriptor_to_xml(build_location_descriptor()))
        assert len(registry) == 1

    def test_unknown_interface(self):
        registry = ProxyRegistry()
        with pytest.raises(RegistryError):
            registry.descriptor("Ghost")


class TestBindingLookup:
    def test_binding_for_platform(self):
        registry = ProxyRegistry()
        registry.register(build_location_descriptor())
        binding = registry.binding("Location", "s60")
        assert binding.implementation_class == "com.ibm.S60.location.LocationProxy"

    def test_missing_binding_names_alternatives(self):
        registry = ProxyRegistry()
        registry.register(build_call_descriptor())
        with pytest.raises(RegistryError, match="android"):
            registry.binding("Call", "s60")

    def test_interfaces_for_platform(self):
        registry = ProxyRegistry()
        registry.register(build_location_descriptor())
        registry.register(build_call_descriptor())
        assert registry.interfaces_for_platform("s60") == ["Location"]
        assert registry.interfaces_for_platform("android") == ["Call", "Location"]


class TestExtension:
    def test_new_platform_publishes_binding_only(self):
        """The paper's extension story: semantic/syntactic planes are
        reused, a new platform adds just its binding artifacts."""
        registry = ProxyRegistry()
        descriptor = build_call_descriptor()
        registry.register(descriptor)
        # Pretend a vendor ships an S60 binding later (the platform gained
        # a call API): only a BindingPlane is published.
        registry.add_binding(
            "Call",
            BindingPlane(
                platform="s60",
                language="java",
                implementation_class="com.vendor.s60.CallProxy",
            ),
        )
        assert registry.binding("Call", "s60").implementation_class == (
            "com.vendor.s60.CallProxy"
        )
        assert "Call" in registry.interfaces_for_platform("s60")


class TestStandardRegistry:
    def test_contains_all_shipped_proxies(self):
        registry = standard_registry()
        assert registry.interfaces() == [
            "Calendar",
            "Call",
            "Contacts",
            "Http",
            "Location",
            "Sms",
        ]

    def test_is_cached(self):
        assert standard_registry() is standard_registry()

    def test_s60_has_no_call(self):
        registry = standard_registry()
        assert "Call" not in registry.interfaces_for_platform("s60")

    def test_every_binding_language_matches_platform(self):
        registry = standard_registry()
        for interface in registry.interfaces():
            descriptor = registry.descriptor(interface)
            for platform, binding in descriptor.bindings.items():
                expected = "javascript" if platform == "webview" else "java"
                assert binding.language == expected
