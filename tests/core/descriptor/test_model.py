"""Tests for the three-plane descriptor model."""

import pytest

from repro.core.descriptor.model import (
    BindingPlane,
    ExceptionSpec,
    MethodSpec,
    ParameterSpec,
    PropertySpec,
    ProxyDescriptor,
    SemanticPlane,
    SyntacticPlane,
    TypeBinding,
)
from repro.errors import DescriptorError


def _method(name="doIt", params=("a", "b")):
    return MethodSpec(
        name=name,
        parameters=tuple(
            ParameterSpec(p, "text.message", i + 1) for i, p in enumerate(params)
        ),
    )


class TestParameterSpec:
    def test_validate_against_dimension(self):
        spec = ParameterSpec("latitude", "angle.latitude", 1)
        spec.validate_value(45.0)
        with pytest.raises(ValueError):
            spec.validate_value(100.0)

    def test_optional_allows_none(self):
        spec = ParameterSpec("cb", "callback.proximity", 1, optional=True)
        spec.validate_value(None)

    def test_required_rejects_wrong_type(self):
        spec = ParameterSpec("text", "text.message", 1)
        with pytest.raises(ValueError):
            spec.validate_value(5)


class TestMethodSpec:
    def test_orders_must_be_contiguous(self):
        with pytest.raises(DescriptorError):
            MethodSpec(
                name="m",
                parameters=(
                    ParameterSpec("a", "text.message", 1),
                    ParameterSpec("b", "text.message", 3),
                ),
            )

    def test_duplicate_parameter_names_rejected(self):
        with pytest.raises(DescriptorError):
            MethodSpec(
                name="m",
                parameters=(
                    ParameterSpec("a", "text.message", 1),
                    ParameterSpec("a", "text.message", 2),
                ),
            )

    def test_ordered_parameters(self):
        method = MethodSpec(
            name="m",
            parameters=(
                ParameterSpec("second", "text.message", 2),
                ParameterSpec("first", "text.message", 1),
            ),
        )
        assert [p.name for p in method.ordered_parameters()] == ["first", "second"]

    def test_parameter_lookup(self):
        method = _method()
        assert method.parameter("a").order == 1
        with pytest.raises(DescriptorError):
            method.parameter("ghost")


class TestSemanticPlane:
    def test_duplicate_methods_rejected(self):
        with pytest.raises(DescriptorError):
            SemanticPlane(interface="X", methods=(_method("m"), _method("m")))

    def test_method_lookup(self):
        plane = SemanticPlane(interface="X", methods=(_method("m"),))
        assert plane.method("m").name == "m"
        with pytest.raises(DescriptorError):
            plane.method("ghost")

    def test_empty_interface_rejected(self):
        with pytest.raises(DescriptorError):
            SemanticPlane(interface="")


class TestSyntacticPlane:
    def test_unknown_language_rejected(self):
        with pytest.raises(DescriptorError):
            SyntacticPlane(language="cobol")

    def test_unknown_callback_style_rejected(self):
        with pytest.raises(DescriptorError):
            SyntacticPlane(language="java", callback_style="telepathy")

    def test_type_lookup(self):
        plane = SyntacticPlane(
            language="java",
            method_types={"m": (TypeBinding("a", "double"),)},
        )
        assert plane.type_of("m", "a") == "double"
        with pytest.raises(DescriptorError):
            plane.type_of("m", "ghost")


class TestPropertySpec:
    def test_allowed_values_enforced(self):
        spec = PropertySpec("power", allowed_values=("LOW", "HIGH"))
        spec.validate_value("LOW")
        with pytest.raises(ValueError):
            spec.validate_value("TURBO")

    def test_no_allowed_values_means_anything(self):
        PropertySpec("free").validate_value(object())


class TestBindingPlane:
    def test_unknown_platform_rejected(self):
        with pytest.raises(DescriptorError):
            BindingPlane(platform="palm", language="java", implementation_class="X")

    def test_implementation_class_required(self):
        with pytest.raises(DescriptorError):
            BindingPlane(platform="android", language="java", implementation_class="")

    def test_duplicate_properties_rejected(self):
        with pytest.raises(DescriptorError):
            BindingPlane(
                platform="android",
                language="java",
                implementation_class="X",
                properties=(PropertySpec("a"), PropertySpec("a")),
            )

    def test_exception_lookup(self):
        plane = BindingPlane(
            platform="android",
            language="java",
            implementation_class="X",
            exceptions=(ExceptionSpec("java.lang.SecurityException"),),
        )
        assert plane.exception_for("java.lang.SecurityException") is not None
        assert plane.exception_for("java.lang.Other") is None


class TestProxyDescriptor:
    def _descriptor(self):
        descriptor = ProxyDescriptor(
            semantic=SemanticPlane(interface="X", methods=(_method("m"),))
        )
        descriptor.add_syntactic(
            SyntacticPlane(
                language="java",
                method_types={
                    "m": (TypeBinding("a", "java.lang.String"), TypeBinding("b", "java.lang.String"))
                },
            )
        )
        return descriptor

    def test_binding_requires_syntactic_plane(self):
        descriptor = self._descriptor()
        with pytest.raises(DescriptorError):
            descriptor.add_binding(
                BindingPlane(
                    platform="webview",
                    language="javascript",
                    implementation_class="X",
                )
            )

    def test_duplicate_binding_rejected(self):
        descriptor = self._descriptor()
        binding = BindingPlane(
            platform="android", language="java", implementation_class="X"
        )
        descriptor.add_binding(binding)
        with pytest.raises(DescriptorError):
            descriptor.add_binding(
                BindingPlane(
                    platform="android", language="java", implementation_class="Y"
                )
            )

    def test_binding_for_missing_platform(self):
        descriptor = self._descriptor()
        with pytest.raises(DescriptorError):
            descriptor.binding_for("s60")

    def test_validate_checks_type_coverage(self):
        descriptor = ProxyDescriptor(
            semantic=SemanticPlane(interface="X", methods=(_method("m"),))
        )
        descriptor.add_syntactic(
            SyntacticPlane(
                language="java",
                method_types={"m": (TypeBinding("a", "java.lang.String"),)},  # b missing
            )
        )
        with pytest.raises(DescriptorError):
            descriptor.validate()

    def test_platforms_and_languages(self):
        descriptor = self._descriptor()
        descriptor.add_binding(
            BindingPlane(platform="android", language="java", implementation_class="X")
        )
        assert descriptor.platforms() == ["android"]
        assert descriptor.languages() == ["java"]
