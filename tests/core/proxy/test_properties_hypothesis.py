"""Property-based tests on core invariants (hypothesis)."""

import json

from hypothesis import given, strategies as st

from repro.core.descriptor.model import PropertySpec
from repro.core.proxies.webview_common import decode_or_raise, encode_error, encode_ok
from repro.core.proxy.exceptions import UNIFORM_ERRORS
from repro.core.proxy.properties import PropertySet
from repro.errors import ProxyError, ProxyPropertyError
from repro.platforms.webview.notifications import NotificationTable

import pytest


# -- PropertySet ------------------------------------------------------------

keys = st.sampled_from(["alpha", "beta", "gamma"])
values = st.one_of(st.integers(), st.text(max_size=10), st.booleans())


@given(st.lists(st.tuples(keys, values), max_size=20))
def test_property_set_last_write_wins(writes):
    props = PropertySet([PropertySpec(k) for k in ("alpha", "beta", "gamma")])
    expected = {}
    for key, value in writes:
        props.set(key, value)
        expected[key] = value
    for key, value in expected.items():
        assert props.get(key) == value


@given(st.text(min_size=1, max_size=12).filter(lambda k: k not in ("alpha",)))
def test_property_set_unknown_keys_always_rejected(key):
    props = PropertySet([PropertySpec("alpha")])
    with pytest.raises(ProxyPropertyError):
        props.set(key, 1)


# -- NotificationTable --------------------------------------------------------

payloads = st.dictionaries(
    st.text(min_size=1, max_size=5),
    st.one_of(st.integers(), st.text(max_size=8), st.booleans(), st.none()),
    max_size=4,
)


@given(st.lists(payloads, max_size=25))
def test_notification_table_preserves_order_and_content(batch):
    table = NotificationTable()
    notif_id = table.new_id()
    for index, payload in enumerate(batch):
        table.post(notif_id, f"k{index}", payload, now_ms=float(index))
    drained = table.drain(notif_id)
    assert [n.payload for n in drained] == batch
    assert [n.kind for n in drained] == [f"k{i}" for i in range(len(batch))]
    assert table.drain(notif_id) == []  # drain is destructive, once


@given(st.lists(payloads, max_size=10), st.integers(min_value=1, max_value=5))
def test_notification_table_interleaved_drains(batch, split_at):
    table = NotificationTable()
    notif_id = table.new_id()
    seen = []
    for index, payload in enumerate(batch):
        table.post(notif_id, "k", payload, now_ms=float(index))
        if index % split_at == 0:
            seen.extend(n.payload for n in table.drain(notif_id))
    seen.extend(n.payload for n in table.drain(notif_id))
    assert seen == batch  # no loss, no duplication, order kept


@given(payloads)
def test_drain_json_round_trips_payloads(payload):
    table = NotificationTable()
    notif_id = table.new_id()
    table.post(notif_id, "kind", payload, now_ms=1.5)
    decoded = json.loads(table.drain_json(notif_id))
    assert decoded[0]["payload"] == payload


# -- bridge envelopes ------------------------------------------------------------

@given(payloads)
def test_ok_envelope_round_trips(payload):
    assert decode_or_raise(encode_ok(payload)) == payload


@given(st.sampled_from(sorted(UNIFORM_ERRORS)), st.text(max_size=40))
def test_error_envelope_reraises_exact_class(error_name, message):
    error_class = UNIFORM_ERRORS[error_name]
    envelope = encode_error(error_class(message))
    with pytest.raises(error_class):
        decode_or_raise(envelope)
