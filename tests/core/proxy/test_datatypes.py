"""Tests for uniform datatypes."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.core.proxy.datatypes import (
    AngleFormat,
    CallHandle,
    CallOutcome,
    HttpResult,
    Location,
)


class TestLocation:
    def test_degrees_default(self):
        location = Location(45.0, 90.0)
        assert location.latitude_in(AngleFormat.DEGREES) == 45.0

    def test_radians_conversion(self):
        location = Location(45.0, 90.0)
        assert location.latitude_in(AngleFormat.RADIANS) == pytest.approx(math.pi / 4)
        assert location.longitude_in(AngleFormat.RADIANS) == pytest.approx(math.pi / 2)

    @given(
        st.floats(min_value=-90, max_value=90),
        st.floats(min_value=-180, max_value=180),
    )
    def test_radians_degrees_consistent(self, latitude, longitude):
        location = Location(latitude, longitude)
        assert math.degrees(
            location.latitude_in(AngleFormat.RADIANS)
        ) == pytest.approx(latitude, abs=1e-9)

    def test_distance(self):
        assert Location(0.0, 0.0).distance_to_m(Location(1.0, 0.0)) == pytest.approx(
            111_195, rel=0.01
        )

    def test_as_tuple(self):
        assert Location(1.0, 2.0, 3.0).as_tuple() == (1.0, 2.0, 3.0)

    def test_frozen(self):
        location = Location(1.0, 2.0)
        with pytest.raises(Exception):
            location.latitude = 5.0


class TestCallHandle:
    def test_not_finished_initially(self):
        handle = CallHandle("c1", "+1")
        assert not handle.finished
        assert not handle.answered

    def test_finished_when_outcome_set(self):
        handle = CallHandle("c1", "+1")
        handle.outcome = CallOutcome.BUSY
        assert handle.finished


class TestHttpResult:
    def test_ok_range(self):
        assert HttpResult(200, "").ok
        assert HttpResult(204, "").ok
        assert not HttpResult(404, "").ok
        assert not HttpResult(500, "").ok
