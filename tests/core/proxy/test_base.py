"""Tests for the MProxy base class."""

import pytest

from repro.core.proxies import standard_registry
from repro.core.proxy.base import MProxy
from repro.errors import (
    ProxyError,
    ProxyInvalidArgumentError,
    ProxyPlatformError,
    ProxyPropertyError,
)


class LocationShapedProxy(MProxy):
    interface = "Location"


class TestConstruction:
    def test_interface_mismatch_rejected(self):
        class WrongProxy(MProxy):
            interface = "Sms"

        descriptor = standard_registry().descriptor("Location")
        with pytest.raises(ProxyError, match="Sms"):
            WrongProxy(descriptor, "android")

    def test_missing_binding_rejected(self):
        class CallShaped(MProxy):
            interface = "Call"

        descriptor = standard_registry().descriptor("Call")
        with pytest.raises(Exception):
            CallShaped(descriptor, "s60")

    def test_property_set_from_binding_plane(self):
        descriptor = standard_registry().descriptor("Location")
        proxy = LocationShapedProxy(descriptor, "s60")
        assert "preferredResponseTime" in proxy.properties.known_keys()
        assert "context" not in proxy.properties.known_keys()  # android-only


class TestPropertyApi:
    def test_set_get_property(self):
        descriptor = standard_registry().descriptor("Location")
        proxy = LocationShapedProxy(descriptor, "s60")
        proxy.set_property("preferredResponseTime", 500)
        assert proxy.get_property("preferredResponseTime") == 500

    def test_invalid_property_value(self):
        descriptor = standard_registry().descriptor("Location")
        proxy = LocationShapedProxy(descriptor, "s60")
        with pytest.raises(ProxyPropertyError):
            proxy.set_property("powerConsumption", "TURBO")


class TestValidationAndGuard:
    def test_argument_validation_uses_semantic_plane(self):
        descriptor = standard_registry().descriptor("Location")
        proxy = LocationShapedProxy(descriptor, "android")
        with pytest.raises(ProxyInvalidArgumentError):
            proxy._validate_arguments("addProximityAlert", latitude=200.0)
        proxy._validate_arguments("addProximityAlert", latitude=20.0)

    def test_guard_maps_platform_exceptions(self):
        from repro.platforms.s60.exceptions import LocationException

        descriptor = standard_registry().descriptor("Location")
        proxy = LocationShapedProxy(descriptor, "s60")
        with pytest.raises(ProxyPlatformError):
            with proxy._guard("getLocation"):
                raise LocationException("down")

    def test_guard_passes_uniform_errors_through(self):
        descriptor = standard_registry().descriptor("Location")
        proxy = LocationShapedProxy(descriptor, "s60")
        with pytest.raises(ProxyInvalidArgumentError):
            with proxy._guard("x"):
                raise ProxyInvalidArgumentError("already uniform")

    def test_invocation_log(self):
        descriptor = standard_registry().descriptor("Location")
        proxy = LocationShapedProxy(descriptor, "android")
        proxy._record("getLocation")
        proxy._record("addProximityAlert", radius=5.0)
        assert proxy.invocation_log == [
            ("getLocation", {}),
            ("addProximityAlert", {"radius": 5.0}),
        ]
