"""Tests for uniform exception mapping and error codes."""

import pytest

from repro.core.descriptor.model import BindingPlane, ExceptionSpec
from repro.core.proxy.exceptions import (
    UNIFORM_ERRORS,
    code_to_error_class,
    error_code_for,
    map_platform_exception,
    uniform_error_class,
)
from repro.errors import (
    ProxyError,
    ProxyInvalidArgumentError,
    ProxyPermissionError,
    ProxyPlatformError,
)
from repro.platforms.android.exceptions import SecurityException as AndroidSecurity
from repro.platforms.s60.exceptions import (
    LocationException,
    SecurityException as S60Security,
)


def _binding():
    return BindingPlane(
        platform="s60",
        language="java",
        implementation_class="c.X",
        exceptions=(
            ExceptionSpec(
                "javax.microedition.location.LocationException",
                "ProxyPlatformError",
                1005,
            ),
            ExceptionSpec("java.lang.SecurityException", "ProxyPermissionError", 1001),
            ExceptionSpec(
                "java.lang.IllegalArgumentException", "ProxyInvalidArgumentError", 1003
            ),
        ),
    )


class TestMapping:
    def test_listed_exception_maps_to_declared_class(self):
        error = map_platform_exception(
            _binding(), LocationException("out of service"), "getLocation"
        )
        assert isinstance(error, ProxyPlatformError)
        assert "getLocation" in str(error)
        assert "LocationException" in str(error)

    def test_security_maps_to_permission_error(self):
        error = map_platform_exception(_binding(), S60Security("no perm"), "x")
        assert isinstance(error, ProxyPermissionError)

    def test_android_and_s60_security_map_identically(self):
        """Different platform classes, same simple name, same uniform error
        — the de-fragmentation property."""
        s60 = map_platform_exception(_binding(), S60Security("a"), "x")
        android = map_platform_exception(_binding(), AndroidSecurity("b"), "x")
        assert type(s60) is type(android) is ProxyPermissionError

    def test_unlisted_exception_degrades_to_platform_error(self):
        error = map_platform_exception(_binding(), ZeroDivisionError("surprise"), "x")
        assert isinstance(error, ProxyPlatformError)

    def test_original_chained_as_cause(self):
        original = LocationException("cause me")
        error = map_platform_exception(_binding(), original, "x")
        assert error.__cause__ is original


class TestErrorCodes:
    def test_codes_are_unique(self):
        codes = [cls.error_code for cls in UNIFORM_ERRORS.values()]
        assert len(codes) == len(set(codes))

    def test_round_trip_name_code_class(self):
        for name, cls in UNIFORM_ERRORS.items():
            assert error_code_for(name) == cls.error_code
            assert code_to_error_class(cls.error_code) is cls

    def test_unknown_name_degrades(self):
        assert uniform_error_class("MadeUpError") is ProxyPlatformError

    def test_unknown_code_degrades(self):
        assert code_to_error_class(9999) is ProxyError

    def test_specific_codes_stable(self):
        """The WebView bridge wire format depends on these values."""
        assert ProxyPermissionError.error_code == 1001
        assert ProxyInvalidArgumentError.error_code == 1003
        assert ProxyPlatformError.error_code == 1005
