"""Tests for the generic property mechanism."""

import pytest

from repro.core.descriptor.model import PropertySpec
from repro.core.proxy.properties import PropertySet
from repro.errors import ProxyPropertyError


@pytest.fixture
def props():
    return PropertySet(
        [
            PropertySpec("context", required=True, type_name="object"),
            PropertySpec("provider", default="gps", allowed_values=("gps",)),
            PropertySpec(
                "power",
                default="NO_REQUIREMENT",
                allowed_values=("NO_REQUIREMENT", "LOW", "HIGH"),
            ),
            PropertySpec("free"),
        ]
    )


class TestPropertySet:
    def test_unknown_key_rejected(self, props):
        with pytest.raises(ProxyPropertyError, match="unknown property"):
            props.set("wormhole", 1)

    def test_unknown_key_lists_known(self, props):
        with pytest.raises(ProxyPropertyError, match="provider"):
            props.set("wormhole", 1)

    def test_allowed_values_enforced(self, props):
        props.set("power", "LOW")
        with pytest.raises(ProxyPropertyError):
            props.set("power", "TURBO")

    def test_get_falls_back_to_default(self, props):
        assert props.get("provider") == "gps"
        props.set("provider", "gps")
        assert props.get("provider") == "gps"

    def test_get_unset_without_default_is_none(self, props):
        assert props.get("free") is None

    def test_is_set_ignores_defaults(self, props):
        assert not props.is_set("provider")
        props.set("provider", "gps")
        assert props.is_set("provider")

    def test_require_raises_with_operation_name(self, props):
        with pytest.raises(ProxyPropertyError, match="addProximityAlert"):
            props.require("context", "addProximityAlert")

    def test_require_returns_explicit_value(self, props):
        sentinel = object()
        props.set("context", sentinel)
        assert props.require("context", "x") is sentinel

    def test_require_accepts_default(self, props):
        assert props.require("power", "x") == "NO_REQUIREMENT"

    def test_known_keys(self, props):
        assert props.known_keys() == ["context", "free", "power", "provider"]

    def test_as_dict_overlays(self, props):
        props.set("power", "HIGH")
        effective = props.as_dict()
        assert effective["power"] == "HIGH"
        assert effective["provider"] == "gps"
        assert "context" not in effective  # no default, never set
