"""The extension story end-to-end (paper Section 3.3).

"The MobiVine architecture can be easily extended to absorb new
platforms.  In this case, if the semantic and syntactic planes already
exist for other platforms, one requires to publish only the binding
artifacts for proxies corresponding to a new platform."

This test plays the vendor of a fourth, BREW-like platform: it registers
the platform name, implements a minimal substrate, publishes *only* a
binding plane for the existing Http proxy, and gets a working uniform
proxy plus a populated drawer — without touching the semantic or
syntactic planes.
"""

import pytest

from repro.core.descriptor.model import (
    BindingPlane,
    ExceptionSpec,
    register_platform,
    known_platforms,
    platform_language,
)
from repro.core.descriptor.registry import ProxyRegistry
from repro.core.plugin.drawer import ProxyDrawer
from repro.core.proxies.factory import (
    create_proxy,
    register_implementation,
)
from repro.core.proxies.http.api import HttpProxy
from repro.core.proxies.http.descriptor import build_http_descriptor
from repro.core.proxy.datatypes import HttpResult
from repro.device.device import MobileDevice
from repro.device.network import HttpRequest, HttpResponse, NetworkError
from repro.errors import DescriptorError
from repro.platforms.base import PlatformBase

BREW_IMPL = "com.vendor.brew.http.HttpProxyImpl"


class BrewIOError(Exception):
    """The new platform's own transport exception."""


class BrewPlatform(PlatformBase):
    """A minimal BREW-like substrate: one blocking fetch call."""

    platform_name = "brew"

    def brew_fetch(self, method: str, url: str, body: str = "") -> tuple:
        """The platform's single native HTTP entry point."""
        from urllib.parse import urlparse

        parsed = urlparse(url)
        self.charge_native("brew.fetch")
        request = HttpRequest(
            method=method, host=parsed.netloc, path=parsed.path or "/", body=body
        )
        try:
            response = self.device.network.request(request)
        except NetworkError as exc:
            raise BrewIOError(str(exc)) from exc
        return response.status, response.body


class BrewHttpProxyImpl(HttpProxy):
    """The vendor's binding: uniform API over ``brew_fetch``."""

    def __init__(self, descriptor, platform: BrewPlatform) -> None:
        super().__init__(descriptor, "brew")
        self._platform = platform

    def get(self, url: str) -> HttpResult:
        self._validate_arguments("get", url=url)
        with self._guard("get"):
            status, body = self._platform.brew_fetch("GET", url)
        return HttpResult(status=status, body=body)

    def post(self, url: str, body: str) -> HttpResult:
        self._validate_arguments("post", url=url, body=body)
        with self._guard("post"):
            status, response_body = self._platform.brew_fetch("POST", url, body)
        return HttpResult(status=status, body=response_body)


@pytest.fixture(scope="module", autouse=True)
def _vendor_setup():
    """What the vendor ships: a platform name and an implementation class."""
    register_platform("brew", "java")
    register_implementation(BREW_IMPL, BrewHttpProxyImpl)


def _brew_binding() -> BindingPlane:
    return BindingPlane(
        platform="brew",
        language="java",
        implementation_class=BREW_IMPL,
        exceptions=(
            ExceptionSpec("com.vendor.brew.BrewIOError", "ProxyPlatformError", 1005),
        ),
    )


class TestVocabulary:
    def test_platform_registered(self):
        assert "brew" in known_platforms()
        assert platform_language("brew") == "java"

    def test_reregistration_same_language_ok(self):
        register_platform("brew", "java")  # idempotent

    def test_language_conflict_rejected(self):
        with pytest.raises(DescriptorError):
            register_platform("brew", "javascript")

    def test_unknown_language_rejected(self):
        with pytest.raises(DescriptorError):
            register_platform("palm", "objective-c")

    def test_binding_language_must_match_registration(self):
        with pytest.raises(DescriptorError, match="brew"):
            BindingPlane(
                platform="brew",
                language="javascript",
                implementation_class="x.Y",
            )


class TestBindingOnlyExtension:
    def test_add_binding_reuses_existing_planes(self):
        registry = ProxyRegistry()
        registry.register(build_http_descriptor())
        registry.add_binding("Http", _brew_binding())
        descriptor = registry.descriptor("Http")
        # semantic + syntactic untouched, one binding added
        assert descriptor.semantic.method_names() == ["get", "post", "getAsync"]
        assert set(descriptor.platforms()) == {"android", "brew", "s60", "webview"}

    def test_drawer_immediately_shows_the_proxy(self):
        registry = ProxyRegistry()
        registry.register(build_http_descriptor())
        registry.add_binding("Http", _brew_binding())
        drawer = ProxyDrawer(registry, "brew")
        assert drawer.categories() == ["Http"]

    def test_schema_accepts_brew_bindings(self):
        from repro.core.descriptor.schema import validate_descriptor_xml
        from repro.core.descriptor.xml_io import descriptor_to_xml

        descriptor = build_http_descriptor()
        descriptor.add_binding(_brew_binding())
        assert validate_descriptor_xml(descriptor_to_xml(descriptor)) == []

    def test_uniform_proxy_works_on_the_new_platform(self):
        registry = ProxyRegistry()
        registry.register(build_http_descriptor())
        registry.add_binding("Http", _brew_binding())
        device = MobileDevice("+1")
        platform = BrewPlatform(device)
        server = device.network.add_server("api.test")
        server.route("GET", "/ping", lambda r: HttpResponse(200, "brew pong"))
        proxy = create_proxy("Http", platform, registry=registry)
        result = proxy.get("http://api.test/ping")
        assert (result.status, result.body) == (200, "brew pong")

    def test_platform_exceptions_map_uniformly(self):
        from repro.errors import ProxyPlatformError

        registry = ProxyRegistry()
        registry.register(build_http_descriptor())
        registry.add_binding("Http", _brew_binding())
        device = MobileDevice("+1")
        platform = BrewPlatform(device)
        device.network.add_server("api.test")
        device.network.fail_next("brew radio down")
        proxy = create_proxy("Http", platform, registry=registry)
        with pytest.raises(ProxyPlatformError, match="BrewIOError"):
            proxy.get("http://api.test/ping")
