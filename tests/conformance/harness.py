"""Cross-platform conformance harness.

One canonical scenario — the full workforce commute plus a battery of
probes — executed identically on Android, S60 and WebView.  The suite
asserts the middleware's core promise: *the platform is an
implementation detail*.  Canonical results (activity events, location
fixes, HTTP responses), uniform error codes and normalized span-tree
shapes must be identical across platforms; any divergence must be
declared in :data:`EXPECTED_DIVERGENCES` with the reason, or the suite
fails.

Today the only declared divergence is the paper's S60 capability gap:
S60 has no Call API, so ``create_proxy("Call", s60)`` raises the uniform
:class:`~repro.errors.ProxyUnavailableError` (code 1002) where Android
and WebView return a live proxy.
"""

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.apps.workforce import scenario
from repro.apps.workforce.common import PATH_STATUS, SERVER_HOST
from repro.apps.workforce.proxied import (
    WorkforceLogic,
    launch_on_android,
    launch_on_s60,
    launch_on_webview,
)
from repro.core.plugin.packaging import WebViewPlatformExtension
from repro.core.proxies import create_proxy
from repro.core.proxy.callbacks import ProximityListener
from repro.errors import ProxyError
from repro.obs import Observability

PLATFORMS = ("android", "s60", "webview")

#: Full away → site → away → site commute.
RUN_MS = 200_000.0

#: What the canonical commute must produce everywhere.
CANONICAL_EVENTS = ["arrived", "departed", "arrived"]

#: Declared, reasoned divergences.  ``call_proxy`` is the paper's S60
#: capability gap: no telephony Call API exists on that platform, so the
#: uniform layer must refuse with error code 1002 rather than pretend.
EXPECTED_DIVERGENCES: Dict[str, Dict[str, object]] = {
    "call_proxy": {"android": "available", "webview": "available", "s60": 1002},
}


class _NullListener(ProximityListener):
    def proximity_event(self, *args) -> None:  # pragma: no cover - never fires
        pass


def normalized_shape(tracer, span) -> Tuple:
    """A span subtree reduced to its layer shape.

    Span names are ``layer:operation``; the shape keeps the layer only.
    Everything below the binding layer (``substrate``, ``bridge``) is
    platform plumbing — WebView legitimately runs two substrate hops
    through its bridge where Android runs one — so those subtrees
    collapse to a single ``native`` leaf.  What remains is the uniform
    middleware shape every platform must share.
    """
    layer = span.name.split(":", 1)[0]
    if layer in ("substrate", "bridge"):
        return ("native",)
    children = tuple(
        normalized_shape(tracer, child) for child in tracer.children_of(span)
    )
    deduped: List[Tuple] = []
    for child in children:
        if not (deduped and deduped[-1] == child == ("native",)):
            deduped.append(child)
    return (layer, tuple(deduped))


@dataclass
class ConformanceResult:
    """Everything the canonical scenario produced on one platform."""

    platform: str
    logic: WorkforceLogic
    #: site proximity events, in order (the app's observable behaviour).
    events: List[str]
    #: server-side activity log events (the enterprise's view).
    server_events: List[str]
    #: final fix, rounded to ~10 m (timestamps are per-platform polling
    #: artefacts and deliberately not part of the canonical result).
    fix: Tuple[float, float]
    #: status GET: (HTTP status, body) — byte-identical across platforms.
    status: Tuple[int, str]
    #: uniform error codes from the probe battery.
    invalid_latitude_code: Optional[int]
    unknown_property_code: Optional[int]
    #: "available" or the uniform error code refusing the Call proxy.
    call_proxy: object
    #: normalized getLocation span shape (middleware layers only).
    location_span_shape: Tuple


def _canonical(platform_name, sc, logic, hub, call_proxy) -> ConformanceResult:
    sc.platform.run_for(RUN_MS)
    logic.report_location()
    fix = logic.location.get_location()
    status = logic.http.get(f"http://{SERVER_HOST}{PATH_STATUS}")
    try:
        logic.location.add_proximity_alert(
            999.0, 77.2, 0.0, 500.0, -1, _NullListener()
        )
        invalid_latitude = None
    except ProxyError as exc:
        invalid_latitude = exc.error_code
    try:
        logic.location.get_property("noSuchProperty")
        unknown_property = None
    except ProxyError as exc:
        unknown_property = exc.error_code
    hub.tracer.reset()
    logic.location.get_location()
    roots = hub.tracer.roots()
    assert len(roots) == 1, f"{platform_name}: expected one root span"
    shape = normalized_shape(hub.tracer, roots[0])
    return ConformanceResult(
        platform=platform_name,
        logic=logic,
        events=[e for e in logic.activity_events if e in ("arrived", "departed")],
        server_events=[record.event for record in sc.server.activity_log()],
        fix=(round(fix.latitude, 4), round(fix.longitude, 4)),
        status=(status.status, status.body),
        invalid_latitude_code=invalid_latitude,
        unknown_property_code=unknown_property,
        call_proxy=call_proxy,
        location_span_shape=shape,
    )


def _call_probe(platform_object) -> object:
    try:
        create_proxy("Call", platform_object)
        return "available"
    except ProxyError as exc:
        return exc.error_code


def run_android() -> ConformanceResult:
    hub = Observability(capture_real_time=False)
    sc = scenario.build_android(observability=hub)
    logic = launch_on_android(sc.platform, sc.new_context(), sc.config)
    return _canonical("android", sc, logic, hub, _call_probe(sc.platform))


def run_s60() -> ConformanceResult:
    hub = Observability(capture_real_time=False)
    sc = scenario.build_s60(observability=hub)
    logic = launch_on_s60(sc.platform, sc.config)
    return _canonical("s60", sc, logic, hub, _call_probe(sc.platform))


def run_webview() -> ConformanceResult:
    hub = Observability(capture_real_time=False)
    sc = scenario.build_webview(observability=hub)
    webview = sc.platform.new_webview()
    WebViewPlatformExtension().install_wrappers(
        webview, sc.platform, sc.new_context(), ["Location", "Sms", "Http", "Call"]
    )
    holder = {}

    def page(window) -> None:
        # Proxies (and the Call probe) must bind inside the live page —
        # the JS wrappers only exist in the loaded window.
        holder["logic"] = launch_on_webview(sc.platform, sc.config)
        holder["call"] = _call_probe(sc.platform)

    webview.load_page(page)
    return _canonical("webview", sc, holder["logic"], hub, holder["call"])


DRIVERS = {"android": run_android, "s60": run_s60, "webview": run_webview}
