"""Cross-platform conformance harness — a thin replayer consumer.

The canonical scenario (the full workforce commute plus a battery of
probes) now lives in the scenario library as
:func:`repro.scenario.library.commute`, with its baseline recording
bundled at ``tests/scenarios/commute.jsonl``.  This harness replays the
baseline on each platform through :func:`repro.scenario.replay` and
unpacks the replayed outcomes into the flat
:class:`ConformanceResult` the suite compares across platforms.

Divergence declarations are shared with the scenario suite: the legacy
:data:`EXPECTED_DIVERGENCES` probe map is derived from the generalized
declared-divergence table (:mod:`repro.scenario.divergence`), so the S60
Call capability gap is declared exactly once for both suites.
"""

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.scenario import (
    ScenarioRecording,
    expected_divergences,
    normalized_shape,
    replay,
    shape_to_tuple,
)

__all__ = [
    "PLATFORMS",
    "RUN_MS",
    "CANONICAL_EVENTS",
    "EXPECTED_DIVERGENCES",
    "ConformanceResult",
    "DRIVERS",
    "normalized_shape",
    "replay_commute",
]

PLATFORMS = ("android", "s60", "webview")

#: Full away → site → away → site commute.
RUN_MS = 200_000.0

#: What the canonical commute must produce everywhere.
CANONICAL_EVENTS = ["arrived", "departed", "arrived"]

#: Declared, reasoned divergences, keyed by probe name — derived from
#: the scenario layer's generalized table.  ``call_proxy`` is the
#: paper's S60 capability gap: no telephony Call API exists on that
#: platform, so the uniform layer must refuse with error code 1002
#: rather than pretend.
EXPECTED_DIVERGENCES: Dict[str, Dict[str, object]] = expected_divergences(
    PLATFORMS
)

#: The bundled baseline recording of the canonical commute scenario.
BASE_RECORDING = Path(__file__).resolve().parent.parent / (
    "scenarios/commute.jsonl"
)


@dataclass
class ConformanceResult:
    """Everything the canonical scenario produced on one platform."""

    platform: str
    #: site proximity events, in order (the app's observable behaviour).
    events: List[str]
    #: server-side activity log events (the enterprise's view).
    server_events: List[str]
    #: final fix, rounded to ~10 m (timestamps are per-platform polling
    #: artefacts and deliberately not part of the canonical result).
    fix: Tuple[float, float]
    #: status GET: (HTTP status, body) — byte-identical across platforms.
    status: Tuple[int, str]
    #: uniform error codes from the probe battery.
    invalid_latitude_code: Optional[int]
    unknown_property_code: Optional[int]
    #: "available" or the uniform error code refusing the Call proxy.
    call_proxy: object
    #: normalized getLocation span shape (middleware layers only).
    location_span_shape: Tuple


def _load_base() -> ScenarioRecording:
    return ScenarioRecording.parse(
        BASE_RECORDING.read_text(encoding="utf-8")
    )


def _by_probe(recording: ScenarioRecording) -> Dict[str, Dict]:
    return {
        outcome["probe"]: outcome
        for outcome in recording.outcomes
        if "probe" in outcome
    }


def _unpack(recording: ScenarioRecording) -> ConformanceResult:
    probes = _by_probe(recording)
    status = probes["status_get"]["result"]
    fix = probes["final_fix"]["result"]
    call = probes["call_proxy"]
    shapes = probes["location_span"]["shape"]
    assert len(shapes) == 1, (
        f"{recording.platform}: expected one root span, got {len(shapes)}"
    )
    return ConformanceResult(
        platform=recording.platform,
        events=[
            event
            for event in probes["proximity_events"]["events"]
            if event in ("arrived", "departed")
        ],
        server_events=list(probes["server_events"]["result"]),
        fix=(fix["latitude"], fix["longitude"]),
        status=(status["status"], status["body"]),
        invalid_latitude_code=probes["invalid_latitude"]["error_code"],
        unknown_property_code=probes["unknown_property"]["error_code"],
        call_proxy=(
            call["result"] if call["error_code"] is None else call["error_code"]
        ),
        location_span_shape=shape_to_tuple(shapes[0]),
    )


def replay_commute(platform_name: str) -> ConformanceResult:
    """Replay the bundled commute baseline on ``platform_name``.

    The replay must carry zero undeclared divergences against the
    committed baseline — a platform that drifts fails here, before the
    suite even compares results across platforms.
    """
    result = replay(_load_base(), platform=platform_name)
    assert result.passed, (
        f"{platform_name}: undeclared divergences vs the bundled "
        f"baseline:\n"
        + json.dumps(
            [d.to_dict() for d in result.diff.undeclared], indent=2
        )
    )
    return _unpack(result.replayed)


DRIVERS = {
    name: (lambda name=name: replay_commute(name)) for name in PLATFORMS
}
