"""The cross-platform conformance suite.

One parametrized harness runs the identical canonical scenario on every
platform; the tests then compare the results *to each other*, not to
per-platform expectations — so a new platform (or a regression in an old
one) that behaves differently fails loudly unless the divergence is
declared in :data:`harness.EXPECTED_DIVERGENCES`.
"""

import pytest

from tests.conformance import harness


@pytest.fixture(scope="module")
def results():
    return {name: driver() for name, driver in harness.DRIVERS.items()}


@pytest.fixture(scope="module", params=harness.PLATFORMS)
def result(request, results):
    return results[request.param]


class TestCanonicalBehaviour:
    def test_proximity_events(self, result):
        assert result.events == harness.CANONICAL_EVENTS

    def test_server_activity_log(self, result):
        assert result.server_events == harness.CANONICAL_EVENTS

    def test_location_fix_identical(self, results):
        fixes = {name: r.fix for name, r in results.items()}
        assert len(set(fixes.values())) == 1, f"fixes diverge: {fixes}"

    def test_status_get_identical(self, results):
        bodies = {name: r.status for name, r in results.items()}
        assert len(set(bodies.values())) == 1, f"status GET diverges: {bodies}"
        assert all(status == 200 for status, _ in bodies.values())


class TestUniformErrors:
    def test_invalid_latitude_code(self, result):
        # semantic-plane validation: latitude outside [-90, 90] is the
        # same uniform error on every platform.
        assert result.invalid_latitude_code == 1003

    def test_unknown_property_code(self, result):
        assert result.unknown_property_code == 1004


class TestSpanShape:
    def test_location_span_shape_identical(self, results):
        shapes = {name: r.location_span_shape for name, r in results.items()}
        assert len(set(shapes.values())) == 1, f"span shapes diverge: {shapes}"

    def test_shape_is_the_middleware_stack(self, result):
        # dispatch → resilience → binding → native, exactly.
        assert result.location_span_shape == (
            "dispatch",
            (("resilience", (("binding", (("native",),)),)),),
        )


class TestDeclaredDivergences:
    def test_call_proxy_gap(self, results):
        expected = harness.EXPECTED_DIVERGENCES["call_proxy"]
        actual = {name: r.call_proxy for name, r in results.items()}
        assert actual == expected

    def test_no_undeclared_divergence_keys(self):
        # Every declared divergence must cover every platform — partial
        # declarations hide real gaps.
        for key, per_platform in harness.EXPECTED_DIVERGENCES.items():
            assert set(per_platform) == set(harness.PLATFORMS), key
