"""Distributed-tier benchmark: convergence, dedup, sagas under faults.

Three seeded scenarios, all virtual-time only (every headline number is
deterministic), recorded in ``BENCH_distrib.json``:

* **convergence vs region count** — a write burst lands while one
  region pair is partitioned; after the heal, how many anti-entropy
  rounds until every replica of a 2 / 4 / 8-region table holds
  identical state, and how many entries gossip had to repair;
* **dedup under a retry storm** — the proxied workforce fleet runs its
  report workload while ``ack_lost`` faults force the resilience layer
  to retry POSTs that the server already applied.  The attempt-chain
  idempotency keys must absorb every replay: the server-side report
  count equals the logical report count exactly (the duplicate-send bug
  fixed in this PR), with the suppression rate as the headline;
* **saga completion under partition** — sagas whose commit step needs a
  write quorum run against a cut region pair (every one compensates,
  releasing its reservation) and again after the heal (every one
  completes).

The acceptance claims checked here mirror ``tests/chaos``: replicas
converge after the heal, dedup hits are strictly positive under the
storm with zero duplicated side effects, compensation leaves no staging
residue, and same-seed runs export byte-identical tier snapshots.

The retry-storm run also exports its trace (``TRACE_distrib.jsonl``)
and the causal analyzer's report over it (``CAUSAL_distrib.json``) to
the bench output dir; the summary asserts the healthy storm is
audit-clean (zero ``causal.violation``) and the CI "Causal audit" step
re-runs ``python -m repro.obs causal --gate`` over the same trace.
"""

import os

import pytest

from repro.apps.workforce.fleet import build_fleet, launch_fleet_on_runtime
from repro.bench.harness import format_table
from repro.bench.results import BenchResult, bench_output_dir, write_bench_result
from repro.obs import CausalReport, parse_jsonl
from repro.core.resilience import chaos_policy
from repro.distrib import DistribConfig, DistribRuntime, SagaStep
from repro.errors import ProxyReplicaUnavailableError
from repro.faults.plan import FaultPlan, FaultRule
from repro.util.clock import Scheduler, SimulatedClock

REGION_COUNTS = (2, 4, 8)
WRITE_BURST = 24
FLEET_AGENTS = 3
FLEET_REPORTS = 3
SAGA_ROUNDS = 5


def _regions(count):
    return tuple(f"region-{index + 1}" for index in range(count))


def run_convergence(region_count, *, seed=0):
    """A write burst across a partition; rounds to converge post-heal."""
    scheduler = Scheduler(SimulatedClock())
    config = DistribConfig(regions=_regions(region_count), seed=seed)
    tier = DistribRuntime(scheduler, config)
    table = tier.table("bench")
    tier.partition(config.regions[0], config.regions[1])
    for index in range(WRITE_BURST):
        origin = config.regions[index % region_count]
        table.put(f"key-{index}", {"ordinal": index}, region=origin)
    scheduler.run_for(config.replication_delay_ms)
    partitioned = table.converged
    tier.heal_all()
    rounds = tier.run_until_converged()
    return {
        "regions": region_count,
        "converged_while_partitioned": partitioned,
        "rounds_to_converge": rounds,
        "entries": len(table.entries_in(config.regions[0])),
        "export": tier.export_json(),
    }


def run_retry_storm(*, seed=3, fault_seed=7, rate=0.4):
    """The workforce fleet under ``ack_lost`` faults; exactly-once POSTs."""
    plan = FaultPlan(
        seed=fault_seed, rules=(FaultRule("network.request", "ack_lost", rate),)
    )
    fleet = build_fleet(
        FLEET_AGENTS,
        runtime=True,
        observability=True,
        distrib=DistribConfig(regions=("ap-south", "eu-west"), seed=seed),
        fault_plan=plan,
    )
    launch_fleet_on_runtime(
        fleet, reports=FLEET_REPORTS, resilience=chaos_policy("Http")
    )
    fleet.runtime.drain()
    tier = fleet.runtime.distrib
    tier.heal_all()
    rounds = tier.run_until_converged()
    metrics = fleet.runtime.observability.metrics
    hits = metrics.total("distrib.dedup_hits")
    misses = metrics.total("distrib.dedup_misses")
    report_counts = {
        agent.profile.agent_id: fleet.server.track_of(
            agent.profile.agent_id
        ).report_count
        for agent in fleet.agents
    }
    return {
        "dedup_hits": hits,
        "dedup_misses": misses,
        "dedup_hit_rate": hits / (hits + misses) if hits + misses else 0.0,
        "report_counts": report_counts,
        "duplicated_reports": sum(
            count - FLEET_REPORTS for count in report_counts.values()
        ),
        "rounds_to_converge": rounds,
        "export": tier.export_json(),
        "trace": fleet.runtime.observability.export_jsonl(),
        "audit_clean": tier.monitor.clean,
    }


def run_sagas_under_partition(*, seed=0):
    """Quorum-gated sagas against a cut pair, then after the heal.

    Each saga journals a local reservation, then commits a quorum-gated
    replicated write.  Under the partition the commit raises 1014 and
    the compensation must release the reservation — the invariant is
    that every surviving reservation maps to a committed report.
    """
    scheduler = Scheduler(SimulatedClock())
    config = DistribConfig(regions=("ap-south", "eu-west"), write_quorum=2, seed=seed)
    tier = DistribRuntime(scheduler, config)
    reports = tier.table("reports")
    ledger = {}

    def saga_steps(ordinal):
        key = f"report-{ordinal}"
        return (
            SagaStep(
                "reserve",
                lambda: ledger.setdefault(key, ordinal),
                lambda _result: ledger.pop(key, None),
            ),
            SagaStep("post", lambda: reports.put(key, {"ordinal": ordinal})),
        )

    tier.partition("ap-south", "eu-west")
    compensated = 0
    for ordinal in range(SAGA_ROUNDS):
        try:
            tier.sagas.run(f"report-{ordinal}", saga_steps(ordinal))
        except ProxyReplicaUnavailableError:
            compensated += 1
    tier.heal_all()
    completed = 0
    for ordinal in range(SAGA_ROUNDS, 2 * SAGA_ROUNDS):
        tier.sagas.run(f"report-{ordinal}", saga_steps(ordinal))
        completed += 1
    tier.run_until_converged()
    committed_keys = {
        entry.key
        for entry in reports.entries_in("ap-south")
        if entry.value is not None
    }
    return {
        "compensated": compensated,
        "completed": completed,
        "orphaned_reservations": len(set(ledger) - committed_keys),
        "reports_written": len(committed_keys),
        "export": tier.export_json(),
    }


@pytest.mark.parametrize("region_count", REGION_COUNTS)
def test_distrib_convergence(benchmark, region_count):
    """Wall-clock harness cost per region count (virtual-time claims
    live in the summary test)."""
    result = benchmark(run_convergence, region_count)
    assert result["rounds_to_converge"] >= 1
    assert result["entries"] == WRITE_BURST


def test_distrib_summary():
    """The tentpole's acceptance: convergence after heal at every scale,
    exactly-once POSTs under the retry storm, compensation leaves no
    staging residue — all recorded in ``BENCH_distrib.json``."""
    convergence = [run_convergence(count) for count in REGION_COUNTS]
    rows = [
        [
            str(stats["regions"]),
            str(stats["converged_while_partitioned"]),
            str(stats["rounds_to_converge"]),
            str(stats["entries"]),
        ]
        for stats in convergence
    ]
    print("\n\n=== Distrib: anti-entropy convergence after heal ===")
    print(
        format_table(
            ["regions", "converged cut", "rounds", "entries"], rows
        )
    )
    for stats in convergence:
        # The burst replicated through a cut pair: gossip must repair it.
        assert not stats["converged_while_partitioned"]
        assert 1 <= stats["rounds_to_converge"] <= 10
        assert stats["entries"] == WRITE_BURST

    storm = run_retry_storm()
    print(
        f"\nretry storm: hits={storm['dedup_hits']} "
        f"misses={storm['dedup_misses']} "
        f"hit_rate={storm['dedup_hit_rate']:.3f} "
        f"duplicated={storm['duplicated_reports']}"
    )
    # The storm forced replays (hits > 0) and every replay was absorbed:
    # the server-side count equals the logical report count exactly.
    assert storm["dedup_hits"] > 0
    assert storm["duplicated_reports"] == 0
    assert all(
        count == FLEET_REPORTS for count in storm["report_counts"].values()
    )

    causal = CausalReport.from_records(parse_jsonl(storm["trace"]))
    causal_data = causal.to_dict()
    print(
        f"causal audit: writes={causal_data['writes']} "
        f"converged={causal_data['convergence']['converged']} "
        f"max_window={causal_data['convergence']['max_window_ms']:.0f}ms "
        f"violations={len(causal.violations)}"
    )
    # Healthy seeded storm → audit-clean happens-before graph.
    assert storm["audit_clean"]
    assert causal.violations == []
    assert causal.acyclic
    assert causal_data["convergence"]["converged"] > 0
    out_dir = bench_output_dir()
    out_dir.mkdir(parents=True, exist_ok=True)
    trace_path = out_dir / "TRACE_distrib.jsonl"
    trace_path.write_text(storm["trace"], encoding="utf-8")
    causal_path = out_dir / "CAUSAL_distrib.json"
    causal_path.write_text(causal.to_json(), encoding="utf-8")
    print(f"wrote {trace_path} and {causal_path}")

    sagas = run_sagas_under_partition()
    print(
        f"sagas: compensated={sagas['compensated']} "
        f"completed={sagas['completed']} "
        f"orphaned_reservations={sagas['orphaned_reservations']}"
    )
    assert sagas["compensated"] == SAGA_ROUNDS
    assert sagas["completed"] == SAGA_ROUNDS
    assert sagas["orphaned_reservations"] == 0
    assert sagas["reports_written"] == SAGA_ROUNDS

    result = BenchResult(
        name="distrib",
        params={
            "region_counts": list(REGION_COUNTS),
            "write_burst": WRITE_BURST,
            "fleet_agents": FLEET_AGENTS,
            "fleet_reports": FLEET_REPORTS,
            "saga_rounds": SAGA_ROUNDS,
        },
        metrics={
            "convergence": {
                str(stats["regions"]): {
                    "rounds_to_converge": stats["rounds_to_converge"],
                    "entries": stats["entries"],
                }
                for stats in convergence
            },
            "retry_storm": {
                "dedup_hits": storm["dedup_hits"],
                "dedup_misses": storm["dedup_misses"],
                "dedup_hit_rate": round(storm["dedup_hit_rate"], 4),
                "duplicated_reports": storm["duplicated_reports"],
                "rounds_to_converge": storm["rounds_to_converge"],
            },
            "causal": {
                "writes": causal_data["writes"],
                "converged": causal_data["convergence"]["converged"],
                "max_window_ms": causal_data["convergence"]["max_window_ms"],
                "violations": len(causal.violations),
                "acyclic": causal.acyclic,
            },
            "sagas": {
                "compensated": sagas["compensated"],
                "completed": sagas["completed"],
                "orphaned_reservations": sagas["orphaned_reservations"],
                "reports_written": sagas["reports_written"],
            },
        },
    )
    path = write_bench_result(
        result,
        include_measured=not os.environ.get("REPRO_BENCH_DETERMINISTIC"),
    )
    print(f"\nwrote {path}")


def test_distrib_determinism():
    """Same seed → byte-identical tier snapshots for every scenario."""
    assert (
        run_convergence(4, seed=5)["export"]
        == run_convergence(4, seed=5)["export"]
    )
    first = run_retry_storm(seed=3, fault_seed=7)
    second = run_retry_storm(seed=3, fault_seed=7)
    assert first["export"] == second["export"]
    # The causal report over the storm trace is byte-identical too —
    # what makes committing CAUSAL_distrib.json as a CI artifact sane.
    assert (
        CausalReport.from_records(parse_jsonl(first["trace"])).to_json()
        == CausalReport.from_records(parse_jsonl(second["trace"])).to_json()
    )
    assert (
        run_sagas_under_partition(seed=2)["export"]
        == run_sagas_under_partition(seed=2)["export"]
    )
