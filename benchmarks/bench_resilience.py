"""Resilience-wrapper overhead on the fault-free fast path.

The policy layer sits on every proxied invocation, so its cost when
nothing fails is the price every caller pays.  Three tiers are measured
on the same Android Location binding:

* ``bare``     — ``resilience=False``: the original ``_guard`` path;
* ``default``  — the passthrough-safe default policy (counters only);
* ``chaos``    — the full chaos profile (retry budget, timeout
  accounting, circuit breaker) with zero faults injected.

A micro tier times ``ResilienceRuntime.execute`` around a trivial thunk
to isolate the engine itself from proxy and substrate cost.
"""

import pytest

from repro.apps.workforce import scenario
from repro.core.proxies import create_proxy, standard_registry
from repro.core.resilience import ResiliencePolicy, ResilienceRuntime, chaos_policy
from repro.util.clock import Scheduler, SimulatedClock

TIERS = {
    "bare": False,
    "default": None,  # factory default: passthrough ResiliencePolicy()
    "chaos": chaos_policy("Location"),
}


@pytest.fixture(scope="module")
def world():
    sc = scenario.build_android()
    sc.platform.run_for(5_000.0)  # let the GPS produce a first fix
    return sc


def _location_proxy(sc, resilience):
    proxy = create_proxy("Location", sc.platform, resilience=resilience)
    proxy.set_property("context", sc.new_context())
    proxy.set_property("provider", "gps")
    return proxy


@pytest.mark.parametrize("tier", list(TIERS), ids=list(TIERS))
def test_get_location_overhead(benchmark, world, tier):
    """Full proxied getLocation under each resilience tier, fault-free."""
    proxy = _location_proxy(world, TIERS[tier])
    result = benchmark(proxy.get_location)
    assert result is not None
    if tier != "bare":
        stats = proxy.resilience.stats
        assert stats.failures == 0
        assert stats.retries == 0


def test_runtime_engine_micro_overhead(benchmark):
    """The engine alone: execute() around a trivial thunk (chaos policy)."""
    binding = standard_registry().binding("Location", "android")
    runtime = ResilienceRuntime(
        chaos_policy("Location"), Scheduler(SimulatedClock()), label="bench"
    )
    result = benchmark(lambda: runtime.execute(binding, "getLocation", lambda: 42))
    assert result == 42


def test_runtime_engine_passthrough_micro_overhead(benchmark):
    """The engine alone under the default passthrough policy."""
    binding = standard_registry().binding("Location", "android")
    runtime = ResilienceRuntime(
        ResiliencePolicy(), Scheduler(SimulatedClock()), label="bench"
    )
    result = benchmark(lambda: runtime.execute(binding, "getLocation", lambda: 42))
    assert result == 42


def test_thunk_baseline(benchmark):
    """Floor: the bare thunk with no engine at all."""
    thunk = lambda: 42
    assert benchmark(thunk) == 42
