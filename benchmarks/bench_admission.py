"""Admission-control benchmark: overload behaviour with and without the
adaptive plane.

Two load shapes drive one platform dispatcher, each run twice — once
with static bounded queues (the PR-4 baseline) and once with the full
admission plane (token buckets, priority shedding, overflow leveling,
shard autoscaler):

* **diurnal** — a slow arrival wave (commute → midday peak → evening)
  that exercises throttling at the crest and autoscaling both ways;
* **flash crowd** — a steady trickle interrupted by one thundering-herd
  instant of status polls arriving just before the agents' reports.

Every run is virtual-time only, so all headline numbers are
deterministic.  The acceptance claims checked here (and recorded in
``BENCH_admission.json``):

* with admission on, the flash crowd sheds **zero** report POSTs —
  priority eviction and the overflow buffer protect the higher class —
  while the static baseline door-sheds them;
* the flash crowd breaches the latency SLO **fewer** times with
  admission on than off (a shed counts as a breach: the work was lost);
* same-seed runs export byte-identical traces.

The benchmark also writes two profile-embedding BENCH documents
(``BENCH_admission_profile_base.json`` / ``..._plane.json``) from
identical proxied workloads with the plane absent vs installed-but-idle.
CI diffs them with the ProfileDiff ``--gate``: the admission fast path
must add zero *virtual* cost to the invocation path when it has nothing
to do.
"""

import os

import pytest

from repro.bench.harness import format_table
from repro.bench.results import BenchResult, bench_output_dir, write_bench_result
from repro.obs import Observability, OverheadProfile
from repro.runtime import (
    AdmissionConfig,
    AutoscalerConfig,
    ConcurrencyRuntime,
    TokenBucketConfig,
)
from repro.util.clock import Scheduler, SimulatedClock

SERVICE_MS = 20.0
TICK_MS = 50.0
SLO_LATENCY_MS = 150.0
AGENTS = 4
QUEUE_DEPTH = 4

#: Polls per agent per tick across the diurnal day (the arrival wave).
DIURNAL_WAVE = (1, 1, 2, 2, 3, 4, 4, 4, 3, 2, 2, 1, 1, 1)
FLASH_TICKS = 16
FLASH_AT_TICK = 8
FLASH_POLLS = 40


def _admission_config(*, throttled: bool) -> AdmissionConfig:
    """The plane under test.  ``throttled=True`` adds tight per-tenant
    buckets (the diurnal crest must overflow them); the flash-crowd run
    disables buckets so the burst exercises eviction + leveling +
    autoscaling in isolation."""
    return AdmissionConfig(
        bucket=(
            TokenBucketConfig(rate_per_s=40.0, capacity=4.0)
            if throttled
            else None
        ),
        overflow_capacity=64,
        autoscaler=AutoscalerConfig(
            min_shards=1,
            max_shards=8,
            scale_up_depth=2.0,
            scale_down_depth=0.25,
            scale_down_utilization=0.5,
            hysteresis_ticks=2,
            cooldown_ms=100.0,
        ),
    )


class _Recorder:
    """Per-request latency / outcome bookkeeping for one run."""

    def __init__(self, clock):
        self.clock = clock
        self.completed = 0
        self.failed = 0
        self.breaches = 0
        self.shed_operations = []

    def watch(self, future, operation, submitted_ms):
        def on_done(done):
            if done.error is None:
                self.completed += 1
                if self.clock.now_ms - submitted_ms > SLO_LATENCY_MS:
                    self.breaches += 1
            else:
                self.failed += 1
                self.breaches += 1  # lost work can never meet its SLO
                if getattr(done.error, "error_code", None) == 1012:
                    self.shed_operations.append(operation)

        future.add_done_callback(on_done)


def run_scenario(shape: str, *, admission_on: bool, seed: int = 0):
    """Drive one load shape through one dispatcher; returns the stats."""
    scheduler = Scheduler(SimulatedClock())
    hub = Observability(capture_real_time=False)
    sampler = hub.install_sampler()
    sampler.track("runtime.queue_depth")
    config = (
        _admission_config(throttled=(shape == "diurnal"))
        if admission_on
        else None
    )
    runtime = ConcurrencyRuntime(
        scheduler,
        shards=2,
        queue_depth=QUEUE_DEPTH,
        seed=seed,
        observability=hub,
        admission=config,
    )
    clock = scheduler.clock
    dispatcher = runtime.dispatcher("bench")
    recorder = _Recorder(clock)

    def submit(operation, tenant):
        at = clock.now_ms
        future = dispatcher.submit(
            operation,
            lambda: clock.advance(SERVICE_MS),
            tracer=hub.tracer,
            tenant=tenant,
        )
        recorder.watch(future, operation, at)

    def agent_tick(tick, polls_per_agent, posts):
        for agent in range(AGENTS):
            tenant = f"agent-{agent + 1}"
            for _ in range(polls_per_agent):
                submit("get", tenant)
            if posts and tick % 2 == 0:
                submit("post", tenant)

    def arrivals():
        """The load shape as a cooperative task, so autoscaler control
        ticks ride the runtime's drain passes between arrival waves."""
        if shape == "diurnal":
            for tick, polls in enumerate(DIURNAL_WAVE):
                if tick:
                    yield TICK_MS
                agent_tick(tick, polls, True)
        elif shape == "flash":
            for tick in range(FLASH_TICKS):
                if tick:
                    yield TICK_MS
                if tick == FLASH_AT_TICK:
                    # The herd's polls land first, filling every queue —
                    # then the agents' reports arrive into the congestion.
                    for extra in range(FLASH_POLLS):
                        submit("get", f"agent-{extra % AGENTS + 1}")
                agent_tick(tick, 1, True)
        else:  # pragma: no cover - guarded by the parametrization
            raise ValueError(shape)

    start_ms = clock.now_ms
    runtime.spawn("arrivals", arrivals())
    runtime.drain()
    scalers = runtime.autoscalers()
    controller = dispatcher.admission
    return {
        "makespan_ms": clock.now_ms - start_ms,
        "outcomes": dispatcher.outcome_counts(),
        "completed": recorder.completed,
        "failed": recorder.failed,
        "slo_breaches": recorder.breaches,
        "post_sheds": recorder.shed_operations.count("post"),
        "get_sheds": recorder.shed_operations.count("get"),
        "final_shards": dispatcher.shards,
        "resizes": (
            list(scalers["bench"].resizes) if "bench" in scalers else []
        ),
        "storms": len(controller.storms) if controller is not None else 0,
        "trace": hub.export_jsonl(),
    }


MODES = (("static", False), ("admission", True))


@pytest.mark.parametrize("shape", ("diurnal", "flash"))
@pytest.mark.parametrize("mode,admission_on", MODES, ids=[m for m, _ in MODES])
def test_admission_scenarios(benchmark, shape, mode, admission_on):
    """Wall-clock harness cost of each scenario cell (the virtual-time
    assertions live in the summary test)."""
    result = benchmark(run_scenario, shape, admission_on=admission_on)
    # Unified accounting: every submission lands in exactly one outcome
    # bucket, and every outcome resolves the caller's future.
    total = sum(result["outcomes"].values())
    assert total == result["completed"] + result["failed"]


def test_admission_flash_crowd_summary():
    """The tentpole's acceptance: the flash crowd with admission on
    sheds zero report POSTs and breaches the SLO less than the static
    baseline."""
    rows = []
    results = {}
    for shape in ("diurnal", "flash"):
        for mode, admission_on in MODES:
            stats = run_scenario(shape, admission_on=admission_on)
            results[(shape, mode)] = stats
            outcomes = stats["outcomes"]
            rows.append(
                [
                    shape,
                    mode,
                    str(stats["completed"]),
                    str(outcomes["shed"]),
                    str(outcomes["throttled"]),
                    str(outcomes["absorbed"]),
                    str(stats["slo_breaches"]),
                    str(stats["post_sheds"]),
                    str(stats["final_shards"]),
                ]
            )
    print("\n\n=== Admission: load shapes, static vs adaptive ===")
    print(
        format_table(
            [
                "shape", "mode", "done", "shed", "throttled",
                "absorbed", "slo breach", "post sheds", "shards",
            ],
            rows,
        )
    )

    static = results[("flash", "static")]
    adaptive = results[("flash", "admission")]
    # The static baseline door-sheds the herd *and* the reports behind it.
    assert static["outcomes"]["shed"] > 0
    assert static["post_sheds"] > 0
    # Priority eviction + the overflow buffer protect every report.
    assert adaptive["post_sheds"] == 0
    # Lost + late work: strictly better under admission control.
    assert adaptive["slo_breaches"] < static["slo_breaches"]
    # The burst was absorbed, not rejected.
    assert adaptive["outcomes"]["absorbed"] > 0
    # The autoscaler answered the backlog with lanes.
    assert any(r["direction"] == "up" for r in adaptive["resizes"])

    diurnal = results[("diurnal", "admission")]
    # The crest overflows the per-tenant buckets: throttles, not sheds.
    assert diurnal["outcomes"]["throttled"] > 0
    assert diurnal["outcomes"]["shed"] == 0

    result = BenchResult(
        name="admission",
        params={
            "agents": AGENTS,
            "service_ms": SERVICE_MS,
            "queue_depth": QUEUE_DEPTH,
            "slo_latency_ms": SLO_LATENCY_MS,
            "flash_polls": FLASH_POLLS,
            "diurnal_wave": list(DIURNAL_WAVE),
        },
        metrics={
            f"{shape}_{mode}": {
                "makespan_ms": stats["makespan_ms"],
                "outcomes": stats["outcomes"],
                "completed": stats["completed"],
                "failed": stats["failed"],
                "slo_breaches": stats["slo_breaches"],
                "post_sheds": stats["post_sheds"],
                "get_sheds": stats["get_sheds"],
                "final_shards": stats["final_shards"],
                "resizes": stats["resizes"],
                "storms": stats["storms"],
            }
            for (shape, mode), stats in results.items()
        },
    )
    path = write_bench_result(
        result,
        include_measured=not os.environ.get("REPRO_BENCH_DETERMINISTIC"),
    )
    print(f"\nwrote {path}")


def test_admission_determinism():
    """Same seed, same shape → byte-identical trace exports, including
    autoscaler resize spans and shed/throttle events."""
    first = run_scenario("flash", admission_on=True, seed=11)
    second = run_scenario("flash", admission_on=True, seed=11)
    assert first["trace"] == second["trace"]
    assert first["resizes"] == second["resizes"]


# -- the fast-path profile gate ----------------------------------------------


def _profiled_invocations(admission):
    """N proxied getLocation calls through the runtime; returns the
    per-layer overhead profile of the resulting trace."""
    from repro.apps.workforce import scenario
    from repro.core.proxies import create_proxy

    hub = Observability(capture_real_time=False)
    sc = scenario.build_android(observability=hub)
    sc.platform.run_for(5_000.0)  # let the GPS produce a first fix
    proxy = create_proxy("Location", sc.platform)
    proxy.set_property("context", sc.new_context())
    proxy.set_property("provider", "gps")
    runtime = ConcurrencyRuntime(
        sc.device.scheduler,
        shards=2,
        queue_depth=16,
        observability=hub,
        admission=admission,
    )
    hub.tracer.reset()
    for _ in range(5):
        runtime.submit_invocation(proxy, "getLocation", proxy.get_location)
        runtime.drain()
    return OverheadProfile.from_spans(hub.tracer.finished_spans())


def test_admission_fast_path_profile_gate():
    """The admission fast path is free in virtual time: the same proxied
    workload profiles identically with the plane absent vs installed but
    idle.  CI re-checks this with ``python -m repro.obs diff --gate``
    over the two BENCH documents written here."""
    base = _profiled_invocations(None)
    idle_plane = _profiled_invocations(
        AdmissionConfig(
            bucket=TokenBucketConfig(rate_per_s=10_000.0, capacity=10_000.0),
            overflow_capacity=64,
            autoscaler=None,  # resizing would change lane timing by design
        )
    )
    assert base.to_dict() == idle_plane.to_dict()
    for name, profile in (("base", base), ("plane", idle_plane)):
        doc = BenchResult(
            name=f"admission_profile_{name}",
            params={"invocations": 5},
            metrics={"profile": profile.to_dict()},
        )
        path = write_bench_result(doc, include_measured=False)
        print(f"\nwrote {path}")
    assert (bench_output_dir() / "BENCH_admission_profile_base.json").exists()
