"""Ablation: Figure-10 shape robustness under latency jitter.

The main Figure-10 bench runs with deterministic calibrated latencies.
Real handsets jitter; this ablation re-runs the measurement with 10 %
Gaussian jitter on every native latency and checks that the *shape*
conclusions survive: per-platform orderings hold on medians, and the
proxy overhead stays a small fraction of the native call.
"""

import statistics

import pytest

from repro.bench.harness import APIS, Fig10Runner, PLATFORMS, format_table


def test_fig10_shape_survives_jitter(benchmark):
    runner = Fig10Runner(jitter_fraction=0.10)

    def run():
        results = {}
        for platform in PLATFORMS:
            for api in APIS:
                samples = runner.measure(
                    platform, api, with_proxy=False, repetitions=40
                )
                results[(api, platform)] = statistics.median(
                    s.total_ms for s in samples
                )
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        [api, platform, f"{results[(api, platform)]:.1f}"]
        for platform in PLATFORMS
        for api in APIS
    ]
    print("\n\n=== Ablation: Figure-10 medians under 10% latency jitter ===")
    print(format_table(["API", "platform", "median ms"], rows))

    # The paper's cross-platform orderings hold despite jitter.
    for api in ("addProximityAlert", "getLocation"):
        assert (
            results[(api, "android")]
            < results[(api, "webview")]
            < results[(api, "s60")]
        )
    assert (
        results[("sendSMS", "s60")]
        < results[("sendSMS", "android")]
        < results[("sendSMS", "webview")]
    )


def test_proxy_overhead_fraction_under_jitter(benchmark):
    runner = Fig10Runner(jitter_fraction=0.10)

    def run():
        without = runner.measure("s60", "getLocation", with_proxy=False, repetitions=40)
        with_proxy = runner.measure("s60", "getLocation", with_proxy=True, repetitions=40)
        return (
            statistics.median(s.total_ms for s in without),
            statistics.median(s.total_ms for s in with_proxy),
            statistics.median(s.real_ms for s in with_proxy),
        )

    median_without, median_with, real_overhead = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    print(
        f"\n  s60/getLocation under jitter: without={median_without:.1f}ms "
        f"with={median_with:.1f}ms realProxyOverhead={real_overhead:.4f}ms"
    )
    # The measured real proxy overhead stays tiny regardless of jitter.
    assert real_overhead < 0.05 * median_without
