"""Maintenance evaluation (paper Section 5): the Android m5-rc15 → 1.0
``addProximityAlert`` evolution.

Two measurements: (1) static — lines the application must change with and
without proxies; (2) dynamic — the unmodified code actually run on both
SDK versions (native m5 code must *fail* on 1.0; proxied code must work on
both).
"""

import pytest

from repro.analysis.maintenance import sdk_migration_report
from repro.apps.workforce import scenario
from repro.apps.workforce.native_android import WorkforceNativeAndroid
from repro.apps.workforce.proxied import launch_on_android
from repro.bench.harness import format_table
from repro.platforms.android.exceptions import IllegalArgumentException
from repro.platforms.android.versions import SdkVersion


def test_migration_change_impact(benchmark):
    report = benchmark(sdk_migration_report)
    rows = [
        [
            "without proxies",
            str(report.native_impact.changed),
            f"{report.native_impact.fraction:.1%}",
        ],
        [
            "with proxies",
            str(report.proxied_impact.changed),
            f"{report.proxied_impact.fraction:.1%}",
        ],
    ]
    print("\n\n=== Maintenance: application lines changed for m5-rc15 -> 1.0 ===")
    print(format_table(["variant", "changed lines", "fraction of app"], rows))
    assert report.native_impact.changed > 0
    assert report.proxied_impact.changed == 0


def test_migration_dynamic_behaviour(benchmark):
    """Run the unmodified apps on SDK 1.0 and record what happens."""

    def run_both():
        outcome = {}
        sc = scenario.build_android(sdk_version=SdkVersion.V1_0)
        app = WorkforceNativeAndroid(sc.platform, scenario.PACKAGE)
        app.config = sc.config
        try:
            app.perform_launch()
            outcome["native-m5-on-1.0"] = "ran (unexpected)"
        except IllegalArgumentException:
            outcome["native-m5-on-1.0"] = "IllegalArgumentException (must be ported)"

        for sdk in (SdkVersion.M5_RC15, SdkVersion.V1_0):
            sc = scenario.build_android(sdk_version=sdk)
            logic = launch_on_android(sc.platform, sc.new_context(), sc.config)
            sc.platform.run_for(200_000.0)
            outcome[f"proxied-on-{sdk.value}"] = ",".join(logic.activity_events)
        return outcome

    outcome = benchmark.pedantic(run_both, rounds=1, iterations=1)
    print("\n\n=== Maintenance: dynamic check on SDK 1.0 ===")
    for name, result in outcome.items():
        print(f"  {name:22s}: {result}")
    assert "IllegalArgumentException" in outcome["native-m5-on-1.0"]
    assert outcome["proxied-on-m5-rc15"] == outcome["proxied-on-1.0"]
    assert outcome["proxied-on-1.0"] == "arrived,departed,arrived"
