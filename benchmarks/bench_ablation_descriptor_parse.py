"""Ablation: descriptor XML parse/validate cost.

M-Proxy descriptors are design-time artifacts parsed when the plugin or
the registry loads; this bench quantifies that (amortized) cost for the
largest shipped descriptor and for schema validation separately.
"""

import pytest

from repro.core.descriptor.registry import ProxyRegistry
from repro.core.descriptor.schema import validate_descriptor_xml
from repro.core.descriptor.xml_io import descriptor_from_xml, descriptor_to_xml
from repro.core.proxies.location.descriptor import build_location_descriptor


@pytest.fixture(scope="module")
def location_xml():
    return descriptor_to_xml(build_location_descriptor())


def test_serialize(benchmark):
    descriptor = build_location_descriptor()
    benchmark(lambda: descriptor_to_xml(descriptor))


def test_parse(benchmark, location_xml):
    benchmark(lambda: descriptor_from_xml(location_xml))


def test_schema_validate(benchmark, location_xml):
    result = benchmark(lambda: validate_descriptor_xml(location_xml))
    assert result == []


def test_full_registry_load(benchmark):
    """Parse + validate + register all four shipped proxies from XML."""
    from repro.core.proxies.location.descriptor import build_location_descriptor
    from repro.core.proxies.sms.descriptor import build_sms_descriptor
    from repro.core.proxies.call.descriptor import build_call_descriptor
    from repro.core.proxies.http.descriptor import build_http_descriptor

    documents = [
        descriptor_to_xml(build())
        for build in (
            build_location_descriptor,
            build_sms_descriptor,
            build_call_descriptor,
            build_http_descriptor,
        )
    ]

    def load():
        registry = ProxyRegistry()
        for document in documents:
            registry.register_xml(document)
        return registry

    registry = benchmark(load)
    assert len(registry) == 4
