"""Complexity evaluation (paper Section 5).

Static metrics over the real app sources: the with-proxy variant must be
smaller, less branchy, and touch a far narrower platform API surface than
each without-proxy variant.
"""

import pytest

from repro.analysis.metrics import measure, source_of
from repro.apps.workforce import native_webview
from repro.apps.workforce.native_android import WorkforceNativeAndroid
from repro.apps.workforce.native_s60 import WorkforceNativeS60
from repro.apps.workforce.proxied import WorkforceLogic
from repro.bench.harness import format_table


def test_complexity_table(benchmark):
    def compute():
        return {
            "native android": measure(WorkforceNativeAndroid, "android"),
            "native s60": measure(WorkforceNativeS60, "s60"),
            "native webview": measure(native_webview.make_native_page, "webview"),
            "proxied (android)": measure(WorkforceLogic, "android"),
            "proxied (s60)": measure(WorkforceLogic, "s60"),
            "proxied (webview)": measure(WorkforceLogic, "webview"),
        }

    metrics = benchmark(compute)

    headers = [
        "variant", "LoC", "platform API kinds", "platform API uses",
        "cyclomatic", "callback entry points", "try blocks",
    ]
    rows = [
        [
            name,
            str(m.loc),
            str(m.platform_marker_kinds),
            str(m.platform_marker_uses),
            str(m.cyclomatic),
            str(m.callback_entry_points),
            str(m.try_blocks),
        ]
        for name, m in metrics.items()
    ]
    print("\n\n=== Complexity: static metrics over the real app sources ===")
    print(format_table(headers, rows))

    proxied = metrics["proxied (android)"]
    for native_name in ("native android", "native s60"):
        native = metrics[native_name]
        assert proxied.loc < native.loc, native_name
        assert proxied.cyclomatic < native.cyclomatic, native_name
        assert proxied.platform_marker_kinds < native.platform_marker_kinds
        assert proxied.platform_marker_uses < native.platform_marker_uses
    # The proxied app's coupling to ANY platform is near zero.
    for name in ("proxied (android)", "proxied (s60)", "proxied (webview)"):
        assert metrics[name].platform_marker_kinds <= 1

    # Business logic concentration: the proxied variant has exactly one
    # callback entry point (proximity_event); the native S60 variant needs
    # several interleaved listener callbacks.
    assert proxied.callback_entry_points == 1
    assert metrics["native s60"].callback_entry_points >= 3
