"""Figure 10 reproduction: API invocation time with vs. without proxies.

The paper's chart has nine bar pairs: {addProximityAlert, getLocation,
sendSMS} × {Android, Android WebView, Nokia S60}.  Each pytest-benchmark
case here times the *with-proxy* invocation path (real Python execution on
top of the calibrated virtual native charge); the summary case regenerates
the full table and checks the shape criteria from DESIGN.md:

(a) with-proxy ≥ without-proxy for every bar,
(b) the proxy delta is a small fraction of the native latency,
(c) per-platform native ordering matches the paper's bars exactly
    (they are calibrated, so this also guards the calibration plumbing).

The summary case also writes ``BENCH_fig10.json`` (schema in
docs/PERFORMANCE.md): deterministic virtual-time bars plus the traced
per-layer overhead profile under ``metrics``, wall-clock medians under
``measured``.  Set ``REPRO_BENCH_DETERMINISTIC=1`` to drop the
``measured`` half so identically-seeded runs emit byte-identical files.
"""

import os

import pytest

from repro.bench.calibration import PAPER_FIGURE_10
from repro.bench.harness import APIS, Fig10Runner, PLATFORMS, format_table
from repro.bench.results import BenchResult, write_bench_result
from repro.obs import OverheadProfile


@pytest.fixture(scope="module")
def runner():
    return Fig10Runner()


@pytest.mark.parametrize("platform", PLATFORMS)
@pytest.mark.parametrize("api", APIS)
def test_fig10_with_proxy_invocation(benchmark, runner, platform, api):
    """Time one proxied invocation (real time; virtual charge is constant)."""
    bench = runner._bench_for(platform, with_proxy=True)
    invoke = bench.invoke[api]
    cleanup = bench.cleanup.get(api)

    def one_invocation():
        invoke()
        if cleanup is not None:
            cleanup()

    benchmark(one_invocation)


@pytest.mark.parametrize("platform", PLATFORMS)
def test_fig10_runtime_parity(runner, platform):
    """The concurrency runtime adds no modelled latency of its own: a
    single-shard dispatcher replays each invocation's captured virtual
    charge verbatim, so the per-call cost equals the direct proxy call."""
    out = runner.run_via_runtime(platform, "getLocation", repetitions=5)
    assert out["runtime_ms"] == pytest.approx(out["direct_ms"]), (
        f"{platform}: dispatch through the runtime changed the virtual charge"
    )


def test_fig10_full_reproduction(benchmark, runner, fig10_reps):
    """Regenerate the whole figure and verify the shape criteria."""
    detailed = benchmark.pedantic(
        lambda: runner.run_detailed(repetitions=fig10_reps), rounds=1, iterations=1
    )
    results = {key: value["total_ms"] for key, value in detailed.items()}

    headers = [
        "API", "Platform",
        "paper w/o", "ours w/o", "paper w/", "ours w/",
        "paper ovh", "ours ovh",
    ]
    rows = []
    for platform in PLATFORMS:
        for api in APIS:
            paper_without, paper_with = PAPER_FIGURE_10[(api, platform)]
            ours_without = results[(api, platform, "without")]
            ours_with = results[(api, platform, "with")]
            rows.append(
                [
                    api, platform,
                    f"{paper_without:.1f}", f"{ours_without:.2f}",
                    f"{paper_with:.1f}", f"{ours_with:.2f}",
                    f"{paper_with - paper_without:.1f}",
                    f"{ours_with - ours_without:.3f}",
                ]
            )
    print("\n\n=== Figure 10: API invocation time, ms (paper vs measured) ===")
    print(format_table(headers, rows))

    for platform in PLATFORMS:
        for api in APIS:
            paper_without, __ = PAPER_FIGURE_10[(api, platform)]
            ours_without = results[(api, platform, "without")]
            ours_with = results[(api, platform, "with")]
            # (c) native bars match the paper's without-proxy bars
            assert ours_without == pytest.approx(paper_without, rel=0.02), (
                f"{api}/{platform} native latency off"
            )
            # (a) proxy never *saves* time (tolerate sub-µs timer noise)
            assert ours_with >= ours_without - 0.01, (
                f"{api}/{platform}: proxy faster than native?"
            )
            # (b) overhead a small fraction of the native call (<5%;
            # the paper's handset measured 0.2-8%)
            overhead = ours_with - ours_without
            assert overhead < 0.05 * ours_without, (
                f"{api}/{platform}: overhead {overhead:.3f}ms too large"
            )

    # ordering *between* platforms follows the paper: the S60 location
    # stack is the slowest, Android native the fastest, WebView between.
    for api in ("addProximityAlert", "getLocation"):
        assert (
            results[(api, "android", "without")]
            < results[(api, "webview", "without")]
            < results[(api, "s60", "without")]
        )
    # ...while S60's SMS path is the fastest of the three (paper's crossover)
    assert (
        results[("sendSMS", "s60", "without")]
        < results[("sendSMS", "android", "without")]
        < results[("sendSMS", "webview", "without")]
    )

    # -- the machine-readable trajectory artifact ---------------------------
    profile = OverheadProfile.from_jsonl(runner.trace(repetitions=fig10_reps))
    result = BenchResult(
        name="fig10",
        params={"repetitions": fig10_reps},
        metrics={
            "invocation_virtual_ms": {
                f"{api}/{platform}/{mode}": value["virtual_ms"]
                for (api, platform, mode), value in sorted(detailed.items())
            },
            "profile": profile.to_dict(),
        },
        measured={
            "invocation_real_ms": {
                f"{api}/{platform}/{mode}": value["real_ms"]
                for (api, platform, mode), value in sorted(detailed.items())
            },
            "invocation_total_ms": {
                f"{api}/{platform}/{mode}": value["total_ms"]
                for (api, platform, mode), value in sorted(detailed.items())
            },
        },
    )
    path = write_bench_result(
        result,
        include_measured=not os.environ.get("REPRO_BENCH_DETERMINISTIC"),
    )
    print(f"\nwrote {path}")
