"""Ablation: cost of the generic ``set_property`` mechanism.

MobiVine routes platform attributes through a validated key/value store
instead of constructor parameters.  This bench quantifies that validation
overhead against a plain attribute write — the design-cost side of the
flexibility the paper argues for.
"""

import pytest

from repro.core.proxies import create_proxy, standard_registry
from repro.apps.workforce import scenario


@pytest.fixture(scope="module")
def s60_location_proxy():
    sc = scenario.build_s60()
    return create_proxy("Location", sc.platform)


def test_set_property_validated(benchmark, s60_location_proxy):
    """The MobiVine path: key check + allowed-values check."""
    benchmark(lambda: s60_location_proxy.set_property("preferredResponseTime", 1000))


def test_set_property_with_allowed_values(benchmark, s60_location_proxy):
    benchmark(lambda: s60_location_proxy.set_property("powerConsumption", "LOW"))


def test_plain_attribute_baseline(benchmark):
    """The unvalidated alternative a hand-rolled wrapper would use."""

    class Bare:
        preferred_response_time = 0

    bare = Bare()

    def assign():
        bare.preferred_response_time = 1000

    benchmark(assign)


def test_get_property_with_default(benchmark, s60_location_proxy):
    benchmark(lambda: s60_location_proxy.get_property("horizontalAccuracy"))


def test_property_error_path(benchmark, s60_location_proxy):
    """Rejections should also be cheap (they happen at dev-time mostly)."""
    from repro.errors import ProxyPropertyError

    def misuse():
        try:
            s60_location_proxy.set_property("warpDrive", 9)
        except ProxyPropertyError:
            pass

    benchmark(misuse)
