"""Benchmark-suite configuration."""

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--fig10-reps",
        action="store",
        default="30",
        help="repetitions per Figure-10 bar",
    )


@pytest.fixture(scope="session")
def fig10_reps(request):
    return int(request.config.getoption("--fig10-reps"))
