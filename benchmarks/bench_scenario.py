"""Scenario replay throughput and the record/replay cost profile.

The record/replay loop is the repo's cross-platform acceptance gate, so
its cost is a first-class number: if replaying the bundled library gets
slow, every CI run and every conformance check pays for it.  Recorded
in ``BENCH_scenario.json``:

* ``metrics`` (deterministic) — per-scenario step/outcome counts,
  recording sizes in bytes, virtual milliseconds simulated, and the
  declared/undeclared divergence counts over the full
  scenario × platform replay matrix (the undeclared count must be 0 —
  this benchmark doubles as the acceptance sweep);
* ``measured`` (wall-clock) — record and replay throughput in
  scenarios/second over the bundled library, and the full-matrix sweep
  time.  Excluded under ``REPRO_BENCH_DETERMINISTIC=1``.
"""

import os
import time

from repro.bench.results import BenchResult, write_bench_result
from repro.scenario import build, names, record, replay
from repro.scenario.divergence import PLATFORMS

#: Wall-clock throughput reps (kept small: CI smoke, not a soak).
RECORD_REPS = 3


def _virtual_ms(scenario) -> float:
    return sum(
        step.delta_ms for step in scenario.steps if step.kind == "advance"
    )


def test_scenario_bench():
    recordings = {name: record(build(name)) for name in names()}

    per_scenario = {}
    declared_total = 0
    undeclared_total = 0
    sweep_start = time.perf_counter()  # wall-clock: measurement
    for name, base in recordings.items():
        declared = 0
        undeclared = 0
        for platform in PLATFORMS:
            diff = replay(base, platform=platform).diff
            declared += len(diff.declared)
            undeclared += len(diff.undeclared)
        declared_total += declared
        undeclared_total += undeclared
        per_scenario[name] = {
            "steps": len(base.scenario.steps),
            "outcomes": len(base.outcomes),
            "recording_bytes": len(base.to_jsonl().encode("utf-8")),
            "virtual_ms": _virtual_ms(base.scenario),
            "declared_divergences": declared,
            "undeclared_divergences": undeclared,
        }
    sweep_s = time.perf_counter() - sweep_start  # wall-clock: measurement

    # The acceptance sweep: the whole matrix must be divergence-clean
    # apart from declared gaps.
    assert undeclared_total == 0, per_scenario
    assert declared_total >= 1  # the S60 Call gap must be exercised

    start = time.perf_counter()  # wall-clock: measurement
    for _ in range(RECORD_REPS):
        for name in names():
            record(build(name))
    record_s = time.perf_counter() - start  # wall-clock: measurement

    start = time.perf_counter()  # wall-clock: measurement
    for _ in range(RECORD_REPS):
        for base in recordings.values():
            replay(base)
    replay_s = time.perf_counter() - start  # wall-clock: measurement

    runs = RECORD_REPS * len(recordings)
    result = BenchResult(
        name="scenario",
        params={
            "scenarios": sorted(recordings),
            "platforms": list(PLATFORMS),
            "record_reps": RECORD_REPS,
        },
        metrics={
            "per_scenario": per_scenario,
            "matrix": {
                "replays": len(recordings) * len(PLATFORMS),
                "declared_divergences": declared_total,
                "undeclared_divergences": undeclared_total,
            },
        },
        measured={
            "record_per_s": round(runs / record_s, 2),
            "replay_per_s": round(runs / replay_s, 2),
            "matrix_sweep_s": round(sweep_s, 4),
        },
    )
    path = write_bench_result(
        result,
        include_measured=not os.environ.get("REPRO_BENCH_DETERMINISTIC"),
    )
    print(f"\nwrote {path}")
    print(
        f"record {result.measured['record_per_s']}/s, "
        f"replay {result.measured['replay_per_s']}/s, "
        f"matrix sweep {result.measured['matrix_sweep_s']}s"
    )


def test_scenario_bench_determinism():
    """Same seed → byte-identical recordings and metrics halves."""
    first = {name: record(build(name)).to_jsonl() for name in names()}
    second = {name: record(build(name)).to_jsonl() for name in names()}
    assert first == second
