"""Concurrency runtime benchmark: throughput and queue latency vs shards.

A fixed batch of identical requests (constant virtual service cost) is
submitted to one platform dispatcher and drained; the whole experiment
runs in virtual time, so every number here is deterministic.  The sweep
doubles the shard count and checks the scaling claim the runtime makes:
shard lanes overlap in virtual time, so makespan ≈ total work / shards —
8 shards must clear the batch at least 3× faster than 1 (it is 8× for
this uniform load; the floor leaves room for less convenient workloads).

Queue latency percentiles come from the dispatcher's own
``runtime.queue_wait_ms`` histogram (streaming P² estimates), i.e. the
same series operators would watch in production — the benchmark doubles
as a check that the instrumentation tells the truth about queueing.

Since the concurrency-observability layer landed, every load run also
exports its trace and folds it back through the shard-timeline and
critical-path analyzers: ``BENCH_concurrency.json`` carries per-shard
utilization and the run/wait makespan decomposition, the timeline and
flight documents are written next to it as artifacts, and the benchmark
asserts the headline analyzer property — the critical path's virtual
durations sum *exactly* to the drain makespan — plus byte-identical
exports across two identically-seeded runs.

Writes ``BENCH_concurrency.json`` (schema in docs/PERFORMANCE.md):
virtual throughput/latency under ``metrics``; wall-clock harness cost
under ``measured``.
"""

import os
import time

import pytest

from repro.bench.harness import format_table
from repro.bench.results import BenchResult, bench_output_dir, write_bench_result
from repro.obs import CriticalPath, Observability, ShardTimelines
from repro.runtime import ConcurrencyRuntime

SHARD_COUNTS = (1, 2, 4, 8)
REQUESTS = 64
SERVICE_MS = 10.0


def run_load(
    shards: int,
    *,
    requests: int = REQUESTS,
    service_ms: float = SERVICE_MS,
    seed: int = 0,
):
    """Submit ``requests`` uniform jobs to a ``shards``-lane dispatcher
    and drain; returns the virtual makespan and queue-wait percentiles."""
    from repro.util.clock import Scheduler, SimulatedClock

    scheduler = Scheduler(SimulatedClock())
    hub = Observability(capture_real_time=False)
    runtime = ConcurrencyRuntime(
        scheduler,
        shards=shards,
        queue_depth=requests,  # admission control is not under test here
        seed=seed,
        observability=hub,
    )
    clock = scheduler.clock
    dispatcher = runtime.dispatcher("bench")
    start_ms = clock.now_ms
    futures = [
        dispatcher.submit(
            "work", lambda: clock.advance(service_ms), tracer=hub.tracer
        )
        for _ in range(requests)
    ]
    runtime.drain()
    makespan_ms = clock.now_ms - start_ms
    assert all(future.done() and future.error is None for future in futures)
    wait = hub.metrics.histogram("runtime.queue_wait_ms", source="bench")
    timelines = ShardTimelines.from_spans(hub.tracer.finished_spans())
    path = CriticalPath.from_timelines(timelines)
    return {
        "makespan_ms": makespan_ms,
        "throughput_per_s": requests / makespan_ms * 1_000.0,
        "queue_wait": wait.percentiles(),
        "shed": dispatcher.shed_count,
        "per_shard": dispatcher.executed_per_shard(),
        "utilization": timelines.utilization_by_lane(),
        "critical_path": {
            "run_ms": path.run_ms,
            "wait_ms": path.wait_ms,
            "work_ms": path.work_ms,
            "parallelism": round(path.parallelism, 6),
        },
        "timelines": timelines,
        "path": path,
        "trace": hub.export_jsonl(),
    }


@pytest.mark.parametrize("shards", SHARD_COUNTS)
def test_concurrency_throughput(benchmark, shards):
    """Wall-clock cost of simulating the batch (the model itself is free
    of real sleeps; this times the dispatcher machinery)."""
    result = benchmark(run_load, shards)
    assert result["shed"] == 0
    assert sum(result["per_shard"]) == REQUESTS


def test_concurrency_scaling_summary():
    """The headline claim: ≥3× throughput at 8 shards vs 1."""
    wall: dict = {}
    results = {}
    for shards in SHARD_COUNTS:
        before = time.perf_counter()  # wall-clock: measurement
        results[shards] = run_load(shards)
        wall[shards] = (time.perf_counter() - before) * 1_000.0  # wall-clock: measurement

    headers = ["shards", "makespan ms", "req/s", "wait p50", "wait p95", "wait p99"]
    rows = [
        [
            str(shards),
            f"{r['makespan_ms']:.1f}",
            f"{r['throughput_per_s']:.1f}",
            f"{r['queue_wait']['p50']:.1f}",
            f"{r['queue_wait']['p95']:.1f}",
            f"{r['queue_wait']['p99']:.1f}",
        ]
        for shards, r in results.items()
    ]
    print("\n\n=== Concurrency: uniform batch vs shard count ===")
    print(format_table(headers, rows))

    # Uniform load on K lanes: makespan is exactly work/K.
    for shards, r in results.items():
        assert r["makespan_ms"] == pytest.approx(REQUESTS * SERVICE_MS / shards)
    # The analyzer's acceptance property: the critical path's step
    # durations tile the drain window, so they sum *exactly* to the
    # measured makespan — run + wait explains every virtual millisecond.
    for shards, r in results.items():
        path = r["path"]
        assert path.total_ms == pytest.approx(r["makespan_ms"], abs=1e-9)
        assert path.run_ms + path.wait_ms == pytest.approx(
            r["makespan_ms"], abs=1e-9
        )
        # Uniform batch: every lane is fully packed from t0.
        assert r["critical_path"]["wait_ms"] == pytest.approx(0.0, abs=1e-9)
        assert len(r["utilization"]) == shards
        for fraction in r["utilization"].values():
            assert fraction == pytest.approx(1.0)
    # The acceptance floor: ≥3× throughput at 8 shards vs 1.
    speedup = results[1]["makespan_ms"] / results[8]["makespan_ms"]
    assert speedup >= 3.0, f"8-shard speedup only {speedup:.2f}x"
    # More lanes never queue longer.
    for lo, hi in zip(SHARD_COUNTS, SHARD_COUNTS[1:]):
        assert (
            results[hi]["queue_wait"]["p95"] <= results[lo]["queue_wait"]["p95"]
        )

    result = BenchResult(
        name="concurrency",
        params={
            "requests": REQUESTS,
            "service_ms": SERVICE_MS,
            "shard_counts": list(SHARD_COUNTS),
        },
        metrics={
            "makespan_ms": {
                str(shards): r["makespan_ms"] for shards, r in results.items()
            },
            "throughput_per_s": {
                str(shards): r["throughput_per_s"] for shards, r in results.items()
            },
            "queue_wait_ms": {
                str(shards): r["queue_wait"] for shards, r in results.items()
            },
            "utilization": {
                str(shards): r["utilization"] for shards, r in results.items()
            },
            "critical_path": {
                str(shards): r["critical_path"] for shards, r in results.items()
            },
            "speedup_8_vs_1": speedup,
        },
        measured={"harness_wall_ms": {str(k): v for k, v in wall.items()}},
    )
    path = write_bench_result(
        result,
        include_measured=not os.environ.get("REPRO_BENCH_DETERMINISTIC"),
    )
    print(f"\nwrote {path}")

    # Companion artifacts for the CI bench smoke: the 8-shard run's
    # timeline and critical-path documents, next to the BENCH json.
    out_dir = bench_output_dir()
    widest = results[SHARD_COUNTS[-1]]
    timeline_path = out_dir / "TIMELINE_concurrency.json"
    timeline_path.write_text(widest["timelines"].to_json(), encoding="utf-8")
    cpath_path = out_dir / "CRITICAL_PATH_concurrency.json"
    cpath_path.write_text(widest["path"].to_json(), encoding="utf-8")
    print(f"wrote {timeline_path}")
    print(f"wrote {cpath_path}")


def test_concurrency_observability_determinism():
    """Two identically-seeded load runs export byte-identical traces,
    timelines and critical paths — the analyzers add no nondeterminism."""
    first = run_load(4, seed=7)
    second = run_load(4, seed=7)
    assert first["trace"] == second["trace"]
    assert first["timelines"].to_json() == second["timelines"].to_json()
    assert first["path"].to_json() == second["path"].to_json()


def run_overload(*, requests: int = 32, queue_depth: int = 4, seed: int = 0):
    """Submit a burst far past admission capacity with the full
    concurrency-observability stack installed; returns (hub, flight)."""
    from repro.util.clock import Scheduler, SimulatedClock

    scheduler = Scheduler(SimulatedClock())
    hub = Observability(capture_real_time=False)
    sampler = hub.install_sampler()
    sampler.track("runtime.queue_depth")
    sampler.track("runtime.inflight")
    flight = hub.install_flight_recorder()
    runtime = ConcurrencyRuntime(
        scheduler,
        shards=2,
        queue_depth=queue_depth,
        seed=seed,
        observability=hub,
    )
    clock = scheduler.clock
    dispatcher = runtime.dispatcher("bench")
    for _ in range(requests):
        dispatcher.submit(
            "work", lambda: clock.advance(SERVICE_MS), tracer=hub.tracer
        )
    runtime.drain()
    return hub, flight


def test_concurrency_overload_flight_artifact():
    """An overload burst produces exactly one cooldown-collapsed flight
    dump; the document is deterministic and saved as a bench artifact."""
    hub, flight = run_overload()
    # The burst lands in one virtual instant, before any lane starts
    # executing: each of the 2 lanes accepts queue_depth requests and
    # sheds the rest — one dump for the burst, the remainder suppressed.
    accepted = 2 * 4
    assert flight.triggered == 1
    dump = flight.last_dump
    assert dump is not None
    assert dump["reason"] == "queue.shed"
    assert dump["suppressed"] == 32 - accepted - 1
    assert any(event["name"] == "queue.shed" for event in dump["events"])
    assert any(
        sample["metric"] == "runtime.queue_depth" for sample in dump["samples"]
    )
    _, again = run_overload()
    assert flight.to_json() == again.to_json()

    out_path = bench_output_dir() / "FLIGHT_concurrency.json"
    out_path.write_text(flight.to_json(), encoding="utf-8")
    print(f"\nwrote {out_path}")


def test_concurrency_coalescing_savings():
    """Coalesced idempotent reads cost one execution for N submissions."""
    from repro.util.clock import Scheduler, SimulatedClock

    scheduler = Scheduler(SimulatedClock())
    runtime = ConcurrencyRuntime(scheduler, shards=2, queue_depth=REQUESTS)
    clock = scheduler.clock
    executions = []
    dispatcher = runtime.dispatcher("bench")
    futures = [
        dispatcher.submit(
            "get",
            lambda: (executions.append(clock.now_ms), clock.advance(SERVICE_MS))[0],
            coalesce_key="GET:/status",
        )
        for _ in range(16)
    ]
    runtime.drain()
    assert len(executions) == 1
    assert dispatcher.coalesced_count == 15
    assert all(future.done() and future.error is None for future in futures)
