"""Concurrency runtime benchmark: throughput and queue latency vs shards.

A fixed batch of identical requests (constant virtual service cost) is
submitted to one platform dispatcher and drained; the whole experiment
runs in virtual time, so every number here is deterministic.  The sweep
doubles the shard count and checks the scaling claim the runtime makes:
shard lanes overlap in virtual time, so makespan ≈ total work / shards —
8 shards must clear the batch at least 3× faster than 1 (it is 8× for
this uniform load; the floor leaves room for less convenient workloads).

Queue latency percentiles come from the dispatcher's own
``runtime.queue_wait_ms`` histogram (streaming P² estimates), i.e. the
same series operators would watch in production — the benchmark doubles
as a check that the instrumentation tells the truth about queueing.

Writes ``BENCH_concurrency.json`` (schema in docs/PERFORMANCE.md):
virtual throughput/latency under ``metrics``; wall-clock harness cost
under ``measured``.
"""

import os
import time

import pytest

from repro.bench.harness import format_table
from repro.bench.results import BenchResult, write_bench_result
from repro.obs import Observability
from repro.runtime import ConcurrencyRuntime

SHARD_COUNTS = (1, 2, 4, 8)
REQUESTS = 64
SERVICE_MS = 10.0


def run_load(
    shards: int,
    *,
    requests: int = REQUESTS,
    service_ms: float = SERVICE_MS,
    seed: int = 0,
):
    """Submit ``requests`` uniform jobs to a ``shards``-lane dispatcher
    and drain; returns the virtual makespan and queue-wait percentiles."""
    from repro.util.clock import Scheduler, SimulatedClock

    scheduler = Scheduler(SimulatedClock())
    hub = Observability(capture_real_time=False)
    runtime = ConcurrencyRuntime(
        scheduler,
        shards=shards,
        queue_depth=requests,  # admission control is not under test here
        seed=seed,
        observability=hub,
    )
    clock = scheduler.clock
    dispatcher = runtime.dispatcher("bench")
    start_ms = clock.now_ms
    futures = [
        dispatcher.submit("work", lambda: clock.advance(service_ms))
        for _ in range(requests)
    ]
    runtime.drain()
    makespan_ms = clock.now_ms - start_ms
    assert all(future.done() and future.error is None for future in futures)
    wait = hub.metrics.histogram("runtime.queue_wait_ms", platform="bench")
    return {
        "makespan_ms": makespan_ms,
        "throughput_per_s": requests / makespan_ms * 1_000.0,
        "queue_wait": wait.percentiles(),
        "shed": dispatcher.shed_count,
        "per_shard": dispatcher.executed_per_shard(),
    }


@pytest.mark.parametrize("shards", SHARD_COUNTS)
def test_concurrency_throughput(benchmark, shards):
    """Wall-clock cost of simulating the batch (the model itself is free
    of real sleeps; this times the dispatcher machinery)."""
    result = benchmark(run_load, shards)
    assert result["shed"] == 0
    assert sum(result["per_shard"]) == REQUESTS


def test_concurrency_scaling_summary():
    """The headline claim: ≥3× throughput at 8 shards vs 1."""
    wall: dict = {}
    results = {}
    for shards in SHARD_COUNTS:
        before = time.perf_counter()  # wall-clock: measurement
        results[shards] = run_load(shards)
        wall[shards] = (time.perf_counter() - before) * 1_000.0  # wall-clock: measurement

    headers = ["shards", "makespan ms", "req/s", "wait p50", "wait p95", "wait p99"]
    rows = [
        [
            str(shards),
            f"{r['makespan_ms']:.1f}",
            f"{r['throughput_per_s']:.1f}",
            f"{r['queue_wait']['p50']:.1f}",
            f"{r['queue_wait']['p95']:.1f}",
            f"{r['queue_wait']['p99']:.1f}",
        ]
        for shards, r in results.items()
    ]
    print("\n\n=== Concurrency: uniform batch vs shard count ===")
    print(format_table(headers, rows))

    # Uniform load on K lanes: makespan is exactly work/K.
    for shards, r in results.items():
        assert r["makespan_ms"] == pytest.approx(REQUESTS * SERVICE_MS / shards)
    # The acceptance floor: ≥3× throughput at 8 shards vs 1.
    speedup = results[1]["makespan_ms"] / results[8]["makespan_ms"]
    assert speedup >= 3.0, f"8-shard speedup only {speedup:.2f}x"
    # More lanes never queue longer.
    for lo, hi in zip(SHARD_COUNTS, SHARD_COUNTS[1:]):
        assert (
            results[hi]["queue_wait"]["p95"] <= results[lo]["queue_wait"]["p95"]
        )

    result = BenchResult(
        name="concurrency",
        params={
            "requests": REQUESTS,
            "service_ms": SERVICE_MS,
            "shard_counts": list(SHARD_COUNTS),
        },
        metrics={
            "makespan_ms": {
                str(shards): r["makespan_ms"] for shards, r in results.items()
            },
            "throughput_per_s": {
                str(shards): r["throughput_per_s"] for shards, r in results.items()
            },
            "queue_wait_ms": {
                str(shards): r["queue_wait"] for shards, r in results.items()
            },
            "speedup_8_vs_1": speedup,
        },
        measured={"harness_wall_ms": {str(k): v for k, v in wall.items()}},
    )
    path = write_bench_result(
        result,
        include_measured=not os.environ.get("REPRO_BENCH_DETERMINISTIC"),
    )
    print(f"\nwrote {path}")


def test_concurrency_coalescing_savings():
    """Coalesced idempotent reads cost one execution for N submissions."""
    from repro.util.clock import Scheduler, SimulatedClock

    scheduler = Scheduler(SimulatedClock())
    runtime = ConcurrencyRuntime(scheduler, shards=2, queue_depth=REQUESTS)
    clock = scheduler.clock
    executions = []
    dispatcher = runtime.dispatcher("bench")
    futures = [
        dispatcher.submit(
            "get",
            lambda: (executions.append(clock.now_ms), clock.advance(SERVICE_MS))[0],
            coalesce_key="GET:/status",
        )
        for _ in range(16)
    ]
    runtime.drain()
    assert len(executions) == 1
    assert dispatcher.coalesced_count == 15
    assert all(future.done() and future.error is None for future in futures)
