"""Ablation: WebView notification-delivery latency vs. polling interval.

The paper's WebView design delivers callbacks by *polling* a Java-side
Notification Table from JS (no callback can cross the bridge).  That
design has an inherent latency/overhead trade-off the paper doesn't
quantify: events wait, on average, half a poll period before the JS
callback sees them, while shorter periods burn more bridge crossings.
This bench measures both sides of the trade.
"""

import pytest

from repro.core.proxies.webview_common import NotificationHandler
from repro.device.device import MobileDevice
from repro.platforms.webview.platform import WebViewPlatform
from repro.bench.harness import format_table

POLL_INTERVALS_MS = [100.0, 250.0, 500.0, 1000.0, 2000.0]
#: Post events at a co-prime-ish period so phases spread over the poll cycle.
POST_PERIOD_MS = 333.0
POST_COUNT = 60


class _CountingWrapper:
    """Minimal Java-side wrapper exposing only get_notifications."""

    def __init__(self, platform):
        self._platform = platform
        self.crossings = 0

    def get_notifications(self, notification_id: str) -> str:
        self.crossings += 1
        return self._platform.notification_table.drain_json(notification_id)


def _measure_polling(interval_ms: float):
    device = MobileDevice("+1")
    platform = WebViewPlatform(device)
    webview = platform.new_webview()
    window = webview.load_page(lambda w: None)
    wrapper = _CountingWrapper(platform)
    notification_id = platform.notification_table.new_id()

    latencies = []

    def dispatch(notification):
        latencies.append(
            platform.clock.now_ms - notification["posted_at_ms"]
        )

    handler = NotificationHandler(
        window, wrapper, notification_id, dispatch, poll_interval_ms=interval_ms
    )
    handler.start_polling()

    posted = {"count": 0}

    def post_one():
        platform.notification_table.post(
            notification_id, "tick", {"n": posted["count"]}, platform.clock.now_ms
        )
        posted["count"] += 1

    post_timer = platform.scheduler.call_every(POST_PERIOD_MS, post_one)
    platform.run_for(POST_PERIOD_MS * POST_COUNT + 4 * interval_ms)
    post_timer.cancel()
    handler.stop_polling()
    platform.run_for(interval_ms)  # drain any stragglers (already stopped)

    mean_latency = sum(latencies) / len(latencies)
    duration_s = platform.clock.now_ms / 1000.0
    crossings_per_s = wrapper.crossings / duration_s
    return mean_latency, crossings_per_s, len(latencies)


def test_polling_interval_tradeoff(benchmark):
    results = benchmark.pedantic(
        lambda: {interval: _measure_polling(interval) for interval in POLL_INTERVALS_MS},
        rounds=1,
        iterations=1,
    )
    rows = []
    for interval, (latency, crossings, delivered) in sorted(results.items()):
        rows.append(
            [
                f"{interval:.0f}",
                f"{latency:.1f}",
                f"{interval / 2:.1f}",
                f"{crossings:.2f}",
                str(delivered),
            ]
        )
    print("\n\n=== Ablation: WebView notification polling interval ===")
    print(
        format_table(
            [
                "poll interval (ms)",
                "mean delivery latency (ms)",
                "theory (interval/2)",
                "bridge crossings /s",
                "events delivered",
            ],
            rows,
        )
    )
    # Latency grows with the interval, ~interval/2.
    intervals = sorted(results)
    latencies = [results[i][0] for i in intervals]
    assert latencies == sorted(latencies)
    for interval in intervals:
        latency = results[interval][0]
        assert 0.25 * interval <= latency <= 0.85 * interval
    # Bridge traffic shrinks as the interval grows.
    crossings = [results[i][1] for i in intervals]
    assert crossings == sorted(crossings, reverse=True)
    # Nothing is lost at any interval.
    assert all(results[i][2] >= POST_COUNT - 1 for i in intervals)
