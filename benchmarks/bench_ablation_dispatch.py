"""Ablation: Android Intent-broadcast fan-out vs. direct listener dispatch.

The Android Location proxy's callback adaptation rides the platform's
broadcast machinery (register an IntentReceiver, match IntentFilters).
This bench compares that path against a direct listener call — the cost
the proxy pays per delivered event — and how it scales with the number of
unrelated receivers registered in the same application.
"""

import pytest

from repro.device.device import MobileDevice
from repro.platforms.android.intents import (
    FunctionIntentReceiver,
    Intent,
    IntentFilter,
)
from repro.platforms.android.platform import AndroidPlatform
from repro.bench.harness import format_table


def _platform_with_receivers(extra_receivers: int):
    device = MobileDevice("+1")
    platform = AndroidPlatform(device)
    platform.install("app", set())
    context = platform.new_context("app")
    hits = []
    context.register_receiver(
        FunctionIntentReceiver(lambda c, i: hits.append(1)), IntentFilter("TARGET")
    )
    for index in range(extra_receivers):
        context.register_receiver(
            FunctionIntentReceiver(lambda c, i: None),
            IntentFilter(f"UNRELATED_{index}"),
        )
    return context, hits


@pytest.mark.parametrize("extra", [0, 10, 100])
def test_broadcast_fanout(benchmark, extra):
    context, hits = _platform_with_receivers(extra)
    intent = Intent("TARGET").put_extra("entering", True)
    benchmark(lambda: context.send_broadcast(intent))
    assert hits  # the matching receiver did run


def test_direct_listener_baseline(benchmark):
    """What the S60-style direct listener call costs (no matching)."""
    hits = []

    class Listener:
        def proximity_event(self, entering):
            hits.append(entering)

    listener = Listener()
    benchmark(lambda: listener.proximity_event(True))
    assert hits


def test_fanout_scaling_summary(benchmark):
    """Summarize per-delivery cost across registry sizes."""
    import time

    def measure_all():
        rows = []
        for extra in (0, 10, 100, 500):
            context, hits = _platform_with_receivers(extra)
            intent = Intent("TARGET")
            iterations = 2_000
            start = time.perf_counter()
            for _ in range(iterations):
                context.send_broadcast(intent)
            elapsed_us = (time.perf_counter() - start) / iterations * 1e6
            rows.append([str(extra + 1), f"{elapsed_us:.2f}"])
        return rows

    rows = benchmark.pedantic(measure_all, rounds=1, iterations=1)
    print("\n\n=== Ablation: broadcast cost vs. registered receivers ===")
    print(format_table(["receivers registered", "per-broadcast us"], rows))
    # Cost grows with registry size (linear matching), which is why the
    # proxy registers exactly one receiver per alert.
    costs = [float(row[1]) for row in rows]
    assert costs[0] < costs[-1]
