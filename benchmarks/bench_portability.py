"""Portability evaluation (paper Section 5, Figures 2 vs 8/9).

Measures cross-platform code similarity for the workforce app in its
without-proxy and with-proxy forms, from the real module sources.
"""

import pytest

from repro.analysis.metrics import source_of
from repro.analysis.portability import pairwise_similarity, portability_score
from repro.apps.workforce import native_webview
from repro.apps.workforce.native_android import WorkforceNativeAndroid
from repro.apps.workforce.native_s60 import WorkforceNativeS60
from repro.apps.workforce.proxied import WorkforceLogic
from repro.bench.harness import format_table


def _native_sources():
    return {
        "android": source_of(WorkforceNativeAndroid),
        "s60": source_of(WorkforceNativeS60),
        "webview": source_of(native_webview.make_native_page),
    }


def _proxied_sources():
    shared = source_of(WorkforceLogic)
    return {platform: shared for platform in ("android", "s60", "webview")}


def test_portability_table(benchmark):
    """Regenerate the portability comparison and verify the ordering."""
    def compute():
        return (
            portability_score(_native_sources()),
            portability_score(_proxied_sources()),
            pairwise_similarity(_native_sources()),
        )

    native_score, proxied_score, native_pairs = benchmark(compute)

    rows = [
        ["without proxies (Figure 2 style)", f"{native_score:.3f}"],
        ["with proxies (Figure 8/9 style)", f"{proxied_score:.3f}"],
    ]
    for (a, b), score in sorted(native_pairs.items()):
        rows.append([f"  native {a} vs {b}", f"{score:.3f}"])
    print("\n\n=== Portability: cross-platform code similarity (1.0 = identical) ===")
    print(format_table(["variant", "similarity"], rows))

    # Paper's claim: proxied code is (near-)identical across platforms,
    # native code is not.
    assert proxied_score == 1.0
    assert native_score < 0.5
    assert all(score < 0.6 for score in native_pairs.values())


def test_proxied_runs_identically_everywhere(benchmark):
    """Dynamic half of the claim: the shared class produces the same
    observable event sequence on all three platforms."""
    from repro.apps.workforce import scenario
    from repro.apps.workforce.proxied import (
        launch_on_android,
        launch_on_s60,
        launch_on_webview,
    )
    from repro.core.plugin.packaging import WebViewPlatformExtension

    def run_everywhere():
        events = {}
        sc = scenario.build_android()
        logic = launch_on_android(sc.platform, sc.new_context(), sc.config)
        sc.platform.run_for(200_000.0)
        events["android"] = list(logic.activity_events)

        sc = scenario.build_s60()
        logic = launch_on_s60(sc.platform, sc.config)
        sc.platform.run_for(200_000.0)
        events["s60"] = list(logic.activity_events)

        sc = scenario.build_webview()
        webview = sc.platform.new_webview()
        WebViewPlatformExtension().install_wrappers(
            webview, sc.platform, sc.new_context(), ["Location", "Sms", "Http"]
        )
        holder = {}
        webview.load_page(
            lambda w: holder.update(logic=launch_on_webview(sc.platform, sc.config))
        )
        sc.platform.run_for(200_000.0)
        events["webview"] = list(holder["logic"].activity_events)
        return events

    events = benchmark.pedantic(run_everywhere, rounds=1, iterations=1)
    print("\n\n=== Proxied app event sequences per platform ===")
    for platform, sequence in sorted(events.items()):
        print(f"  {platform:8s}: {sequence}")
    assert events["android"] == events["s60"] == events["webview"]
