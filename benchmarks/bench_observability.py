"""Observability overhead on the Figure-10 hot path.

The tentpole claim: the default (disabled) state is near-zero-cost — an
instrumentation site pays one ``tracer.enabled`` attribute read and a
branch.  Three tiers are measured on the same Android Location binding:

* ``disabled`` — the default hub (no-op tracer, live registry): what
  every pre-observability caller now pays;
* ``tracing``  — a recording tracer: the full span tree per invocation;
* ``tracing+real`` — tracing with real-time capture on (adds two
  ``perf_counter`` reads per span).

Micro tiers isolate the tracer itself: a no-op span vs. a recorded
span vs. a counter increment.  On top of the tiers, the pipeline
comparison times the two production postures end to end — full tracing
(retain every span, export everything) against the streaming telemetry
pipeline at a 1% head rate (bounded ring, export only what sampling
kept) — and asserts the sampled posture's per-invocation cost is
strictly below full tracing's.

The last case writes ``BENCH_observability.json`` (see
docs/PERFORMANCE.md): deterministic traced span accounting and sampling
accounting under ``metrics``, wall-clock micro timings and the
sampled-vs-full comparison under ``measured``.

Run with:  PYTHONPATH=src python -m pytest benchmarks/bench_observability.py
"""

import os
import time

import pytest

from repro.apps.workforce import scenario
from repro.bench.results import BenchResult, write_bench_result
from repro.core.proxies import create_proxy
from repro.obs import (
    MetricsRegistry,
    NOOP_TRACER,
    Observability,
    OverheadProfile,
    PipelineConfig,
    Tracer,
)
from repro.util.clock import SimulatedClock

pytestmark = pytest.mark.obs

TIERS = {
    "disabled": lambda: Observability.disabled(),
    "tracing": lambda: Observability(capture_real_time=False),
    "tracing+real": lambda: Observability(capture_real_time=True),
}


def _location_proxy(hub):
    sc = scenario.build_android(observability=hub)
    sc.platform.run_for(5_000.0)  # let the GPS produce a first fix
    proxy = create_proxy("Location", sc.platform)
    proxy.set_property("context", sc.new_context())
    proxy.set_property("provider", "gps")
    return proxy


@pytest.mark.parametrize("tier", list(TIERS), ids=list(TIERS))
def test_get_location_overhead(benchmark, tier):
    """Full proxied getLocation (the Figure-10 bar) under each tier."""
    hub = TIERS[tier]()
    proxy = _location_proxy(hub)

    if hub.enabled:
        # Keep memory flat across benchmark rounds: drop recorded spans.
        def one_invocation():
            result = proxy.get_location()
            hub.tracer.reset()
            return result

    else:
        one_invocation = proxy.get_location

    assert benchmark(one_invocation) is not None
    if hub.enabled:
        assert not hub.tracer.spans  # reset kept the trace buffer empty


def test_noop_span_micro(benchmark):
    """The no-op guard pattern every instrumentation site uses."""

    def guarded_site():
        if NOOP_TRACER.enabled:  # pragma: no cover - never taken
            with NOOP_TRACER.span("op"):
                pass
        return True

    assert benchmark(guarded_site)


def test_recorded_span_micro(benchmark):
    """One recorded span: open, stamp, close (virtual clock only)."""
    tracer = Tracer(SimulatedClock(), capture_real_time=False)

    def one_span():
        with tracer.span("op", key="value"):
            pass
        tracer.reset()

    benchmark(one_span)


def test_counter_inc_micro(benchmark):
    """The hot-path registry op: resolve-and-increment one counter."""
    registry = MetricsRegistry()

    def inc():
        registry.counter("resilience.attempts", runtime="bench").inc()

    benchmark(inc)
    assert registry.total("resilience.attempts") > 0


def _micro_ms(fn, rounds: int = 2_000) -> float:
    """Mean wall-clock cost of ``fn`` in ms (bench-only; never in src)."""
    start = time.perf_counter()
    for _ in range(rounds):
        fn()
    return (time.perf_counter() - start) * 1_000.0 / rounds


#: Invocations per posture in the sampled-vs-full comparison.  Export
#: cost amortizes over these, so the count must be large enough that
#: serializing ~5 spans/invocation (full) vs ~1% of that (sampled)
#: dominates run-to-run noise.
PIPELINE_INVOCATIONS = 600
SAMPLE_RATE = 0.01
SAMPLE_SEED = 17


def _posture_ms(sampled: bool, invocations: int = PIPELINE_INVOCATIONS):
    """Per-invocation wall-clock cost of one telemetry posture, export
    included; returns ``(ms, pipeline-or-None, exported_line_count)``."""
    hub = Observability(capture_real_time=False)
    pipeline = None
    if sampled:
        pipeline = hub.install_pipeline(
            PipelineConfig(
                default_rate=SAMPLE_RATE, seed=SAMPLE_SEED, streaming=True
            )
        )
    proxy = _location_proxy(hub)
    start = time.perf_counter()
    for _ in range(invocations):
        proxy.get_location()
    payload = pipeline.export_jsonl() if sampled else hub.export_jsonl()
    elapsed_ms = (time.perf_counter() - start) * 1_000.0
    return elapsed_ms / invocations, pipeline, payload.count("\n")


def test_sampled_vs_full_tracing_overhead():
    """The tentpole perf claim: streaming 1% sampling costs strictly
    less per invocation than full tracing (which pays list growth plus
    serialization of every span at export)."""
    full_ms, _, full_lines = _posture_ms(sampled=False)
    sampled_ms, pipeline, sampled_lines = _posture_ms(sampled=True)
    accounting = pipeline.accounting()
    # Same seed, same traffic → the keep/drop decisions (and therefore
    # the exported line count) are a pure function of the config.
    assert accounting["traces_total"] >= PIPELINE_INVOCATIONS
    assert 0 < accounting["traces_kept"] < accounting["traces_total"]
    assert sampled_lines < full_lines
    assert sampled_ms < full_ms, (
        f"sampled tracing must beat full tracing: "
        f"{sampled_ms:.6f}ms >= {full_ms:.6f}ms per invocation"
    )


def test_bench_observability_result():
    """Write BENCH_observability.json: traced span accounting, sampling
    accounting, micro timings and the sampled-vs-full comparison."""
    repetitions = 5
    hub = Observability(capture_real_time=False)
    proxy = _location_proxy(hub)
    hub.tracer.reset()
    for _ in range(repetitions):
        proxy.get_location()
    profile = OverheadProfile.from_spans(hub.tracer.finished_spans())
    entry = profile.operations[("getLocation", "android")]
    assert entry.invocations == repetitions

    tracer = Tracer(SimulatedClock(), capture_real_time=False)

    def recorded_span():
        with tracer.span("op"):
            pass
        tracer.reset()

    registry = MetricsRegistry()
    full_ms, _, _ = _posture_ms(sampled=False)
    sampled_ms, pipeline, _ = _posture_ms(sampled=True)
    result = BenchResult(
        name="observability",
        params={
            "repetitions": repetitions,
            "pipeline_invocations": PIPELINE_INVOCATIONS,
            "sample_rate": SAMPLE_RATE,
            "sample_seed": SAMPLE_SEED,
        },
        metrics={
            "getLocation_android": entry.to_dict(),
            "spans_per_invocation": sum(entry.layer_spans.values()) / repetitions,
            "profile": profile.to_dict(),
            # Deterministic: keep/drop is a seeded pure function of the
            # (identical) trace stream, so these counts are byte-stable.
            "sampling": pipeline.accounting(),
        },
        measured={
            "noop_span_ms": _micro_ms(
                lambda: NOOP_TRACER.span("op") if NOOP_TRACER.enabled else None
            ),
            "recorded_span_ms": _micro_ms(recorded_span),
            "counter_inc_ms": _micro_ms(
                lambda: registry.counter("resilience.attempts", runtime="bench").inc()
            ),
            "full_tracing_ms_per_invocation": full_ms,
            "sampled_tracing_ms_per_invocation": sampled_ms,
            "sampling_speedup": full_ms / sampled_ms if sampled_ms else 0.0,
        },
    )
    path = write_bench_result(
        result,
        include_measured=not os.environ.get("REPRO_BENCH_DETERMINISTIC"),
    )
    print(f"\nwrote {path}")
