"""Latency calibration for the Figure-10 reproduction.

The paper measured API invocation time on real handsets; we cannot.  The
substitution (documented in DESIGN.md): the *native* cost of each platform
API is a virtual-time charge calibrated to the paper's "without proxy"
bars, and the proxy's own cost is measured as real Python execution time
on top.  The shape criteria — proxy ≥ native, overhead a small fraction,
per-platform ordering — are then properties of the real system, not of the
calibration.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.util.latency import LatencyModel

#: The paper's Figure 10 data: (api, platform) → (without_ms, with_ms).
PAPER_FIGURE_10: Dict[Tuple[str, str], Tuple[float, float]] = {
    ("addProximityAlert", "android"): (53.6, 55.4),
    ("getLocation", "android"): (15.5, 17.3),
    ("sendSMS", "android"): (52.7, 55.8),
    ("addProximityAlert", "webview"): (78.4, 80.5),
    ("getLocation", "webview"): (120.0, 121.7),
    ("sendSMS", "webview"): (91.6, 91.8),
    ("addProximityAlert", "s60"): (141.0, 146.8),
    ("getLocation", "s60"): (140.8, 148.5),
    ("sendSMS", "s60"): (15.6, 16.1),
}

#: Paper-reported proxy overheads (with − without), for EXPERIMENTS.md.
PAPER_OVERHEADS_MS: Dict[Tuple[str, str], float] = {
    key: round(with_ms - without_ms, 2)
    for key, (without_ms, with_ms) in PAPER_FIGURE_10.items()
}


def figure10_android_latency(*, jitter_fraction: float = 0.0, seed: int = 7) -> LatencyModel:
    """Android native model calibrated to the paper's without-proxy bars."""
    return LatencyModel(
        mean_ms={
            "android.addProximityAlert": PAPER_FIGURE_10[("addProximityAlert", "android")][0],
            "android.getLocation": PAPER_FIGURE_10[("getLocation", "android")][0],
            "android.sendSMS": PAPER_FIGURE_10[("sendSMS", "android")][0],
            "android.call": 40.0,
            "android.http": 30.0,
        },
        jitter_fraction=jitter_fraction,
        seed=seed,
        default_ms=1.0,
    )


def figure10_s60_latency(*, jitter_fraction: float = 0.0, seed: int = 11) -> LatencyModel:
    """S60 native model calibrated to the paper's without-proxy bars."""
    return LatencyModel(
        mean_ms={
            "s60.addProximityListener": PAPER_FIGURE_10[("addProximityAlert", "s60")][0],
            "s60.getLocation": PAPER_FIGURE_10[("getLocation", "s60")][0],
            "s60.sendSMS": PAPER_FIGURE_10[("sendSMS", "s60")][0],
            "s60.http": 60.0,
        },
        jitter_fraction=jitter_fraction,
        seed=seed,
        default_ms=1.0,
    )


def figure10_webview_bridge_latency(*, jitter_fraction: float = 0.0, seed: int = 13) -> LatencyModel:
    """WebView bridge model: the paper's WebView bar minus the Android bar.

    A WebView invocation = one bridge crossing + the underlying Android
    native call, so the bridge cost for each method is calibrated as the
    difference between the paper's WebView and Android without-proxy bars.
    """
    android = PAPER_FIGURE_10
    return LatencyModel(
        mean_ms={
            "webview.bridge.add_proximity_alert": (
                android[("addProximityAlert", "webview")][0]
                - android[("addProximityAlert", "android")][0]
            ),
            "webview.bridge.get_location": (
                android[("getLocation", "webview")][0]
                - android[("getLocation", "android")][0]
            ),
            "webview.bridge.send_text_message": (
                android[("sendSMS", "webview")][0]
                - android[("sendSMS", "android")][0]
            ),
            # Raw shim methods used by the without-proxy WebView app take
            # the same crossings as the wrapper methods.
            "webview.bridge.get_location_json": (
                android[("getLocation", "webview")][0]
                - android[("getLocation", "android")][0]
            ),
        },
        jitter_fraction=jitter_fraction,
        seed=seed,
        default_ms=0.2,
    )
