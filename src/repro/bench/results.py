"""Machine-readable benchmark results: the ``BENCH_*.json`` trajectory.

Every benchmark that matters writes one :class:`BenchResult` per run so
the perf trajectory is a first-class, diffable artifact (see
``docs/PERFORMANCE.md``).  A result has two halves:

* ``metrics`` — **deterministic**, virtual-time-derived numbers (and
  the traced overhead profile).  Two identically-seeded runs serialize
  these byte-identically: no timestamps, no wall-clock anywhere.
* ``measured`` — wall-clock-derived numbers (real-time medians from the
  Figure-10 harness, micro-benchmark timings).  Excluded by
  ``to_json(include_measured=False)`` and by the determinism tests.

The regression gate (``python -m repro.obs diff``) accepts a BENCH
document directly when its metrics embed a profile.
"""

from __future__ import annotations

import json
import os
import pathlib
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Union

BENCH_SCHEMA = "repro.bench/v1"

#: Environment override for where ``BENCH_*.json`` files land
#: (default: the repo root when running from a checkout, else CWD).
BENCH_DIR_ENV = "REPRO_BENCH_DIR"


def _round_floats(value: Any, digits: int = 6) -> Any:
    """Recursively round floats so serialized metrics are byte-stable."""
    if isinstance(value, float):
        return round(value, digits)
    if isinstance(value, dict):
        return {key: _round_floats(item, digits) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_round_floats(item, digits) for item in value]
    return value


@dataclass
class BenchResult:
    """One benchmark run's machine-readable output."""

    name: str
    params: Dict[str, Any] = field(default_factory=dict)
    metrics: Dict[str, Any] = field(default_factory=dict)
    measured: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self, *, include_measured: bool = True) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "schema": BENCH_SCHEMA,
            "name": self.name,
            "params": _round_floats(self.params),
            "metrics": _round_floats(self.metrics),
        }
        if include_measured:
            out["measured"] = _round_floats(self.measured)
        return out

    def to_json(self, *, include_measured: bool = True) -> str:
        return (
            json.dumps(
                self.to_dict(include_measured=include_measured),
                sort_keys=True,
                indent=2,
            )
            + "\n"
        )

    @property
    def default_filename(self) -> str:
        return f"BENCH_{self.name}.json"


def _default_bench_dir() -> pathlib.Path:
    """The repo root when this module runs from a checkout (three levels
    above ``src/repro/bench/``, identified by its ``pyproject.toml``),
    so ``BENCH_*.json`` lands in one predictable place no matter which
    directory pytest was launched from; plain CWD otherwise."""
    root = pathlib.Path(__file__).resolve().parents[3]
    if (root / "pyproject.toml").is_file():
        return root
    return pathlib.Path(".")


def bench_output_dir() -> pathlib.Path:
    override = os.environ.get(BENCH_DIR_ENV)
    return pathlib.Path(override) if override else _default_bench_dir()


def write_bench_result(
    result: BenchResult,
    path: Optional[Union[str, pathlib.Path]] = None,
    *,
    include_measured: bool = True,
) -> pathlib.Path:
    """Serialize ``result`` (default: ``BENCH_<name>.json`` in the bench
    output dir) and return the written path."""
    target = pathlib.Path(path) if path is not None else (
        bench_output_dir() / result.default_filename
    )
    target.parent.mkdir(parents=True, exist_ok=True)
    with open(target, "w", encoding="utf-8") as handle:
        handle.write(result.to_json(include_measured=include_measured))
    return target


def read_bench_result(path: Union[str, pathlib.Path]) -> BenchResult:
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    if payload.get("schema") != BENCH_SCHEMA:
        raise ValueError(f"{path} is not a {BENCH_SCHEMA} document")
    return BenchResult(
        name=payload["name"],
        params=payload.get("params", {}),
        metrics=payload.get("metrics", {}),
        measured=payload.get("measured", {}),
    )
