"""Benchmark harness: Figure-10 calibration and runners."""

from repro.bench.calibration import (
    PAPER_FIGURE_10,
    figure10_android_latency,
    figure10_s60_latency,
    figure10_webview_bridge_latency,
)
from repro.bench.harness import Fig10Runner, InvocationSample, format_table

__all__ = [
    "Fig10Runner",
    "InvocationSample",
    "PAPER_FIGURE_10",
    "figure10_android_latency",
    "figure10_s60_latency",
    "figure10_webview_bridge_latency",
    "format_table",
]
