"""The Figure-10 runner: API invocation time with and without proxies.

Measurement model (see ``repro.bench.calibration``): one invocation's cost
is *(virtual native latency charged by the substrate)* + *(real Python
time spent executing the call path)*.  Both modes pay the same calibrated
native charge; the proxy mode additionally executes the M-Proxy layer in
real time — so the measured overhead is genuinely the proxy layer's cost,
exactly what the paper's Figure 10 isolates.
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.apps.workforce import scenario
from repro.bench.calibration import (
    PAPER_FIGURE_10,
    figure10_android_latency,
    figure10_s60_latency,
    figure10_webview_bridge_latency,
)
from repro.core.proxies import create_proxy
from repro.core.proxy.callbacks import ProximityListener
from repro.obs import Observability, OverheadProfile
from repro.platforms.android.context import Context
from repro.platforms.android.intents import Intent
from repro.platforms.android.location import NO_EXPIRATION as ANDROID_NO_EXPIRATION
from repro.platforms.s60.location import Coordinates
from repro.platforms.s60.location import ProximityListener as S60NativeListener
from repro.runtime import ConcurrencyRuntime
from repro.util.clock import Scheduler

#: The three APIs Figure 10 charts.
APIS = ("addProximityAlert", "getLocation", "sendSMS")
PLATFORMS = ("android", "webview", "s60")
MODES = ("without", "with")


class _NullUniformListener(ProximityListener):
    def proximity_event(self, *args) -> None:  # pragma: no cover - never fires
        pass


class _NullS60Listener(S60NativeListener):
    def proximity_event(self, coordinates, location) -> None:  # pragma: no cover
        pass

    def monitoring_state_changed(self, active: bool) -> None:
        pass


@dataclass(frozen=True)
class InvocationSample:
    """One measured API invocation."""

    api: str
    platform: str
    mode: str  # "without" | "with"
    virtual_ms: float
    real_ms: float

    @property
    def total_ms(self) -> float:
        return self.virtual_ms + self.real_ms


@dataclass
class _Bench:
    """One (platform, mode) bench context: invoke + cleanup per API."""

    clock_now: Callable[[], float]
    invoke: Dict[str, Callable[[], None]]
    cleanup: Dict[str, Callable[[], None]]
    #: the scenario's event scheduler; the runtime parity path rides it.
    scheduler: Optional[Scheduler] = None


class Fig10Runner:
    """Builds the calibrated scenarios and measures every bar of Figure 10."""

    def __init__(self, *, jitter_fraction: float = 0.0) -> None:
        self._jitter = jitter_fraction

    # -- per-platform bench builders -----------------------------------------

    def _android_bench(
        self, with_proxy: bool, hub: Optional[Observability] = None
    ) -> _Bench:
        sc = scenario.build_android(
            latency=figure10_android_latency(jitter_fraction=self._jitter),
            observability=hub,
        )
        sc.device.gps.power_on()
        sc.platform.run_for(5_000)
        context = sc.new_context()
        site = sc.config.site
        if with_proxy:
            location = create_proxy("Location", sc.platform)
            location.set_property("context", context)
            sms = create_proxy("Sms", sc.platform)
            sms.set_property("context", context)
            listener = _NullUniformListener()
            return _Bench(
                clock_now=lambda: sc.platform.clock.now_ms,
                scheduler=sc.device.scheduler,
                invoke={
                    "addProximityAlert": lambda: location.add_proximity_alert(
                        site.latitude, site.longitude, 0.0, site.radius_m, -1, listener
                    ),
                    "getLocation": lambda: location.get_location(),
                    "sendSMS": lambda: sms.send_text_message("+900", "bench"),
                },
                cleanup={
                    "addProximityAlert": lambda: location.remove_proximity_alert(
                        listener
                    ),
                },
            )
        manager = context.get_system_service(Context.LOCATION_SERVICE)
        sms_manager = sc.platform.sms_manager(context)
        intents: List[Intent] = []

        def add_alert() -> None:
            intent = Intent("bench.PROXIMITY")
            intents.append(intent)
            manager.add_proximity_alert(
                site.latitude, site.longitude, site.radius_m,
                ANDROID_NO_EXPIRATION, intent,
            )

        def remove_alert() -> None:
            while intents:
                manager.remove_proximity_alert(intents.pop())

        return _Bench(
            clock_now=lambda: sc.platform.clock.now_ms,
            scheduler=sc.device.scheduler,
            invoke={
                "addProximityAlert": add_alert,
                "getLocation": lambda: manager.get_current_location("gps"),
                "sendSMS": lambda: sms_manager.send_text_message("+900", None, "bench"),
            },
            cleanup={"addProximityAlert": remove_alert},
        )

    def _s60_bench(
        self, with_proxy: bool, hub: Optional[Observability] = None
    ) -> _Bench:
        sc = scenario.build_s60(
            latency=figure10_s60_latency(jitter_fraction=self._jitter),
            observability=hub,
        )
        sc.device.gps.power_on()
        sc.platform.run_for(5_000)
        site = sc.config.site
        if with_proxy:
            location = create_proxy("Location", sc.platform)
            sms = create_proxy("Sms", sc.platform)
            listener = _NullUniformListener()
            return _Bench(
                clock_now=lambda: sc.platform.clock.now_ms,
                scheduler=sc.device.scheduler,
                invoke={
                    "addProximityAlert": lambda: location.add_proximity_alert(
                        site.latitude, site.longitude, 0.0, site.radius_m, -1, listener
                    ),
                    "getLocation": lambda: location.get_location(),
                    "sendSMS": lambda: sms.send_text_message("+900", "bench"),
                },
                cleanup={
                    "addProximityAlert": lambda: location.remove_proximity_alert(
                        listener
                    ),
                },
            )
        statics = sc.platform.location_provider
        provider = statics.get_instance(None)
        native_listener = _NullS60Listener()
        coordinates = Coordinates(site.latitude, site.longitude)

        def send_sms() -> None:
            connection = sc.platform.connector.open("sms://+900")
            message = connection.new_message(connection.TEXT_MESSAGE)
            message.set_payload_text("bench")
            connection.send(message)
            connection.close()

        return _Bench(
            clock_now=lambda: sc.platform.clock.now_ms,
            scheduler=sc.device.scheduler,
            invoke={
                "addProximityAlert": lambda: statics.add_proximity_listener(
                    native_listener, coordinates, site.radius_m
                ),
                "getLocation": lambda: provider.get_location(-1),
                "sendSMS": send_sms,
            },
            cleanup={
                "addProximityAlert": lambda: statics.remove_proximity_listener(
                    native_listener
                ),
            },
        )

    def _webview_bench(
        self, with_proxy: bool, hub: Optional[Observability] = None
    ) -> _Bench:
        sc = scenario.build_webview(
            latency=figure10_webview_bridge_latency(jitter_fraction=self._jitter),
            android_latency=figure10_android_latency(jitter_fraction=self._jitter),
            observability=hub,
        )
        sc.device.gps.power_on()
        sc.platform.run_for(5_000)
        context = sc.new_context()
        webview = sc.platform.new_webview()
        site = sc.config.site
        if with_proxy:
            from repro.core.plugin.packaging import WebViewPlatformExtension
            from repro.core.proxies.location.webview import LocationProxyJs
            from repro.core.proxies.sms.webview import SmsProxyJs

            WebViewPlatformExtension().install_wrappers(
                webview, sc.platform, context, ["Location", "Sms"]
            )
            holder: Dict[str, object] = {}

            def page(window) -> None:
                holder["location"] = LocationProxyJs.in_page(window)
                holder["sms"] = SmsProxyJs.in_page(window)

            webview.load_page(page)
            location = holder["location"]
            sms = holder["sms"]
            listener = _NullUniformListener()
            return _Bench(
                clock_now=lambda: sc.platform.clock.now_ms,
                scheduler=sc.device.scheduler,
                invoke={
                    "addProximityAlert": lambda: location.add_proximity_alert(
                        site.latitude, site.longitude, 0.0, site.radius_m, -1, listener
                    ),
                    "getLocation": lambda: location.get_location(),
                    "sendSMS": lambda: sms.send_text_message("+900", "bench"),
                },
                cleanup={
                    "addProximityAlert": lambda: location.remove_proximity_alert(
                        listener
                    ),
                },
            )

        # Without proxy: the developer's raw shims over the Android managers.
        android = sc.platform.android

        class RawShims:
            """Bench-only Java shim exposing the three calls directly."""

            def add_proximity_alert(self, latitude, longitude, radius) -> str:
                manager = context.get_system_service(Context.LOCATION_SERVICE)
                intent = Intent("bench.PROXIMITY")
                manager.add_proximity_alert(
                    latitude, longitude, radius, ANDROID_NO_EXPIRATION, intent
                )
                return "ok"

            def get_location(self) -> str:
                manager = context.get_system_service(Context.LOCATION_SERVICE)
                location = manager.get_current_location("gps")
                return f"{location.get_latitude()},{location.get_longitude()}"

            def send_text_message(self, destination: str, text: str) -> str:
                return android.sms_manager(context).send_text_message(
                    destination, None, text
                )

        webview.add_javascript_interface(RawShims(), "RawShims")
        holder = {}
        webview.load_page(lambda window: holder.update(shims=window.bridge_object("RawShims")))
        shims = holder["shims"]

        def clear_alerts() -> None:
            android.location_state._alerts.clear()

        return _Bench(
            clock_now=lambda: sc.platform.clock.now_ms,
            scheduler=sc.device.scheduler,
            invoke={
                "addProximityAlert": lambda: shims.add_proximity_alert(
                    site.latitude, site.longitude, site.radius_m
                ),
                "getLocation": lambda: shims.get_location(),
                "sendSMS": lambda: shims.send_text_message("+900", "bench"),
            },
            cleanup={"addProximityAlert": clear_alerts},
        )

    def _bench_for(
        self, platform: str, with_proxy: bool, hub: Optional[Observability] = None
    ) -> _Bench:
        if platform == "android":
            return self._android_bench(with_proxy, hub)
        if platform == "s60":
            return self._s60_bench(with_proxy, hub)
        if platform == "webview":
            return self._webview_bench(with_proxy, hub)
        raise ValueError(f"unknown platform {platform!r}")

    # -- measurement -------------------------------------------------------------

    def measure(
        self, platform: str, api: str, *, with_proxy: bool, repetitions: int = 10
    ) -> List[InvocationSample]:
        """Measure ``repetitions`` invocations of one bar of Figure 10."""
        bench = self._bench_for(platform, with_proxy)
        invoke = bench.invoke[api]
        cleanup = bench.cleanup.get(api)
        mode = "with" if with_proxy else "without"
        samples: List[InvocationSample] = []
        # Warm-up (outside the measurement, as the paper's averaging implies).
        invoke()
        if cleanup is not None:
            cleanup()
        for _ in range(repetitions):
            virtual_before = bench.clock_now()
            real_before = time.perf_counter()  # wall-clock: measurement
            invoke()
            real_ms = (time.perf_counter() - real_before) * 1_000.0  # wall-clock: measurement
            virtual_ms = bench.clock_now() - virtual_before
            samples.append(
                InvocationSample(
                    api=api,
                    platform=platform,
                    mode=mode,
                    virtual_ms=virtual_ms,
                    real_ms=real_ms,
                )
            )
            if cleanup is not None:
                cleanup()
        return samples

    def run_detailed(
        self, repetitions: int = 30
    ) -> Dict[Tuple[str, str, str], Dict[str, float]]:
        """Every bar, split into its two cost components:
        ``(api, platform, mode) → {virtual_ms, real_ms, total_ms}``
        (medians).  The virtual component is deterministic when the
        latency models carry no jitter; the real component is the
        wall-clock Python execution cost."""
        results: Dict[Tuple[str, str, str], Dict[str, float]] = {}
        for platform in PLATFORMS:
            for with_proxy in (False, True):
                mode = "with" if with_proxy else "without"
                for api in APIS:
                    samples = self.measure(
                        platform, api, with_proxy=with_proxy, repetitions=repetitions
                    )
                    results[(api, platform, mode)] = {
                        "virtual_ms": statistics.median(s.virtual_ms for s in samples),
                        "real_ms": statistics.median(s.real_ms for s in samples),
                        "total_ms": statistics.median(s.total_ms for s in samples),
                    }
        return results

    def run(self, repetitions: int = 30) -> Dict[Tuple[str, str, str], float]:
        """The whole figure: (api, platform, mode) → median total ms.

        The paper averaged 10 runs on a handset where the proxy cost was
        milliseconds; our proxy cost is tens of microseconds, so the
        median over more repetitions keeps scheduler noise below the
        signal.
        """
        return {
            key: detail["total_ms"]
            for key, detail in self.run_detailed(repetitions).items()
        }

    # -- runtime parity ------------------------------------------------------

    def run_via_runtime(
        self,
        platform: str,
        api: str,
        *,
        repetitions: int = 10,
        shards: int = 1,
        queue_depth: int = 64,
        seed: int = 0,
    ) -> Dict[str, float]:
        """Drive one with-proxy bar through the concurrency runtime.

        Measures the *virtual* charge per invocation twice — calling the
        proxy directly, then submitting the same thunk through a
        dispatcher — and returns the medians.  With one shard and an
        empty queue the dispatcher replays the captured charge on its
        lane verbatim, so ``runtime_ms == direct_ms``: queueing adds no
        modelled latency of its own.  (Real-time proxy overhead is the
        measured path's business; this one guards the virtual model.)
        """
        bench = self._bench_for(platform, True)
        invoke = bench.invoke[api]
        cleanup = bench.cleanup.get(api)
        runtime = ConcurrencyRuntime(
            bench.scheduler, shards=shards, queue_depth=queue_depth, seed=seed
        )
        direct: List[float] = []
        for _ in range(repetitions):
            before = bench.clock_now()
            invoke()
            direct.append(bench.clock_now() - before)
            if cleanup is not None:
                cleanup()
        via: List[float] = []
        for _ in range(repetitions):
            before = bench.clock_now()
            future = runtime.submit(platform, api, invoke)
            runtime.drain()
            via.append(bench.clock_now() - before)
            future.result()  # surface any ProxyError
            if cleanup is not None:
                cleanup()
        return {
            "direct_ms": statistics.median(direct),
            "runtime_ms": statistics.median(via),
        }

    # -- traced runs (the analytics layer's input) ----------------------------

    def trace(
        self,
        repetitions: int = 3,
        *,
        apis: Tuple[str, ...] = APIS,
        platforms: Tuple[str, ...] = PLATFORMS,
        real_time: bool = False,
    ) -> str:
        """Run every with-proxy bar under a recording tracer and return
        the concatenated JSONL export (one tracer per platform; the
        profile fold re-segments on span-id restart).

        Virtual-time stamps only by default, so with jitter-free latency
        models the output is byte-identical across identically-seeded
        runs — this is the input ``python -m repro.obs profile``
        decomposes into the Figure-10 per-layer overhead view.  Pass
        ``real_time=True`` for a profiling export that additionally
        carries wall-clock stamps (fold it with ``time="real"``); that
        output is *not* deterministic.
        """
        chunks: List[str] = []
        for platform in platforms:
            hub = Observability(capture_real_time=real_time)
            bench = self._bench_for(platform, True, hub)
            hub.tracer.reset()  # drop setup-era spans; keep invocations only
            for api in apis:
                invoke = bench.invoke[api]
                cleanup = bench.cleanup.get(api)
                for _ in range(repetitions):
                    invoke()
                    if cleanup is not None:
                        cleanup()
            chunks.append(hub.export_jsonl(include_real_time=real_time))
        return "".join(chunks)


def fig10_overhead_profile(repetitions: int = 3) -> OverheadProfile:
    """The traced Figure-10 run folded into per-layer overhead."""
    runner = Fig10Runner()
    return OverheadProfile.from_jsonl(runner.trace(repetitions))


def format_table(headers: List[str], rows: List[List[str]]) -> str:
    """Monospace table for benchmark output."""
    widths = [len(header) for header in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    def render(cells: List[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))
    lines = [render(headers), render(["-" * w for w in widths])]
    lines.extend(render(row) for row in rows)
    return "\n".join(lines)


def figure10_report(repetitions: int = 30) -> str:
    """The full Figure-10 comparison table (measured vs paper)."""
    runner = Fig10Runner()
    measured = runner.run(repetitions)
    headers = [
        "API", "Platform",
        "paper w/o", "ours w/o",
        "paper w/", "ours w/",
        "paper ovh", "ours ovh",
    ]
    rows = []
    for platform in PLATFORMS:
        for api in APIS:
            paper_without, paper_with = PAPER_FIGURE_10[(api, platform)]
            ours_without = measured[(api, platform, "without")]
            ours_with = measured[(api, platform, "with")]
            rows.append(
                [
                    api,
                    platform,
                    f"{paper_without:.1f}",
                    f"{ours_without:.1f}",
                    f"{paper_with:.1f}",
                    f"{ours_with:.1f}",
                    f"{paper_with - paper_without:.1f}",
                    f"{ours_with - ours_without:.2f}",
                ]
            )
    return format_table(headers, rows)
