"""Geodesic helpers shared by the GPS simulator and the location stacks.

All three platform substrates (and the proxies above them) need consistent
distance math so that proximity detection agrees with the trajectory
generator.  Distances are in metres, coordinates in decimal degrees.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

#: Mean Earth radius in metres (IUGG).
EARTH_RADIUS_M = 6_371_008.8


@dataclass(frozen=True)
class GeoPoint:
    """An immutable WGS-84-style coordinate triple."""

    latitude: float
    longitude: float
    altitude: float = 0.0

    def __post_init__(self) -> None:
        if not -90.0 <= self.latitude <= 90.0:
            raise ValueError(f"latitude {self.latitude} out of [-90, 90]")
        if not -180.0 <= self.longitude <= 180.0:
            raise ValueError(f"longitude {self.longitude} out of [-180, 180]")

    def distance_to_m(self, other: "GeoPoint") -> float:
        """Great-circle distance to ``other`` in metres (altitude ignored)."""
        return haversine_m(
            self.latitude, self.longitude, other.latitude, other.longitude
        )


def haversine_m(lat1: float, lon1: float, lat2: float, lon2: float) -> float:
    """Great-circle distance in metres between two (lat, lon) pairs."""
    phi1, phi2 = math.radians(lat1), math.radians(lat2)
    dphi = math.radians(lat2 - lat1)
    dlam = math.radians(lon2 - lon1)
    a = (
        math.sin(dphi / 2.0) ** 2
        + math.cos(phi1) * math.cos(phi2) * math.sin(dlam / 2.0) ** 2
    )
    return 2.0 * EARTH_RADIUS_M * math.asin(min(1.0, math.sqrt(a)))


def bearing_deg(lat1: float, lon1: float, lat2: float, lon2: float) -> float:
    """Initial bearing from point 1 to point 2, degrees clockwise from north."""
    phi1, phi2 = math.radians(lat1), math.radians(lat2)
    dlam = math.radians(lon2 - lon1)
    y = math.sin(dlam) * math.cos(phi2)
    x = math.cos(phi1) * math.sin(phi2) - math.sin(phi1) * math.cos(phi2) * math.cos(
        dlam
    )
    return (math.degrees(math.atan2(y, x)) + 360.0) % 360.0


def destination_point(
    lat: float, lon: float, bearing: float, distance_m: float
) -> "GeoPoint":
    """The point reached from (lat, lon) travelling ``distance_m`` at ``bearing``.

    Uses the spherical direct geodesic formula; good to well under a metre
    at the distances the workforce scenarios use.
    """
    delta = distance_m / EARTH_RADIUS_M
    theta = math.radians(bearing)
    phi1 = math.radians(lat)
    lam1 = math.radians(lon)
    phi2 = math.asin(
        math.sin(phi1) * math.cos(delta)
        + math.cos(phi1) * math.sin(delta) * math.cos(theta)
    )
    lam2 = lam1 + math.atan2(
        math.sin(theta) * math.sin(delta) * math.cos(phi1),
        math.cos(delta) - math.sin(phi1) * math.sin(phi2),
    )
    lon2 = (math.degrees(lam2) + 540.0) % 360.0 - 180.0
    return GeoPoint(math.degrees(phi2), lon2)


def interpolate(p1: GeoPoint, p2: GeoPoint, fraction: float) -> GeoPoint:
    """Linear interpolation between two points (fine for short legs)."""
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction {fraction} out of [0, 1]")
    return GeoPoint(
        p1.latitude + (p2.latitude - p1.latitude) * fraction,
        p1.longitude + (p2.longitude - p1.longitude) * fraction,
        p1.altitude + (p2.altitude - p1.altitude) * fraction,
    )
