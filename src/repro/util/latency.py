"""Parametric latency models for the simulated substrates.

Every native platform operation in the simulation draws a virtual-time
latency from a :class:`LatencyModel`.  For the Figure-10 reproduction the
models are *calibrated* to the paper's measured "without proxy" bars (see
``repro.bench.calibration``); elsewhere they default to plausible 2009-era
handset numbers.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Optional


@dataclass(frozen=True)
class LatencySample:
    """One drawn latency, kept for audit in tests and benchmarks."""

    operation: str
    latency_ms: float


@dataclass
class LatencyModel:
    """A Gaussian latency distribution per named operation.

    Parameters
    ----------
    mean_ms:
        Map of operation name to mean latency in virtual milliseconds.
    jitter_fraction:
        Standard deviation as a fraction of the mean.  Zero makes the
        model deterministic (the default for unit tests).
    seed:
        Seed for the private RNG; models with equal seeds and parameters
        draw identical sequences.
    default_ms:
        Latency for operations absent from ``mean_ms``.
    """

    mean_ms: Dict[str, float] = field(default_factory=dict)
    jitter_fraction: float = 0.0
    seed: Optional[int] = None
    default_ms: float = 1.0

    def __post_init__(self) -> None:
        if self.jitter_fraction < 0:
            raise ValueError(f"jitter_fraction must be >= 0, got {self.jitter_fraction}")
        if self.default_ms < 0:
            raise ValueError(f"default_ms must be >= 0, got {self.default_ms}")
        for op, mean in self.mean_ms.items():
            if mean < 0:
                raise ValueError(f"mean for {op!r} must be >= 0, got {mean}")
        self._rng = random.Random(self.seed)
        self._history: list = []

    def mean_for(self, operation: str) -> float:
        """Mean latency configured for ``operation``."""
        return self.mean_ms.get(operation, self.default_ms)

    def draw(self, operation: str) -> float:
        """Draw a latency (>= 0) for ``operation`` and record it."""
        mean = self.mean_for(operation)
        if self.jitter_fraction == 0.0 or mean == 0.0:
            latency = mean
        else:
            latency = max(0.0, self._rng.gauss(mean, mean * self.jitter_fraction))
        self._history.append(LatencySample(operation, latency))
        return latency

    @property
    def history(self) -> list:
        """All samples drawn so far, in order."""
        return list(self._history)

    def merged_with(self, overrides: Dict[str, float]) -> "LatencyModel":
        """A copy of this model with some operation means replaced."""
        merged = dict(self.mean_ms)
        merged.update(overrides)
        return LatencyModel(
            mean_ms=merged,
            jitter_fraction=self.jitter_fraction,
            seed=self.seed,
            default_ms=self.default_ms,
        )
