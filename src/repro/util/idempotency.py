"""Attempt-chain idempotency context.

The resilience layer retries transient failures by re-invoking a
binding thunk.  When the substrate *applied* the side effect but the
acknowledgement was lost (``ack_lost`` faults), a bare retry duplicates
the write.  The fix is an **attempt-chain key**: one logical invocation
— the whole retry chain — shares a single key, published here, and the
substrate write sites (``SmsCenter.submit``, ``SimulatedNetwork`` POST
dispatch) consult an :class:`~repro.distrib.idempotency.IdempotencyStore`
keyed by it, making re-applied writes a no-op.

This module holds only the *context* — a plain stack, no store — so the
device and resilience layers can import it without touching the distrib
package.  Everything is single-threaded on the virtual clock, so a
module-level stack is deterministic.

Nesting rule: only the **outermost** resilience runtime opens a chain.
A WebView JS proxy's runtime wraps an inner Android proxy; if the inner
runtime minted its own key per attempt, every outer retry would carry a
fresh inner key and dedup would never fire.  Inner scopes therefore
ride the already-open chain.
"""

from __future__ import annotations

import contextlib
from typing import Iterator, List, Optional


class ChainContext:
    """One open attempt chain: the dedup key plus the tracer whose
    in-flight span should receive ``distrib.dedup`` events.

    ``tag`` is the chain's *trace-joinable* identity: where ``key``
    embeds the process-global ordinal below (unique, but different
    between two same-seed runs sharing one interpreter), the tag is
    minted from a per-runtime counter — deterministic per run — so it
    is safe to stamp on spans and events.  The causal analyzer uses it
    to stitch a retried attempt chain's dedup hits and saga spans
    together.
    """

    __slots__ = ("key", "tracer", "tag")

    def __init__(self, key: str, tracer=None, tag: Optional[str] = None) -> None:
        self.key = key
        self.tracer = tracer
        self.tag = tag


_STACK: List[ChainContext] = []

_SEQUENCE = 0


def next_chain_sequence() -> int:
    """A process-wide monotonic chain ordinal.

    Chain keys must be unique across *every* resilience runtime — two
    proxies with the same label would otherwise mint colliding keys and
    dedup each other's first writes.  Execution order on the virtual
    clock is deterministic, so a global counter preserves the same-seed
    replay contract.
    """
    global _SEQUENCE
    _SEQUENCE += 1
    return _SEQUENCE


def current_chain() -> Optional[ChainContext]:
    """The innermost open chain context, or ``None`` outside any."""
    return _STACK[-1] if _STACK else None


@contextlib.contextmanager
def chain_context(
    key: str, tracer=None, tag: Optional[str] = None
) -> Iterator[ChainContext]:
    """Open an attempt chain for one logical invocation.

    Re-entrant: when a chain is already open the existing context is
    reused (see the nesting rule above) and ``key``/``tag`` are ignored.
    """
    if _STACK:
        yield _STACK[-1]
        return
    context = ChainContext(key, tracer, tag)
    _STACK.append(context)
    try:
        yield context
    finally:
        _STACK.pop()
