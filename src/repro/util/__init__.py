"""Shared infrastructure: virtual time, events, geo math, latency models."""

from repro.util.clock import SimulatedClock, Scheduler, ScheduledTask
from repro.util.events import EventBus, Subscription
from repro.util.geo import GeoPoint, haversine_m, destination_point, bearing_deg
from repro.util.latency import LatencyModel, LatencySample
from repro.util.identifiers import IdGenerator

__all__ = [
    "SimulatedClock",
    "Scheduler",
    "ScheduledTask",
    "EventBus",
    "Subscription",
    "GeoPoint",
    "haversine_m",
    "destination_point",
    "bearing_deg",
    "LatencyModel",
    "LatencySample",
    "IdGenerator",
]
