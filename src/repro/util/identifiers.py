"""Deterministic identifier generation.

The simulation never uses :func:`uuid.uuid4` so replays are bit-identical;
identifiers are monotone counters with a readable prefix, e.g. ``sms-17``.
"""

from __future__ import annotations

import itertools
from typing import Dict


class IdGenerator:
    """Generates ``prefix-N`` identifiers with independent per-prefix counters."""

    def __init__(self) -> None:
        self._counters: Dict[str, "itertools.count"] = {}

    def next(self, prefix: str) -> str:
        """Return the next identifier for ``prefix`` (1-based)."""
        if not prefix:
            raise ValueError("prefix must be non-empty")
        counter = self._counters.setdefault(prefix, itertools.count(1))
        return f"{prefix}-{next(counter)}"

    def peek_count(self, prefix: str) -> int:
        """How many ids have been issued for ``prefix`` so far."""
        counter = self._counters.get(prefix)
        if counter is None:
            return 0
        # itertools.count has no public position; mirror it via repr parsing
        # would be fragile, so track by issuing into a copy is not possible.
        # Instead we re-derive from the repr, which is stable in CPython.
        text = repr(counter)  # e.g. "count(5)"
        return int(text[text.index("(") + 1 : text.index(")")].split(",")[0]) - 1
