"""Virtual time for the simulated device and platforms.

Everything latency-bearing in the substrates (GPS fix acquisition, radio
round-trips, WebView polling timers) is expressed against a
:class:`SimulatedClock` so tests and benchmarks are deterministic and fast.
Real wall-clock time is used only to measure the M-Proxy layer's own Python
overhead in the Figure-10 benchmark.

Time is measured in **milliseconds** as a float, matching the units of the
paper's evaluation.
"""

from __future__ import annotations

import contextlib
import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Iterator, List, Optional

from repro.errors import ClockError


class SimulatedClock:
    """A monotonically-advancing virtual clock.

    The clock only moves when :meth:`advance` is called (usually indirectly
    through :meth:`Scheduler.run_until` / :meth:`Scheduler.run_for`).
    """

    def __init__(self, start_ms: float = 0.0) -> None:
        if start_ms < 0:
            raise ClockError(f"clock cannot start at negative time {start_ms!r}")
        self._now_ms = float(start_ms)

    @property
    def now_ms(self) -> float:
        """Current virtual time in milliseconds."""
        return self._now_ms

    def now_s(self) -> float:
        """Current virtual time in seconds."""
        return self._now_ms / 1000.0

    def advance(self, delta_ms: float) -> float:
        """Move time forward by ``delta_ms`` and return the new time."""
        if delta_ms < 0:
            raise ClockError(f"cannot advance clock by negative delta {delta_ms!r}")
        self._now_ms += delta_ms
        return self._now_ms

    def advance_to(self, when_ms: float) -> float:
        """Move time forward to the absolute instant ``when_ms``."""
        if when_ms < self._now_ms:
            raise ClockError(
                f"cannot move clock backwards from {self._now_ms} to {when_ms}"
            )
        self._now_ms = float(when_ms)
        return self._now_ms

    @contextlib.contextmanager
    def capture_charge(self) -> Iterator["ChargeCapture"]:
        """Measure the virtual time charged inside the block, then roll
        the clock back to the block's start.

        This is the concurrency runtime's parallel-lane facility: a
        worker shard executes a request (whose substrate charges advance
        this clock synchronously), reads the captured charge, and replays
        it on the shard's own lane — so K shards overlap in virtual time
        instead of serialising on the shared clock.  Tasks scheduled by
        side effects during the block keep their as-executed instants,
        which are always at or after the block's start, so causality on
        the scheduler heap is preserved.

        Captures may nest; each level rolls back to its own start.
        """
        start = self._now_ms
        capture = ChargeCapture()
        try:
            yield capture
        finally:
            capture.charge_ms = self._now_ms - start
            self._now_ms = start

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SimulatedClock(now_ms={self._now_ms:.3f})"


class ChargeCapture:
    """Result box for :meth:`SimulatedClock.capture_charge`."""

    __slots__ = ("charge_ms",)

    def __init__(self) -> None:
        self.charge_ms = 0.0


@dataclass(order=True)
class ScheduledTask:
    """A callback scheduled to run at a virtual instant.

    Ordering is (time, sequence) so that tasks scheduled for the same
    instant run in FIFO order — the property the platform event loops rely
    on for deterministic broadcast delivery.
    """

    when_ms: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    period_ms: Optional[float] = field(default=None, compare=False)
    cancelled: bool = field(default=False, compare=False)
    name: str = field(default="", compare=False)

    def cancel(self) -> None:
        """Prevent the task from firing (and from repeating, if periodic)."""
        self.cancelled = True


class Scheduler:
    """A deterministic event-driven scheduler over a :class:`SimulatedClock`.

    This is the single event loop shared by the device hardware and every
    platform substrate mounted on that device; sharing one loop is what
    makes cross-component timing (e.g. a GPS fix racing an expiration
    timer) reproducible.
    """

    def __init__(self, clock: Optional[SimulatedClock] = None) -> None:
        self.clock = clock if clock is not None else SimulatedClock()
        self._heap: List[ScheduledTask] = []
        self._seq = itertools.count()

    def call_at(
        self,
        when_ms: float,
        callback: Callable[[], None],
        *,
        name: str = "",
    ) -> ScheduledTask:
        """Schedule ``callback`` at absolute virtual time ``when_ms``."""
        if when_ms < self.clock.now_ms:
            raise ClockError(
                f"cannot schedule task at {when_ms} before now {self.clock.now_ms}"
            )
        task = ScheduledTask(when_ms, next(self._seq), callback, name=name)
        heapq.heappush(self._heap, task)
        return task

    def call_later(
        self,
        delay_ms: float,
        callback: Callable[[], None],
        *,
        name: str = "",
    ) -> ScheduledTask:
        """Schedule ``callback`` to run ``delay_ms`` from now."""
        if delay_ms < 0:
            raise ClockError(f"negative delay {delay_ms!r}")
        return self.call_at(self.clock.now_ms + delay_ms, callback, name=name)

    def call_every(
        self,
        period_ms: float,
        callback: Callable[[], None],
        *,
        initial_delay_ms: Optional[float] = None,
        name: str = "",
    ) -> ScheduledTask:
        """Schedule a periodic callback.

        The returned handle cancels the whole series.  The period applies
        from each firing instant (fixed-rate, not fixed-delay) — matching
        how platform polling timers behave.
        """
        if period_ms <= 0:
            raise ClockError(f"period must be positive, got {period_ms!r}")
        delay = period_ms if initial_delay_ms is None else initial_delay_ms
        task = self.call_later(delay, callback, name=name)
        task.period_ms = period_ms
        return task

    def pending_count(self) -> int:
        """Number of not-yet-cancelled tasks in the queue."""
        return sum(1 for t in self._heap if not t.cancelled)

    def next_deadline_ms(self) -> Optional[float]:
        """Virtual time of the earliest pending task, or ``None``."""
        self._drop_cancelled_head()
        return self._heap[0].when_ms if self._heap else None

    def _drop_cancelled_head(self) -> None:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)

    def _pop_due(self, until_ms: float) -> Optional[ScheduledTask]:
        self._drop_cancelled_head()
        if self._heap and self._heap[0].when_ms <= until_ms:
            return heapq.heappop(self._heap)
        return None

    def run_until(self, until_ms: float) -> int:
        """Run all tasks due up to (and including) ``until_ms``.

        Advances the clock task-by-task to each firing instant, then to
        ``until_ms``.  Returns the number of callbacks executed.  Callbacks
        may schedule further tasks; those run too if they fall in range.
        """
        if until_ms < self.clock.now_ms:
            raise ClockError(
                f"cannot run until {until_ms}, now is {self.clock.now_ms}"
            )
        executed = 0
        while True:
            task = self._pop_due(until_ms)
            if task is None:
                break
            self.clock.advance_to(max(task.when_ms, self.clock.now_ms))
            if task.period_ms is not None and not task.cancelled:
                # Re-arm before running so the callback can cancel itself.
                task.when_ms = task.when_ms + task.period_ms
                task.seq = next(self._seq)
                heapq.heappush(self._heap, task)
            task.callback()
            executed += 1
        # Callbacks may advance the clock themselves (e.g. synchronous
        # native-latency charges); never move it backwards.
        self.clock.advance_to(max(until_ms, self.clock.now_ms))
        return executed

    def run_for(self, delta_ms: float) -> int:
        """Run all tasks due within the next ``delta_ms`` of virtual time."""
        return self.run_until(self.clock.now_ms + delta_ms)

    def drain(self, *, max_tasks: int = 100_000) -> int:
        """Run until no tasks remain (periodic tasks must be cancelled first).

        ``max_tasks`` guards against runaway periodic series.
        """
        executed = 0
        while True:
            deadline = self.next_deadline_ms()
            if deadline is None:
                return executed
            if executed >= max_tasks:
                raise ClockError(
                    f"drain exceeded {max_tasks} tasks; a periodic task is "
                    "probably still armed"
                )
            executed += self.run_until(deadline)
