"""A small synchronous publish/subscribe bus.

Used by the device hardware (GPS fixes, radio state changes) and by the
Android substrate's broadcast machinery.  Delivery is synchronous and in
subscription order, which keeps platform behaviour deterministic under the
virtual clock.
"""

from __future__ import annotations

import fnmatch
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, List

Handler = Callable[[str, Any], None]


@dataclass
class Subscription:
    """Handle returned by :meth:`EventBus.subscribe`; detaches the handler."""

    bus: "EventBus"
    topic_pattern: str
    handler: Handler = field(repr=False)
    token: int = 0
    active: bool = True

    def unsubscribe(self) -> None:
        """Stop receiving events.  Idempotent."""
        if self.active:
            self.active = False
            self.bus._remove(self)


class EventBus:
    """Topic-based synchronous event bus with glob topic patterns.

    Topics are dotted strings such as ``"gps.fix"`` or ``"radio.sms.sent"``.
    Patterns use :mod:`fnmatch` globbing, so ``"radio.*"`` receives every
    radio event.
    """

    def __init__(self) -> None:
        self._subs: List[Subscription] = []
        self._tokens = itertools.count(1)
        self._delivery_log: List[str] = []

    def subscribe(self, topic_pattern: str, handler: Handler) -> Subscription:
        """Register ``handler`` for every topic matching ``topic_pattern``."""
        sub = Subscription(self, topic_pattern, handler, token=next(self._tokens))
        self._subs.append(sub)
        return sub

    def _remove(self, sub: Subscription) -> None:
        self._subs = [s for s in self._subs if s.token != sub.token]

    def publish(self, topic: str, payload: Any = None) -> int:
        """Deliver ``payload`` to all matching subscribers, in order.

        Returns the number of handlers invoked.  Handlers that subscribe or
        unsubscribe during delivery affect only subsequent publishes.
        """
        delivered = 0
        for sub in list(self._subs):
            if sub.active and fnmatch.fnmatchcase(topic, sub.topic_pattern):
                sub.handler(topic, payload)
                delivered += 1
        self._delivery_log.append(topic)
        return delivered

    def subscriber_count(self, topic: str) -> int:
        """Number of active subscribers that would receive ``topic``."""
        return sum(
            1
            for sub in self._subs
            if sub.active and fnmatch.fnmatchcase(topic, sub.topic_pattern)
        )

    @property
    def published_topics(self) -> List[str]:
        """Chronological log of every published topic (test/debug aid)."""
        return list(self._delivery_log)

    def clear_log(self) -> None:
        """Forget the publish log (the subscriptions stay)."""
        self._delivery_log.clear()


class TypedSignal:
    """A single-topic variant of :class:`EventBus` with positional payloads.

    Handy for hardware units that expose exactly one kind of notification
    (e.g. a battery level signal).
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._handlers: List[Callable[..., None]] = []

    def connect(self, handler: Callable[..., None]) -> Callable[[], None]:
        """Attach ``handler``; returns a zero-arg disconnect function."""
        self._handlers.append(handler)

        def disconnect() -> None:
            if handler in self._handlers:
                self._handlers.remove(handler)

        return disconnect

    def emit(self, *args: Any, **kwargs: Any) -> int:
        """Call every connected handler; returns how many ran."""
        handlers = list(self._handlers)
        for handler in handlers:
            handler(*args, **kwargs)
        return len(handlers)

    def __len__(self) -> int:
        return len(self._handlers)
