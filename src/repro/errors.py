"""Top-level exception hierarchy for the reproduction.

Platform-specific exception types (``SecurityException`` on Android,
``LocationException`` on S60, error codes on WebView) live inside their
platform packages, because platform-specific exception sets are part of the
fragmentation phenomenon the paper studies.  The types here are either
infrastructure errors of the simulation itself or the *uniform* error
surface that MobiVine exposes to applications.
"""


class ReproError(Exception):
    """Base class for every error raised by the reproduction itself."""


class SimulationError(ReproError):
    """The simulated substrate was driven into an impossible state."""


class ClockError(SimulationError):
    """Virtual time was manipulated incorrectly (e.g. moved backwards)."""


class ConfigurationError(ReproError):
    """A component was constructed or configured with invalid inputs."""


class DescriptorError(ReproError):
    """An M-Proxy descriptor is malformed or fails schema validation."""


class RegistryError(ReproError):
    """Lookup in the proxy registry failed."""


class ProxyError(ReproError):
    """Base class of the uniform error surface exposed by M-Proxies.

    Platform exceptions are mapped onto subclasses of this type by each
    binding, per the binding plane's exception list.
    """

    #: Stable numeric code (used verbatim by the WebView JS bindings, where
    #: exceptions cannot cross the bridge and must travel as error codes).
    error_code = 1000

    #: Whether the failure class is transient — i.e. retrying the same
    #: operation may succeed.  Resilience policies only retry (and circuit
    #: breakers only count) transient errors; permission and argument
    #: errors will fail identically on every attempt.
    transient = False


class ProxyPermissionError(ProxyError):
    """The platform denied the operation (Android ``SecurityException``...)."""

    error_code = 1001


class ProxyUnavailableError(ProxyError):
    """The requested capability does not exist on this platform.

    The paper's example: the Call interface is not exposed on Nokia S60, so
    no Call proxy binding can exist there.
    """

    error_code = 1002


class ProxyInvalidArgumentError(ProxyError):
    """An argument violated the semantic plane's declared dimensions."""

    error_code = 1003


class ProxyPropertyError(ProxyError):
    """A ``set_property`` call used an unknown key or disallowed value."""

    error_code = 1004


class ProxyPlatformError(ProxyError):
    """A platform-internal failure surfaced through the proxy.

    Carries the original platform exception as ``__cause__`` so diagnostics
    survive the uniformization.
    """

    error_code = 1005


class ProxyTimeoutError(ProxyError):
    """The underlying platform operation did not finish in time."""

    error_code = 1006
    transient = True


class ProxyTransientError(ProxyError):
    """A recoverable failure: retrying the same operation may succeed.

    Concrete transient conditions usually surface as one of the refined
    subclasses below (network, bridge, sensor); this class is the generic
    catch-all and the base for resilience-layer errors.
    """

    error_code = 1007
    transient = True


class ProxyNetworkError(ProxyPlatformError):
    """A transport-level failure (request dropped, carrier unreachable).

    Subclasses :class:`ProxyPlatformError` so existing handlers of
    platform failures keep working, but is classified transient so
    resilience policies may retry it.
    """

    error_code = 1008
    transient = True


class ProxyBridgeError(ProxyPlatformError):
    """A WebView JS/Java bridge crossing was lost mid-flight."""

    error_code = 1009
    transient = True


class ProxyCircuitOpenError(ProxyTransientError):
    """The circuit breaker for this binding is open: the call was rejected
    without touching the platform.  Retrying after the breaker's reset
    timeout may succeed."""

    error_code = 1010


class ProxySensorError(ProxyPlatformError):
    """A device sensor is temporarily dark (e.g. GPS provider out of
    service, no fix available)."""

    error_code = 1011
    transient = True


class ProxyOverloadError(ProxyTransientError):
    """The concurrency runtime shed this request at admission.

    Raised (or delivered through a rejected future) when a dispatcher
    shard's bounded queue is full.  Transient by definition: the same
    request may be admitted once the queue drains — but the runtime
    itself never retries shed work, that choice belongs to the caller.

    ``context`` carries the structured shed decision — platform, shard
    index, queue depth and bound, priority class, shed reason — so a
    flight dump or a supervisor alert is self-explanatory without
    parsing the message text.  It stays on this side of the WebView
    bridge (only the code and message travel as the JSON envelope)."""

    error_code = 1012

    def __init__(self, message: str = "", *, context: dict = None) -> None:
        super().__init__(message)
        #: Structured shed decision (platform, shard, depth, bound,
        #: priority, reason, ...); empty when raised bare.
        self.context = dict(context or {})


class ProxyThrottledError(ProxyTransientError):
    """Admission control rejected this request over a rate budget.

    Raised (or delivered through a rejected future) when the submitting
    tenant's token bucket is empty.  Unlike a shed (1012) this is a
    *policed* rejection: the request never competed for a queue slot,
    and ``retry_after_ms`` tells the caller exactly how much virtual
    time must pass before the bucket can cover it — the resilience
    plane's backoff honours the hint when retrying.

    ``context`` carries the structured throttle decision (platform,
    tenant, operation, tokens remaining) like 1012's shed context."""

    error_code = 1013

    def __init__(
        self,
        message: str = "",
        *,
        retry_after_ms: float = 0.0,
        context: dict = None,
    ) -> None:
        super().__init__(message)
        #: Virtual milliseconds until the bucket can cover the request.
        self.retry_after_ms = float(retry_after_ms)
        #: Structured throttle decision (platform, tenant, operation, ...).
        self.context = dict(context or {})


class ProxyReplicaUnavailableError(ProxyTransientError):
    """The distributed data tier could not reach its required replicas.

    Raised by :class:`~repro.distrib.replication.ReplicatedTable` when a
    write cannot assemble its configured quorum — the origin region is
    partitioned from too many peers.  Transient by definition: the same
    write may succeed once the partition heals (or via anti-entropy).

    ``context`` carries the structured replica decision — origin region,
    key, required quorum and the reachable-replica count — mirroring the
    admission plane's 1012/1013 context convention, so a flight dump or
    supervisor alert is self-explanatory.  It stays on this side of the
    WebView bridge (only the code and message travel)."""

    error_code = 1014

    def __init__(self, message: str = "", *, context: dict = None) -> None:
        super().__init__(message)
        #: Structured replica decision (region, key, quorum, reachable).
        self.context = dict(context or {})
