"""Software-engineering metrics for the evaluation (paper Section 5).

The paper argues portability, complexity and maintenance qualitatively
from code fragments; this package makes the same arguments *measurable*
against the real sources of the workforce-app variants in
``repro.apps.workforce``.
"""

from repro.analysis.metrics import (
    CodeMetrics,
    count_loc,
    cyclomatic_complexity,
    measure,
    platform_api_surface,
    source_of,
)
from repro.analysis.portability import (
    normalize_tokens,
    pairwise_similarity,
    portability_score,
    similarity,
)
from repro.analysis.maintenance import change_impact, sdk_migration_report

__all__ = [
    "CodeMetrics",
    "change_impact",
    "count_loc",
    "cyclomatic_complexity",
    "measure",
    "normalize_tokens",
    "pairwise_similarity",
    "platform_api_surface",
    "portability_score",
    "sdk_migration_report",
    "similarity",
    "source_of",
]
