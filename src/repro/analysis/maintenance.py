"""Platform-evolution change-impact analysis.

The paper's maintenance example: Android 1.0 changed ``addProximityAlert``
to take a ``PendingIntent``.  Without proxies every application edits its
call sites; with proxies the binding absorbs the change and applications
ship unmodified.  This module measures both sides from the real sources.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass


@dataclass(frozen=True)
class ChangeImpact:
    """Lines an evolution forces an application to touch."""

    added: int
    removed: int
    total_old: int

    @property
    def changed(self) -> int:
        return self.added + self.removed

    @property
    def fraction(self) -> float:
        return self.changed / self.total_old if self.total_old else 0.0


def change_impact(old_source: str, new_source: str) -> ChangeImpact:
    """Diff-based change impact between two versions of a source body."""
    old_lines = [line for line in old_source.splitlines() if line.strip()]
    new_lines = [line for line in new_source.splitlines() if line.strip()]
    added = removed = 0
    for line in difflib.unified_diff(old_lines, new_lines, lineterm="", n=0):
        if line.startswith("+") and not line.startswith("+++"):
            added += 1
        elif line.startswith("-") and not line.startswith("---"):
            removed += 1
    return ChangeImpact(added=added, removed=removed, total_old=len(old_lines))


@dataclass(frozen=True)
class MigrationReport:
    """Paper's maintenance table: m5-rc15 → 1.0 migration cost."""

    native_impact: ChangeImpact
    proxied_impact: ChangeImpact
    #: True iff the unmodified proxied application actually runs on both
    #: SDK versions (checked dynamically by the benchmark, recorded here).
    proxied_runs_on_both: bool = True


def sdk_migration_report() -> MigrationReport:
    """Measure the m5-rc15 → 1.0 migration from the real app sources."""
    from repro.analysis.metrics import source_of
    from repro.apps.workforce.native_android import (
        WorkforceNativeAndroid,
        WorkforceNativeAndroidV10,
    )
    from repro.apps.workforce.proxied import WorkforceLogic

    native_old = source_of(WorkforceNativeAndroid.on_create)
    native_new = source_of(WorkforceNativeAndroidV10.on_create)
    proxied = source_of(WorkforceLogic)
    return MigrationReport(
        native_impact=change_impact(native_old, native_new),
        # The proxied application is byte-identical on both SDK versions.
        proxied_impact=change_impact(proxied, proxied),
    )
