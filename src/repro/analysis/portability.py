"""Cross-platform code-similarity scoring.

The paper's portability claim: with proxies, "the code around the API is
also similar" across platforms and languages.  We quantify it as token-
stream similarity between the per-platform variants of the same
application — high for the proxied variants, low for the native ones.
"""

from __future__ import annotations

import difflib
import io
import tokenize
from typing import Dict, List, Tuple


def normalize_tokens(source: str) -> List[str]:
    """The source as a comparable token stream.

    Comments, whitespace and docstrings are dropped; string literals and
    numbers are collapsed to placeholders so that differing constants (a
    site id, a URL) do not mask structural similarity.
    """
    tokens: List[str] = []
    skip = {
        tokenize.COMMENT,
        tokenize.NL,
        tokenize.NEWLINE,
        tokenize.INDENT,
        tokenize.DEDENT,
        tokenize.ENDMARKER,
    }
    previous_was_newline = True
    for token in tokenize.generate_tokens(io.StringIO(source).readline):
        if token.type in skip:
            # NEWLINE/INDENT/DEDENT keep us "at statement start" for
            # docstring detection; a COMMENT does not change position.
            if token.type in (
                tokenize.NEWLINE,
                tokenize.NL,
                tokenize.INDENT,
                tokenize.DEDENT,
            ):
                previous_was_newline = True
            continue
        if token.type == tokenize.STRING:
            if previous_was_newline:
                # Statement-level string: a docstring.  Drop it.
                previous_was_newline = False
                continue
            tokens.append("<str>")
        elif token.type == tokenize.NUMBER:
            tokens.append("<num>")
        else:
            tokens.append(token.string)
        previous_was_newline = False
    return tokens


def similarity(source_a: str, source_b: str) -> float:
    """Token-stream similarity in [0, 1] (1 = identical structure)."""
    tokens_a = normalize_tokens(source_a)
    tokens_b = normalize_tokens(source_b)
    return difflib.SequenceMatcher(a=tokens_a, b=tokens_b, autojunk=False).ratio()


def pairwise_similarity(sources: Dict[str, str]) -> Dict[Tuple[str, str], float]:
    """Similarity for every unordered pair of named sources."""
    names = sorted(sources)
    result: Dict[Tuple[str, str], float] = {}
    for i, name_a in enumerate(names):
        for name_b in names[i + 1 :]:
            result[(name_a, name_b)] = similarity(sources[name_a], sources[name_b])
    return result


def portability_score(sources: Dict[str, str]) -> float:
    """Mean pairwise similarity across platform variants.

    1.0 means the application is literally the same code everywhere — the
    proxied variant scores 1.0 by construction because the business-logic
    class is shared; the native variants score much lower.
    """
    pairs = pairwise_similarity(sources)
    if not pairs:
        return 1.0
    return sum(pairs.values()) / len(pairs)
