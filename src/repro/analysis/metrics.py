"""Static code metrics over Python sources, plus runtime resilience
aggregation.

The static half quantifies the paper's *complexity* argument: the
with-proxy application is smaller (LoC), touches a narrower platform API
surface, and concentrates its business logic rather than scattering it
across callback plumbing.  The runtime half (:func:`resilience_report`,
:func:`fault_report`, :func:`chaos_summary`) aggregates the counters the
fault-injection plane and the per-proxy resilience runtimes accumulate
during a chaos run.
"""

from __future__ import annotations

import ast
import inspect
import io
import re
import textwrap
import tokenize
from dataclasses import dataclass
from typing import Dict, FrozenSet, Set

#: Identifiers that mark direct coupling to a specific platform's API.
#: Names shared with the uniform proxy API (``add_proximity_alert``,
#: ``send_text_message``, ``proximity_event``) are deliberately excluded —
#: they would count the proxied app as platform-coupled when it is not.
PLATFORM_MARKERS: Dict[str, FrozenSet[str]] = {
    "android": frozenset(
        {
            "Intent",
            "IntentFilter",
            "IntentReceiver",
            "PendingIntent",
            "get_system_service",
            "register_receiver",
            "unregister_receiver",
            "get_boolean_extra",
            "get_current_location",
            "sms_manager",
            "http_client",
            "HttpPost",
            "HttpGet",
            "get_status_line",
            "get_entity",
            "AndroidRuntimeException",
            "LOCATION_SERVICE",
            "NO_EXPIRATION",
            "EXTRA_ENTERING",
        }
    ),
    "s60": frozenset(
        {
            "Criteria",
            "LocationProvider",
            "location_provider",
            "add_proximity_listener",
            "remove_proximity_listener",
            "set_location_listener",
            "get_instance",
            "get_qualified_coordinates",
            "location_updated",
            "monitoring_state_changed",
            "provider_state_changed",
            "Coordinates",
            "connector",
            "new_message",
            "set_payload_text",
            "set_request_method",
            "write_body",
            "get_response_code",
            "open_input_stream",
            "J2meException",
            "IOException",
            "TEXT_MESSAGE",
        }
    ),
    "webview": frozenset(
        {
            "bridge_object",
            "add_javascript_interface",
            "set_interval",
            "get_location_json",
            "set_global",
            "get_global",
            "LocationManager",
            "SmsManager",
        }
    ),
}

#: Callback entry-point names: where business logic gets scattered.
CALLBACK_ENTRY_POINTS = frozenset(
    {
        "on_receive_intent",
        "proximity_event",
        "location_updated",
        "monitoring_state_changed",
        "provider_state_changed",
        "notify_incoming_message",
        "poll_proximity",
    }
)


@dataclass(frozen=True)
class CodeMetrics:
    """Static measurements of one source body."""

    loc: int
    platform_marker_kinds: int
    platform_marker_uses: int
    cyclomatic: int
    callback_entry_points: int
    try_blocks: int


def source_of(obj) -> str:
    """Dedented source of a class/function/module."""
    return textwrap.dedent(inspect.getsource(obj))


def count_loc(source: str) -> int:
    """Logical lines of code: non-blank, non-comment, non-docstring."""
    docstring_lines = _docstring_lines(source)
    code_lines: Set[int] = set()
    tokens = tokenize.generate_tokens(io.StringIO(source).readline)
    skip = {
        tokenize.COMMENT,
        tokenize.NL,
        tokenize.NEWLINE,
        tokenize.INDENT,
        tokenize.DEDENT,
        tokenize.ENDMARKER,
    }
    for token in tokens:
        if token.type in skip:
            continue
        for line in range(token.start[0], token.end[0] + 1):
            if line not in docstring_lines:
                code_lines.add(line)
    return len(code_lines)


def _docstring_lines(source: str) -> Set[int]:
    lines: Set[int] = set()
    tree = ast.parse(source)
    for node in ast.walk(tree):
        if isinstance(node, (ast.Module, ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef)):
            body = getattr(node, "body", [])
            if (
                body
                and isinstance(body[0], ast.Expr)
                and isinstance(body[0].value, ast.Constant)
                and isinstance(body[0].value.value, str)
            ):
                expr = body[0]
                for line in range(expr.lineno, expr.end_lineno + 1):
                    lines.add(line)
    return lines


def platform_api_surface(source: str, platform: str) -> Dict[str, int]:
    """Occurrences of each platform marker present in the source."""
    markers = PLATFORM_MARKERS[platform]
    words = re.findall(r"[A-Za-z_][A-Za-z_0-9]*", source)
    counts: Dict[str, int] = {}
    for word in words:
        if word in markers:
            counts[word] = counts.get(word, 0) + 1
    return counts


def cyclomatic_complexity(source: str) -> int:
    """McCabe-style count: 1 + decision points."""
    tree = ast.parse(source)
    decisions = 0
    for node in ast.walk(tree):
        if isinstance(
            node,
            (ast.If, ast.For, ast.While, ast.ExceptHandler, ast.IfExp, ast.Assert),
        ):
            decisions += 1
        elif isinstance(node, ast.BoolOp):
            decisions += len(node.values) - 1
        elif isinstance(node, (ast.comprehension,)):
            decisions += 1 + len(node.ifs)
    return 1 + decisions


def _count_callback_entries(source: str) -> int:
    tree = ast.parse(source)
    return sum(
        1
        for node in ast.walk(tree)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        and node.name in CALLBACK_ENTRY_POINTS
    )


def _count_try_blocks(source: str) -> int:
    tree = ast.parse(source)
    return sum(1 for node in ast.walk(tree) if isinstance(node, ast.Try))


def measure(obj_or_source, platform: str) -> CodeMetrics:
    """Full metric set for a class/function or a source string."""
    source = obj_or_source if isinstance(obj_or_source, str) else source_of(obj_or_source)
    surface = platform_api_surface(source, platform)
    return CodeMetrics(
        loc=count_loc(source),
        platform_marker_kinds=len(surface),
        platform_marker_uses=sum(surface.values()),
        cyclomatic=cyclomatic_complexity(source),
        callback_entry_points=_count_callback_entries(source),
        try_blocks=_count_try_blocks(source),
    )


# ---------------------------------------------------------------------------
# Runtime resilience / fault-plane aggregation
# ---------------------------------------------------------------------------
# Since the observability plane landed, the runtime aggregation helpers
# are rebuilt on top of the per-device MetricsRegistry and live in
# repro.obs.report; they are re-exported here with unchanged public
# signatures so existing chaos tests and drivers keep importing from
# analysis.metrics.

from repro.obs.report import (  # noqa: E402  (re-export, signature-stable)
    breaker_report,
    chaos_summary,
    fault_report,
    resilience_report,
)

# The trace-analytics surface (per-layer overhead profiles, the SLO
# engine and the perf-regression gate) lives in repro.obs.analyze; the
# analysis package re-exports it so notebooks and drivers can keep a
# single import root for every measurement tool.
from repro.obs.analyze import (  # noqa: E402  (re-export)
    OverheadProfile,
    ProfileDiff,
    SloEngine,
    SloSpec,
    collapsed_stacks,
    diff_profiles,
    load_profile,
    render_profile_text,
    top_spans_text,
)

__all__ = [
    "CodeMetrics",
    "PLATFORM_MARKERS",
    "CALLBACK_ENTRY_POINTS",
    "OverheadProfile",
    "ProfileDiff",
    "SloEngine",
    "SloSpec",
    "breaker_report",
    "chaos_summary",
    "collapsed_stacks",
    "count_loc",
    "cyclomatic_complexity",
    "diff_profiles",
    "fault_report",
    "load_profile",
    "measure",
    "platform_api_surface",
    "render_profile_text",
    "resilience_report",
    "source_of",
    "top_spans_text",
]
