"""Fault plans: declarative, seedable descriptions of substrate failures.

A plan is immutable data — *what* can fail, at *which rate*, inside
*which virtual-time window*.  The :class:`~repro.faults.injector.FaultInjector`
turns the plan into concrete fault decisions with deterministic per-site
RNG streams.  Keeping the plan free of any runtime state means the same
plan object can drive many devices (each device binds its own injector).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.errors import ConfigurationError

#: Fault sites and the kinds each site understands.  A *site* is a named
#: choke point in the simulated substrate; a *kind* selects the failure
#: mode injected there.
FAULT_SITES: Dict[str, Tuple[str, ...]] = {
    # SimulatedNetwork.request / request_async.  ``ack_lost`` applies the
    # write and *then* loses the acknowledgement — the duplicate-side-effect
    # scenario the idempotency plane exists for.
    "network.request": ("drop", "timeout", "http_error", "ack_lost"),
    # GpsReceiver._emit_fix
    "gps.fix": ("lost", "stale"),
    # SmsCenter.submit (``ack_lost`` as above: message accepted, ack lost)
    "sms.submit": ("carrier_unreachable", "ack_lost"),
    # _BridgeMethod.__call__ (JS -> Java crossing)
    "webview.bridge": ("bridge_fault",),
    # NotificationTable.post (Java -> JS async result)
    "webview.notification": ("drop",),
    # ReplicatedTable._send (inter-region replication message)
    "distrib.replication": ("drop",),
}

#: Every known fault kind (union over sites).
FAULT_KINDS: Tuple[str, ...] = tuple(
    sorted({kind for kinds in FAULT_SITES.values() for kind in kinds})
)


@dataclass(frozen=True)
class FaultRule:
    """One line of a fault plan.

    Parameters
    ----------
    site:
        Which substrate choke point this rule applies to (see
        :data:`FAULT_SITES`).
    kind:
        The failure mode to inject there.
    rate:
        Probability in ``[0, 1]`` that any single consult of the site
        triggers this rule.
    start_ms / end_ms:
        Virtual-time window in which the rule is active.  ``end_ms=None``
        means "forever" — useful for sustained-outage (breaker) tests.
    max_faults:
        Optional cap on how many times this rule may fire.
    status:
        HTTP status served by ``http_error`` injections.
    hold_ms:
        Virtual time a ``timeout`` injection stalls before surfacing.
    """

    site: str
    kind: str
    rate: float
    start_ms: float = 0.0
    end_ms: Optional[float] = None
    max_faults: Optional[int] = None
    status: int = 503
    hold_ms: float = 5_000.0

    def __post_init__(self) -> None:
        if self.site not in FAULT_SITES:
            raise ConfigurationError(
                f"unknown fault site {self.site!r}; known: {sorted(FAULT_SITES)}"
            )
        if self.kind not in FAULT_SITES[self.site]:
            raise ConfigurationError(
                f"site {self.site!r} has no fault kind {self.kind!r}; "
                f"known: {FAULT_SITES[self.site]}"
            )
        if not 0.0 <= self.rate <= 1.0:
            raise ConfigurationError(f"rate must be in [0, 1], got {self.rate}")
        if self.start_ms < 0:
            raise ConfigurationError("start_ms cannot be negative")
        if self.end_ms is not None and self.end_ms <= self.start_ms:
            raise ConfigurationError("end_ms must be after start_ms")
        if self.max_faults is not None and self.max_faults < 1:
            raise ConfigurationError("max_faults must be >= 1 when given")
        if self.hold_ms < 0:
            raise ConfigurationError("hold_ms cannot be negative")

    def active_at(self, now_ms: float) -> bool:
        """Whether the rule's virtual-time window covers ``now_ms``."""
        if now_ms < self.start_ms:
            return False
        return self.end_ms is None or now_ms < self.end_ms


@dataclass(frozen=True)
class FaultPlan:
    """A seed plus an ordered tuple of rules.

    The first active rule for a site wins on each consult, so put more
    specific (windowed) rules before broad background-rate ones.
    """

    seed: int = 0
    rules: Tuple[FaultRule, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "rules", tuple(self.rules))

    def rules_for(self, site: str) -> Tuple[FaultRule, ...]:
        return tuple(rule for rule in self.rules if rule.site == site)

    @property
    def sites(self) -> frozenset:
        return frozenset(rule.site for rule in self.rules)

    # -- canned plans ---------------------------------------------------------

    @classmethod
    def transient(
        cls, rate: float, *, seed: int = 0, start_ms: float = 0.0
    ) -> "FaultPlan":
        """A uniform transient-fault plan: every site misbehaves at
        ``rate`` with its most representative recoverable failure.

        ``start_ms`` delays the whole plan — useful to let app setup
        (which runs outside the resilience guards, e.g. WebView wrapper
        construction) finish on a healthy substrate before the shaking
        starts.
        """
        return cls(
            seed=seed,
            rules=(
                FaultRule("network.request", "drop", rate, start_ms=start_ms),
                FaultRule("gps.fix", "lost", rate, start_ms=start_ms),
                FaultRule(
                    "sms.submit", "carrier_unreachable", rate, start_ms=start_ms
                ),
                FaultRule("webview.bridge", "bridge_fault", rate, start_ms=start_ms),
                FaultRule(
                    "webview.notification", "drop", rate, start_ms=start_ms
                ),
                FaultRule(
                    "distrib.replication", "drop", rate, start_ms=start_ms
                ),
            ),
        )

    @classmethod
    def network_blackout(
        cls, start_ms: float, end_ms: Optional[float] = None, *, seed: int = 0
    ) -> "FaultPlan":
        """A sustained total network outage (drives breakers open)."""
        return cls(
            seed=seed,
            rules=(
                FaultRule(
                    "network.request", "drop", 1.0, start_ms=start_ms, end_ms=end_ms
                ),
            ),
        )
