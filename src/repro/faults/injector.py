"""The runtime half of the fault plane: plan -> concrete fault decisions.

Determinism contract
--------------------
Each fault *site* gets its own RNG stream, seeded as ``"{seed}/{site}"``
(string seeds hash deterministically in Python 3).  A site's draw
sequence therefore depends only on the plan seed and on how many times
*that site* was consulted — never on wall-clock time, never on consult
order across sites.  Two runs of the same scenario with the same plan
produce identical fault schedules.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.faults.plan import FAULT_SITES, FaultPlan, FaultRule
from repro.util.clock import SimulatedClock

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs import Observability


@dataclass(frozen=True)
class InjectedFault:
    """One concrete fault decision handed back to a substrate component."""

    site: str
    kind: str
    at_ms: float
    rule: FaultRule


class FaultInjector:
    """Consults a :class:`FaultPlan` on behalf of one device.

    Substrate components call :meth:`decide` at their fault site; a
    ``None`` return means "behave normally".  An injector with no plan
    (or no rules for a site) is a near-free no-op, so the hooks stay in
    place even for fault-free runs.
    """

    def __init__(
        self,
        plan: Optional[FaultPlan] = None,
        clock: Optional[SimulatedClock] = None,
        *,
        observability: Optional["Observability"] = None,
    ) -> None:
        self._plan = plan or FaultPlan()
        self._clock = clock
        self._rules: Dict[str, tuple] = {
            site: self._plan.rules_for(site) for site in self._plan.sites
        }
        self._rngs: Dict[str, random.Random] = {
            site: random.Random(f"{self._plan.seed}/{site}")
            for site in self._plan.sites
        }
        self._fired: Dict[int, int] = {}  # id(rule) -> times fired
        self._log: List[InjectedFault] = []
        if observability is None:
            from repro.obs import MetricsRegistry

            self._obs = None
            self._metrics = MetricsRegistry()
        else:
            self._obs = observability
            self._metrics = observability.metrics

    @property
    def plan(self) -> FaultPlan:
        return self._plan

    @property
    def active(self) -> bool:
        """Whether any rule exists at all (cheap fault-free check)."""
        return bool(self._rules)

    def bind_clock(self, clock: SimulatedClock) -> None:
        """Late-bind the virtual clock (device wiring convenience)."""
        self._clock = clock

    def bind_observability(self, observability: "Observability") -> None:
        """Late-bind the observability hub (device wiring convenience).

        Faults already counted stay in the injector's previous registry;
        bind before running the scenario.
        """
        self._obs = observability
        self._metrics = observability.metrics

    def decide(self, site: str) -> Optional[InjectedFault]:
        """One consult of ``site``; returns the fault to inject, if any.

        The first active rule wins.  Every consult of a site with rules
        draws exactly once from that site's RNG stream regardless of
        which rule matches, keeping streams aligned across runs even
        when windows open and close.
        """
        rules = self._rules.get(site)
        if not rules:
            if site not in FAULT_SITES:
                raise KeyError(f"unknown fault site {site!r}")
            return None
        now = self._clock.now_ms if self._clock is not None else 0.0
        draw = self._rngs[site].random()
        for rule in rules:
            if not rule.active_at(now):
                continue
            fired = self._fired.get(id(rule), 0)
            if rule.max_faults is not None and fired >= rule.max_faults:
                continue
            if draw < rule.rate:
                self._fired[id(rule)] = fired + 1
                fault = InjectedFault(site=site, kind=rule.kind, at_ms=now, rule=rule)
                self._log.append(fault)
                self._metrics.counter(
                    "faults.injected", site=site, kind=rule.kind
                ).inc()
                if self._obs is not None and self._obs.tracer.enabled:
                    self._obs.tracer.event(
                        "fault.injected", site=site, kind=rule.kind
                    )
                return fault
            return None  # first active rule decides, fault or not
        return None

    # -- evaluation surface ---------------------------------------------------

    @property
    def injected_log(self) -> List[InjectedFault]:
        """Every fault injected so far, in consult order."""
        return list(self._log)

    def counts(self) -> Dict[str, Dict[str, int]]:
        """site -> kind -> number of faults injected (registry-backed)."""
        out: Dict[str, Dict[str, int]] = {}
        for counter in self._metrics.collect("faults.injected"):
            site = counter.labels["site"]
            out.setdefault(site, {})[counter.labels["kind"]] = counter.value
        return out

    def total_injected(self) -> int:
        return len(self._log)

    def schedule(self) -> List[tuple]:
        """The reproducibility fingerprint: ``(site, kind, at_ms)`` tuples."""
        return [(f.site, f.kind, f.at_ms) for f in self._log]
