"""Deterministic fault-injection plane for the simulated substrate.

A :class:`~repro.faults.plan.FaultPlan` declares *where* and *how often*
the world misbehaves; a :class:`~repro.faults.injector.FaultInjector`
executes the plan with per-site seeded RNG streams so every chaos run is
bit-for-bit reproducible from its seed.  The device substrate (network,
GPS, SMSC) and the WebView bridge consult the injector at their fault
sites; the resilience layer above (``repro.core.resilience``) is what
absorbs the injected failures.
"""

from repro.faults.plan import (
    FAULT_KINDS,
    FAULT_SITES,
    FaultPlan,
    FaultRule,
)
from repro.faults.injector import FaultInjector, InjectedFault

__all__ = [
    "FAULT_KINDS",
    "FAULT_SITES",
    "FaultInjector",
    "FaultPlan",
    "FaultRule",
    "InjectedFault",
]
