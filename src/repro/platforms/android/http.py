"""Apache-HttpClient-style HTTP stack (Java: ``org.apache.http``).

Android's bundled HTTP API is the Apache client: request objects
(``HttpGet`` / ``HttpPost``) executed by an ``HttpClient`` returning a
response whose status and entity are dug out through ``getStatusLine()``
and ``getEntity()`` — very different from S60's ``Connector.open`` URLs
and from the WebView's XHR-ish style.  The HTTP M-Proxy flattens all
three.
"""

from __future__ import annotations

from typing import List, Tuple, TYPE_CHECKING
from urllib.parse import urlparse

from repro.device.network import HttpRequest, HttpResponse, NetworkError
from repro.platforms.android.exceptions import IllegalArgumentException

if TYPE_CHECKING:  # pragma: no cover
    from repro.platforms.android.platform import AndroidPlatform

#: Manifest permission for network access.
INTERNET = "android.permission.INTERNET"


class IOException(Exception):
    """Java-style checked I/O failure raised by ``HttpClient.execute``."""


class _HttpUriRequest:
    """Base of the Apache-style request objects."""

    method = "GET"

    def __init__(self, url: str) -> None:
        parsed = urlparse(url)
        if parsed.scheme not in ("http", "https") or not parsed.netloc:
            raise IllegalArgumentException(f"malformed url {url!r}")
        self.url = url
        self.host = parsed.netloc
        self.path = parsed.path or "/"
        if parsed.query:
            self.path = f"{self.path}?{parsed.query}"
        self._headers: List[Tuple[str, str]] = []

    def add_header(self, name: str, value: str) -> None:
        """Java: ``addHeader``."""
        self._headers.append((name, value))

    def headers(self) -> Tuple[Tuple[str, str], ...]:
        return tuple(self._headers)

    def body(self) -> str:
        return ""


class HttpGet(_HttpUriRequest):
    """Java: ``org.apache.http.client.methods.HttpGet``."""

    method = "GET"


class HttpPost(_HttpUriRequest):
    """Java: ``org.apache.http.client.methods.HttpPost``."""

    method = "POST"

    def __init__(self, url: str) -> None:
        super().__init__(url)
        self._entity = ""

    def set_entity(self, body: str) -> None:
        """Java: ``setEntity(new StringEntity(...))``."""
        self._entity = body

    def body(self) -> str:
        return self._entity


class _StatusLine:
    """Java: ``response.getStatusLine()``."""

    def __init__(self, status: int) -> None:
        self._status = status

    def get_status_code(self) -> int:
        return self._status


class _HttpEntity:
    """Java: ``response.getEntity()``."""

    def __init__(self, body: str) -> None:
        self._body = body

    def get_content(self) -> str:
        """Simplified: the entity content as text."""
        return self._body


class HttpResponseAndroid:
    """Apache-style response wrapper."""

    def __init__(self, raw: HttpResponse) -> None:
        self._raw = raw

    def get_status_line(self) -> _StatusLine:
        return _StatusLine(self._raw.status)

    def get_entity(self) -> _HttpEntity:
        return _HttpEntity(self._raw.body)

    def get_all_headers(self) -> Tuple[Tuple[str, str], ...]:
        return self._raw.headers


class HttpClient:
    """Java: ``DefaultHttpClient``; blocking execute with checked IOException."""

    def __init__(self, platform: "AndroidPlatform", context) -> None:
        self._platform = platform
        self._context = context

    def execute(self, request: _HttpUriRequest) -> HttpResponseAndroid:
        """Run the request synchronously.

        Network-level failures surface as :class:`IOException` (Java
        semantics), not as the substrate's :class:`NetworkError`.
        """
        self._context.enforce_permission(INTERNET, "HttpClient.execute")
        self._platform.charge_native("android.http")
        wire_request = HttpRequest(
            method=request.method,
            host=request.host,
            path=request.path,
            headers=request.headers(),
            body=request.body(),
        )
        try:
            raw = self._platform.device.network.request(wire_request)
        except NetworkError as exc:
            raise IOException(str(exc)) from exc
        return HttpResponseAndroid(raw)
