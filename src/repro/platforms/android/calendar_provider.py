"""Android calendar content provider.

Same content-provider idiom as contacts — string URI, cursor rows,
``ContentValues`` — with the calendar provider's own column vocabulary
(``title``/``dtstart``/``dtend``, as in real Android), which differs from
both the contacts provider's and S60's typed event items.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, TYPE_CHECKING

from repro.platforms.android.contacts import ContentValues, Cursor
from repro.platforms.android.exceptions import IllegalArgumentException

if TYPE_CHECKING:  # pragma: no cover
    from repro.platforms.android.platform import AndroidPlatform

#: The calendar provider URI.
CALENDAR_URI = "content://calendar/events"

#: Manifest permissions.
READ_CALENDAR = "android.permission.READ_CALENDAR"
WRITE_CALENDAR = "android.permission.WRITE_CALENDAR"

#: Cursor column names (the provider's vocabulary).
COLUMN_ID = "_id"
COLUMN_TITLE = "title"
COLUMN_DTSTART = "dtstart"
COLUMN_DTEND = "dtend"
COLUMN_EVENT_LOCATION = "eventLocation"


class CalendarProvider:
    """Provider backend mounted under :data:`CALENDAR_URI`."""

    def __init__(self, platform: "AndroidPlatform", context) -> None:
        self._platform = platform
        self._context = context

    def query(self, selection: Optional[str] = None) -> Cursor:
        """All events, or those whose title contains ``selection``."""
        self._context.enforce_permission(READ_CALENDAR, "query")
        self._platform.charge_native("android.calendar.query")
        store = self._platform.device.calendar
        records = store.all()
        if selection:
            needle = selection.lower()
            records = [r for r in records if needle in r.summary.lower()]
        rows = [
            {
                COLUMN_ID: record.event_id,
                COLUMN_TITLE: record.summary,
                COLUMN_DTSTART: str(record.start_ms),
                COLUMN_DTEND: str(record.end_ms),
                COLUMN_EVENT_LOCATION: record.location or None,
            }
            for record in records
        ]
        return Cursor(rows)

    def insert(self, values: ContentValues) -> str:
        self._context.enforce_permission(WRITE_CALENDAR, "insert")
        title = values.get(COLUMN_TITLE)
        if not title:
            raise IllegalArgumentException(f"{COLUMN_TITLE} is required")
        start = values.get(COLUMN_DTSTART)
        end = values.get(COLUMN_DTEND)
        if start is None or end is None:
            raise IllegalArgumentException(
                f"{COLUMN_DTSTART} and {COLUMN_DTEND} are required"
            )
        self._platform.charge_native("android.calendar.insert")
        record = self._platform.device.calendar.add(
            title,
            float(start),
            float(end),
            location=values.get(COLUMN_EVENT_LOCATION) or "",
        )
        return f"{CALENDAR_URI}/{record.event_id}"

    def delete(self, event_id: str) -> int:
        self._context.enforce_permission(WRITE_CALENDAR, "delete")
        self._platform.charge_native("android.calendar.delete")
        try:
            self._platform.device.calendar.remove(event_id)
        except Exception:
            return 0
        return 1
