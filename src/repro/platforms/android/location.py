"""Android location stack: ``Location`` and ``LocationManager``.

The fragmentation axes reproduced here (each absorbed by the Location
M-Proxy):

* the manager is obtained via ``context.get_system_service`` — the
  platform-mandated *application context* attribute;
* proximity alerts ride the Intent broadcast machinery, produce **both**
  enter and exit events, repeat until an **expiration** deadline, and the
  registration argument changed from ``Intent`` (m5-rc15) to
  ``PendingIntent`` (1.0);
* missing ``ACCESS_FINE_LOCATION`` raises ``SecurityException``.

Java mapping: ``addProximityAlert`` → :meth:`LocationManager.add_proximity_alert`,
``getCurrentLocation`` → :meth:`LocationManager.get_current_location`, etc.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union, TYPE_CHECKING

from repro.device.gps import GpsFix, TOPIC_FIX
from repro.platforms.android.context import Context
from repro.platforms.android.exceptions import (
    IllegalArgumentException,
    SecurityException,
)
from repro.platforms.android.intents import Intent, PendingIntent
from repro.platforms.android.versions import SdkVersion
from repro.util.geo import haversine_m

if TYPE_CHECKING:  # pragma: no cover
    from repro.platforms.android.platform import AndroidPlatform

#: Manifest permission required by the location APIs.
ACCESS_FINE_LOCATION = "android.permission.ACCESS_FINE_LOCATION"

#: Extra key carrying the enter/exit flag on proximity broadcasts.
EXTRA_ENTERING = "entering"

#: Sentinel for "alert never expires".
NO_EXPIRATION = -1


class Location:
    """An Android-style location value with Java-ish accessors."""

    def __init__(
        self,
        latitude: float,
        longitude: float,
        altitude: float = 0.0,
        accuracy_m: float = 0.0,
        time_ms: float = 0.0,
        speed_mps: float = 0.0,
        provider: str = "gps",
    ) -> None:
        self._latitude = latitude
        self._longitude = longitude
        self._altitude = altitude
        self._accuracy_m = accuracy_m
        self._time_ms = time_ms
        self._speed_mps = speed_mps
        self._provider = provider

    def get_latitude(self) -> float:
        return self._latitude

    def get_longitude(self) -> float:
        return self._longitude

    def get_altitude(self) -> float:
        return self._altitude

    def get_accuracy(self) -> float:
        return self._accuracy_m

    def get_time(self) -> float:
        """Fix timestamp in (virtual) milliseconds."""
        return self._time_ms

    def get_speed(self) -> float:
        return self._speed_mps

    def get_provider(self) -> str:
        return self._provider

    def distance_to(self, other: "Location") -> float:
        """Great-circle distance in metres (Java: ``distanceTo``)."""
        return haversine_m(
            self._latitude, self._longitude, other.get_latitude(), other.get_longitude()
        )

    @classmethod
    def from_fix(cls, fix: GpsFix, provider: str = "gps") -> "Location":
        return cls(
            latitude=fix.point.latitude,
            longitude=fix.point.longitude,
            altitude=fix.point.altitude,
            accuracy_m=fix.accuracy_m,
            time_ms=fix.timestamp_ms,
            speed_mps=fix.speed_mps,
            provider=provider,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Location({self._latitude:.6f}, {self._longitude:.6f}, "
            f"provider={self._provider!r})"
        )


@dataclass
class _ProximityAlert:
    """Book-keeping for one registered proximity alert."""

    latitude: float
    longitude: float
    radius_m: float
    expires_at_ms: Optional[float]
    target: Union[Intent, PendingIntent]
    inside: bool = False
    primed: bool = False  # becomes True after the first fix evaluation
    fired: List[str] = field(default_factory=list)


class LocationManager:
    """The per-context location service facade.

    One underlying alert table is shared per platform; the facade carries
    the requesting context so permission failures attribute correctly.
    """

    #: Provider name constant (Java: LocationManager.GPS_PROVIDER).
    GPS_PROVIDER = "gps"

    def __init__(self, platform: "AndroidPlatform", context: Context) -> None:
        self._platform = platform
        self._context = context
        self._state = platform.location_state

    # -- one-shot reads ----------------------------------------------------

    def get_current_location(self, provider: str) -> Location:
        """Synchronous position read (charges the native latency).

        Raises ``SecurityException`` without ``ACCESS_FINE_LOCATION`` and
        ``IllegalArgumentException`` for unknown providers.
        """
        self._check_provider(provider)
        self._context.enforce_permission(ACCESS_FINE_LOCATION, "getCurrentLocation")
        self._platform.charge_native("android.getLocation")
        self._state.ensure_gps_powered()
        fix = self._platform.device.gps.last_fix
        if fix is not None:
            return Location.from_fix(fix, provider)
        # Cold receiver: model a blocking first fix at ground truth.
        point = self._platform.device.gps.ground_truth()
        return Location(
            latitude=point.latitude,
            longitude=point.longitude,
            altitude=point.altitude,
            time_ms=self._platform.clock.now_ms,
            provider=provider,
        )

    def get_last_known_location(self, provider: str) -> Optional[Location]:
        """Cached position; ``None`` before first fix (no latency charge)."""
        self._check_provider(provider)
        self._context.enforce_permission(ACCESS_FINE_LOCATION, "getLastKnownLocation")
        fix = self._platform.device.gps.last_fix
        return None if fix is None else Location.from_fix(fix, provider)

    # -- proximity alerts ----------------------------------------------------

    def add_proximity_alert(
        self,
        latitude: float,
        longitude: float,
        radius: float,
        expiration: float,
        intent: Union[Intent, PendingIntent],
    ) -> None:
        """Register a proximity alert (Java: ``addProximityAlert``).

        ``expiration`` is milliseconds from now, or :data:`NO_EXPIRATION`.
        The accepted type of ``intent`` depends on the platform's SDK
        version — the paper's maintenance example.
        """
        self._context.enforce_permission(ACCESS_FINE_LOCATION, "addProximityAlert")
        self._check_intent_type(intent)
        if radius <= 0:
            raise IllegalArgumentException(f"radius must be positive, got {radius}")
        self._platform.charge_native("android.addProximityAlert")
        now = self._platform.clock.now_ms
        expires = None if expiration == NO_EXPIRATION else now + expiration
        alert = _ProximityAlert(
            latitude=latitude,
            longitude=longitude,
            radius_m=radius,
            expires_at_ms=expires,
            target=intent,
        )
        self._state.add_alert(alert, self._context)

    def remove_proximity_alert(self, intent: Union[Intent, PendingIntent]) -> None:
        """Remove the alert registered with exactly this intent object."""
        self._state.remove_alert(intent)

    # -- internals -------------------------------------------------------------

    def _check_provider(self, provider: str) -> None:
        if provider != self.GPS_PROVIDER:
            raise IllegalArgumentException(f"unknown provider {provider!r}")

    def _check_intent_type(self, intent: Union[Intent, PendingIntent]) -> None:
        version = self._platform.sdk_version
        if version is SdkVersion.M5_RC15:
            if not isinstance(intent, Intent):
                raise IllegalArgumentException(
                    "SDK m5-rc15 addProximityAlert takes an Intent, got "
                    + type(intent).__name__
                )
        else:  # SDK 1.0 and later require a PendingIntent
            if not isinstance(intent, PendingIntent):
                raise IllegalArgumentException(
                    "SDK 1.0 addProximityAlert takes a PendingIntent, got "
                    + type(intent).__name__
                )


class LocationServiceState:
    """Platform-wide location state: the alert table and GPS lifecycle.

    The platform owns exactly one of these; every LocationManager facade
    shares it.  Subscribes to device GPS fixes and converts region-boundary
    crossings into intent broadcasts.
    """

    def __init__(self, platform: "AndroidPlatform") -> None:
        self._platform = platform
        self._alerts: List[_ProximityAlert] = []
        self._alert_contexts: Dict[int, Context] = {}
        self._gps_subscribed = False

    @property
    def active_alert_count(self) -> int:
        return len(self._alerts)

    def ensure_gps_powered(self) -> None:
        gps = self._platform.device.gps
        if not gps.powered:
            gps.power_on()
        if not self._gps_subscribed:
            self._platform.device.bus.subscribe(TOPIC_FIX, self._on_fix)
            self._gps_subscribed = True

    def add_alert(self, alert: _ProximityAlert, context: Context) -> None:
        self._alerts.append(alert)
        self._alert_contexts[id(alert)] = context
        self.ensure_gps_powered()

    def remove_alert(self, intent: Union[Intent, PendingIntent]) -> None:
        for alert in list(self._alerts):
            if alert.target is intent:
                self._drop(alert)

    def _drop(self, alert: _ProximityAlert) -> None:
        if alert in self._alerts:
            self._alerts.remove(alert)
        self._alert_contexts.pop(id(alert), None)

    def _on_fix(self, topic: str, fix: GpsFix) -> None:
        now = self._platform.clock.now_ms
        for alert in list(self._alerts):
            if alert.expires_at_ms is not None and now >= alert.expires_at_ms:
                self._drop(alert)
                continue
            distance = haversine_m(
                fix.point.latitude,
                fix.point.longitude,
                alert.latitude,
                alert.longitude,
            )
            inside = distance <= alert.radius_m
            if not alert.primed:
                alert.primed = True
                alert.inside = inside
                if inside:
                    self._fire(alert, entering=True)
                continue
            if inside != alert.inside:
                alert.inside = inside
                self._fire(alert, entering=inside)

    def _fire(self, alert: _ProximityAlert, *, entering: bool) -> None:
        alert.fired.append("enter" if entering else "exit")
        context = self._alert_contexts.get(id(alert))
        registry = self._platform.broadcast_registry
        if isinstance(alert.target, PendingIntent):
            registry.send_pending(context, alert.target, {EXTRA_ENTERING: entering})
        else:
            intent = alert.target.copy()
            intent.put_extra(EXTRA_ENTERING, entering)
            registry.broadcast(context, intent)
