"""Android telephony: ``SmsManager`` (android.telephony.gsm) and ``IPhone``.

``SmsManager.send_text_message`` reports progress through *PendingIntent*
broadcasts (sent + delivered), never through callable callbacks — the
fragmentation the SMS M-Proxy normalizes.  The phone-call interface mirrors
the internal ``android.telephony.IPhone`` class the paper used (the
functionality was not in the public SDK).
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from repro.device.messaging import SmsDeliveryReport, DeliveryStatus
from repro.device.telephony import CallSession
from repro.platforms.android.context import Context
from repro.platforms.android.exceptions import IllegalArgumentException
from repro.platforms.android.intents import PendingIntent

if TYPE_CHECKING:  # pragma: no cover
    from repro.platforms.android.platform import AndroidPlatform

#: Manifest permissions.
SEND_SMS = "android.permission.SEND_SMS"
CALL_PHONE = "android.permission.CALL_PHONE"

#: Result codes carried on the sent-intent broadcast (Java: Activity.RESULT_OK
#: and SmsManager.RESULT_ERROR_*).
RESULT_OK = -1
RESULT_ERROR_GENERIC_FAILURE = 1

#: Extra keys on result broadcasts.
EXTRA_RESULT_CODE = "result_code"
EXTRA_MESSAGE_ID = "message_id"


class SmsManager:
    """GSM short-message service facade (Java: ``SmsManager.getDefault()``)."""

    def __init__(self, platform: "AndroidPlatform", context: Context) -> None:
        self._platform = platform
        self._context = context

    def send_text_message(
        self,
        destination_address: str,
        sc_address: Optional[str],
        text: str,
        sent_intent: Optional[PendingIntent] = None,
        delivery_intent: Optional[PendingIntent] = None,
    ) -> str:
        """Send a text (Java: ``sendTextMessage``); returns the message id.

        ``sent_intent`` fires when the SMSC accepts or rejects the message;
        ``delivery_intent`` fires on end-to-end delivery.  Both carry
        :data:`EXTRA_RESULT_CODE` / :data:`EXTRA_MESSAGE_ID` extras.
        """
        if not destination_address:
            raise IllegalArgumentException("destinationAddress must be non-empty")
        if text is None:
            raise IllegalArgumentException("text must not be null")
        self._context.enforce_permission(SEND_SMS, "sendTextMessage")
        self._platform.charge_native("android.sendSMS")
        registry = self._platform.broadcast_registry
        context = self._context

        def on_report(report: SmsDeliveryReport) -> None:
            code = (
                RESULT_OK
                if report.status is DeliveryStatus.DELIVERED
                else RESULT_ERROR_GENERIC_FAILURE
            )
            if sent_intent is not None:
                registry.send_pending(
                    context,
                    sent_intent,
                    {EXTRA_RESULT_CODE: code, EXTRA_MESSAGE_ID: report.message_id},
                )
            if delivery_intent is not None and code == RESULT_OK:
                registry.send_pending(
                    context,
                    delivery_intent,
                    {EXTRA_RESULT_CODE: code, EXTRA_MESSAGE_ID: report.message_id},
                )

        message = self._platform.device.sms_center.submit(
            self._platform.device.phone_number,
            destination_address,
            text,
            on_report=on_report,
        )
        return message.message_id


class IPhone:
    """The (internal) phone-call interface, Java: ``android.telephony.IPhone``.

    Real m5-era Android did not expose calling publicly; applications used
    this internal interface, as the paper's Call proxy did.
    """

    def __init__(self, platform: "AndroidPlatform", context: Context) -> None:
        self._platform = platform
        self._context = context

    def call(self, number: str, on_state=None) -> CallSession:
        """Place a voice call; returns the session handle.

        ``on_state`` (optional) is invoked on every call-state change — the
        substrate's stand-in for registering a ``PhoneStateListener`` with
        the telephony service.
        """
        if not number:
            raise IllegalArgumentException("number must be non-empty")
        self._context.enforce_permission(CALL_PHONE, "call")
        self._platform.charge_native("android.call")
        return self._platform.device.telephony.dial(number, on_state)

    def end_call(self, session: CallSession) -> None:
        """Hang up a ringing or active call."""
        self._platform.device.telephony.hang_up(session)
