"""Activity lifecycle.

An Android application's entry point extends :class:`Activity` — part of
the tight coupling between application structure and platform middleware
the paper highlights (an S60 app extends ``MIDlet`` instead).  Lifecycle
state transitions follow the classic diagram: created → started → resumed
→ paused → stopped → destroyed.
"""

from __future__ import annotations

import enum
from typing import List, TYPE_CHECKING

from repro.platforms.android.context import Context
from repro.platforms.android.exceptions import IllegalStateException

if TYPE_CHECKING:  # pragma: no cover
    from repro.platforms.android.platform import AndroidPlatform


class ActivityState(enum.Enum):
    """Lifecycle states an Activity moves through."""

    INITIAL = "initial"
    CREATED = "created"
    STARTED = "started"
    RESUMED = "resumed"
    PAUSED = "paused"
    STOPPED = "stopped"
    DESTROYED = "destroyed"


class Activity(Context):
    """Base class for Android application components.

    An Activity *is a* Context (as in real Android) — application code can
    pass ``self`` wherever a context is needed, which is exactly what the
    paper's code fragments do (``loc.setProperty("context", this)``).

    Subclasses override the ``on_*`` hooks.  Java mapping: ``onCreate`` →
    :meth:`on_create`, etc.
    """

    def __init__(self, platform: "AndroidPlatform", package_name: str) -> None:
        super().__init__(
            platform,
            package_name,
            granted_permissions=platform.manifest_permissions(package_name),
        )
        self._state = ActivityState.INITIAL
        self._lifecycle_log: List[ActivityState] = []

    # -- lifecycle hooks (override points) ---------------------------------

    def on_create(self) -> None:
        """First lifecycle hook; register receivers and services here."""

    def on_start(self) -> None:
        """The activity is becoming visible."""

    def on_resume(self) -> None:
        """The activity is in the foreground."""

    def on_pause(self) -> None:
        """The activity is losing the foreground."""

    def on_stop(self) -> None:
        """The activity is no longer visible."""

    def on_destroy(self) -> None:
        """Final hook; release everything."""

    # -- lifecycle driving (the platform calls these) -----------------------

    @property
    def state(self) -> ActivityState:
        return self._state

    @property
    def lifecycle_log(self) -> List[ActivityState]:
        """Every state entered, in order (test aid)."""
        return list(self._lifecycle_log)

    def _enter(self, state: ActivityState) -> None:
        self._state = state
        self._lifecycle_log.append(state)

    def perform_launch(self) -> None:
        """Drive create → start → resume."""
        if self._state is not ActivityState.INITIAL:
            raise IllegalStateException(f"cannot launch from {self._state.value}")
        self._enter(ActivityState.CREATED)
        self.on_create()
        self._enter(ActivityState.STARTED)
        self.on_start()
        self._enter(ActivityState.RESUMED)
        self.on_resume()

    def perform_pause(self) -> None:
        if self._state is not ActivityState.RESUMED:
            raise IllegalStateException(f"cannot pause from {self._state.value}")
        self._enter(ActivityState.PAUSED)
        self.on_pause()

    def perform_resume(self) -> None:
        if self._state is not ActivityState.PAUSED:
            raise IllegalStateException(f"cannot resume from {self._state.value}")
        self._enter(ActivityState.RESUMED)
        self.on_resume()

    def perform_stop(self) -> None:
        if self._state not in (ActivityState.PAUSED,):
            raise IllegalStateException(f"cannot stop from {self._state.value}")
        self._enter(ActivityState.STOPPED)
        self.on_stop()

    def perform_destroy(self) -> None:
        if self._state in (ActivityState.DESTROYED, ActivityState.INITIAL):
            raise IllegalStateException(f"cannot destroy from {self._state.value}")
        if self._state is ActivityState.RESUMED:
            self.perform_pause()
        if self._state is ActivityState.PAUSED:
            self.perform_stop()
        self._enter(ActivityState.DESTROYED)
        self.on_destroy()
