"""Android contacts: ContentResolver / Cursor / ContentValues style.

Android exposes the address book through its content-provider interface:
string URIs, row cursors with column names, and ``ContentValues`` bags —
nothing like S60's typed PIM items.  The Contacts M-Proxy flattens both.

Java mapping: ``getContentResolver`` →
:meth:`~repro.platforms.android.context.Context.get_content_resolver`,
``moveToNext`` → :meth:`Cursor.move_to_next`.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, TYPE_CHECKING

from repro.platforms.android.exceptions import IllegalArgumentException

if TYPE_CHECKING:  # pragma: no cover
    from repro.platforms.android.platform import AndroidPlatform

#: The contacts provider URI (m5-era shape).
CONTACTS_URI = "content://contacts/people"

#: Manifest permissions.
READ_CONTACTS = "android.permission.READ_CONTACTS"
WRITE_CONTACTS = "android.permission.WRITE_CONTACTS"

#: Cursor column names (the provider's vocabulary, not the device's).
COLUMN_ID = "_id"
COLUMN_DISPLAY_NAME = "display_name"
COLUMN_NUMBER = "number"
COLUMN_EMAIL = "email"


class ContentValues:
    """A typed bag of column values (Java: ``ContentValues``)."""

    def __init__(self) -> None:
        self._values: Dict[str, Any] = {}

    def put(self, key: str, value: Any) -> None:
        if not key:
            raise IllegalArgumentException("column name must be non-empty")
        self._values[key] = value

    def get(self, key: str) -> Any:
        return self._values.get(key)

    def keys(self) -> List[str]:
        return sorted(self._values)


class Cursor:
    """A forward-only row cursor (Java: ``Cursor``)."""

    def __init__(self, rows: List[Dict[str, Any]]) -> None:
        self._rows = rows
        self._position = -1
        self._closed = False

    def get_count(self) -> int:
        return len(self._rows)

    def move_to_next(self) -> bool:
        """Advance; returns False past the last row (Java idiom)."""
        if self._closed:
            raise IllegalArgumentException("cursor is closed")
        self._position += 1
        return self._position < len(self._rows)

    def get_string(self, column: str) -> Optional[str]:
        if self._closed:
            raise IllegalArgumentException("cursor is closed")
        if not 0 <= self._position < len(self._rows):
            raise IllegalArgumentException("cursor not positioned on a row")
        value = self._rows[self._position].get(column)
        return None if value is None else str(value)

    def close(self) -> None:
        self._closed = True


class ContentResolver:
    """The content-provider front door, bound to a calling context.

    Dispatches by URI: the contacts provider lives here, the calendar
    provider in :mod:`repro.platforms.android.calendar_provider`.
    """

    def __init__(self, platform: "AndroidPlatform", context) -> None:
        self._platform = platform
        self._context = context

    def _calendar(self):
        from repro.platforms.android.calendar_provider import CalendarProvider

        return CalendarProvider(self._platform, self._context)

    @staticmethod
    def _is_calendar(uri: str) -> bool:
        from repro.platforms.android.calendar_provider import CALENDAR_URI

        return uri == CALENDAR_URI or uri.startswith(f"{CALENDAR_URI}/")

    def query(self, uri: str, selection: Optional[str] = None) -> Cursor:
        """Query a provider URI.

        ``selection`` (when given) is a name/title substring filter — a
        simplified stand-in for SQL selections.  Requires the provider's
        read permission.
        """
        if self._is_calendar(uri):
            return self._calendar().query(selection)
        self._check_uri(uri)
        self._context.enforce_permission(READ_CONTACTS, "query")
        self._platform.charge_native("android.contacts.query")
        store = self._platform.device.contacts
        records = (
            store.find_by_name(selection) if selection else store.all()
        )
        rows = [
            {
                COLUMN_ID: record.contact_id,
                COLUMN_DISPLAY_NAME: record.display_name,
                COLUMN_NUMBER: record.phone_numbers[0] if record.phone_numbers else None,
                COLUMN_EMAIL: record.email or None,
            }
            for record in records
        ]
        return Cursor(rows)

    def insert(self, uri: str, values: ContentValues) -> str:
        """Insert a row; returns the new row URI (Java contract).

        Requires the provider's write permission.
        """
        if self._is_calendar(uri):
            return self._calendar().insert(values)
        self._check_uri(uri)
        self._context.enforce_permission(WRITE_CONTACTS, "insert")
        name = values.get(COLUMN_DISPLAY_NAME)
        if not name:
            raise IllegalArgumentException(f"{COLUMN_DISPLAY_NAME} is required")
        self._platform.charge_native("android.contacts.insert")
        number = values.get(COLUMN_NUMBER)
        record = self._platform.device.contacts.add(
            name,
            phone_numbers=(number,) if number else (),
            email=values.get(COLUMN_EMAIL) or "",
        )
        return f"{CONTACTS_URI}/{record.contact_id}"

    def delete(self, row_uri: str) -> int:
        """Delete by row URI; returns the number of rows removed."""
        if self._is_calendar(row_uri):
            from repro.platforms.android.calendar_provider import CALENDAR_URI

            return self._calendar().delete(row_uri[len(f"{CALENDAR_URI}/"):])
        prefix = f"{CONTACTS_URI}/"
        if not row_uri.startswith(prefix):
            raise IllegalArgumentException(f"bad row uri {row_uri!r}")
        self._context.enforce_permission(WRITE_CONTACTS, "delete")
        self._platform.charge_native("android.contacts.delete")
        contact_id = row_uri[len(prefix):]
        store = self._platform.device.contacts
        try:
            store.remove(contact_id)
        except Exception:
            return 0
        return 1

    @staticmethod
    def _check_uri(uri: str) -> None:
        if uri != CONTACTS_URI:
            raise IllegalArgumentException(f"unknown content uri {uri!r}")
