"""The Android platform object: service registry, manifests, SDK version."""

from __future__ import annotations

from typing import Dict, Optional, Set, Type

from repro.device.device import MobileDevice
from repro.platforms.android.activity import Activity
from repro.platforms.android.context import Context
from repro.platforms.android.http import HttpClient
from repro.platforms.android.intents import BroadcastRegistry
from repro.platforms.android.location import LocationManager, LocationServiceState
from repro.platforms.android.telephony import IPhone, SmsManager
from repro.platforms.android.versions import SdkVersion
from repro.platforms.base import PlatformBase
from repro.util.latency import LatencyModel

#: Default native latencies (ms) roughly matching the paper's handset
#: measurements; benchmarks swap in the calibrated Figure-10 model.
DEFAULT_ANDROID_LATENCY = LatencyModel(
    mean_ms={
        "android.addProximityAlert": 53.6,
        "android.getLocation": 15.5,
        "android.sendSMS": 52.7,
        "android.call": 40.0,
        "android.http": 30.0,
    },
    default_ms=1.0,
)


class AndroidPlatform(PlatformBase):
    """An Android middleware stack mounted on one device.

    Applications are installed with :meth:`install` (which records their
    manifest permissions) and launched with :meth:`launch`, driving the
    Activity lifecycle the way the real platform does.
    """

    platform_name = "android"

    def __init__(
        self,
        device: MobileDevice,
        *,
        sdk_version: SdkVersion = SdkVersion.M5_RC15,
        latency: Optional[LatencyModel] = None,
    ) -> None:
        super().__init__(device, latency=latency or DEFAULT_ANDROID_LATENCY)
        self.sdk_version = sdk_version
        self.broadcast_registry = BroadcastRegistry()
        self.location_state = LocationServiceState(self)
        self._manifests: Dict[str, Set[str]] = {}
        self._activities: Dict[str, Activity] = {}

    # -- application management ---------------------------------------------

    def install(self, package_name: str, permissions: Set[str]) -> None:
        """Record an application manifest (package name + permissions)."""
        if not package_name:
            raise ValueError("package name must be non-empty")
        self._manifests[package_name] = set(permissions)

    def manifest_permissions(self, package_name: str) -> Set[str]:
        """Permissions declared by an installed package (empty if unknown)."""
        return set(self._manifests.get(package_name, set()))

    def launch(self, activity_class: Type[Activity], package_name: str) -> Activity:
        """Instantiate and lifecycle-launch an Activity."""
        activity = activity_class(self, package_name)
        self._activities[package_name] = activity
        activity.perform_launch()
        return activity

    def new_context(self, package_name: str) -> Context:
        """A bare (non-Activity) application context for tests/tools."""
        return Context(
            self, package_name, granted_permissions=self.manifest_permissions(package_name)
        )

    # -- system services --------------------------------------------------------

    def system_service(self, name: str, context: Optional[Context] = None):
        """Service factory behind ``Context.get_system_service``."""
        if context is None:
            context = self.new_context("android.internal")
        if name == Context.LOCATION_SERVICE:
            return LocationManager(self, context)
        if name == Context.TELEPHONY_SERVICE:
            return IPhone(self, context)
        return None

    def sms_manager(self, context: Context) -> SmsManager:
        """Java: ``SmsManager.getDefault()`` (bound to a context here so
        permission failures attribute to the caller)."""
        return SmsManager(self, context)

    def http_client(self, context: Context) -> HttpClient:
        """Java: ``new DefaultHttpClient()``."""
        return HttpClient(self, context)
