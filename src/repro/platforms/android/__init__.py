"""Android-like platform substrate.

Java API names map to Python ``snake_case`` one-for-one (documented on each
method), e.g. ``LocationManager.addProximityAlert`` becomes
``LocationManager.add_proximity_alert``.  Semantics follow the paper's two
SDK targets:

* **m5-rc15** — ``add_proximity_alert`` takes a plain :class:`Intent`.
* **1.0** — the same API requires a :class:`PendingIntent`; passing a raw
  Intent raises ``IllegalArgumentException``.  This one-line platform
  evolution drives the paper's maintenance argument.
"""

from repro.platforms.android.exceptions import (
    AndroidRuntimeException,
    IllegalArgumentException,
    IllegalStateException,
    SecurityException,
)
from repro.platforms.android.intents import (
    Intent,
    IntentFilter,
    IntentReceiver,
    PendingIntent,
)
from repro.platforms.android.context import Context
from repro.platforms.android.activity import Activity
from repro.platforms.android.location import Location, LocationManager
from repro.platforms.android.telephony import IPhone, SmsManager
from repro.platforms.android.http import (
    HttpClient,
    HttpGet,
    HttpPost,
    HttpResponseAndroid,
)
from repro.platforms.android.versions import SdkVersion
from repro.platforms.android.platform import AndroidPlatform

__all__ = [
    "AndroidPlatform",
    "AndroidRuntimeException",
    "Activity",
    "Context",
    "HttpClient",
    "HttpGet",
    "HttpPost",
    "HttpResponseAndroid",
    "IPhone",
    "IllegalArgumentException",
    "IllegalStateException",
    "Intent",
    "IntentFilter",
    "IntentReceiver",
    "Location",
    "LocationManager",
    "PendingIntent",
    "SdkVersion",
    "SecurityException",
    "SmsManager",
]
