"""Android's platform-specific exception set.

These intentionally do **not** derive from ``repro.errors.ProxyError`` —
they are raw platform exceptions.  The binding plane of each M-Proxy lists
which of these a given interface can throw, and the proxy runtime maps them
onto the uniform hierarchy.
"""


class AndroidRuntimeException(Exception):
    """Root of the Android substrate's unchecked exceptions."""


class SecurityException(AndroidRuntimeException):
    """A manifest permission required by the API is missing."""


class IllegalArgumentException(AndroidRuntimeException):
    """An argument is invalid for this SDK version or API."""


class IllegalStateException(AndroidRuntimeException):
    """The component is not in a state that allows the call."""


class ActivityNotFoundException(AndroidRuntimeException):
    """No component can handle the launched intent."""
