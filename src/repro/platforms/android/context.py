"""Application context and system-service registry.

The paper calls out that obtaining a ``LocationManager`` on Android needs
the *application context* — a platform-mandated attribute that must not
leak into a common API, and which MobiVine therefore routes through
``set_property("context", ...)``.  This module reproduces that seam.
"""

from __future__ import annotations

from typing import Any, Optional, Set, TYPE_CHECKING

from repro.platforms.android.exceptions import (
    IllegalArgumentException,
    SecurityException,
)
from repro.platforms.android.intents import BroadcastRegistry, Intent, IntentFilter, IntentReceiver

if TYPE_CHECKING:  # pragma: no cover
    from repro.platforms.android.platform import AndroidPlatform


class Context:
    """Per-application handle onto the platform.

    Java name mapping: ``getSystemService`` → :meth:`get_system_service`,
    ``registerReceiver`` → :meth:`register_receiver`,
    ``sendBroadcast`` → :meth:`send_broadcast`,
    ``checkPermission`` → :meth:`check_permission`.
    """

    #: Service name constants (Java: Context.LOCATION_SERVICE etc.)
    LOCATION_SERVICE = "location"
    TELEPHONY_SERVICE = "phone"
    CONNECTIVITY_SERVICE = "connectivity"

    def __init__(
        self,
        platform: "AndroidPlatform",
        package_name: str,
        granted_permissions: Optional[Set[str]] = None,
    ) -> None:
        self._platform = platform
        self._package_name = package_name
        self._granted: Set[str] = set(granted_permissions or set())
        self._registry: BroadcastRegistry = platform.broadcast_registry

    @property
    def package_name(self) -> str:
        return self._package_name

    @property
    def platform(self) -> "AndroidPlatform":
        return self._platform

    def get_system_service(self, name: str) -> Any:
        """Look up a platform service by its well-known name.

        Unknown names raise ``IllegalArgumentException`` (real Android
        returns null; the substrate is stricter so misuse fails loudly).
        """
        service = self._platform.system_service(name, self)
        if service is None:
            raise IllegalArgumentException(f"unknown system service {name!r}")
        return service

    def get_content_resolver(self):
        """The content-provider front door (Java: ``getContentResolver``)."""
        from repro.platforms.android.contacts import ContentResolver

        return ContentResolver(self._platform, self)

    # -- permissions -------------------------------------------------------

    def check_permission(self, permission: str) -> bool:
        """Whether this application holds ``permission``."""
        return permission in self._granted

    def enforce_permission(self, permission: str, what: str) -> None:
        """Raise ``SecurityException`` unless ``permission`` is held."""
        if permission not in self._granted:
            raise SecurityException(
                f"{self._package_name} lacks {permission} required by {what}"
            )

    def grant_permission(self, permission: str) -> None:
        """Test/installer hook: add a manifest permission."""
        self._granted.add(permission)

    # -- broadcasts ----------------------------------------------------------

    def register_receiver(
        self, receiver: IntentReceiver, intent_filter: IntentFilter
    ) -> None:
        """Subscribe ``receiver`` to broadcasts matching ``intent_filter``."""
        self._registry.register(receiver, intent_filter)

    def unregister_receiver(self, receiver: IntentReceiver) -> None:
        """Remove all registrations of ``receiver``."""
        self._registry.unregister(receiver)

    def send_broadcast(self, intent: Intent) -> int:
        """Broadcast ``intent`` to matching receivers (returns delivery count)."""
        return self._registry.broadcast(self, intent)
