"""Android SDK version switch.

The paper's maintenance evaluation hinges on one real API evolution:
release 1.0 of Android changed ``addProximityAlert`` to take a
``PendingIntent`` where m5-rc15 took an ``Intent``.  The substrate makes
the version an explicit platform parameter so both behaviours are testable
side by side.
"""

from __future__ import annotations

import enum


class SdkVersion(enum.Enum):
    """Supported Android SDK behaviour levels."""

    M5_RC15 = "m5-rc15"
    V1_0 = "1.0"

    @property
    def proximity_alert_takes_pending_intent(self) -> bool:
        """Whether ``addProximityAlert`` requires a PendingIntent."""
        return self is SdkVersion.V1_0
