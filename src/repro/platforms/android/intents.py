"""Intent / IntentReceiver broadcast machinery.

This is Android's native callback style: components never hand function
objects to the platform; they register an :class:`IntentReceiver` against
an :class:`IntentFilter` and the platform *broadcasts* :class:`Intent`
objects at them.  The paper's Location proxy exists largely to hide this
machinery behind a plain listener object (Section 4.1, "Handling callbacks
on Android").

Java name mapping: ``onReceiveIntent`` → :meth:`IntentReceiver.on_receive_intent`,
``getBooleanExtra`` → :meth:`Intent.get_boolean_extra`, etc.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.platforms.android.exceptions import IllegalArgumentException


class Intent:
    """A broadcastable message: an action string plus typed extras."""

    def __init__(self, action: str = "") -> None:
        self._action = action
        self._extras: Dict[str, Any] = {}

    # -- Java: getAction / setAction -------------------------------------
    def get_action(self) -> str:
        return self._action

    def set_action(self, action: str) -> "Intent":
        self._action = action
        return self

    # -- Java: put*Extra --------------------------------------------------
    def put_extra(self, key: str, value: Any) -> "Intent":
        """Attach an extra (chainable, like the Java API)."""
        if not key:
            raise IllegalArgumentException("extra key must be non-empty")
        self._extras[key] = value
        return self

    # -- Java: get*Extra --------------------------------------------------
    def get_boolean_extra(self, key: str, default: bool) -> bool:
        value = self._extras.get(key, default)
        return bool(value)

    def get_double_extra(self, key: str, default: float) -> float:
        value = self._extras.get(key, default)
        return float(value)

    def get_string_extra(self, key: str) -> Optional[str]:
        value = self._extras.get(key)
        return None if value is None else str(value)

    def get_extra(self, key: str, default: Any = None) -> Any:
        return self._extras.get(key, default)

    def extras(self) -> Dict[str, Any]:
        """A copy of all extras."""
        return dict(self._extras)

    def copy(self) -> "Intent":
        """An independent copy (broadcast delivery hands out copies)."""
        duplicate = Intent(self._action)
        duplicate._extras = dict(self._extras)
        return duplicate

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Intent(action={self._action!r}, extras={sorted(self._extras)})"


class PendingIntent:
    """A token wrapping an Intent for later dispatch (SDK 1.0 style).

    Real Android mints these through ``PendingIntent.getBroadcast``;
    the substrate keeps that shape.
    """

    _BROADCAST = "broadcast"

    def __init__(self, kind: str, intent: Intent) -> None:
        if not isinstance(intent, Intent):
            raise IllegalArgumentException(
                f"PendingIntent wraps an Intent, got {type(intent).__name__}"
            )
        self._kind = kind
        self._intent = intent
        self._cancelled = False

    # -- Java: PendingIntent.getBroadcast(context, requestCode, intent, flags)
    @classmethod
    def get_broadcast(cls, context: Any, request_code: int, intent: Intent, flags: int = 0) -> "PendingIntent":
        """Mint a broadcast PendingIntent (context/flags kept for shape)."""
        return cls(cls._BROADCAST, intent)

    @property
    def intent(self) -> Intent:
        return self._intent

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def cancel(self) -> None:
        """Invalidate the token; subsequent sends are dropped."""
        self._cancelled = True


class IntentFilter:
    """Matches intents by action string (the only axis this substrate needs)."""

    def __init__(self, action: str) -> None:
        if not action:
            raise IllegalArgumentException("IntentFilter needs a non-empty action")
        self._actions: List[str] = [action]

    def add_action(self, action: str) -> None:
        if action not in self._actions:
            self._actions.append(action)

    def matches(self, intent: Intent) -> bool:
        return intent.get_action() in self._actions

    @property
    def actions(self) -> List[str]:
        return list(self._actions)


class IntentReceiver:
    """Abstract broadcast receiver (m5-era name for BroadcastReceiver).

    Subclasses override :meth:`on_receive_intent`.
    """

    def on_receive_intent(self, context: Any, intent: Intent) -> None:
        """Handle a broadcast delivered to this receiver."""
        raise NotImplementedError


#: SDK 1.0 renamed ``IntentReceiver`` to ``BroadcastReceiver`` (another
#: piece of the m5 → 1.0 churn the paper's maintenance argument is about);
#: the substrate accepts both names.
BroadcastReceiver = IntentReceiver


class FunctionIntentReceiver(IntentReceiver):
    """Adapter wrapping a plain callable as a receiver (test convenience)."""

    def __init__(self, fn) -> None:
        self._fn = fn

    def on_receive_intent(self, context: Any, intent: Intent) -> None:
        self._fn(context, intent)


class BroadcastRegistry:
    """The platform-wide table of (receiver, filter) registrations.

    Owned by :class:`~repro.platforms.android.platform.AndroidPlatform`;
    contexts delegate ``register_receiver`` here.  Delivery is synchronous
    and in registration order (deterministic under the virtual clock).
    """

    def __init__(self) -> None:
        self._entries: List[tuple] = []
        self.broadcast_log: List[Intent] = []

    def register(self, receiver: IntentReceiver, intent_filter: IntentFilter) -> None:
        if not isinstance(receiver, IntentReceiver):
            raise IllegalArgumentException(
                f"receiver must be an IntentReceiver, got {type(receiver).__name__}"
            )
        self._entries.append((receiver, intent_filter))

    def unregister(self, receiver: IntentReceiver) -> None:
        self._entries = [(r, f) for (r, f) in self._entries if r is not receiver]

    def registered_count(self) -> int:
        return len(self._entries)

    def broadcast(self, context: Any, intent: Intent) -> int:
        """Deliver ``intent`` to every matching receiver; returns the count."""
        self.broadcast_log.append(intent)
        delivered = 0
        for receiver, intent_filter in list(self._entries):
            if intent_filter.matches(intent):
                receiver.on_receive_intent(context, intent.copy())
                delivered += 1
        return delivered

    def send_pending(self, context: Any, pending: PendingIntent, extras: Optional[Dict[str, Any]] = None) -> int:
        """Fire a PendingIntent (no-op if cancelled), merging in extras."""
        if pending.cancelled:
            return 0
        intent = pending.intent.copy()
        for key, value in (extras or {}).items():
            intent.put_extra(key, value)
        return self.broadcast(context, intent)
