"""Common plumbing shared by the three platform substrates.

Only simulation plumbing lives here (device mounting, native-latency
charging).  Nothing API-visible is shared — API divergence between the
platforms is the point of the reproduction.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.device.device import MobileDevice
from repro.util.latency import LatencyModel


class PlatformBase:
    """A platform middleware stack mounted on one simulated device.

    Parameters
    ----------
    device:
        The handset this middleware runs on.
    latency:
        Virtual-time cost of each *native* platform API call, keyed by
        operation names like ``"android.addProximityAlert"``.  Calibrated
        models live in ``repro.bench.calibration``.
    """

    #: Short identifier, e.g. ``"android"``; set by subclasses.
    platform_name = "abstract"

    def __init__(
        self,
        device: MobileDevice,
        *,
        latency: Optional[LatencyModel] = None,
    ) -> None:
        self.device = device
        self.native_latency = latency or LatencyModel(default_ms=1.0)
        self._charge_log: Dict[str, int] = {}

    @property
    def scheduler(self):
        """The device scheduler (shared virtual time)."""
        return self.device.scheduler

    @property
    def clock(self):
        return self.device.clock

    #: Battery drain per millisecond of native-operation time (radio/CPU).
    DRAIN_MWH_PER_MS = 0.01

    def charge_native(self, operation: str) -> float:
        """Advance virtual time by the native cost of ``operation``.

        Returns the charged latency in milliseconds.  Every native platform
        entry point calls this exactly once, which is what makes the
        Figure-10 "without proxy" bars reproducible.  The device battery is
        drained in proportion to the time spent (radio/CPU energy).

        With tracing enabled the charge appears as a ``substrate:<op>``
        span whose virtual duration is exactly the charged latency, plus
        a latency histogram sample; the latency *draw* happens before the
        span so observability can never perturb the latency RNG stream.
        """
        latency = self.native_latency.draw(operation)
        obs = self.device.obs
        if obs.tracer.enabled:
            with obs.tracer.span(
                f"substrate:{operation}", platform=self.platform_name
            ) as span:
                span.set_attribute("latency_ms", round(latency, 6))
                self.clock.advance(latency)
            obs.metrics.histogram(
                "substrate.latency_ms", operation=operation
            ).observe(latency)
        else:
            self.clock.advance(latency)
        self.device.battery.drain(operation, latency * self.DRAIN_MWH_PER_MS)
        self._charge_log[operation] = self._charge_log.get(operation, 0) + 1
        return latency

    def native_call_counts(self) -> Dict[str, int]:
        """How many times each native operation was charged (test aid)."""
        return dict(self._charge_log)

    def run_for(self, delta_ms: float) -> int:
        """Advance this platform's virtual time."""
        return self.scheduler.run_for(delta_ms)
