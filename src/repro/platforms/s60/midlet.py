"""MIDP application model.

An S60 application extends :class:`MIDlet` — not ``Activity`` — and its
lifecycle is the MIDP triple ``startApp`` / ``pauseApp`` / ``destroyApp``.
This structural coupling (different base class, different hooks, different
packaging) is the second fragmentation characteristic the paper lists.
"""

from __future__ import annotations

import enum
from typing import List, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.platforms.s60.platform import S60Platform


class MIDletStateChangeException(Exception):
    """A MIDlet refused a lifecycle transition (MIDP semantics)."""


class MidletState(enum.Enum):
    """MIDP lifecycle states."""

    LOADED = "loaded"
    ACTIVE = "active"
    PAUSED = "paused"
    DESTROYED = "destroyed"


class MIDlet:
    """Base class for S60 applications.

    Java mapping: ``startApp`` → :meth:`start_app`, ``pauseApp`` →
    :meth:`pause_app`, ``destroyApp`` → :meth:`destroy_app`,
    ``getAppProperty`` → :meth:`get_app_property`.
    """

    def __init__(self, platform: "S60Platform", suite_name: str) -> None:
        self.platform = platform
        self.suite_name = suite_name
        self._state = MidletState.LOADED
        self._state_log: List[MidletState] = [MidletState.LOADED]

    # -- override points ------------------------------------------------------

    def start_app(self) -> None:
        """Application entry point (register listeners here)."""

    def pause_app(self) -> None:
        """Release shared resources; the app may be resumed later."""

    def destroy_app(self, unconditional: bool) -> None:
        """Final cleanup.  May raise :class:`MIDletStateChangeException`
        when ``unconditional`` is ``False`` to refuse destruction."""

    # -- lifecycle driving -------------------------------------------------------

    @property
    def state(self) -> MidletState:
        return self._state

    @property
    def state_log(self) -> List[MidletState]:
        return list(self._state_log)

    def _enter(self, state: MidletState) -> None:
        self._state = state
        self._state_log.append(state)

    def perform_start(self) -> None:
        if self._state not in (MidletState.LOADED, MidletState.PAUSED):
            raise MIDletStateChangeException(
                f"cannot start from {self._state.value}"
            )
        self._enter(MidletState.ACTIVE)
        self.start_app()

    def perform_pause(self) -> None:
        if self._state is not MidletState.ACTIVE:
            raise MIDletStateChangeException(f"cannot pause from {self._state.value}")
        self._enter(MidletState.PAUSED)
        self.pause_app()

    def perform_destroy(self, unconditional: bool = True) -> None:
        if self._state is MidletState.DESTROYED:
            return
        try:
            self.destroy_app(unconditional)
        except MIDletStateChangeException:
            if unconditional:
                raise
            return  # the MIDlet refused; stay alive
        self._enter(MidletState.DESTROYED)

    # -- suite services --------------------------------------------------------

    def get_app_property(self, key: str) -> str:
        """Read a JAD descriptor property of the installed suite."""
        return self.platform.suite_property(self.suite_name, key)

    def check_permission(self, permission: str) -> bool:
        """Whether the suite holds the MIDP permission string."""
        return self.platform.suite_has_permission(self.suite_name, permission)
