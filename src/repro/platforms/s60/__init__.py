"""Nokia S60 / J2ME-like platform substrate.

Built to the shape of the Nokia S60 3rd Edition SDK the paper targeted:
MIDP application model, JSR-179 Location API, Wireless Messaging API and
the Generic Connection Framework.  Java name mapping is ``snake_case``
one-for-one (``addProximityListener`` → ``add_proximity_listener``).

The semantic *gaps* versus Android are deliberate and load-bearing:

* proximity listeners are **one-shot** — after the first enter event the
  platform removes them;
* there are **no exit events** and **no expiration** parameter;
* providers are acquired through :class:`Criteria` matching, which may
  return ``None`` or raise the checked :class:`LocationException`;
* there is **no public phone-call API** (the paper could not build a Call
  proxy on S60 for exactly this reason).
"""

from repro.platforms.s60.exceptions import (
    ConnectionNotFoundException,
    IOException,
    IllegalArgumentException,
    LocationException,
    NullPointerException,
    SecurityException,
)
from repro.platforms.s60.midlet import MIDlet, MIDletStateChangeException
from repro.platforms.s60.location import (
    Coordinates,
    Criteria,
    LocationListener,
    LocationProviderStatics,
    ProximityListener,
    S60Location,
)
from repro.platforms.s60.messaging import MessageConnection, TextMessage
from repro.platforms.s60.connector import Connector, HttpConnection
from repro.platforms.s60.packaging import JadDescriptor, Jar, JarEntry, MidletSuite
from repro.platforms.s60.platform import S60Platform

__all__ = [
    "ConnectionNotFoundException",
    "Connector",
    "Coordinates",
    "Criteria",
    "HttpConnection",
    "IOException",
    "IllegalArgumentException",
    "JadDescriptor",
    "Jar",
    "JarEntry",
    "LocationException",
    "LocationListener",
    "LocationProviderStatics",
    "MIDlet",
    "MIDletStateChangeException",
    "MessageConnection",
    "MidletSuite",
    "NullPointerException",
    "ProximityListener",
    "S60Location",
    "S60Platform",
    "SecurityException",
    "TextMessage",
]
