"""JSR-75 style PIM API for S60.

J2ME's address book is typed and list-oriented: open a ``ContactList``
through the PIM singleton, iterate ``ContactItem`` objects, read fields by
numeric constants with per-field value counts, and ``commit`` mutations —
a completely different shape from Android's row cursors.  Checked
:class:`PIMException` everywhere, per the JSR.

Java mapping: ``PIM.getInstance().openPIMList`` →
``platform.pim.open_pim_list``, ``contact.getString(Contact.TEL, 0)`` →
:meth:`ContactItem.get_string`.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, TYPE_CHECKING

from repro.device.pim import ContactRecord
from repro.platforms.s60.exceptions import J2meException, SecurityException

if TYPE_CHECKING:  # pragma: no cover
    from repro.platforms.s60.platform import S60Platform

#: MIDP permission strings for PIM access.
PERMISSION_PIM_READ = "javax.microedition.pim.ContactList.read"
PERMISSION_PIM_WRITE = "javax.microedition.pim.ContactList.write"
PERMISSION_EVENT_READ = "javax.microedition.pim.EventList.read"
PERMISSION_EVENT_WRITE = "javax.microedition.pim.EventList.write"


class PIMException(J2meException):
    """Checked PIM failure (closed list, missing field, bad mode)."""


class Contact:
    """Field constants (JSR-75 ``Contact``)."""

    FORMATTED_NAME = 105
    TEL = 115
    EMAIL = 103


class ContactItem:
    """One typed PIM item, bound to its list until committed/removed."""

    def __init__(self, contact_list: "ContactList", record: Optional[ContactRecord]) -> None:
        self._list = contact_list
        self._record = record  # None until first commit for new items
        self._pending: Dict[int, List[str]] = {}

    @property
    def record_id(self) -> Optional[str]:
        return self._record.contact_id if self._record else None

    def count_values(self, field: int) -> int:
        """How many values the field currently holds (JSR idiom)."""
        values = self._current_values(field)
        return len(values)

    def get_string(self, field: int, index: int) -> str:
        values = self._current_values(field)
        if not 0 <= index < len(values):
            raise PIMException(f"field {field} has no value at index {index}")
        return values[index]

    def add_string(self, field: int, attributes: int, value: str) -> None:
        """Stage a value for the field (JSR: ``addString``)."""
        if not value:
            raise PIMException("empty value")
        self._pending.setdefault(field, list(self._current_values(field)))
        self._pending[field].append(value)

    def commit(self) -> None:
        """Persist staged values through the owning list."""
        self._list._commit_item(self)
        self._pending.clear()

    def _current_values(self, field: int) -> List[str]:
        if field in self._pending:
            return list(self._pending[field])
        if self._record is None:
            return []
        if field == Contact.FORMATTED_NAME:
            return [self._record.display_name]
        if field == Contact.TEL:
            return list(self._record.phone_numbers)
        if field == Contact.EMAIL:
            return [self._record.email] if self._record.email else []
        raise PIMException(f"unsupported field {field}")


class ContactList:
    """An open PIM list (JSR-75 ``ContactList``)."""

    def __init__(self, platform: "S60Platform", suite_name: Optional[str], mode: int) -> None:
        self._platform = platform
        self._suite_name = suite_name
        self._mode = mode
        self._closed = False

    # -- iteration --------------------------------------------------------------

    def items(self) -> Iterator[ContactItem]:
        """All contacts, in the store's deterministic order."""
        self._ensure_open()
        self._require(PERMISSION_PIM_READ, "items")
        self._platform.charge_native("s60.pim.items")
        for record in self._platform.device.contacts.all():
            yield ContactItem(self, record)

    def items_matching(self, name_fragment: str) -> Iterator[ContactItem]:
        """JSR's ``items(String matchingValue)`` overload."""
        self._ensure_open()
        self._require(PERMISSION_PIM_READ, "items")
        self._platform.charge_native("s60.pim.items")
        for record in self._platform.device.contacts.find_by_name(name_fragment):
            yield ContactItem(self, record)

    # -- mutation ---------------------------------------------------------------

    def create_contact(self) -> ContactItem:
        """A blank item; persists on ``commit``."""
        self._ensure_open()
        self._require_writable("createContact")
        return ContactItem(self, None)

    def remove_contact(self, item: ContactItem) -> None:
        self._ensure_open()
        self._require_writable("removeContact")
        if item.record_id is None:
            raise PIMException("item was never committed")
        self._platform.charge_native("s60.pim.remove")
        self._platform.device.contacts.remove(item.record_id)
        item._record = None

    def _commit_item(self, item: ContactItem) -> None:
        self._ensure_open()
        self._require_writable("commit")
        names = item._pending.get(Contact.FORMATTED_NAME) or (
            [item._record.display_name] if item._record else []
        )
        if not names:
            raise PIMException("contact needs a FORMATTED_NAME before commit")
        numbers = tuple(
            item._pending.get(
                Contact.TEL,
                list(item._record.phone_numbers) if item._record else [],
            )
        )
        emails = item._pending.get(
            Contact.EMAIL, [item._record.email] if item._record and item._record.email else []
        )
        self._platform.charge_native("s60.pim.commit")
        store = self._platform.device.contacts
        if item._record is None:
            item._record = store.add(
                names[0], phone_numbers=numbers, email=emails[0] if emails else ""
            )
        else:
            from dataclasses import replace

            updated = replace(
                item._record,
                display_name=names[0],
                phone_numbers=numbers,
                email=emails[0] if emails else "",
            )
            store.update(updated)
            item._record = updated

    # -- lifecycle ---------------------------------------------------------------

    def close(self) -> None:
        self._closed = True

    def _ensure_open(self) -> None:
        if self._closed:
            raise PIMException("list is closed")

    def _require(self, permission: str, what: str) -> None:
        if self._suite_name is None:
            return
        if not self._platform.suite_has_permission(self._suite_name, permission):
            raise SecurityException(
                f"suite {self._suite_name!r} lacks {permission} for {what}"
            )

    def _require_writable(self, what: str) -> None:
        if self._mode == PimStatics.READ_ONLY:
            raise PIMException(f"list opened READ_ONLY; {what} not allowed")
        self._require(PERMISSION_PIM_WRITE, what)


class Event:
    """Field constants (JSR-75 ``Event``)."""

    SUMMARY = 107
    START = 106
    END = 102
    LOCATION = 104


class EventItem:
    """One typed calendar item, bound to its list until committed."""

    def __init__(self, event_list: "EventList", record) -> None:
        self._list = event_list
        self._record = record  # device EventRecord or None until commit
        self._pending_strings: Dict[int, str] = {}
        self._pending_dates: Dict[int, float] = {}

    @property
    def record_id(self) -> Optional[str]:
        return self._record.event_id if self._record else None

    def get_string(self, field: int, index: int = 0) -> str:
        if field in self._pending_strings:
            return self._pending_strings[field]
        if self._record is None:
            raise PIMException(f"field {field} has no value")
        if field == Event.SUMMARY:
            return self._record.summary
        if field == Event.LOCATION:
            return self._record.location
        raise PIMException(f"unsupported string field {field}")

    def get_date(self, field: int, index: int = 0) -> float:
        """JSR: dates are epoch values; here, virtual milliseconds."""
        if field in self._pending_dates:
            return self._pending_dates[field]
        if self._record is None:
            raise PIMException(f"field {field} has no value")
        if field == Event.START:
            return self._record.start_ms
        if field == Event.END:
            return self._record.end_ms
        raise PIMException(f"unsupported date field {field}")

    def add_string(self, field: int, attributes: int, value: str) -> None:
        if field not in (Event.SUMMARY, Event.LOCATION):
            raise PIMException(f"unsupported string field {field}")
        if not value:
            raise PIMException("empty value")
        self._pending_strings[field] = value

    def add_date(self, field: int, attributes: int, value_ms: float) -> None:
        if field not in (Event.START, Event.END):
            raise PIMException(f"unsupported date field {field}")
        self._pending_dates[field] = float(value_ms)

    def commit(self) -> None:
        self._list._commit_item(self)
        self._pending_strings.clear()
        self._pending_dates.clear()


class EventList:
    """An open PIM event list (JSR-75 ``EventList``)."""

    def __init__(self, platform: "S60Platform", suite_name: Optional[str], mode: int) -> None:
        self._platform = platform
        self._suite_name = suite_name
        self._mode = mode
        self._closed = False

    def items(self) -> Iterator[EventItem]:
        self._ensure_open()
        self._require(PERMISSION_EVENT_READ, "items")
        self._platform.charge_native("s60.pim.items")
        for record in self._platform.device.calendar.all():
            yield EventItem(self, record)

    def create_event(self) -> EventItem:
        self._ensure_open()
        self._require_writable("createEvent")
        return EventItem(self, None)

    def remove_event(self, item: EventItem) -> None:
        self._ensure_open()
        self._require_writable("removeEvent")
        if item.record_id is None:
            raise PIMException("item was never committed")
        self._platform.charge_native("s60.pim.remove")
        self._platform.device.calendar.remove(item.record_id)
        item._record = None

    def _commit_item(self, item: EventItem) -> None:
        self._ensure_open()
        self._require_writable("commit")
        summary = item._pending_strings.get(
            Event.SUMMARY, item._record.summary if item._record else ""
        )
        if not summary:
            raise PIMException("event needs a SUMMARY before commit")
        start = item._pending_dates.get(
            Event.START, item._record.start_ms if item._record else None
        )
        end = item._pending_dates.get(
            Event.END, item._record.end_ms if item._record else None
        )
        if start is None or end is None:
            raise PIMException("event needs START and END before commit")
        location = item._pending_strings.get(
            Event.LOCATION, item._record.location if item._record else ""
        )
        self._platform.charge_native("s60.pim.commit")
        store = self._platform.device.calendar
        if item._record is None:
            item._record = store.add(summary, start, end, location=location)
        else:
            from dataclasses import replace

            updated = replace(
                item._record,
                summary=summary,
                start_ms=start,
                end_ms=end,
                location=location,
            )
            store.update(updated)
            item._record = updated

    def close(self) -> None:
        self._closed = True

    def _ensure_open(self) -> None:
        if self._closed:
            raise PIMException("list is closed")

    def _require(self, permission: str, what: str) -> None:
        if self._suite_name is None:
            return
        if not self._platform.suite_has_permission(self._suite_name, permission):
            raise SecurityException(
                f"suite {self._suite_name!r} lacks {permission} for {what}"
            )

    def _require_writable(self, what: str) -> None:
        if self._mode == PimStatics.READ_ONLY:
            raise PIMException(f"list opened READ_ONLY; {what} not allowed")
        self._require(PERMISSION_EVENT_WRITE, what)


class PimStatics:
    """The JSR-75 ``PIM`` singleton, bound to a platform instance."""

    CONTACT_LIST = 1
    EVENT_LIST = 2
    READ_ONLY = 1
    WRITE_ONLY = 2
    READ_WRITE = 3

    def __init__(self, platform: "S60Platform") -> None:
        self._platform = platform
        self._suite_name: Optional[str] = None

    def bind_suite(self, suite_name: str) -> None:
        self._suite_name = suite_name

    def open_pim_list(self, list_type: int, mode: int):
        """JSR: ``PIM.getInstance().openPIMList(type, mode)``."""
        if mode not in (self.READ_ONLY, self.WRITE_ONLY, self.READ_WRITE):
            raise PIMException(f"bad mode {mode}")
        self._platform.charge_native("s60.pim.open")
        if list_type == self.CONTACT_LIST:
            return ContactList(self._platform, self._suite_name, mode)
        if list_type == self.EVENT_LIST:
            return EventList(self._platform, self._suite_name, mode)
        raise PIMException(f"unsupported list type {list_type}")
