"""Over-The-Air deployment for S60 MIDlet suites.

The paper: "during deployment on S60, the entire application is packaged
as a single jar file, that is qualified further with various permissions,
Over-The-Air (OTA) deployment properties, profile configuration etc."

This module closes the loop: an :class:`OtaServer` publishes a suite's
JAD and JAR on the simulated network, and an :class:`OtaInstaller` on the
handset fetches the descriptor, checks the advertised size against the
device's binary limit *before* downloading the jar (the point of the
two-file OTA protocol), then installs the suite.
"""

from __future__ import annotations

import json
from typing import Optional

from repro.device.network import HttpRequest, HttpResponse, NetworkError, SimulatedNetwork
from repro.errors import ConfigurationError
from repro.platforms.s60.exceptions import IOException
from repro.platforms.s60.packaging import Jar, JarEntry, JadDescriptor, MidletSuite
from repro.platforms.s60.platform import S60Platform

#: JAD property advertising the jar's size (MIDP OTA requirement).
JAR_SIZE_PROPERTY = "MIDlet-Jar-Size"
#: JAD property carrying the jar's download URL (MIDP OTA requirement).
JAR_URL_PROPERTY = "MIDlet-Jar-URL"


class OtaServer:
    """Publishes a MIDlet suite for OTA download."""

    def __init__(
        self,
        network: SimulatedNetwork,
        host: str,
        suite: MidletSuite,
        *,
        base_path: str = "/apps",
    ) -> None:
        self.host = host
        slug = suite.name.replace(" ", "-").lower()
        self.jad_path = f"{base_path}/{slug}.jad"
        self.jar_path = f"{base_path}/{slug}.jar"
        # Advertise OTA properties in the served JAD (not mutating the
        # publisher's in-memory descriptor).
        served = JadDescriptor(
            midlet_name=suite.jad.midlet_name,
            vendor=suite.jad.vendor,
            version=suite.jad.version,
            permissions=list(suite.jad.permissions),
            properties=dict(suite.jad.properties),
        )
        served.properties[JAR_SIZE_PROPERTY] = str(suite.jar.size_bytes)
        served.properties[JAR_URL_PROPERTY] = f"http://{host}{self.jar_path}"
        jad_text = served.to_text()
        jar_manifest = json.dumps(
            {
                "name": suite.jar.name,
                "entries": [
                    {"path": entry.path, "size": entry.size_bytes}
                    for entry in suite.jar.entries
                ],
            }
        )
        server = network.add_server(host)
        server.route("GET", self.jad_path, lambda r: HttpResponse(200, jad_text))
        server.route("GET", self.jar_path, lambda r: HttpResponse(200, jar_manifest))

    @property
    def jad_url(self) -> str:
        return f"http://{self.host}{self.jad_path}"


class OtaInstaller:
    """Device-side OTA install flow for an S60 platform."""

    def __init__(self, platform: S60Platform) -> None:
        self._platform = platform

    def install_from(self, jad_url: str) -> MidletSuite:
        """Fetch JAD → size-check → fetch JAR → install.

        Raises :class:`~repro.errors.ConfigurationError` when the
        advertised jar exceeds the device's binary limit (without
        downloading the jar) and the checked
        :class:`~repro.platforms.s60.exceptions.IOException` on transport
        failures.
        """
        jad = JadDescriptor.from_text(self._fetch(jad_url))
        advertised = jad.properties.get(JAR_SIZE_PROPERTY)
        if advertised is None:
            raise ConfigurationError("OTA JAD lacks MIDlet-Jar-Size")
        limit = self._platform.device.profile.max_app_binary_kb * 1024
        if int(advertised) > limit:
            raise ConfigurationError(
                f"advertised jar size {advertised} exceeds device limit {limit}; "
                "download refused"
            )
        jar_url = jad.properties.get(JAR_URL_PROPERTY)
        if not jar_url:
            raise ConfigurationError("OTA JAD lacks MIDlet-Jar-URL")
        manifest = json.loads(self._fetch(jar_url))
        jar = Jar(
            manifest["name"],
            [JarEntry(e["path"], e["size"]) for e in manifest["entries"]],
        )
        # The served JAD carries OTA bookkeeping; strip it for the
        # installed descriptor (it describes transport, not the app).
        installed_properties = {
            key: value
            for key, value in jad.properties.items()
            if key not in (JAR_SIZE_PROPERTY, JAR_URL_PROPERTY)
        }
        suite = MidletSuite(
            jad=JadDescriptor(
                midlet_name=jad.midlet_name,
                vendor=jad.vendor,
                version=jad.version,
                permissions=list(jad.permissions),
                properties=installed_properties,
            ),
            jar=jar,
        )
        self._platform.install_suite(suite)
        return suite

    def _fetch(self, url: str) -> str:
        from urllib.parse import urlparse

        parsed = urlparse(url)
        try:
            response = self._platform.device.network.request(
                HttpRequest(method="GET", host=parsed.netloc, path=parsed.path or "/")
            )
        except NetworkError as exc:
            raise IOException(f"OTA download failed: {exc}") from exc
        if not response.ok:
            raise IOException(f"OTA download failed: HTTP {response.status}")
        return response.body
