"""Generic Connection Framework: ``Connector.open`` and ``HttpConnection``.

Everything on J2ME is a URL handed to ``Connector.open`` — ``http://`` URLs
yield an :class:`HttpConnection`, ``sms://`` URLs a
:class:`~repro.platforms.s60.messaging.MessageConnection`.  The HTTP
connection is blocking and stream-oriented (``open_input_stream``), unlike
Android's request/response objects.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING
from urllib.parse import urlparse

from repro.device.network import HttpRequest, NetworkError
from repro.platforms.s60.exceptions import (
    ConnectionNotFoundException,
    IOException,
    IllegalArgumentException,
    SecurityException,
)
from repro.platforms.s60.messaging import MessageConnection

if TYPE_CHECKING:  # pragma: no cover
    from repro.platforms.s60.platform import S60Platform

#: MIDP permission for GCF HTTP.
PERMISSION_HTTP = "javax.microedition.io.Connector.http"


class InputStreamS60:
    """A minimal blocking input stream over response bytes."""

    def __init__(self, content: str) -> None:
        self._data = content.encode("utf-8")
        self._pos = 0

    def read(self, n: int = -1) -> bytes:
        """Read up to ``n`` bytes (all remaining when ``n`` is -1)."""
        if n == -1:
            n = len(self._data) - self._pos
        chunk = self._data[self._pos : self._pos + n]
        self._pos += len(chunk)
        return chunk

    def read_fully(self) -> str:
        """Convenience: drain the stream and decode as UTF-8."""
        return self.read(-1).decode("utf-8")

    def close(self) -> None:
        self._pos = len(self._data)


class HttpConnection:
    """J2ME blocking HTTP connection.

    Java mapping: ``setRequestMethod`` → :meth:`set_request_method`,
    ``setRequestProperty`` → :meth:`set_request_property`,
    ``getResponseCode`` → :meth:`get_response_code`,
    ``openInputStream`` → :meth:`open_input_stream`.

    The request executes lazily on the first response accessor, matching
    the GCF contract.
    """

    GET = "GET"
    POST = "POST"

    def __init__(self, platform: "S60Platform", suite_name: Optional[str], url: str) -> None:
        parsed = urlparse(url)
        if parsed.scheme != "http" or not parsed.netloc:
            raise IllegalArgumentException(f"malformed http url {url!r}")
        self._platform = platform
        self._suite_name = suite_name
        self._host = parsed.netloc
        self._path = parsed.path or "/"
        if parsed.query:
            self._path = f"{self._path}?{parsed.query}"
        self._method = self.GET
        self._headers: list = []
        self._body = ""
        self._response = None
        self._closed = False

    def set_request_method(self, method: str) -> None:
        if method not in (self.GET, self.POST):
            raise IllegalArgumentException(f"unsupported method {method!r}")
        if self._response is not None:
            raise IOException("request already sent")
        self._method = method

    def set_request_property(self, name: str, value: str) -> None:
        if self._response is not None:
            raise IOException("request already sent")
        self._headers.append((name, value))

    def write_body(self, body: str) -> None:
        """Stand-in for ``openOutputStream().write(...)``."""
        if self._response is not None:
            raise IOException("request already sent")
        self._body = body

    def get_response_code(self) -> int:
        self._execute()
        return self._response.status

    def open_input_stream(self) -> InputStreamS60:
        self._execute()
        return InputStreamS60(self._response.body)

    def close(self) -> None:
        self._closed = True

    def _execute(self) -> None:
        if self._closed:
            raise IOException("connection closed")
        if self._response is not None:
            return
        if self._suite_name is not None and not self._platform.suite_has_permission(
            self._suite_name, PERMISSION_HTTP
        ):
            raise SecurityException(
                f"suite {self._suite_name!r} lacks {PERMISSION_HTTP}"
            )
        self._platform.charge_native("s60.http")
        request = HttpRequest(
            method=self._method,
            host=self._host,
            path=self._path,
            headers=tuple(self._headers),
            body=self._body,
        )
        try:
            self._response = self._platform.device.network.request(request)
        except NetworkError as exc:
            raise IOException(str(exc)) from exc


class Connector:
    """The GCF factory (Java: ``javax.microedition.io.Connector``).

    Bound to a platform instance as ``platform.connector`` (Python has no
    per-platform statics).
    """

    def __init__(self, platform: "S60Platform") -> None:
        self._platform = platform
        self._suite_name: Optional[str] = None

    def bind_suite(self, suite_name: str) -> None:
        """Attribute subsequent permission checks to a MIDlet suite."""
        self._suite_name = suite_name

    def open(self, url: str):
        """Open a connection for ``url`` (Java: ``Connector.open``).

        ``http://`` → :class:`HttpConnection`; ``sms://`` →
        :class:`MessageConnection`.  Anything else raises the checked
        ``ConnectionNotFoundException``.
        """
        if url.startswith("http://"):
            return HttpConnection(self._platform, self._suite_name, url)
        if url.startswith("sms://"):
            address = url[len("sms://"):]
            return MessageConnection(self._platform, self._suite_name, address)
        raise ConnectionNotFoundException(f"no protocol handler for {url!r}")
