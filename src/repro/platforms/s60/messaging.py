"""Wireless Messaging API (javax.wireless.messaging) style SMS.

S60 sends SMS through the Generic Connection Framework: the application
opens a ``MessageConnection`` on an ``sms://+number`` URL, builds a
:class:`TextMessage`, and calls the **blocking** ``send``.  Compare
Android, where ``sendTextMessage`` is fire-and-forget with PendingIntent
result broadcasts — one more axis the SMS M-Proxy flattens.
"""

from __future__ import annotations

from typing import List, Optional, TYPE_CHECKING

from repro.device.messaging import SmsMessage
from repro.platforms.s60.exceptions import (
    IOException,
    IllegalArgumentException,
    SecurityException,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.platforms.s60.platform import S60Platform

#: MIDP permission strings.
PERMISSION_SMS_SEND = "javax.wireless.messaging.sms.send"
PERMISSION_SMS_RECEIVE = "javax.wireless.messaging.sms.receive"


class TextMessage:
    """A WMA text message (Java: ``TextMessage``)."""

    def __init__(self, address: str) -> None:
        self._address = address
        self._payload: Optional[str] = None

    def set_payload_text(self, text: str) -> None:
        """Java: ``setPayloadText``."""
        self._payload = text

    def get_payload_text(self) -> Optional[str]:
        return self._payload

    def get_address(self) -> str:
        return self._address

    def set_address(self, address: str) -> None:
        self._address = address


class MessageListener:
    """WMA incoming-message callback interface (abstract)."""

    def notify_incoming_message(self, connection: "MessageConnection") -> None:
        raise NotImplementedError


class MessageConnection:
    """A GCF message connection bound to an ``sms://`` URL.

    Created by :meth:`repro.platforms.s60.connector.Connector.open`, never
    directly.  Java mapping: ``newMessage`` → :meth:`new_message`,
    ``send`` → :meth:`send`, ``receive`` → :meth:`receive`.
    """

    #: Java: MessageConnection.TEXT_MESSAGE
    TEXT_MESSAGE = "text"

    def __init__(self, platform: "S60Platform", suite_name: Optional[str], address: str) -> None:
        self._platform = platform
        self._suite_name = suite_name
        self._address = address  # '' for server-mode connections
        self._closed = False
        self._incoming: List[SmsMessage] = []
        self._listener: Optional[MessageListener] = None
        if not address:  # server mode: receive from the device inbox
            platform.register_sms_sink(self._on_incoming)

    # -- message construction ----------------------------------------------------

    def new_message(self, message_type: str) -> TextMessage:
        """Create an empty message bound to this connection's address."""
        if message_type != self.TEXT_MESSAGE:
            raise IllegalArgumentException(f"unsupported type {message_type!r}")
        return TextMessage(self._address)

    # -- sending ----------------------------------------------------------------

    def send(self, message: TextMessage) -> None:
        """Blocking send (charges the native latency, then waits delivery
        submission).  Raises checked ``IOException`` on radio failure and
        ``SecurityException`` without the send permission."""
        self._ensure_open()
        self._check_permission(PERMISSION_SMS_SEND, "send")
        if message.get_payload_text() is None:
            raise IllegalArgumentException("message has no payload")
        if not message.get_address():
            raise IllegalArgumentException("message has no address")
        self._platform.charge_native("s60.sendSMS")
        address = message.get_address()
        number = address[len("sms://"):] if address.startswith("sms://") else address
        self._platform.device.sms_center.submit(
            self._platform.device.phone_number,
            number,
            message.get_payload_text(),
        )

    # -- receiving ----------------------------------------------------------------

    def set_message_listener(self, listener: Optional[MessageListener]) -> None:
        """Register an asynchronous incoming-message listener."""
        self._ensure_open()
        self._check_permission(PERMISSION_SMS_RECEIVE, "setMessageListener")
        self._listener = listener

    def receive(self) -> TextMessage:
        """Blocking receive; raises ``IOException`` when nothing is queued.

        (A real MIDlet would block the thread; under virtual time the
        substrate surfaces an error instead of deadlocking the test.)
        """
        self._ensure_open()
        self._check_permission(PERMISSION_SMS_RECEIVE, "receive")
        if not self._incoming:
            raise IOException("no message available")
        sms = self._incoming.pop(0)
        message = TextMessage(f"sms://{sms.sender}")
        message.set_payload_text(sms.text)
        return message

    def pending_count(self) -> int:
        return len(self._incoming)

    def close(self) -> None:
        """Close the connection (GCF contract); further use raises."""
        self._closed = True

    # -- internals ----------------------------------------------------------------

    def _on_incoming(self, sms: SmsMessage) -> None:
        if self._closed:
            return
        self._incoming.append(sms)
        if self._listener is not None:
            self._listener.notify_incoming_message(self)

    def _ensure_open(self) -> None:
        if self._closed:
            raise IOException("connection closed")

    def _check_permission(self, permission: str, what: str) -> None:
        if self._suite_name is None:
            return
        if not self._platform.suite_has_permission(self._suite_name, permission):
            raise SecurityException(
                f"suite {self._suite_name!r} lacks {permission} for {what}"
            )
