"""S60/J2ME platform exception set.

Distinct from Android's by design: this platform throws the *checked*
``LocationException`` and GCF ``IOException`` where Android throws
unchecked runtime exceptions — one of the fragmentation axes recorded in
each proxy's binding plane.  Note ``SecurityException`` here is a
different class from Android's same-named one; the substrates do not share
exception types any more than real platforms did.
"""


class J2meException(Exception):
    """Root of this substrate's exception set."""


class LocationException(J2meException):
    """Checked: the location request cannot be served (JSR-179)."""


class SecurityException(J2meException):
    """The MIDlet suite was not granted the required permission."""


class IllegalArgumentException(J2meException):
    """An argument is out of range for the API."""


class NullPointerException(J2meException):
    """A required object reference was ``None``."""


class IOException(J2meException):
    """Checked: a Generic Connection Framework I/O failure."""


class ConnectionNotFoundException(IOException):
    """``Connector.open`` could not create the requested connection."""


class InterruptedException(J2meException):
    """A blocking call was interrupted (e.g. ``getLocation`` timeout)."""
