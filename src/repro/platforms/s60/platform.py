"""The S60 platform object: suite installation, service statics, latencies."""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Type

from repro.device.device import MobileDevice
from repro.device.messaging import SmsMessage
from repro.platforms.base import PlatformBase
from repro.platforms.s60.connector import Connector
from repro.platforms.s60.location import LocationProviderStatics
from repro.platforms.s60.midlet import MIDlet
from repro.platforms.s60.packaging import MidletSuite
from repro.platforms.s60.pim import PimStatics
from repro.util.latency import LatencyModel

#: Default native latencies (ms), shaped to the paper's Figure-10 bars:
#: the S60 location stack is an order of magnitude slower than Android's,
#: while its SMS path is the fastest of the three platforms.
DEFAULT_S60_LATENCY = LatencyModel(
    mean_ms={
        "s60.addProximityListener": 141.0,
        "s60.getLocation": 140.8,
        "s60.sendSMS": 15.6,
        "s60.http": 60.0,
    },
    default_ms=1.0,
)


class S60Platform(PlatformBase):
    """A Nokia S60 middleware stack mounted on one device.

    Applications arrive as :class:`MidletSuite` bundles (single jar +
    descriptor).  The *statics* of J2ME (``LocationProvider``,
    ``Connector``) hang off the platform instance as
    :attr:`location_provider` and :attr:`connector`.
    """

    platform_name = "s60"

    def __init__(
        self,
        device: MobileDevice,
        *,
        latency: Optional[LatencyModel] = None,
    ) -> None:
        super().__init__(device, latency=latency or DEFAULT_S60_LATENCY)
        self.location_provider = LocationProviderStatics(self)
        self.connector = Connector(self)
        self.pim = PimStatics(self)
        self._suites: Dict[str, MidletSuite] = {}
        self._midlets: Dict[str, MIDlet] = {}
        self._sms_sinks: List[Callable[[SmsMessage], None]] = []
        self._sms_routed = False

    # -- suite management ---------------------------------------------------

    def install_suite(self, suite: MidletSuite) -> None:
        """Install a MIDlet suite, enforcing the device binary-size limit."""
        limit = self.device.profile.max_app_binary_kb * 1024
        suite.validate_for_deployment(max_jar_bytes=limit)
        self._suites[suite.name] = suite

    def suite_property(self, suite_name: str, key: str) -> str:
        suite = self._suites.get(suite_name)
        if suite is None:
            return ""
        return suite.jad.properties.get(key, "")

    def suite_has_permission(self, suite_name: str, permission: str) -> bool:
        suite = self._suites.get(suite_name)
        if suite is None:
            return False
        return permission in suite.jad.permissions

    def launch(self, midlet_class: Type[MIDlet], suite_name: str) -> MIDlet:
        """Instantiate a MIDlet from an installed suite and start it.

        Binds the platform statics' permission checks to the suite, the way
        the MIDP runtime attributes checks to the running suite.
        """
        if suite_name not in self._suites:
            raise KeyError(f"suite {suite_name!r} is not installed")
        self.location_provider.bind_suite(suite_name)
        self.connector.bind_suite(suite_name)
        self.pim.bind_suite(suite_name)
        midlet = midlet_class(self, suite_name)
        self._midlets[suite_name] = midlet
        midlet.perform_start()
        return midlet

    # -- SMS receive plumbing ----------------------------------------------------

    def register_sms_sink(self, sink: Callable[[SmsMessage], None]) -> None:
        """Attach a server-mode MessageConnection to the device inbox."""
        if not self._sms_routed:
            self.device.sms_center.attach(self.device.phone_number, self._on_sms)
            self._sms_routed = True
        self._sms_sinks.append(sink)

    def _on_sms(self, sms: SmsMessage) -> None:
        for sink in list(self._sms_sinks):
            sink(sms)
