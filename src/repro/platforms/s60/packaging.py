"""MIDlet-suite packaging model: JAR + JAD descriptor + OTA properties.

S60 deployment requires the entire application — including every library
it uses — bundled as a **single** J2ME MIDlet-suite jar, qualified by a
JAD descriptor carrying permissions and Over-The-Air properties.  The
MobiVine S60 M-Plugin must therefore *merge* the proxy implementation jars
into the application jar before deployment (paper Section 3.2, feature 4,
and Section 4.2 "Platform Specific Extensions").  This module gives that
merge a concrete, testable object model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class JarEntry:
    """One file inside a jar (classes, resources)."""

    path: str
    size_bytes: int = 0

    def __post_init__(self) -> None:
        if not self.path or self.path.startswith("/"):
            raise ConfigurationError(f"bad jar entry path {self.path!r}")
        if self.size_bytes < 0:
            raise ConfigurationError("entry size cannot be negative")


class Jar:
    """An ordered, duplicate-free set of entries."""

    def __init__(self, name: str, entries: Iterable[JarEntry] = ()) -> None:
        if not name.endswith(".jar"):
            raise ConfigurationError(f"jar name must end in .jar: {name!r}")
        self.name = name
        self._entries: Dict[str, JarEntry] = {}
        for entry in entries:
            self.add(entry)

    def add(self, entry: JarEntry) -> None:
        """Add an entry; duplicate paths are an error (jars cannot shadow)."""
        if entry.path in self._entries:
            raise ConfigurationError(f"duplicate jar entry {entry.path!r}")
        self._entries[entry.path] = entry

    def __contains__(self, path: str) -> bool:
        return path in self._entries

    @property
    def entries(self) -> List[JarEntry]:
        return list(self._entries.values())

    @property
    def size_bytes(self) -> int:
        return sum(entry.size_bytes for entry in self._entries.values())

    def merged_with(self, *others: "Jar") -> "Jar":
        """A new jar containing this jar's entries plus every other's.

        This is the S60 plugin's deployment-time merge.  Colliding paths
        raise — the plugin must not silently pick one implementation.
        """
        merged = Jar(self.name, self.entries)
        for other in others:
            for entry in other.entries:
                merged.add(entry)
        return merged


@dataclass
class JadDescriptor:
    """The JAD side of a suite: metadata, permissions, OTA properties."""

    midlet_name: str
    vendor: str = "unknown"
    version: str = "1.0"
    permissions: List[str] = field(default_factory=list)
    properties: Dict[str, str] = field(default_factory=dict)

    def require_permission(self, permission: str) -> None:
        if permission not in self.permissions:
            self.permissions.append(permission)

    def to_text(self) -> str:
        """Render the descriptor in JAD ``Key: value`` syntax."""
        lines = [
            f"MIDlet-Name: {self.midlet_name}",
            f"MIDlet-Vendor: {self.vendor}",
            f"MIDlet-Version: {self.version}",
        ]
        if self.permissions:
            lines.append("MIDlet-Permissions: " + ", ".join(self.permissions))
        for key in sorted(self.properties):
            lines.append(f"{key}: {self.properties[key]}")
        return "\n".join(lines) + "\n"

    @classmethod
    def from_text(cls, text: str) -> "JadDescriptor":
        """Parse JAD ``Key: value`` syntax (inverse of :meth:`to_text`)."""
        known = {"MIDlet-Name": "", "MIDlet-Vendor": "unknown", "MIDlet-Version": "1.0"}
        permissions: List[str] = []
        properties: Dict[str, str] = {}
        for line in text.splitlines():
            if not line.strip():
                continue
            if ":" not in line:
                raise ConfigurationError(f"malformed JAD line {line!r}")
            key, __, value = line.partition(":")
            key, value = key.strip(), value.strip()
            if key in known:
                known[key] = value
            elif key == "MIDlet-Permissions":
                permissions = [p.strip() for p in value.split(",") if p.strip()]
            else:
                properties[key] = value
        if not known["MIDlet-Name"]:
            raise ConfigurationError("JAD is missing MIDlet-Name")
        return cls(
            midlet_name=known["MIDlet-Name"],
            vendor=known["MIDlet-Vendor"],
            version=known["MIDlet-Version"],
            permissions=permissions,
            properties=properties,
        )


@dataclass
class MidletSuite:
    """A deployable unit: one jar + one descriptor."""

    jad: JadDescriptor
    jar: Jar

    @property
    def name(self) -> str:
        return self.jad.midlet_name

    def validate_for_deployment(self, max_jar_bytes: Optional[int] = None) -> None:
        """Deployment gate: size limit and descriptor consistency."""
        if max_jar_bytes is not None and self.jar.size_bytes > max_jar_bytes:
            raise ConfigurationError(
                f"suite {self.name!r} jar is {self.jar.size_bytes} bytes, "
                f"device limit is {max_jar_bytes}"
            )
        if not self.jar.entries:
            raise ConfigurationError(f"suite {self.name!r} jar is empty")
